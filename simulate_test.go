package paws

import (
	"context"
	"testing"
)

// TestSimulatePAWSBeatsUniform is the headline acceptance test: over three
// seasons against the adaptive attacker — the exact comparison
// `pawssim -seed 7 -seasons 3 -policies paws,uniform` runs — the PAWS policy
// must detect more snares in total than the uniform-effort baseline, on a
// preset park and on a procedural park.
func TestSimulatePAWSBeatsUniform(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall), WithWorkers(0))
	for _, park := range []string{"MFNP", "rand:8"} {
		rep, err := svc.Simulate(context.Background(), SimConfig{
			Park:     park,
			Seasons:  3,
			Policies: []string{"paws", "uniform"},
		})
		if err != nil {
			t.Fatalf("%s: %v", park, err)
		}
		paws, uniform := rep.Policies[0], rep.Policies[1]
		if paws.Policy != "paws" || uniform.Policy != "uniform" {
			t.Fatalf("%s: unexpected policy order %q, %q", park, paws.Policy, uniform.Policy)
		}
		t.Logf("%s: paws %d detections vs uniform %d (snares %d vs %d)",
			park, paws.Detections, uniform.Detections, paws.Snares, uniform.Snares)
		if paws.Detections <= uniform.Detections {
			t.Errorf("%s: paws detected %d, uniform %d — PAWS must beat the uniform baseline",
				park, paws.Detections, uniform.Detections)
		}
	}
}

// TestSimulateDeterministicAcrossWorkers is the determinism acceptance —
// the library form of `pawssim -seed 7 -seasons 3 -policies paws,uniform`:
// the full Simulate path (training, planning, route extraction, execution)
// must render a byte-identical report for -workers 1 and -workers 8.
func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	cfg := SimConfig{Park: "MFNP", Seasons: 3, Policies: []string{"paws", "uniform"}}
	var want string
	for _, workers := range []int{1, 8} {
		svc := NewService(WithSeed(7), WithScale(ScaleSmall), WithWorkers(workers))
		rep, err := svc.Simulate(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Format()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("report differs between workers=1 and workers=%d:\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}

// TestSimulateSeasonLogShape checks the report carries the full per-season
// log: season indices, start months continuing the bootstrap, and routes
// from the paws policy's Frank-Wolfe extraction.
func TestSimulateSeasonLogShape(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall))
	rep, err := svc.Simulate(context.Background(), SimConfig{
		Park:            "rand:16",
		Seasons:         2,
		BootstrapMonths: 12,
		Policies:        []string{"paws", "historical"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seasons != 2 || rep.SeasonMonths != 3 {
		t.Fatalf("report shape %d seasons × %d months", rep.Seasons, rep.SeasonMonths)
	}
	for _, p := range rep.Policies {
		for i, s := range p.Seasons {
			if s.Season != i {
				t.Fatalf("%s: season index %d at position %d", p.Policy, s.Season, i)
			}
			if want := 12 + i*3; s.StartMonth != want {
				t.Fatalf("%s season %d: start month %d, want %d", p.Policy, i, s.StartMonth, want)
			}
		}
	}
	if rep.Policies[0].Seasons[0].Routes == 0 {
		t.Fatal("paws policy reported no executable routes")
	}
	if rep.Policies[1].Seasons[0].Routes != 0 {
		t.Fatal("historical baseline reported routes")
	}
}

// TestSimulateStaticAttackerOption: the attacker behaviour is selectable and
// the historical static process shows no displacement.
func TestSimulateStaticAttackerOption(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall))
	cfg := SimConfig{Park: "rand:16", Seasons: 1, Policies: []string{"uniform"}}
	cfg.Attacker.Kind = "static"
	rep, err := svc.Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attacker != "static" || rep.Policies[0].Displaced != 0 {
		t.Fatalf("static attacker run reported attacker=%q displaced=%d", rep.Attacker, rep.Policies[0].Displaced)
	}
}

// TestSimulateErrors covers spec, policy and attacker validation.
func TestSimulateErrors(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall))
	ctx := context.Background()
	if _, err := svc.Simulate(ctx, SimConfig{Park: "ATLANTIS", Seasons: 1}); err == nil {
		t.Error("unknown park spec accepted")
	}
	if _, err := svc.Simulate(ctx, SimConfig{Park: "rand:nope", Seasons: 1}); err == nil {
		t.Error("malformed rand spec accepted")
	}
	if _, err := svc.Simulate(ctx, SimConfig{Park: "MFNP", Seasons: 1, Policies: []string{"skynet"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	bad := SimConfig{Park: "MFNP", Seasons: 1, Policies: []string{"uniform"}}
	bad.Attacker.Kind = "quantum"
	if _, err := svc.Simulate(ctx, bad); err == nil {
		t.Error("unknown attacker kind accepted")
	}
}

// TestSimulateEdgeValidation: negative and out-of-range SimConfig values are
// rejected with an error (the HTTP layer renders these as bad_request)
// instead of silently selecting defaults.
func TestSimulateEdgeValidation(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall))
	ctx := context.Background()
	cases := []struct {
		name   string
		mutate func(*SimConfig)
	}{
		{"negative seasons", func(c *SimConfig) { c.Seasons = -2 }},
		{"negative season months", func(c *SimConfig) { c.SeasonMonths = -1 }},
		{"negative bootstrap months", func(c *SimConfig) { c.BootstrapMonths = -12 }},
		{"negative budget", func(c *SimConfig) { c.BudgetKM = -5 }},
		{"beta above one", func(c *SimConfig) { c.Beta = 1.5 }},
		{"negative beta", func(c *SimConfig) { c.Beta = -0.1 }},
	}
	for _, tc := range cases {
		cfg := SimConfig{Park: "rand:16", Seasons: 1, Policies: []string{"uniform"}}
		tc.mutate(&cfg)
		if _, err := svc.Simulate(ctx, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestScenarioRandSpec: procedural parks flow through the Scenario API (and
// pawsgen): identical for repeated generation, independent of scale.
func TestScenarioRandSpec(t *testing.T) {
	svc := NewService(WithSeed(7), WithScale(ScaleSmall))
	sc, err := svc.Scenario(context.Background(), "rand:16")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Park.Name != "rand-16" {
		t.Fatalf("park name %q", sc.Park.Name)
	}
	full, err := NewService(WithSeed(7), WithScale(ScaleFull)).Scenario(context.Background(), "rand:16")
	if err != nil {
		t.Fatal(err)
	}
	if full.Park.Grid.NumCells() != sc.Park.Grid.NumCells() {
		t.Fatal("rand spec parks must ignore the scale setting")
	}
	if sc.Data == nil || len(sc.Data.AllPoints()) == 0 {
		t.Fatal("procedural scenario has no dataset points")
	}
}
