package paws

import (
	"errors"
	"math"

	"paws/internal/dataset"
	"paws/internal/iware"
	"paws/internal/stats"
)

// PlannerModel adapts a trained Model to the planner's CellModel interface:
// per-cell detection probability g_v(c) and squashed uncertainty ν_v(c) as
// functions of planned patrol effort. Feature vectors are frozen at plan
// time (static features plus the previous step's patrol coverage), and
// predictions are memoized because the planner queries the same breakpoints
// for every β in a sweep.
type PlannerModel struct {
	model *Model
	// features[cell] is the frozen feature vector per park cell.
	features [][]float64
	// squashLo anchors the squashing: variances at or below the park's 10th
	// percentile map to ~0 uncertainty.
	squashLo float64
	// squashScale spreads the squashing so the 90th-percentile variance maps
	// to ~0.96 — the paper scales uncertainty scores to [0,1] with a
	// logistic squashing function before weighting them in the objective.
	squashScale float64

	cache map[cacheKey][2]float64
}

type cacheKey struct {
	cell   int
	effort float64
}

// NewPlannerModel freezes features from the dataset as of step prevStep
// (whose effort becomes the coverage covariate) and calibrates the variance
// squashing scale on a sample of cells.
func NewPlannerModel(m *Model, d *dataset.Dataset, prevStep int) (*PlannerModel, error) {
	if m == nil || d == nil {
		return nil, errors.New("paws: nil model or dataset")
	}
	if prevStep < 0 || prevStep >= len(d.Steps) {
		return nil, errors.New("paws: prevStep out of range")
	}
	n := d.Park.Grid.NumCells()
	nf := d.Park.NumFeatures()
	pm := &PlannerModel{model: m, cache: map[cacheKey][2]float64{}}
	pm.features = make([][]float64, n)
	for cell := 0; cell < n; cell++ {
		f := make([]float64, nf+1)
		d.Park.FeatureVector(cell, f[:nf])
		f[nf] = d.Effort[prevStep][cell]
		pm.features[cell] = f
	}
	// Calibrate the squashing on the park-wide variance distribution at a
	// moderate effort level: the 10th percentile maps to ~0 and the 90th to
	// ~0.96, so uncertainty scores use the full [0,1] range (Section VI-C).
	var vs []float64
	stride := n/200 + 1
	for cell := 0; cell < n; cell += stride {
		_, v := m.PredictWithVariance(pm.features[cell], 2)
		vs = append(vs, v)
	}
	lo := stats.Percentile(vs, 10)
	hi := stats.Percentile(vs, 90)
	pm.squashLo = lo
	pm.squashScale = (hi - lo) / 4
	if pm.squashScale <= 1e-12 {
		pm.squashScale = 1
	}
	return pm, nil
}

// Detect returns g_v(c): the model's detection probability for the cell at
// planned effort c.
func (pm *PlannerModel) Detect(cell int, effort float64) float64 {
	return pm.lookup(cell, effort)[0]
}

// Uncertainty returns the squashed uncertainty score ν_v(c) ∈ [0, 1).
func (pm *PlannerModel) Uncertainty(cell int, effort float64) float64 {
	return pm.lookup(cell, effort)[1]
}

func (pm *PlannerModel) lookup(cell int, effort float64) [2]float64 {
	k := cacheKey{cell, effort}
	if v, ok := pm.cache[k]; ok {
		return v
	}
	p, variance := pm.model.PredictWithVariance(pm.features[cell], effort)
	out := [2]float64{p, iware.SquashVariance(variance-pm.squashLo, pm.squashScale)}
	pm.cache[k] = out
	return out
}

// SquashScale returns the calibrated variance normalization constant.
func (pm *PlannerModel) SquashScale() float64 { return pm.squashScale }

// RiskMap evaluates the model over every park cell at a nominal effort,
// returning the per-cell detection probabilities (Fig. 6 red maps).
func (pm *PlannerModel) RiskMap(effort float64) []float64 {
	out := make([]float64, len(pm.features))
	for cell := range pm.features {
		out[cell] = pm.Detect(cell, effort)
	}
	return out
}

// UncertaintyMap evaluates the squashed uncertainty over every park cell at
// a nominal effort (Fig. 6 green maps).
func (pm *PlannerModel) UncertaintyMap(effort float64) []float64 {
	out := make([]float64, len(pm.features))
	for cell := range pm.features {
		out[cell] = pm.Uncertainty(cell, effort)
	}
	return out
}

// RawVarianceMap returns the unsquashed predictive variance per cell at a
// nominal effort (used for the Fig. 7 correlation study).
func (pm *PlannerModel) RawVarianceMap(effort float64) []float64 {
	out := make([]float64, len(pm.features))
	for cell := range pm.features {
		_, v := pm.model.PredictWithVariance(pm.features[cell], effort)
		out[cell] = v
	}
	return out
}

// NominalEffort suggests a mid-range planning effort: the mean recorded
// point effort of the dataset, matching the paper's "prediction of the model
// at a nominal patrol effort, which the rangers will be likely able to
// achieve".
func NominalEffort(d *dataset.Dataset) float64 {
	pts := d.AllPoints()
	if len(pts) == 0 {
		return 1
	}
	var s float64
	for _, p := range pts {
		s += p.Effort
	}
	m := s / float64(len(pts))
	if m <= 0 || math.IsNaN(m) {
		return 1
	}
	return m
}
