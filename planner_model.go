package paws

import (
	"context"
	"errors"
	"math"
	"sync"

	"paws/internal/dataset"
	"paws/internal/iware"
	"paws/internal/ml"
	"paws/internal/par"
	"paws/internal/stats"
)

// PlannerModel adapts a trained Model to the planner's CellModel interface:
// per-cell detection probability g_v(c) and squashed uncertainty ν_v(c) as
// functions of planned patrol effort. Feature vectors are frozen at plan
// time (static features plus the previous step's patrol coverage), and
// predictions are memoized because the planner queries the same breakpoints
// for every β in a sweep. All methods are safe for concurrent use: the memo
// is a preallocated per-cell slice guarded by per-cell locks, and the map
// generators evaluate cells in parallel chunks through the batch prediction
// API (Workers controls the fan-out).
type PlannerModel struct {
	model *Model
	// features holds the frozen per-cell feature vectors as one flat
	// row-major matrix (row = cell, stride = NumFeatures()+1): a single
	// backing allocation instead of one slice per cell, which is what keeps
	// 10^6-cell parks inside the serving memory budget.
	features ml.Matrix
	// squashLo anchors the squashing: variances at or below the park's 10th
	// percentile map to ~0 uncertainty.
	squashLo float64
	// squashScale spreads the squashing so the 90th-percentile variance maps
	// to ~0.96 — the paper scales uncertainty scores to [0,1] with a
	// logistic squashing function before weighting them in the objective.
	squashScale float64

	// Workers bounds the goroutines the map generators (RiskMap,
	// UncertaintyMap, RawVarianceMap) use to evaluate cells (par.Workers
	// semantics: 1 is sequential, 0 or negative means GOMAXPROCS). Output is
	// identical for any worker count.
	Workers int

	// memo[cell] holds the (effort → prediction) entries already computed
	// for the cell. The planner only ever queries a handful of effort
	// breakpoints per cell, so a linear scan over a small slice beats the
	// old global map — and per-cell locking keeps concurrent planner sweeps
	// race-free without a global bottleneck.
	memo []cellMemo
}

type cellMemo struct {
	mu      sync.Mutex
	efforts []float64
	vals    [][2]float64 // (detection probability, squashed uncertainty)
}

// get returns the memoized value for an effort, if present.
func (c *cellMemo) get(effort float64) ([2]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.efforts {
		if e == effort {
			return c.vals[i], true
		}
	}
	return [2]float64{}, false
}

// put stores a value, keeping the first entry on a duplicate insert (values
// for the same effort are identical by determinism, so either would do).
func (c *cellMemo) put(effort float64, v [2]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.efforts {
		if e == effort {
			return
		}
	}
	c.efforts = append(c.efforts, effort)
	c.vals = append(c.vals, v)
}

// NewPlannerModel freezes features from the dataset as of step prevStep
// (whose effort becomes the coverage covariate) and calibrates the variance
// squashing scale on a sample of cells. The worker pool is sized to
// GOMAXPROCS; use NewPlannerModelWorkers to pin a count.
func NewPlannerModel(m *Model, d *dataset.Dataset, prevStep int) (*PlannerModel, error) {
	return NewPlannerModelWorkers(m, d, prevStep, 0)
}

// NewPlannerModelWorkers is NewPlannerModel with an explicit worker count
// for the calibration pass and subsequent map generation (par.Workers
// semantics: 1 is sequential, ≤ 0 means GOMAXPROCS).
func NewPlannerModelWorkers(m *Model, d *dataset.Dataset, prevStep, workers int) (*PlannerModel, error) {
	return sansCtx(func(ctx context.Context) (*PlannerModel, error) {
		return NewPlannerModelCtx(ctx, m, d, prevStep, workers)
	})
}

// NewPlannerModelCtx is NewPlannerModelWorkers under a context: the
// calibration sweep observes cancellation between batch chunks, so a dead
// context aborts construction instead of evaluating the whole sample.
func NewPlannerModelCtx(ctx context.Context, m *Model, d *dataset.Dataset, prevStep, workers int) (*PlannerModel, error) {
	if m == nil || d == nil {
		return nil, errors.New("paws: nil model or dataset")
	}
	if prevStep < 0 || prevStep >= len(d.Steps) {
		return nil, errors.New("paws: prevStep out of range")
	}
	n := d.Park.Grid.NumCells()
	nf := d.Park.NumFeatures()
	pm := &PlannerModel{model: m, Workers: workers, memo: make([]cellMemo, n)}
	pm.features = ml.NewMatrix(n, nf+1)
	for cell := 0; cell < n; cell++ {
		f := pm.features.Row(cell)
		d.Park.FeatureVector(cell, f[:nf])
		f[nf] = d.Effort[prevStep][cell]
	}
	// Calibrate the squashing on the park-wide variance distribution at a
	// moderate effort level: the 10th percentile maps to ~0 and the 90th to
	// ~0.96, so uncertainty scores use the full [0,1] range (Section VI-C).
	// The sample is evaluated in parallel batch chunks.
	stride := n/200 + 1
	var cells []int
	for cell := 0; cell < n; cell += stride {
		cells = append(cells, cell)
	}
	sample := ml.NewMatrix(len(cells), nf+1)
	for i, cell := range cells {
		copy(sample.Row(i), pm.features.Row(cell))
	}
	ps := make([]float64, len(cells))
	vs := make([]float64, len(cells))
	err := par.ForEachSliceCtx(ctx, pm.Workers, len(cells), mapChunkSize, func(lo, hi int) {
		pc, vc := m.PredictWithVarianceFlat(sample.Slice(lo, hi), calibrationEffort)
		copy(ps[lo:hi], pc)
		copy(vs[lo:hi], vc)
	})
	if err != nil {
		return nil, err
	}
	lo := stats.Percentile(vs, 10)
	hi := stats.Percentile(vs, 90)
	pm.squashLo = lo
	pm.squashScale = (hi - lo) / 4
	if pm.squashScale <= 1e-12 {
		pm.squashScale = 1
	}
	// The calibration sample already evaluated every strided cell at the
	// calibration effort; memoize those predictions (squashed with the scale
	// just fixed) so a subsequent map sweep at the same effort — the common
	// serving pattern — skips them instead of re-evaluating.
	for i, cell := range cells {
		pm.memo[cell].put(calibrationEffort, [2]float64{ps[i], iware.SquashVariance(vs[i]-pm.squashLo, pm.squashScale)})
	}
	return pm, nil
}

// calibrationEffort is the moderate effort level the squashing calibration
// evaluates its cell sample at (and memoizes, since variance percentiles are
// park properties, not per-request ones).
const calibrationEffort = 2

// Detect returns g_v(c): the model's detection probability for the cell at
// planned effort c.
func (pm *PlannerModel) Detect(cell int, effort float64) float64 {
	return pm.lookup(cell, effort)[0]
}

// Uncertainty returns the squashed uncertainty score ν_v(c) ∈ [0, 1).
func (pm *PlannerModel) Uncertainty(cell int, effort float64) float64 {
	return pm.lookup(cell, effort)[1]
}

func (pm *PlannerModel) lookup(cell int, effort float64) [2]float64 {
	if v, ok := pm.memo[cell].get(effort); ok {
		return v
	}
	// Compute outside the lock so concurrent lookups of different cells (or
	// breakpoints) never serialize on the model evaluation.
	p, variance := pm.model.PredictWithVariance(pm.features.Row(cell), effort)
	out := [2]float64{p, iware.SquashVariance(variance-pm.squashLo, pm.squashScale)}
	pm.memo[cell].put(effort, out)
	return out
}

// SquashScale returns the calibrated variance normalization constant.
func (pm *PlannerModel) SquashScale() float64 { return pm.squashScale }

// mapChunkSize is the batch-chunk granularity of the map sweeps: small
// enough that a canceled context stops a park-wide sweep promptly, large
// enough that the GP's batched back-substitution still amortizes its pass
// over the Cholesky factor. Chunk boundaries never change the floats (every
// batch path is row-independent), so this is purely a latency/cancellation
// knob. 128 rows also keep the flat per-chunk scratch (rows × GP subsample)
// inside L1/L2 for the columnar path — larger chunks measurably lose more to
// cache misses than they gain in amortized dispatch.
const mapChunkSize = 128

// evalInto evaluates every park cell at one effort, writing the detection
// probabilities and squashed uncertainties into the caller's preallocated
// column slices (each of length NumCells). Memoized entries are copied out
// first; the missing cells are gathered into flat chunk matrices and
// batch-evaluated in parallel (the chunk scratch is per-worker, the writes
// are index-owned, so output is identical for any worker count). Newly
// computed cells are memoized for the planner's subsequent pointwise
// lookups. The context is observed between chunks; on cancellation the
// partially written columns are invalid (memoized entries are kept — they
// are exact).
func (pm *PlannerModel) evalInto(ctx context.Context, effort float64, risk, unc []float64) error {
	n := pm.features.Rows
	var missing []int
	for cell := 0; cell < n; cell++ {
		if v, ok := pm.memo[cell].get(effort); ok {
			risk[cell] = v[0]
			unc[cell] = v[1]
		} else {
			missing = append(missing, cell)
		}
	}
	return par.ForEachSliceCtx(ctx, pm.Workers, len(missing), mapChunkSize, func(lo, hi int) {
		rows := ml.NewMatrix(hi-lo, pm.features.Cols)
		for k, cell := range missing[lo:hi] {
			copy(rows.Row(k), pm.features.Row(cell))
		}
		ps, vars := pm.model.PredictWithVarianceFlat(rows, effort)
		for k, cell := range missing[lo:hi] {
			v := [2]float64{ps[k], iware.SquashVariance(vars[k]-pm.squashLo, pm.squashScale)}
			risk[cell] = v[0]
			unc[cell] = v[1]
			pm.memo[cell].put(effort, v)
		}
	})
}

// RiskMap evaluates the model over every park cell at a nominal effort,
// returning the per-cell detection probabilities (Fig. 6 red maps).
func (pm *PlannerModel) RiskMap(effort float64) []float64 {
	out, _ := pm.RiskMapCtx(context.Background(), effort)
	return out
}

// RiskMapCtx is RiskMap under a context, observed between batch chunks: a
// canceled or expired context aborts the park sweep early with the
// context's error.
func (pm *PlannerModel) RiskMapCtx(ctx context.Context, effort float64) ([]float64, error) {
	risk, unc := make([]float64, pm.features.Rows), make([]float64, pm.features.Rows)
	if err := pm.evalInto(ctx, effort, risk, unc); err != nil {
		return nil, err
	}
	return risk, nil
}

// UncertaintyMap evaluates the squashed uncertainty over every park cell at
// a nominal effort (Fig. 6 green maps).
func (pm *PlannerModel) UncertaintyMap(effort float64) []float64 {
	out, _ := pm.UncertaintyMapCtx(context.Background(), effort)
	return out
}

// UncertaintyMapCtx is UncertaintyMap under a context, with RiskMapCtx's
// cancellation semantics.
func (pm *PlannerModel) UncertaintyMapCtx(ctx context.Context, effort float64) ([]float64, error) {
	risk, unc := make([]float64, pm.features.Rows), make([]float64, pm.features.Rows)
	if err := pm.evalInto(ctx, effort, risk, unc); err != nil {
		return nil, err
	}
	return unc, nil
}

// MapsCtx evaluates risk and uncertainty together in one park sweep — the
// serving fast path: both maps come from the same per-cell evaluation, so
// computing them jointly halves the model work of calling RiskMapCtx then
// UncertaintyMapCtx on a cold memo.
func (pm *PlannerModel) MapsCtx(ctx context.Context, effort float64) (risk, uncertainty []float64, err error) {
	risk = make([]float64, pm.features.Rows)
	uncertainty = make([]float64, pm.features.Rows)
	if err := pm.evalInto(ctx, effort, risk, uncertainty); err != nil {
		return nil, nil, err
	}
	return risk, uncertainty, nil
}

// RawVarianceMap returns the unsquashed predictive variance per cell at a
// nominal effort (used for the Fig. 7 correlation study). Raw variances are
// not memoized (the planner never queries them), so this always evaluates
// the full park in parallel chunks.
func (pm *PlannerModel) RawVarianceMap(effort float64) []float64 {
	out := make([]float64, pm.features.Rows)
	par.ForEachChunk(pm.Workers, pm.features.Rows, func(lo, hi int) {
		_, vars := pm.model.PredictWithVarianceFlat(pm.features.Slice(lo, hi), effort)
		copy(out[lo:hi], vars)
	})
	return out
}

// NominalEffort suggests a mid-range planning effort: the mean recorded
// point effort of the dataset, matching the paper's "prediction of the model
// at a nominal patrol effort, which the rangers will be likely able to
// achieve".
func NominalEffort(d *dataset.Dataset) float64 {
	pts := d.AllPoints()
	if len(pts) == 0 {
		return 1
	}
	var s float64
	for _, p := range pts {
		s += p.Effort
	}
	m := s / float64(len(pts))
	if m <= 0 || math.IsNaN(m) {
		return 1
	}
	return m
}
