// Command pawstables regenerates the tables of the paper:
//
//	pawstables -table 1                  # Table I dataset statistics
//	pawstables -table 2 -scale small     # Table II AUC sweep
//	pawstables -table 3                  # Table III field-test results
//
// Scale "full" uses the Table I-calibrated parks (slow but faithful);
// "small" uses reduced parks that preserve the qualitative structure.
// Sweeps run under a signal-aware context: Ctrl-C cancels mid-sweep
// (in-flight cells drain, nothing new starts).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"paws"
	"paws/internal/dataset"
)

func main() {
	table := flag.Int("table", 1, "table to regenerate: 1, 2 or 3")
	scaleStr := flag.String("scale", "small", "park scale: full or small")
	seed := flag.Int64("seed", 7, "root random seed")
	cvFolds := flag.Int("cv", 0, "iWare-E weight-optimization folds (0 = uniform weights)")
	workers := flag.Int("workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU); output is identical either way")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := paws.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	svc := paws.NewService(
		paws.WithSeed(*seed),
		paws.WithWorkers(*workers),
		paws.WithCVFolds(*cvFolds),
		paws.WithScale(scale),
	)
	switch *table {
	case 1:
		err = table1(ctx, svc)
	case 2:
		err = table2(ctx, svc, scale, *seed)
	case 3:
		err = table3(ctx, svc, scale)
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pawstables:", err)
	os.Exit(1)
}

func table1(ctx context.Context, svc *paws.Service) error {
	rows, err := svc.Table1(ctx)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TABLE I: About the datasets")
	fmt.Fprintln(w, "dataset\tfeatures\tcells\tpoints(6y)\tpositives\tpct positive\tavg effort (km/cell)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f%%\t%.2f\n",
			r.Name, r.NumFeatures, r.NumCells, r.NumPoints, r.NumPositive, r.PctPositive, r.AvgEffortKM)
	}
	return w.Flush()
}

func table2(ctx context.Context, svc *paws.Service, scale paws.Scale, seed int64) error {
	parks := []struct {
		name string
		dry  bool
	}{
		{"MFNP", false},
		{"QENP", false},
		{"SWS", false},
		{"SWS", true},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TABLE II: AUC of each model across all datasets")
	fmt.Fprintln(w, "dataset\tyear\tSVB\tDTB\tGPB\tSVB-iW\tDTB-iW\tGPB-iW")
	var all []paws.Table2Row
	for _, pk := range parks {
		sc, err := svc.Scenario(ctx, pk.name)
		if err != nil {
			return err
		}
		label := pk.name
		if pk.dry {
			label += " dry"
		}
		rows, err := svc.Table2(ctx, sc, label,
			paws.WithPreset(pk.name, scale),
			paws.WithDrySeason(pk.dry),
			paws.WithSeed(seed),
		)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		// Pivot rows per year.
		byYear := map[int]map[paws.ModelKind]float64{}
		for _, r := range rows {
			if byYear[r.TestYear] == nil {
				byYear[r.TestYear] = map[paws.ModelKind]float64{}
			}
			byYear[r.TestYear][r.Kind] = r.AUC
		}
		for y := dataset.BaseYear; y < dataset.BaseYear+10; y++ {
			m, ok := byYear[y]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				label, y, m[paws.SVB], m[paws.DTB], m[paws.GPB],
				m[paws.SVBiW], m[paws.DTBiW], m[paws.GPBiW])
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	sum := paws.SummarizeTable2(all)
	fmt.Printf("\nmean AUC without iWare-E: %.3f  with: %.3f  lift: %+.3f (paper: +0.100 avg)\n",
		sum.MeanAUCWithout, sum.MeanAUCWith, sum.Lift)
	return nil
}

func table3(ctx context.Context, svc *paws.Service, scale paws.Scale) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TABLE III: Field test results")
	fmt.Fprintln(w, "trial\trisk group\t# Obs\t# Cells\tEffort\t# Obs / # Cells")
	type trial struct {
		park      string
		blockSize int
		months    []int
	}
	for _, tr := range []trial{
		{"MFNP", 2, []int{2, 3}},
		{"SWS", 3, []int{2, 2}},
	} {
		sc, err := svc.Scenario(ctx, tr.park)
		if err != nil {
			return err
		}
		kind := paws.DTBiW
		effort := 2.5
		if tr.park == "SWS" {
			kind = paws.GPBiW
			// The SWS trials concentrated 72 rangers on 15 blocks — a much
			// higher per-cell intensity than routine patrolling.
			effort = 5
		}
		perGroup := 5
		if scale == paws.ScaleSmall {
			perGroup = 3 // small parks tile into few complete blocks per band
		}
		trials, err := svc.Table3(ctx, sc, tr.park, tr.blockSize, tr.months,
			paws.WithPreset(tr.park, scale),
			paws.WithKind(kind),
			paws.WithFieldProtocol(perGroup, effort),
		)
		if err != nil {
			return err
		}
		for _, trl := range trials {
			for _, g := range trl.Result.Groups {
				fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%.1f\t%.2f\n",
					trl.Name, g.Group, g.Observations, g.CellsVisited, g.EffortKM, g.ObsPerCell)
			}
			fmt.Fprintf(w, "%s\tchi-squared p = %.4f\t\t\t\t\n", trl.Name, trl.Result.ChiSq.PValue)
		}
	}
	return w.Flush()
}
