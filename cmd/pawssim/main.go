// Command pawssim runs the closed-loop patrol simulation: it plays patrol
// policies (the full PAWS pipeline vs uniform/historical/random baselines)
// against an adaptive poacher over multiple seasons and prints a per-season
// comparison report.
//
//	pawssim -seed 7 -seasons 3 -policies paws,uniform
//	pawssim -park rand:42 -seasons 4                  # procedural park
//	pawssim -park MFNP,QENP -attacker static          # sweep parks
//	pawssim -remote http://localhost:8080 …           # step via /v1/envs
//
// The report is deterministic: the same flags produce byte-identical output
// for any -workers value. With -remote, every policy still plans locally
// but executes its seasons against env sessions on a pawsd replica (or
// pawsgate fleet) — and the report stays byte-identical to the local run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"paws"
	"paws/internal/geo"
	"paws/internal/prof"
	"paws/internal/sim"
)

func main() {
	parks := flag.String("park", "MFNP", "comma-separated park specs: "+geo.SpecHelp)
	scaleStr := flag.String("scale", "small", "preset park scale: full or small")
	seed := flag.Int64("seed", 7, "root random seed")
	seasons := flag.Int("seasons", 4, "planning seasons to simulate")
	seasonMonths := flag.Int("season-months", 3, "months per season")
	bootstrap := flag.Int("bootstrap", 24, "historical months simulated before the loop")
	policiesStr := flag.String("policies", "paws,uniform,historical,random", "comma-separated policies to compare")
	attacker := flag.String("attacker", "adaptive", "poacher response model: static or adaptive")
	beta := flag.Float64("beta", 0.9, "robustness weight of the paws policy's planner")
	budget := flag.Float64("budget", 0, "patrol budget in km/month (0 = the park's ranger capacity)")
	kindStr := flag.String("kind", "DTB-iW", "model kind the paws policy retrains each season")
	workers := flag.Int("workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU)")
	remote := flag.String("remote", "", "base URL of a pawsd replica or pawsgate; seasons execute via /v1/envs sessions there")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	scale, err := paws.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	kind, err := paws.ParseModelKind(*kindStr)
	if err != nil {
		fatal(err)
	}
	svc := paws.NewService(
		paws.WithSeed(*seed),
		paws.WithScale(scale),
		paws.WithWorkers(*workers),
		paws.WithKind(kind),
	)
	cfg := paws.SimConfig{
		Seasons:         *seasons,
		SeasonMonths:    *seasonMonths,
		BootstrapMonths: *bootstrap,
		BudgetKM:        *budget,
		Policies:        splitList(*policiesStr),
		Beta:            *beta,
	}
	cfg.Attacker.Kind = *attacker
	for _, park := range splitList(*parks) {
		cfg.Park = park
		var rep *sim.Report
		if *remote != "" {
			rep, err = svc.SimulateRemote(ctx, *remote, nil, cfg)
		} else {
			rep, err = svc.Simulate(ctx, cfg)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Format())
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pawssim:", err)
	os.Exit(1)
}
