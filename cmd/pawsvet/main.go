// Command pawsvet runs the repository's determinism & hygiene analyzer
// suite (internal/lint) over the module containing the working
// directory, with vet-style output and a nonzero exit on findings.
//
// Usage:
//
//	pawsvet [-json] [-checks wallclock,maporder] [-list] [patterns...]
//
// Patterns select packages by module-relative directory: "./..." (the
// default) analyzes the whole module, "./internal/plan" one package,
// "./internal/ml/..." a subtree. Test files and testdata are never
// analyzed.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paws/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of vet-style text")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pawsvet [-json] [-checks names] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*jsonOut, *checksFlag, *list, flag.Args()))
}

func run(jsonOut bool, checksFlag string, list bool, patterns []string) int {
	if list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks := lint.Checks()
	if checksFlag != "" {
		byName := map[string]lint.Check{}
		for _, c := range checks {
			byName[c.Name] = c
		}
		checks = nil
		for _, name := range strings.Split(checksFlag, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "pawsvet: unknown check %q (see pawsvet -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pawsvet: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pawsvet: %v\n", err)
		return 2
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := selectPackages(mod, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pawsvet: %v\n", err)
		return 2
	}

	findings := lint.Run(pkgs, checks)
	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "pawsvet: %v\n", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectPackages filters the module's packages by the command-line
// patterns ("./...", "dir", "dir/...").
func selectPackages(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	match := func(rel string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(strings.TrimSpace(pat), "./")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "..." || pat == "" {
				return true
			}
			if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true
				}
				continue
			}
			if rel == pat {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, pkg := range mod.Pkgs {
		if match(pkg.Rel) {
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
