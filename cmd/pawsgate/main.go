// Command pawsgate fronts a fleet of pawsd replicas with routing that
// understands the API (see internal/gate):
//
//	pawsgate -addr :8080 \
//	  -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Cacheable riskmap/plan queries are rendezvous-hashed on their response
// cache key so repeat queries hit the same replica's LRU (-affinity=false
// degrades to round-robin, for measuring what affinity is worth); predict
// and discovery round-robin; job submissions go to the least-loaded
// replica (by its /statusz queue depth); job polls follow the replica
// that owns the job (from the ID's replica prefix). Replicas are health
// checked every -health-interval and taken out of rotation until they
// answer again; idempotent GETs that hit a dying replica are retried once
// elsewhere. GET /gatez reports the gate's own view of the fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"paws/internal/gate"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated pawsd replica base URLs (required)")
	affinity := flag.Bool("affinity", true, "route riskmap/plan by cache key for per-replica LRU affinity (false = round-robin)")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "replica /statusz poll cadence")
	flag.Parse()

	if err := run(*addr, *backends, *affinity, *healthInterval); err != nil {
		fmt.Fprintln(os.Stderr, "pawsgate:", err)
		os.Exit(1)
	}
}

func run(addr, backends string, affinity bool, healthInterval time.Duration) error {
	var urls []string
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	g, err := gate.New(gate.Config{
		Backends:       urls,
		Affinity:       affinity,
		HealthInterval: healthInterval,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go g.Run(ctx)

	healthy := 0
	for _, b := range g.Status().Backends {
		if b.Healthy {
			healthy++
		}
	}
	log.Printf("pawsgate on %s: %d/%d replicas healthy, affinity=%v", addr, healthy, len(urls), affinity)

	srv := &http.Server{
		Addr:              addr,
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
