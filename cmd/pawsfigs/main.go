// Command pawsfigs regenerates the figures of the paper as CSV series (and
// ASCII heatmaps for the map figures):
//
//	pawsfigs -fig 4            # positive rate vs patrol-effort percentile
//	pawsfigs -fig 6 -park MFNP # risk + uncertainty maps
//	pawsfigs -fig 7            # prediction-vs-variance correlations
//	pawsfigs -fig 8            # robust-planning ratio vs β and vs segments
//	pawsfigs -fig 9            # planner runtime and utility vs segments
//	pawsfigs -fig 10           # field-test obs/cell bar series
//
// Figures run under a signal-aware context: Ctrl-C cancels mid-sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"paws"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate: 4, 6, 7, 8, 9 or 10")
	park := flag.String("park", "MFNP", "park preset: MFNP, QENP or SWS")
	scaleStr := flag.String("scale", "small", "park scale: full or small")
	seed := flag.Int64("seed", 7, "root random seed")
	workers := flag.Int("workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU); output is identical either way")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := paws.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	svc := paws.NewService(
		paws.WithSeed(*seed),
		paws.WithWorkers(*workers),
		paws.WithScale(scale),
	)
	switch *fig {
	case 4:
		err = fig4(ctx, svc)
	case 6:
		err = fig6(ctx, svc, *park, scale)
	case 7:
		err = fig7(ctx, svc, *park, scale)
	case 8:
		err = fig8(ctx, svc, *park, scale)
	case 9:
		err = fig9(ctx, svc, *park, scale, *seed)
	case 10:
		err = fig10(ctx, svc, scale)
	default:
		err = fmt.Errorf("unknown figure %d", *fig)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pawsfigs:", err)
	os.Exit(1)
}

// lastYear returns the final simulated year of the scenario's dataset.
func lastYear(sc *paws.Scenario) int {
	steps := sc.Data.Steps
	return steps[len(steps)-1].Year
}

func fig4(ctx context.Context, svc *paws.Service) error {
	fmt.Println("FIG 4: % positive labels vs patrol-effort percentile")
	fmt.Println("park,percentile,train_rate,test_rate")
	for _, name := range []string{"MFNP", "QENP", "SWS"} {
		sc, err := svc.Scenario(ctx, name)
		if err != nil {
			return err
		}
		s, err := svc.Fig4(ctx, sc, name, lastYear(sc))
		if err != nil {
			return err
		}
		for i, p := range s.Percentiles {
			fmt.Printf("%s,%.0f,%.4f,%.4f\n", name, p, s.TrainRates[i], s.TestRates[i])
		}
	}
	return nil
}

func fig6(ctx context.Context, svc *paws.Service, park string, scale paws.Scale) error {
	sc, err := svc.Scenario(ctx, park)
	if err != nil {
		return err
	}
	maps, err := svc.Fig6(ctx, sc, lastYear(sc),
		paws.WithPreset(park, scale), paws.WithKind(paws.GPBiW))
	if err != nil {
		return err
	}
	fmt.Printf("FIG 6 (%s): historical patrol effort (3 train years)\n", park)
	fmt.Println(paws.RasterASCII(sc.Park, maps.HistEffort))
	fmt.Println("FIG 6: historical illegal activity detected")
	fmt.Println(paws.RasterASCII(sc.Park, maps.HistActivity))
	for k, e := range maps.EffortLevels {
		fmt.Printf("FIG 6: predicted detection probability at %.1f km effort\n", e)
		fmt.Println(paws.RasterASCII(sc.Park, maps.Risk[k]))
		fmt.Printf("FIG 6: prediction uncertainty at %.1f km effort\n", e)
		fmt.Println(paws.RasterASCII(sc.Park, maps.Uncertainty[k]))
	}
	return nil
}

func fig7(ctx context.Context, svc *paws.Service, park string, scale paws.Scale) error {
	sc, err := svc.Scenario(ctx, park)
	if err != nil {
		return err
	}
	res, err := svc.Fig7(ctx, sc, lastYear(sc), paws.WithPreset(park, scale))
	if err != nil {
		return err
	}
	fmt.Println("FIG 7: prediction vs uncertainty correlation")
	fmt.Printf("Gaussian process Pearson r      = %+.3f (paper: -0.198)\n", res.GPCorrelation)
	fmt.Printf("bagging decision trees Pearson r = %+.3f (paper: +0.979)\n", res.DTCorrelation)
	fmt.Println("\nmodel,prediction,variance")
	for i := range res.GPPredictions {
		fmt.Printf("GP,%.5f,%.5f\n", res.GPPredictions[i], res.GPVariances[i])
	}
	for i := range res.DTPredictions {
		fmt.Printf("DT,%.5f,%.5f\n", res.DTPredictions[i], res.DTVariances[i])
	}
	return nil
}

func planStudy(ctx context.Context, svc *paws.Service, park string, scale paws.Scale) (*paws.PlanStudy, error) {
	sc, err := svc.Scenario(ctx, park)
	if err != nil {
		return nil, err
	}
	opts := []paws.Option{
		paws.WithPreset(park, scale),
		paws.WithKind(paws.GPBiW),
		paws.WithTestYears(lastYear(sc)),
	}
	if scale == paws.ScaleSmall {
		opts = append(opts,
			paws.WithPosts(3),
			paws.WithPlanHorizon(0, 0, 8),
			paws.WithSegmentCounts(5, 10, 15, 20, 25),
		)
	}
	return svc.PlanStudy(ctx, sc, opts...)
}

func fig8(ctx context.Context, svc *paws.Service, park string, scale paws.Scale) error {
	ps, err := planStudy(ctx, svc, park, scale)
	if err != nil {
		return err
	}
	beta, err := ps.RunFig8BetaCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("FIG 8(a-c) %s: solution-quality ratio vs beta\n", park)
	fmt.Println("beta,avg_ratio,max_ratio")
	for _, pt := range beta {
		fmt.Printf("%.2f,%.4f,%.4f\n", pt.Beta, pt.Avg, pt.Max)
	}
	segs, err := ps.RunFig8SegmentsCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nFIG 8(d-f) %s: solution-quality ratio vs PWL segments (beta=1)\n", park)
	fmt.Println("segments,avg_ratio,max_ratio")
	for _, pt := range segs {
		fmt.Printf("%d,%.4f,%.4f\n", pt.Segments, pt.Avg, pt.Max)
	}
	return nil
}

func fig9(ctx context.Context, svc *paws.Service, park string, scale paws.Scale, seed int64) error {
	ps, err := planStudy(ctx, svc, park, scale)
	if err != nil {
		return err
	}
	pts, err := ps.RunFig9Ctx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("FIG 9 %s: planner runtime and utility vs PWL segments\n", park)
	fmt.Println("segments,runtime,utility,bb_nodes")
	for _, pt := range pts {
		fmt.Printf("%d,%s,%.4f,%d\n", pt.Segments, paws.FormatDuration(pt.Runtime), pt.Utility, pt.Nodes)
	}
	gain, err := ps.RunDetectionGainCtx(ctx, 12, seed)
	if err != nil {
		return err
	}
	fmt.Printf("\nrobust vs blind detections over 12 months: %d vs %d (factor %.2f)\n",
		gain.RobustDetections, gain.BlindDetections, gain.Factor)
	fmt.Println("note: the paper's \"30% more detections\" measures the robust-objective")
	fmt.Println("gain of Fig 8; this ground-truth simulation is an additional, stricter test.")
	return nil
}

func fig10(ctx context.Context, svc *paws.Service, scale paws.Scale) error {
	fmt.Println("FIG 10: detected poaching per cell patrolled by risk group")
	fmt.Println("trial,group,obs_per_cell")
	type trial struct {
		park      string
		blockSize int
		months    []int
	}
	for _, tr := range []trial{
		{"MFNP", 2, []int{2, 3}},
		{"SWS", 3, []int{2, 2}},
	} {
		sc, err := svc.Scenario(ctx, tr.park)
		if err != nil {
			return err
		}
		kind := paws.DTBiW
		effort := 2.5
		if tr.park == "SWS" {
			kind = paws.GPBiW
			// The SWS trials concentrated 72 rangers on 15 blocks — a much
			// higher per-cell intensity than routine patrolling.
			effort = 5
		}
		perGroup := 5
		if scale == paws.ScaleSmall {
			perGroup = 3 // small parks tile into few complete blocks per band
		}
		trials, err := svc.Table3(ctx, sc, tr.park, tr.blockSize, tr.months,
			paws.WithPreset(tr.park, scale),
			paws.WithKind(kind),
			paws.WithFieldProtocol(perGroup, effort),
		)
		if err != nil {
			return err
		}
		for _, trl := range trials {
			for _, g := range trl.Result.Groups {
				fmt.Printf("%s,%v,%.3f\n", trl.Name, g.Group, g.ObsPerCell)
			}
		}
	}
	return nil
}
