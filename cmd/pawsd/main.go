// Command pawsd serves a trained PAWS model over JSON/HTTP: batched
// detection-probability predictions, park-wide risk maps (LRU-cached),
// robust patrol plans, and an async job API for the long-running work
// (multi-season simulations, remote training, experiment sweeps).
//
//	pawsd -train -model mfnp.paws                # train, persist, serve
//	pawsd -model mfnp.paws                       # serve a persisted model
//	pawsd -kind DTB-iW -park SWS -scale full …   # pick model and park
//	pawsd … -job-workers 2 -job-ttl 30m          # tune the job layer
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/predict \
//	     -d '{"model":"default","effort":1.5,"cells":[0,1,2]}'
//	curl -s 'localhost:8080/v1/riskmap?model=default&effort=2'
//	curl -s -X POST localhost:8080/v1/plan \
//	     -d '{"model":"default","post":0,"beta":0.9}'
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"kind":"simulate","simulate":{"park":"rand:16","seasons":6}}'
//	curl -sN localhost:8080/v1/jobs/j-000001/events   # NDJSON stream
//	curl -s localhost:8080/v1/jobs/j-000001/result
//
// Stepped environment sessions (/v1/envs) expose the closed-loop
// simulation season by season: create a session with a park spec and seed,
// POST per-cell effort allocations to …/step, and read back each season's
// outcome — the remote half of internal/env. -env-ttl and
// -env-max-sessions bound retention; creates beyond the bound shed with
// 429 + Retry-After.
//
// # Fleet mode
//
// N replicas share one on-disk model store (-store DIR, typically on a
// shared filesystem) and sit behind the pawsgate routing proxy:
//
//	pawsd -replica a -store /srv/paws/models -train -addr :8081
//	pawsd -replica b -store /srv/paws/models -addr :8082   # store-only
//	pawsgate -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
// A replica started with -store and neither -model nor -train serves
// purely from the store: it registers every published model (regenerating
// each serving context deterministically from the store entry's
// park/scale/seed) and polls the index (-store-poll) for new publications.
// Train jobs publish their results to the store, so a model trained via
// any replica becomes servable by every replica within one poll interval.
// -replica namespaces job IDs ("j-a-000001") so the gate can route job
// polls to the replica that owns the job, and GET /statusz reports queue
// depth and admission state for the gate's least-loaded routing.
// -admission-budget and -admission-max-queue shed job submissions with
// 429 + Retry-After once the estimated backlog exceeds the budget.
//
// On SIGINT/SIGTERM the HTTP listener stops first, then the job layer
// drains: running and queued jobs finish (bounded by -drain), so a
// graceful restart never abandons accepted work mid-run.
//
// The persisted model file stores only the model; the serving context (park
// features and patrol-coverage covariate) is regenerated deterministically
// from -park/-scale/-seed, so serve a model file with the same flags it was
// trained under. Only a feature-width mismatch is detected and rejected at
// startup — a different seed or a same-width park regenerates silently
// different feature vectors, so matching the flags is the operator's
// responsibility.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers, served only on the opt-in -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"paws"
	"paws/internal/serve"
	"paws/internal/store"
)

// options collects pawsd's flag values.
type options struct {
	addr, name, park, scaleStr, kindStr, modelPath string
	seed                                           int64
	train                                          bool
	trainYears, cvFolds, workers                   int
	timeout                                        time.Duration
	cacheSize                                      int
	jobWorkers                                     int
	jobTTL                                         time.Duration
	jobRetain                                      int
	drain                                          time.Duration

	// Env sessions.
	envTTL         time.Duration
	envMaxSessions int

	// Fleet mode.
	storeDir          string
	storePoll         time.Duration
	replica           string
	admissionBudget   time.Duration
	admissionMaxQueue int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.name, "name", "default", "name the model is served under")
	flag.StringVar(&o.park, "park", "MFNP", "park preset: MFNP, QENP or SWS")
	flag.StringVar(&o.scaleStr, "scale", "small", "park scale: full or small")
	flag.Int64Var(&o.seed, "seed", 7, "root random seed")
	flag.StringVar(&o.kindStr, "kind", "GPB-iW", "model kind: SVB, DTB, GPB, SVB-iW, DTB-iW or GPB-iW")
	flag.StringVar(&o.modelPath, "model", "", "persisted model file to serve; with -train, where to save a freshly trained one")
	flag.BoolVar(&o.train, "train", false, "train a model if -model is missing or unset")
	flag.IntVar(&o.trainYears, "train-years", 3, "training window in years (training holds out the final simulated year)")
	flag.IntVar(&o.cvFolds, "cv", 0, "iWare-E weight-optimization folds (0 = uniform weights)")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline (0 = none)")
	flag.IntVar(&o.cacheSize, "cache", 64, "risk-map LRU cache entries (negative disables)")
	flag.IntVar(&o.jobWorkers, "job-workers", 4, "concurrently running async jobs (negative = one per CPU)")
	flag.DurationVar(&o.jobTTL, "job-ttl", 15*time.Minute, "how long finished job results are retained")
	flag.IntVar(&o.jobRetain, "job-retain", 64, "max finished jobs retained (oldest evicted first)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
	flag.DurationVar(&o.envTTL, "env-ttl", 15*time.Minute, "how long idle env sessions are retained (negative disables)")
	flag.IntVar(&o.envMaxSessions, "env-max-sessions", 64, "max retained env sessions (creates beyond it are shed with 429)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /statusz on this address (e.g. localhost:6060); empty disables")
	flag.StringVar(&o.storeDir, "store", "", "shared fleet model store directory; with neither -model nor -train, serve purely from the store")
	flag.DurationVar(&o.storePoll, "store-poll", time.Second, "how often to poll the store index for new publications")
	flag.StringVar(&o.replica, "replica", "", "replica ID in a fleet (namespaces job IDs, reported by /statusz)")
	flag.DurationVar(&o.admissionBudget, "admission-budget", 0, "job-backlog budget: estimated backlog beyond this rejects submissions with 429 (0 disables)")
	flag.IntVar(&o.admissionMaxQueue, "admission-max-queue", 0, "queue-depth bound: this many queued jobs rejects submissions with 429 (0 disables)")
	flag.Parse()

	if *pprofAddr != "" {
		// The profiling handlers (and /statusz, registered by run) live on
		// http.DefaultServeMux, which the API server never touches, so they
		// are reachable only via this listener.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "pawsd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := paws.ParseScale(o.scaleStr)
	if err != nil {
		return err
	}
	kind, err := paws.ParseModelKind(o.kindStr)
	if err != nil {
		return err
	}
	svc := paws.NewService(
		paws.WithWorkers(o.workers),
		paws.WithSeed(o.seed),
		paws.WithKind(kind),
		paws.WithPreset(o.park, scale),
		paws.WithCVFolds(o.cvFolds),
		paws.WithTrainYears(o.trainYears),
	)

	storeOnly := o.storeDir != "" && o.modelPath == "" && !o.train
	if o.storeDir != "" {
		st, err := store.Open(o.storeDir)
		if err != nil {
			return err
		}
		svc.AttachStore(st)
		log.Printf("fleet store attached at %s", o.storeDir)
	}
	if o.storeDir == "" && o.modelPath == "" && !o.train {
		return errors.New("nothing to serve: pass -model with a persisted model, -train, or -store with a fleet store")
	}

	if !storeOnly {
		if err := registerStartupModel(ctx, svc, o, kind); err != nil {
			return err
		}
	}

	// With a store attached, every replica — including the one that just
	// trained — syncs: models published by peers become servable here
	// within one poll interval.
	if o.storeDir != "" {
		syncer, err := paws.NewStoreSyncer(svc)
		if err != nil {
			return err
		}
		n, err := syncer.SyncOnce(ctx)
		if err != nil {
			log.Printf("initial store sync: %v", err)
		}
		log.Printf("store sync registered %d models (%d served total)", n, len(svc.ModelNames()))
		go syncer.Run(ctx, o.storePoll, func(err error) { log.Printf("store sync: %v", err) })
	}

	log.Printf("serving %d models on %s (replica %q)", len(svc.ModelNames()), o.addr, o.replica)
	handler := serve.New(svc, serve.Config{
		RequestTimeout:    o.timeout,
		RiskMapCacheSize:  o.cacheSize,
		JobWorkers:        o.jobWorkers,
		JobResultTTL:      o.jobTTL,
		JobMaxRetained:    o.jobRetain,
		ReplicaID:         o.replica,
		AdmissionBudget:   o.admissionBudget,
		AdmissionMaxQueue: o.admissionMaxQueue,
		EnvTTL:            o.envTTL,
		EnvMaxSessions:    o.envMaxSessions,
	})
	// /statusz, /metricsz and /tracez ride the -pprof debug listener too,
	// so operators can check a replica's load, scrape its metrics and read
	// its trace ring without going through the serving port (or the gate).
	http.DefaultServeMux.Handle("GET /statusz", handler.StatuszHandler())
	http.DefaultServeMux.Handle("GET /metricsz", handler.MetricsHandler())
	http.DefaultServeMux.Handle("GET /tracez", handler.TracezHandler())

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// An open event stream on a running job legitimately outlives the
		// HTTP shutdown budget (the handler returns when the job ends), so
		// a Shutdown error must not skip the job drain — jobs are the work
		// we promised not to abandon.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v (draining jobs anyway)", err)
		}
		// Drain the job layer after the listener stops: running and queued
		// jobs finish; past the drain budget they are canceled and awaited.
		log.Printf("draining jobs (budget %s)", o.drain)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), o.drain)
		defer cancelDrain()
		if err := handler.Close(drainCtx); err != nil {
			log.Printf("job drain expired: remaining jobs canceled (%v)", err)
		}
		return nil
	}
}

// registerStartupModel builds the startup serving context (scenario →
// train or load → register) and, with a store attached, publishes the
// model to the fleet.
func registerStartupModel(ctx context.Context, svc *paws.Service, o options, kind paws.ModelKind) error {
	log.Printf("generating %s scenario (scale=%s seed=%d)", o.park, o.scaleStr, o.seed)
	sc, err := svc.Scenario(ctx, o.park)
	if err != nil {
		return err
	}
	testYear := sc.Data.Steps[len(sc.Data.Steps)-1].Year

	var model *paws.Model
	if o.modelPath != "" {
		if _, statErr := os.Stat(o.modelPath); statErr == nil {
			log.Printf("loading persisted model from %s", o.modelPath)
			model, err = paws.LoadModelFile(o.modelPath)
			if err != nil {
				return err
			}
		} else if !o.train {
			return fmt.Errorf("model file %s does not exist (pass -train to train and save one)", o.modelPath)
		}
	}
	if model == nil {
		split, err := sc.Data.SplitByTestYear(testYear, o.trainYears)
		if err != nil {
			return err
		}
		log.Printf("training %v on %d points (%d-year window before %d)", kind, len(split.Train), o.trainYears, testYear)
		start := time.Now()
		model, err = svc.Train(ctx, split.Train)
		if err != nil {
			return err
		}
		log.Printf("trained in %s", time.Since(start).Round(time.Millisecond))
		if o.modelPath != "" {
			if err := model.SaveFile(o.modelPath); err != nil {
				return err
			}
			log.Printf("persisted model to %s", o.modelPath)
		}
	}

	// Freeze the serving context at the last pre-test step, mirroring how
	// the experiments build their planner models.
	testFrom, _ := sc.Data.StepsForYear(testYear)
	if _, err := svc.AddModel(ctx, o.name, model, sc.Data, testFrom-1); err != nil {
		return err
	}
	log.Printf("serving model %q (%v, %d park cells)", o.name, model.Kind, sc.Park.Grid.NumCells())

	if st := svc.ModelStore(); st != nil {
		// Skip the publish when the store already holds these exact bytes
		// under this name — a replica restart must not bump the generation
		// and make every peer re-register an unchanged model.
		blob, err := model.SaveBytes()
		if err != nil {
			return err
		}
		if cur, err := st.Lookup(o.name); err == nil && cur.Hash == store.HashBytes(blob) {
			log.Printf("model %q already published (hash %.12s, generation %d)", o.name, cur.Hash, cur.Generation)
			return nil
		}
		entry, err := svc.PublishModel(o.name, paws.StoreMeta{Park: o.park, Scale: o.scaleStr, Seed: o.seed})
		if err != nil {
			return err
		}
		log.Printf("published model %q to the fleet store (hash %.12s, generation %d)", o.name, entry.Hash, entry.Generation)
	}
	return nil
}
