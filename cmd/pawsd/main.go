// Command pawsd serves a trained PAWS model over JSON/HTTP: batched
// detection-probability predictions, park-wide risk maps (LRU-cached),
// robust patrol plans, and an async job API for the long-running work
// (multi-season simulations, remote training, experiment sweeps).
//
//	pawsd -train -model mfnp.paws                # train, persist, serve
//	pawsd -model mfnp.paws                       # serve a persisted model
//	pawsd -kind DTB-iW -park SWS -scale full …   # pick model and park
//	pawsd … -job-workers 2 -job-ttl 30m          # tune the job layer
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/predict \
//	     -d '{"model":"default","effort":1.5,"cells":[0,1,2]}'
//	curl -s 'localhost:8080/v1/riskmap?model=default&effort=2'
//	curl -s -X POST localhost:8080/v1/plan \
//	     -d '{"model":"default","post":0,"beta":0.9}'
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"kind":"simulate","simulate":{"park":"rand:16","seasons":6}}'
//	curl -sN localhost:8080/v1/jobs/j-000001/events   # NDJSON stream
//	curl -s localhost:8080/v1/jobs/j-000001/result
//
// On SIGINT/SIGTERM the HTTP listener stops first, then the job layer
// drains: running and queued jobs finish (bounded by -drain), so a
// graceful restart never abandons accepted work mid-run.
//
// The persisted model file stores only the model; the serving context (park
// features and patrol-coverage covariate) is regenerated deterministically
// from -park/-scale/-seed, so serve a model file with the same flags it was
// trained under. Only a feature-width mismatch is detected and rejected at
// startup — a different seed or a same-width park regenerates silently
// different feature vectors, so matching the flags is the operator's
// responsibility.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers, served only on the opt-in -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"paws"
	"paws/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	name := flag.String("name", "default", "name the model is served under")
	park := flag.String("park", "MFNP", "park preset: MFNP, QENP or SWS")
	scaleStr := flag.String("scale", "small", "park scale: full or small")
	seed := flag.Int64("seed", 7, "root random seed")
	kindStr := flag.String("kind", "GPB-iW", "model kind: SVB, DTB, GPB, SVB-iW, DTB-iW or GPB-iW")
	modelPath := flag.String("model", "", "persisted model file to serve; with -train, where to save a freshly trained one")
	train := flag.Bool("train", false, "train a model if -model is missing or unset")
	trainYears := flag.Int("train-years", 3, "training window in years (training holds out the final simulated year)")
	cvFolds := flag.Int("cv", 0, "iWare-E weight-optimization folds (0 = uniform weights)")
	workers := flag.Int("workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
	cacheSize := flag.Int("cache", 64, "risk-map LRU cache entries (negative disables)")
	jobWorkers := flag.Int("job-workers", 4, "concurrently running async jobs (negative = one per CPU)")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "how long finished job results are retained")
	jobRetain := flag.Int("job-retain", 64, "max finished jobs retained (oldest evicted first)")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	if *pprofAddr != "" {
		// The profiling handlers live on http.DefaultServeMux, which the API
		// server never touches, so they are reachable only via this listener.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	if err := run(*addr, *name, *park, *scaleStr, *kindStr, *modelPath,
		*seed, *train, *trainYears, *cvFolds, *workers, *timeout, *cacheSize,
		*jobWorkers, *jobTTL, *jobRetain, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "pawsd:", err)
		os.Exit(1)
	}
}

func run(addr, name, park, scaleStr, kindStr, modelPath string,
	seed int64, train bool, trainYears, cvFolds, workers int,
	timeout time.Duration, cacheSize int,
	jobWorkers int, jobTTL time.Duration, jobRetain int, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := paws.ParseScale(scaleStr)
	if err != nil {
		return err
	}
	kind, err := paws.ParseModelKind(kindStr)
	if err != nil {
		return err
	}
	svc := paws.NewService(
		paws.WithWorkers(workers),
		paws.WithSeed(seed),
		paws.WithKind(kind),
		paws.WithPreset(park, scale),
		paws.WithCVFolds(cvFolds),
		paws.WithTrainYears(trainYears),
	)

	log.Printf("generating %s scenario (scale=%s seed=%d)", park, scaleStr, seed)
	sc, err := svc.Scenario(ctx, park)
	if err != nil {
		return err
	}
	testYear := sc.Data.Steps[len(sc.Data.Steps)-1].Year

	var model *paws.Model
	switch {
	case modelPath != "":
		if _, statErr := os.Stat(modelPath); statErr == nil {
			log.Printf("loading persisted model from %s", modelPath)
			model, err = paws.LoadModelFile(modelPath)
			if err != nil {
				return err
			}
		} else if !train {
			return fmt.Errorf("model file %s does not exist (pass -train to train and save one)", modelPath)
		}
	case !train:
		return errors.New("nothing to serve: pass -model with a persisted model, or -train")
	}
	if model == nil {
		split, err := sc.Data.SplitByTestYear(testYear, trainYears)
		if err != nil {
			return err
		}
		log.Printf("training %v on %d points (%d-year window before %d)", kind, len(split.Train), trainYears, testYear)
		start := time.Now()
		model, err = svc.Train(ctx, split.Train)
		if err != nil {
			return err
		}
		log.Printf("trained in %s", time.Since(start).Round(time.Millisecond))
		if modelPath != "" {
			if err := model.SaveFile(modelPath); err != nil {
				return err
			}
			log.Printf("persisted model to %s", modelPath)
		}
	}

	// Freeze the serving context at the last pre-test step, mirroring how
	// the experiments build their planner models.
	testFrom, _ := sc.Data.StepsForYear(testYear)
	if _, err := svc.AddModel(ctx, name, model, sc.Data, testFrom-1); err != nil {
		return err
	}
	log.Printf("serving model %q (%v, %d park cells) on %s", name, model.Kind, sc.Park.Grid.NumCells(), addr)

	handler := serve.New(svc, serve.Config{
		RequestTimeout:   timeout,
		RiskMapCacheSize: cacheSize,
		JobWorkers:       jobWorkers,
		JobResultTTL:     jobTTL,
		JobMaxRetained:   jobRetain,
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// An open event stream on a running job legitimately outlives the
		// HTTP shutdown budget (the handler returns when the job ends), so
		// a Shutdown error must not skip the job drain — jobs are the work
		// we promised not to abandon.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v (draining jobs anyway)", err)
		}
		// Drain the job layer after the listener stops: running and queued
		// jobs finish; past the drain budget they are canceled and awaited.
		log.Printf("draining jobs (budget %s)", drain)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), drain)
		defer cancelDrain()
		if err := handler.Close(drainCtx); err != nil {
			log.Printf("job drain expired: remaining jobs canceled (%v)", err)
		}
		return nil
	}
}
