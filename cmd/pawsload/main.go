// Command pawsload drives a deterministic mixed workload (predict /
// riskmap / plan / async jobs / env episodes) against a pawsd replica or a pawsgate
// front-end and records per-endpoint latency percentiles plus the
// riskmap cache hit rate into a labeled BENCH_load.json:
//
//	pawsload -target http://127.0.0.1:8081 -label 1-replica \
//	  -rate 40 -duration 15s -out BENCH_load.json
//	pawsload -target http://127.0.0.1:8080 -label 3-replica \
//	  -rate 40 -duration 15s -out BENCH_load.json
//
// The same -seed produces the same op sequence, so two labels differ
// only in the deployment they hit — that is the whole point: compare
// one replica vs three behind pawsgate, or the gate with -affinity on
// vs off, on identical work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"paws/internal/load"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the pawsd replica or pawsgate to drive")
	label := flag.String("label", "", "run label in the bench file (default: target URL)")
	rate := flag.Float64("rate", 20, "target request rate per second")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	concurrency := flag.Int("concurrency", 8, "max in-flight requests")
	seed := flag.Int64("seed", 1, "op-sequence seed (same seed = same workload)")
	model := flag.String("model", "", "model to drive (default: first from /v1/models)")
	mix := flag.String("mix", "predict=5,riskmap=5,plan=1,job=1,env=1", "op mix as endpoint=weight pairs")
	efforts := flag.String("efforts", "1,1.5,2,2.5", "discrete effort set for riskmap/predict draws")
	out := flag.String("out", "BENCH_load.json", "bench file to merge this run into (\"-\" = stdout only)")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fail(err)
	}
	effortSet, err := parseEfforts(*efforts)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := load.Run(ctx, load.Config{
		BaseURL:     strings.TrimRight(*target, "/"),
		Label:       *label,
		Rate:        *rate,
		Duration:    *duration,
		Concurrency: *concurrency,
		Seed:        *seed,
		Model:       *model,
		Efforts:     effortSet,
		Weights:     weights,
	})
	if err != nil {
		fail(err)
	}

	report(res)
	if *out != "-" {
		if err := load.MergeInto(*out, res); err != nil {
			fail(err)
		}
		fmt.Printf("merged run %q into %s\n", res.Label, *out)
	}
}

func report(res load.Result) {
	fmt.Printf("pawsload %s: %.1fs, %.1f req/s achieved (target %.1f), model %s\n",
		res.Label, res.DurationSeconds, res.AchievedRPS, res.TargetRate, res.Model)
	kinds := make([]string, 0, len(res.Endpoints))
	for k := range res.Endpoints {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := res.Endpoints[k]
		fmt.Printf("  %-8s n=%-5d err=%-3d shed=%-3d p50=%8.1fms p95=%8.1fms p99=%8.1fms\n",
			k, st.Requests, st.Errors, st.Shed, st.P50MS, st.P95MS, st.P99MS)
		for _, sl := range st.Slowest {
			fmt.Printf("           slowest %8.1fms trace=%s\n", sl.LatencyMS, sl.TraceID)
		}
	}
	fmt.Printf("  riskmap cache hit rate: %.1f%%\n", res.RiskMapCacheHitRate*100)
}

func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"predict": true, "riskmap": true, "plan": true, "job": true, "env": true}
	weights := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad -mix entry %q (want predict/riskmap/plan/job/env=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", pair)
		}
		weights[name] = w
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return weights, nil
}

func parseEfforts(s string) ([]float64, error) {
	var out []float64
	for _, v := range strings.Split(s, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		e, err := strconv.ParseFloat(v, 64)
		if err != nil || e <= 0 {
			return nil, fmt.Errorf("bad -efforts value %q", v)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -efforts")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pawsload:", err)
	os.Exit(1)
}
