// Command pawsgen generates a synthetic park with its simulated SMART-style
// patrol history and exports the processed dataset:
//
//	pawsgen -park SWS -out ./out          # points.csv, effort.csv, maps
//	pawsgen -park MFNP -raster effort     # ASCII patrol-effort map (Fig 3)
//	pawsgen -park rand:42                 # procedurally generated park
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"paws"
	"paws/internal/geo"
)

func main() {
	park := flag.String("park", "MFNP", "park spec: "+geo.SpecHelp)
	scaleStr := flag.String("scale", "small", "preset park scale: full or small (rand:<seed> parks ignore it)")
	seed := flag.Int64("seed", 7, "root random seed")
	out := flag.String("out", "", "output directory for CSV export (empty = stdout summary only)")
	raster := flag.String("raster", "", "print an ASCII raster: effort, activity or elevation")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := paws.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	svc := paws.NewService(paws.WithSeed(*seed), paws.WithScale(scale))
	sc, err := svc.Scenario(ctx, *park)
	if err != nil {
		fatal(err)
	}

	stats := sc.Data.TableIStats(*park)
	fmt.Printf("park %s: %d cells, %d features, %d points, %d positives (%.2f%%), avg effort %.2f km/cell\n",
		*park, stats.NumCells, stats.NumFeatures, stats.NumPoints,
		stats.NumPositive, stats.PctPositive, stats.AvgEffortKM)
	fmt.Printf("history: %d months, %d waypoints, %d observations, %d patrol posts\n",
		sc.History.Months, len(sc.History.Waypoints), len(sc.History.Observations), len(sc.Park.Posts))

	if *raster != "" {
		n := sc.Park.Grid.NumCells()
		values := make([]float64, n)
		switch *raster {
		case "effort":
			values = sc.History.TotalEffort(0, sc.History.Months)
		case "activity":
			for t := range sc.Data.Steps {
				for cell := 0; cell < n; cell++ {
					if sc.Data.Label[t][cell] {
						values[cell]++
					}
				}
			}
		case "elevation":
			copy(values, sc.Park.Elevation.V)
		default:
			fatal(fmt.Errorf("unknown raster %q", *raster))
		}
		fmt.Println(paws.RasterASCII(sc.Park, values))
	}

	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	pointsPath := filepath.Join(*out, "points.csv")
	f, err := os.Create(pointsPath)
	if err != nil {
		fatal(err)
	}
	if err := sc.Data.WritePointsCSV(f, sc.Data.AllPoints()); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	effortPath := filepath.Join(*out, "effort.csv")
	f2, err := os.Create(effortPath)
	if err != nil {
		fatal(err)
	}
	if err := sc.Data.WriteRasterCSV(f2, sc.History.TotalEffort(0, sc.History.Months)); err != nil {
		fatal(err)
	}
	if err := f2.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", pointsPath, effortPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pawsgen:", err)
	os.Exit(1)
}
