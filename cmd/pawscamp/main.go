// Command pawscamp runs a campaign: a deterministic sweep over a grid of
// parks × replicate seeds × season counts, every cell a closed-loop
// simulation comparing the same patrol policies under common random
// numbers, aggregated into paired per-park policy deltas with 95% bootstrap
// confidence intervals — the paper's Table III-style "PAWS beats the status
// quo" conclusion as one command.
//
//	pawscamp -parks rand:16,rand:8 -seeds 1,2,3 -seasons 2
//	pawscamp -parks rand:1-4 -policies paws,uniform,random   # procedural range
//	pawscamp -parks MFNP -seasons 2,4 -json report.json      # season-count grid
//
// The printed table (and the JSON report) is byte-identical for any
// -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"paws"
	"paws/internal/prof"
)

func main() {
	parks := flag.String("parks", "MFNP", "comma-separated park specs; rand:<lo>-<hi> ranges expand")
	policiesStr := flag.String("policies", "paws,uniform", "comma-separated policies to compare")
	seedsStr := flag.String("seeds", "1,2,3", "comma-separated replicate seeds (one paired observation per seed)")
	seasonsStr := flag.String("seasons", "4", "comma-separated season counts of the grid")
	seasonMonths := flag.Int("season-months", 3, "months per season")
	bootstrap := flag.Int("bootstrap", 24, "historical months simulated before each loop")
	attacker := flag.String("attacker", "adaptive", "poacher response model: static or adaptive")
	beta := flag.Float64("beta", 0.9, "robustness weight of the paws policy's planner")
	budget := flag.Float64("budget", 0, "patrol budget in km/month (0 = each park's ranger capacity)")
	baseline := flag.String("baseline", "", "baseline policy of the paired deltas (default: uniform when present)")
	resamples := flag.Int("resamples", 2000, "bootstrap resamples of the delta confidence intervals")
	scaleStr := flag.String("scale", "small", "preset park scale: full or small")
	kindStr := flag.String("kind", "DTB-iW", "model kind the paws policy retrains each season")
	workers := flag.Int("workers", 0, "worker goroutines (1 = sequential, 0 = one per CPU)")
	jsonPath := flag.String("json", "", "also write the full report as JSON to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	scale, err := paws.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	kind, err := paws.ParseModelKind(*kindStr)
	if err != nil {
		fatal(err)
	}
	seeds, err := parseInt64List(*seedsStr)
	if err != nil {
		fatal(fmt.Errorf("-seeds: %w", err))
	}
	seasons, err := parseIntList(*seasonsStr)
	if err != nil {
		fatal(fmt.Errorf("-seasons: %w", err))
	}
	svc := paws.NewService(
		paws.WithScale(scale),
		paws.WithWorkers(*workers),
		paws.WithKind(kind),
	)
	cfg := paws.CampaignConfig{
		Parks:           splitList(*parks),
		Policies:        splitList(*policiesStr),
		Seeds:           seeds,
		SeasonCounts:    seasons,
		SeasonMonths:    *seasonMonths,
		BootstrapMonths: *bootstrap,
		BudgetKM:        *budget,
		Beta:            *beta,
		Baseline:        *baseline,
		Resamples:       *resamples,
	}
	cfg.Attacker.Kind = *attacker
	rep, err := svc.Campaign(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Format())
	if *jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pawscamp: wrote %s\n", *jsonPath)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func parseInt64List(s string) ([]int64, error) {
	var out []int64
	for _, v := range splitList(s) {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", v)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseIntList(s string) ([]int, error) {
	ns, err := parseInt64List(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = int(n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pawscamp:", err)
	os.Exit(1)
}
