package paws

import (
	"context"
	"fmt"
	"math"
	"sort"

	"paws/internal/dataset"
	"paws/internal/geo"
	"paws/internal/obs"
	"paws/internal/par"
	"paws/internal/plan"
	"paws/internal/poach"
	"paws/internal/rng"
	"paws/internal/sim"
)

// SimConfig configures Service.Simulate: a closed-loop, multi-season patrol
// simulation (internal/sim) comparing patrol policies head-to-head on one
// park. Zero values select defaults; the park spec, seed, scale, model kind
// and worker count come from the Service options as usual.
type SimConfig struct {
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed>.
	Park string
	// Seasons is the number of planning seasons (default 4).
	Seasons int
	// SeasonMonths is the months per season (default 3, one quarterly
	// planning cycle).
	SeasonMonths int
	// BootstrapMonths is the historical record simulated before the loop
	// (default 24).
	BootstrapMonths int
	// BudgetKM is the per-month patrol budget; 0 derives the park's ranger
	// capacity.
	BudgetKM float64
	// Policies names the policies to compare (default
	// paws,uniform,historical,random).
	Policies []string
	// Attacker selects the poacher response behaviour. Default: adaptive
	// (deterrence + displacement); set Kind to poach.AttackerStatic for the
	// historical non-responsive process.
	Attacker poach.AttackerConfig
	// Beta is the robustness weight of the paws policy's planner
	// (default 0.9).
	Beta float64
}

// withDefaults validates and fills cfg: zero values select defaults, while
// negative or out-of-range values are rejected — a typo'd request must fail
// with a structured error (bad_request over HTTP), not silently simulate
// the defaults, panic, or loop forever. Park/attacker specifics (unknown
// specs, zero-post parks, attacker kinds) are validated downstream where
// the objects are built.
func (cfg SimConfig) withDefaults() (SimConfig, error) {
	if cfg.Park == "" {
		cfg.Park = "MFNP"
	}
	if cfg.Seasons < 0 {
		return cfg, fmt.Errorf("paws: seasons must be ≥ 1, got %d", cfg.Seasons)
	}
	if cfg.Seasons == 0 {
		cfg.Seasons = 4
	}
	if err := validateSimRanges(cfg.SeasonMonths, cfg.BootstrapMonths, cfg.BudgetKM, cfg.Beta); err != nil {
		return cfg, err
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"paws", "uniform", "historical", "random"}
	}
	if err := validatePolicyNames(cfg.Policies); err != nil {
		return cfg, err
	}
	if cfg.Attacker.Kind == "" {
		cfg.Attacker.Kind = poach.AttackerAdaptive
	}
	if err := poach.ValidateAttackerKind(cfg.Attacker.Kind); err != nil {
		return cfg, err
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.9
	}
	return cfg, nil
}

// validatePolicyNames checks that every name is unique and resolves to a
// built-in baseline policy or the root package's "paws" policy.
func validatePolicyNames(names []string) error {
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			return fmt.Errorf("paws: duplicate policy %q", name)
		}
		seen[name] = true
		if name == "paws" {
			continue
		}
		if _, err := sim.ByName(name); err != nil {
			return fmt.Errorf("paws: %w (plus \"paws\")", err)
		}
	}
	return nil
}

// validateSimRanges rejects the negative and out-of-range values shared by
// SimConfig and CampaignConfig (which forwards these fields into every
// per-cell SimConfig) — one copy of the rules, so the two submit-time
// surfaces cannot drift.
func validateSimRanges(seasonMonths, bootstrapMonths int, budgetKM, beta float64) error {
	if seasonMonths < 0 {
		return fmt.Errorf("paws: season months must be ≥ 1, got %d", seasonMonths)
	}
	if bootstrapMonths < 0 {
		return fmt.Errorf("paws: bootstrap months must be ≥ 1, got %d", bootstrapMonths)
	}
	if budgetKM < 0 || math.IsNaN(budgetKM) || math.IsInf(budgetKM, 0) {
		return fmt.Errorf("paws: budget %v km/month must be a non-negative finite number", budgetKM)
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return fmt.Errorf("paws: beta %v out of range [0, 1]", beta)
	}
	return nil
}

// Validate checks a simulation configuration — ranges, policy names, the
// attacker kind — without simulating anything. This is the submit-time
// validation surface of the async job API: everything Simulate rejects up
// front fails here first. (Park specs are validated separately via
// ValidateParkSpec, which the HTTP layer already calls.)
func (cfg SimConfig) Validate() error {
	_, err := cfg.withDefaults()
	return err
}

// Simulate runs the closed-loop policy comparison: generate the park,
// bootstrap its history, then for each requested policy repeat the
// plan → patrol → poacher-reaction → retrain season loop and report
// per-season detections, snares and displacement. The "paws" policy retrains
// the configured model kind (WithKind; default DTB-iW) each season and plans
// with the Frank-Wolfe planner; baselines come from internal/sim. The
// context is observed between seasons and through every training and
// planning call; the report is byte-identical for any worker count.
func (s *Service) Simulate(ctx context.Context, cfg SimConfig, opts ...Option) (*sim.Report, error) {
	st := s.settingsFor(opts)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	parkCfg, simCfg, err := resolveConfigs(cfg.Park, st.scale, st.seed)
	if err != nil {
		return nil, err
	}
	// Drive the loop (and label the report) with the root seed the caller
	// passed, so the printed "seed N" reproduces the report verbatim. The
	// scenario convention of offsetting the history seed exists to separate
	// park and history streams, which the engine's labelled splits already do.
	simCfg.Seed = st.seed
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		return nil, fmt.Errorf("paws: generate park: %w", err)
	}
	policies := make([]sim.Policy, len(cfg.Policies))
	for i, name := range cfg.Policies {
		if name == "paws" {
			policies[i] = &pawsPolicy{st: st, beta: cfg.Beta}
			continue
		}
		p, err := sim.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("paws: %w (plus \"paws\")", err)
		}
		policies[i] = p
	}
	var progress func(policy string, season, seasons int)
	if pf := st.progress; pf != nil {
		progress = func(policy string, season, seasons int) {
			pf(ProgressEvent{Stage: "season", Item: policy, Current: season, Total: seasons})
		}
	}
	return sim.Run(ctx, sim.Config{
		Park:            park,
		Sim:             simCfg,
		Attacker:        cfg.Attacker,
		Seasons:         cfg.Seasons,
		SeasonMonths:    cfg.SeasonMonths,
		BootstrapMonths: cfg.BootstrapMonths,
		BudgetKM:        cfg.BudgetKM,
		Workers:         st.workers,
		Progress:        progress,
	}, policies)
}

// Planner-shape defaults for the paws simulation policy.
const (
	// simTargetKMPerCell sets how thinly the budget is spread over the
	// targeted sector: ~1 km/cell sits below the knee of the detection
	// curve (1−exp(−λc)), so coverage is broad rather than saturating.
	simTargetKMPerCell = 1.0
	// Route extraction around each post (the deployable patrol artifact).
	simPlanRadius   = 8
	simPlanMaxCells = 90
	simPlanT        = 10
	simPlanK        = 3.0
	simPlanSegments = 8
)

// pawsPolicy is the full PAWS pipeline as a simulation policy. Each season
// it rebuilds the dataset from the observed record, retrains the configured
// model kind, and targets the predicted-risk hot mass: the budget is spread
// over the top cells of the park-wide risk map, proportional to risk — the
// paper's field-test protocol of selecting high-risk sectors at a nominal
// achievable effort. The Frank-Wolfe planner then turns each patrol post's
// share of the allocation into executable routes, reported with the plan.
// Retraining every season is what lets the policy chase displacement: when
// the adaptive attacker shifts into neighbouring cells, next season's
// detections move the risk map after it.
type pawsPolicy struct {
	st   settings
	beta float64
}

func (p *pawsPolicy) Name() string { return "paws" }

// trainOptions picks lighter-than-paper defaults (the model retrains every
// season) unless the caller set them explicitly.
func (p *pawsPolicy) trainOptions(seed int64) TrainOptions {
	tr := p.st.trainOptions()
	if !p.st.kindSet {
		tr.Kind = DTBiW
	}
	if tr.Thresholds <= 0 {
		tr.Thresholds = 6
	}
	if tr.Members <= 0 {
		tr.Members = 5
	}
	tr.Seed = seed
	return tr
}

func (p *pawsPolicy) PlanSeason(ctx context.Context, o *sim.Obs, season int, r *rng.RNG) (*sim.SeasonPlan, error) {
	item := fmt.Sprintf("season %d", season)
	// The observed record is exactly a waypoint-free history; train on the
	// effort maps directly.
	h := &poach.History{
		Park:         o.Park,
		Months:       o.Months,
		Effort:       o.Effort,
		Observations: o.Observations,
	}
	endBuild := obs.StartSpan(ctx, "build", item)
	d, err := dataset.BuildFromEffort(h, dataset.StandardConfig())
	endBuild()
	if err != nil {
		return nil, err
	}
	endTrain := obs.StartSpan(ctx, "train", item)
	m, err := TrainCtx(ctx, d.AllPoints(), p.trainOptions(r.Int63()))
	if err != nil {
		endTrain()
		return nil, err
	}
	pm, err := NewPlannerModelCtx(ctx, m, d, len(d.Steps)-1, p.st.workers)
	endTrain()
	if err != nil {
		return nil, err
	}
	// Park-wide risk map at the nominal per-cell effort the sectors will
	// actually receive, then target the hottest cells: enough of them that
	// each gets ~simTargetKMPerCell of the budget, weighted by risk.
	n := o.Park.Grid.NumCells()
	endRisk := obs.StartSpan(ctx, "riskmap", item)
	risk, err := pm.RiskMapCtx(ctx, simTargetKMPerCell)
	endRisk()
	if err != nil {
		return nil, err
	}
	targets := int(o.BudgetKM / simTargetKMPerCell)
	if targets < 1 {
		targets = 1
	}
	if targets > n {
		targets = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Risk descending, cell id ascending on ties — deterministic.
	sort.Slice(order, func(a, b int) bool {
		ra, rb := risk[order[a]], risk[order[b]]
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	eff := make([]float64, n)
	for _, cell := range order[:targets] {
		eff[cell] = risk[cell]
	}
	endRoutes := obs.StartSpan(ctx, "routes", item)
	routes, err := p.extractRoutes(ctx, o, pm)
	endRoutes()
	if err != nil {
		return nil, err
	}
	return &sim.SeasonPlan{Effort: eff, Routes: routes}, nil
}

// extractRoutes turns the plan into the deployable artifact: per patrol
// post, a Frank-Wolfe solve over the post's neighbourhood followed by route
// extraction — the patrols rangers would actually walk.
func (p *pawsPolicy) extractRoutes(ctx context.Context, o *sim.Obs, pm *PlannerModel) ([][]int, error) {
	radius, maxCells := p.st.radius, p.st.maxCells
	if radius <= 0 {
		radius = simPlanRadius
	}
	if maxCells <= 0 {
		maxCells = simPlanMaxCells
	}
	t, k, segments := p.st.horizonT, p.st.horizonK, p.st.segments
	if t <= 0 {
		t = simPlanT
	}
	if k <= 0 {
		k = simPlanK
	}
	if segments <= 0 {
		segments = simPlanSegments
	}
	cfg := plan.Config{T: t, K: k, Segments: segments, Beta: p.beta, Solver: plan.SolverFrankWolfe, Workers: p.st.workers}
	type postRoutes struct {
		region *plan.Region
		routes []plan.Route
	}
	// Per-post solves are independent; fan them out. Aggregation below runs
	// in post order, so the output is identical for any worker count.
	plans, err := par.MapErrCtx(ctx, p.st.workers, len(o.Park.Posts), func(i int) (postRoutes, error) {
		region, err := plan.NewRegion(o.Park, o.Park.Posts[i], radius, maxCells)
		if err != nil {
			return postRoutes{}, err
		}
		pl, err := plan.Solve(region, pm, cfg)
		if err != nil {
			return postRoutes{}, err
		}
		routes, err := plan.ExtractRoutes(region, pl.Effort, cfg.T, int(cfg.K))
		if err != nil {
			return postRoutes{}, err
		}
		return postRoutes{region: region, routes: routes}, nil
	})
	if err != nil {
		return nil, err
	}
	var routes [][]int
	for _, pr := range plans {
		for _, rt := range pr.routes {
			routes = append(routes, rt.ParkCells(pr.region))
		}
	}
	return routes, nil
}
