package paws

import (
	"context"
	"fmt"

	"paws/internal/campaign"
	"paws/internal/obs"
	"paws/internal/poach"
	"paws/internal/sim"
)

// CampaignConfig configures Service.Campaign: a deterministic sweep over a
// grid of parks × replicate seeds × season counts, every cell a closed-loop
// Simulate comparing the same policies under common random numbers, and the
// results aggregated into paired per-park policy deltas with bootstrap
// confidence intervals (internal/campaign). Zero values select defaults;
// the model kind, scale and worker count come from the Service options as
// usual.
type CampaignConfig struct {
	// Parks are park specs (MFNP, QENP, SWS, rand:<seed>); procedural
	// ranges "rand:<lo>-<hi>" expand to one park per seed. Default: MFNP.
	Parks []string
	// Policies are compared inside every cell (default paws,uniform).
	Policies []string
	// Seeds are the replicate seeds: each is one complete scenario
	// realization (park generation for presets, history, common random
	// numbers) shared by all policies of a cell. Default: 1,2,3.
	Seeds []int64
	// SeasonCounts are the season-count grid values (default: 4).
	SeasonCounts []int
	// SeasonMonths is the months per season (default 3).
	SeasonMonths int
	// BootstrapMonths is the historical record before each loop (default 24).
	BootstrapMonths int
	// BudgetKM overrides the per-month patrol budget (0 derives the park's
	// ranger capacity).
	BudgetKM float64
	// Attacker selects the poacher response behaviour (default adaptive).
	Attacker poach.AttackerConfig
	// Beta is the paws policy's robustness weight (default 0.9).
	Beta float64
	// Baseline names the policy the paired deltas are measured against
	// (default: "uniform" when present, else the first policy).
	Baseline string
	// Resamples is the bootstrap resample count of the delta CIs
	// (default 2000).
	Resamples int
}

// withDefaults validates and fills the values the root layer owns —
// including that every policy name resolves and the attacker kind exists,
// so a typo fails before any park is generated; grid structure (parks,
// seeds, season counts, baseline) is validated by internal/campaign.
func (cfg CampaignConfig) withDefaults() (CampaignConfig, error) {
	if len(cfg.Parks) == 0 {
		cfg.Parks = []string{"MFNP"}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"paws", "uniform"}
	}
	if err := validatePolicyNames(cfg.Policies); err != nil {
		return cfg, err
	}
	if err := poach.ValidateAttackerKind(cfg.Attacker.Kind); err != nil {
		return cfg, err
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3}
	}
	if len(cfg.SeasonCounts) == 0 {
		cfg.SeasonCounts = []int{4}
	}
	if err := validateSimRanges(cfg.SeasonMonths, cfg.BootstrapMonths, cfg.BudgetKM, cfg.Beta); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// gridConfig lowers the root config to the campaign layer's grid spec.
func (cfg CampaignConfig) gridConfig() campaign.Config {
	return campaign.Config{
		Parks:        cfg.Parks,
		Policies:     cfg.Policies,
		Seeds:        cfg.Seeds,
		SeasonCounts: cfg.SeasonCounts,
		Baseline:     cfg.Baseline,
		Resamples:    cfg.Resamples,
	}
}

// Validate checks a campaign configuration end to end — root-level ranges,
// policy names, the attacker kind, and the grid spec (parks, seeds, season
// counts, baseline) — without simulating anything. This is the submit-time
// validation surface of the async job API: everything Campaign itself
// rejects up front fails here first. It is GridSize discarding the size, so
// there is exactly one validation chain.
func (cfg CampaignConfig) Validate() error {
	_, err := cfg.GridSize()
	return err
}

// GridSize validates the configuration end to end in one pass (root-level
// checks, then the grid's Resolve) and returns the number of grid cells the
// defaults-filled configuration spans — parks (after range expansion) ×
// seeds × season counts — without simulating anything. The HTTP layer's
// submit-time check is this one call, so the server-side cell cap always
// reflects the grid Campaign would actually run, defaults included, and
// cannot drift from the library's validation.
func (cfg CampaignConfig) GridSize() (int, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	grid, err := cfg.gridConfig().Resolve()
	if err != nil {
		return 0, err
	}
	return len(grid.Parks) * len(grid.Seeds) * len(grid.SeasonCounts), nil
}

// Campaign runs the paper-style multi-scenario evaluation: for every grid
// cell (park × replicate seed × season count) it plays the configured
// policies through the closed loop under common random numbers
// (Service.Simulate), then aggregates per-park policy statistics and
// CRN-paired detection deltas against the baseline with 95% bootstrap
// confidence intervals — the Table III-like "PAWS beats the status quo, and
// here is the uncertainty" conclusion as one call.
//
// Cells fan out over the merged worker count through internal/job's bounded
// Manager; the report (including every confidence interval) is
// byte-identical for any worker count. With WithProgress, one Stage "cell"
// event fires per completed cell; the per-season events of the inner
// simulations are suppressed (cells are the campaign's unit of progress).
func (s *Service) Campaign(ctx context.Context, cfg CampaignConfig, opts ...Option) (*campaign.Report, error) {
	st := s.settingsFor(opts)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Cells run inside internal/campaign's own job manager on fresh
	// contexts, so the caller's trace (if any) is re-attached per cell —
	// each grid cell then records one span, and the seasons inside it
	// record theirs, all under the submitting request's trace.
	tr := obs.TraceFrom(ctx)
	runner := func(ctx context.Context, cell campaign.Cell) (*sim.Report, error) {
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		end := obs.StartSpan(ctx, "cell", fmt.Sprintf("%s/seed=%d/seasons=%d", cell.Park, cell.Seed, cell.Seasons))
		defer end()
		// Fresh option slice per cell: appending to the caller's opts from
		// concurrent cells would race on the shared backing array.
		cellOpts := make([]Option, 0, len(opts)+2)
		cellOpts = append(cellOpts, opts...)
		cellOpts = append(cellOpts, WithSeed(cell.Seed), WithProgress(nil))
		return s.Simulate(ctx, SimConfig{
			Park:            cell.Park,
			Seasons:         cell.Seasons,
			SeasonMonths:    cfg.SeasonMonths,
			BootstrapMonths: cfg.BootstrapMonths,
			BudgetKM:        cfg.BudgetKM,
			Policies:        cfg.Policies,
			Attacker:        cfg.Attacker,
			Beta:            cfg.Beta,
		}, cellOpts...)
	}
	var progress func(cell campaign.Cell, done, total int)
	if pf := st.progress; pf != nil {
		progress = func(cell campaign.Cell, done, total int) {
			pf(ProgressEvent{
				Stage:   "cell",
				Item:    fmt.Sprintf("%s/seed=%d/seasons=%d", cell.Park, cell.Seed, cell.Seasons),
				Current: done,
				Total:   total,
			})
		}
	}
	grid := cfg.gridConfig()
	grid.Workers = st.workers
	grid.Progress = progress
	return campaign.Run(ctx, grid, runner)
}
