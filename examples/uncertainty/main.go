// Uncertainty: reproduce the Fig. 6 / Fig. 7 analysis on a small park —
// risk and uncertainty maps from GPB-iW at increasing patrol effort, and the
// prediction-vs-variance correlation contrast between Gaussian processes
// (uncertainty tracks data density) and bagged decision trees (uncertainty
// is a near-deterministic function of the prediction) — through the
// context-aware Service API.
//
//	go run ./examples/uncertainty
package main

import (
	"context"
	"fmt"
	"log"

	"paws"
)

func main() {
	ctx := context.Background()
	svc := paws.NewService(
		paws.WithSeed(13),
		paws.WithPreset("MFNP", paws.ScaleSmall),
	)
	sc, err := svc.Scenario(ctx, "MFNP", paws.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	steps := sc.Data.Steps
	testYear := steps[len(steps)-1].Year

	// Fig. 6: risk and uncertainty maps at several planned effort levels.
	maps, err := svc.Fig6(ctx, sc, testYear, paws.WithKind(paws.GPBiW))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("historical patrol effort (3 training years):")
	fmt.Println(paws.RasterASCII(sc.Park, maps.HistEffort))
	for k, e := range maps.EffortLevels {
		if k%2 == 1 {
			continue // print two levels to keep the output short
		}
		fmt.Printf("predicted detection probability at %.1f km of effort:\n", e)
		fmt.Println(paws.RasterASCII(sc.Park, maps.Risk[k]))
		fmt.Printf("prediction uncertainty at %.1f km of effort:\n", e)
		fmt.Println(paws.RasterASCII(sc.Park, maps.Uncertainty[k]))
	}

	// Fig. 7: correlation of prediction with uncertainty, GP vs bagged trees.
	res, err := svc.Fig7(ctx, sc, testYear)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pearson r(prediction, variance):\n")
	fmt.Printf("  Gaussian process:       %+.3f   (paper: -0.198)\n", res.GPCorrelation)
	fmt.Printf("  bagged decision trees:  %+.3f   (paper: +0.979)\n", res.DTCorrelation)
	fmt.Println("\nA near-perfect correlation means the variance carries no information")
	fmt.Println("beyond the prediction itself — only the GP variance is a usable")
	fmt.Println("uncertainty signal for robust patrol planning (Section V-C).")
}
