// Jobs: drive the async job API end to end against an in-process pawsd
// handler — submit a multi-season simulation, stream its typed progress
// events live (NDJSON), fetch the stored result, and show that it is
// byte-identical to the blocking /v1/simulate response. This is the
// workflow the field tests imply: rangers submit a planning run, check
// progress, and come back for the result — no connection held open.
//
//	go run ./examples/jobs
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"paws"
	"paws/internal/serve"
)

func main() {
	// An in-process server: the same handler cmd/pawsd mounts. Simulation
	// jobs need no registered model (the paws policy trains per season).
	svc := paws.NewService(paws.WithSeed(7), paws.WithWorkers(0))
	ts := httptest.NewServer(serve.New(svc, serve.Config{JobWorkers: 2}))
	defer ts.Close()

	// 1. Submit: a 3-season policy comparison on a procedural park.
	submit := map[string]any{
		"kind": "simulate",
		"simulate": map[string]any{
			"park":     "rand:16",
			"seasons":  3,
			"policies": []string{"uniform", "historical"},
			"seed":     99,
		},
	}
	body, _ := json.Marshal(submit)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var snap struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s (state %s)\n", snap.ID, snap.State)

	// 2. Stream progress: NDJSON, one event per line, replayable from any
	//    sequence number with ?from=N. The stream ends when the job is
	//    terminal; a dropped connection never cancels the job.
	events, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		var e struct {
			Seq     int    `json:"seq"`
			Stage   string `json:"stage"`
			Item    string `json:"item"`
			Current int    `json:"current"`
			Total   int    `json:"total"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			log.Fatal(err)
		}
		switch e.Stage {
		case "state":
			fmt.Printf("  [%02d] job is %s\n", e.Seq, e.Item)
		case "season":
			fmt.Printf("  [%02d] %-10s season %d/%d\n", e.Seq, e.Item, e.Current, e.Total)
		default:
			fmt.Printf("  [%02d] %s %d/%d\n", e.Seq, e.Stage, e.Current, e.Total)
		}
	}
	events.Body.Close()

	// 3. Fetch the retained result.
	res, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	asyncBody := new(bytes.Buffer)
	if _, err := asyncBody.ReadFrom(res.Body); err != nil {
		log.Fatal(err)
	}
	res.Body.Close()
	var report struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal(asyncBody.Bytes(), &report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", report.Text)

	// 4. The async result is byte-identical to the blocking endpoint's
	//    response for the same park, seed and worker count.
	simBody, _ := json.Marshal(submit["simulate"])
	syncResp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(simBody))
	if err != nil {
		log.Fatal(err)
	}
	syncBytes := new(bytes.Buffer)
	if _, err := syncBytes.ReadFrom(syncResp.Body); err != nil {
		log.Fatal(err)
	}
	syncResp.Body.Close()
	if bytes.Equal(asyncBody.Bytes(), syncBytes.Bytes()) {
		fmt.Println("async job result == synchronous /v1/simulate response (byte-identical)")
	} else {
		log.Fatal("async and sync responses diverged")
	}
}
