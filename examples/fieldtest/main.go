// Fieldtest: reproduce the Section VII field-test protocol: train an
// iWare-E model on historical data, select km-scale blocks in high/medium/
// low predicted-risk bands among sparsely patrolled areas, simulate ranger
// patrols with the risk groups hidden, and report the Table III statistics
// with a chi-squared significance test — through the context-aware Service
// API.
//
// The example uses the reduced MFNP park (2×2 km blocks, as in the paper's
// MFNP trials). The SWS trials need the full-scale park to have statistical
// power — run `go run ./cmd/pawstables -table 3 -scale full` for those.
//
//	go run ./examples/fieldtest
package main

import (
	"context"
	"fmt"
	"log"

	"paws"
)

func main() {
	ctx := context.Background()
	svc := paws.NewService(
		paws.WithSeed(13),
		paws.WithPreset("MFNP", paws.ScaleSmall),
	)
	sc, err := svc.Scenario(ctx, "MFNP", paws.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	trials, err := svc.Table3(ctx, sc, "MFNP-small", 2, []int{2, 3},
		paws.WithKind(paws.DTBiW),
		// The small park tiles into few complete blocks per band.
		paws.WithFieldProtocol(3, 0),
		paws.WithSeed(17),
	)
	if err != nil {
		log.Fatal(err)
	}
	significant := 0
	for _, tr := range trials {
		fmt.Printf("%s (risk groups hidden from rangers)\n", tr.Name)
		fmt.Printf("  %-8s %6s %8s %9s %12s\n", "group", "# Obs", "# Cells", "Effort", "Obs/Cells")
		for _, g := range tr.Result.Groups {
			fmt.Printf("  %-8v %6d %8d %9.1f %12.3f\n",
				g.Group, g.Observations, g.CellsVisited, g.EffortKM, g.ObsPerCell)
		}
		sig := "not significant"
		if tr.Result.ChiSq.PValue < 0.05 {
			sig = "significant at 0.05"
			significant++
		}
		fmt.Printf("  chi-squared X²=%.2f, df=%d, p=%.4f (%s)\n\n",
			tr.Result.ChiSq.Statistic, tr.Result.ChiSq.DF, tr.Result.ChiSq.PValue, sig)
	}
	fmt.Printf("%d of %d trials significant at 0.05.\n", significant, len(trials))
	fmt.Println("The paper's field tests found the same monotone pattern — most")
	fmt.Println("detections per patrolled cell in the high-risk arm, fewest (zero in")
	fmt.Println("SWS) in the low-risk arm — with p < 0.05 in all four trials.")
}
