// Quickstart: generate a small synthetic park, train the paper's preferred
// GPB-iW model on the first years of simulated patrol history, and print the
// predicted poaching-risk map for the held-out year.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paws"
)

func main() {
	// 1. Generate a park with five years of SMART-style patrol history.
	//    ScaleSmall keeps this run under a few seconds.
	sc, err := paws.ScenarioAt("MFNP", paws.ScaleSmall, 42)
	if err != nil {
		log.Fatal(err)
	}
	stats := sc.Data.TableIStats("MFNP-small")
	fmt.Printf("park: %d cells, %d features, %d data points, %.1f%% positive labels\n",
		stats.NumCells, stats.NumFeatures, stats.NumPoints, stats.PctPositive)

	// 2. Split chronologically: train on the first years, test on the last.
	steps := sc.Data.Steps
	testYear := steps[len(steps)-1].Year
	split, err := sc.Data.SplitByTestYear(testYear, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d points, testing on %d points (year %d)\n",
		len(split.Train), len(split.Test), testYear)

	// 3. Train the GPB-iW model: Gaussian-process weak learners inside the
	//    iWare-E ensemble, which discards unreliable low-effort negatives.
	model, err := paws.Train(split.Train, paws.TrainOptionsAt("MFNP", paws.GPBiW, paws.ScaleSmall, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out AUC: %.3f\n", model.AUC(split.Test))

	// 4. Produce the risk map for the test year at a nominal patrol effort.
	testFrom, _ := sc.Data.StepsForYear(testYear)
	pm, err := paws.NewPlannerModel(model, sc.Data, testFrom-1)
	if err != nil {
		log.Fatal(err)
	}
	risk := pm.RiskMap(paws.NominalEffort(sc.Data))
	fmt.Println("\npredicted poaching risk (darker = higher):")
	fmt.Println(paws.RasterASCII(sc.Park, risk))
}
