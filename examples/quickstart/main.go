// Quickstart: generate a small synthetic park, train the paper's preferred
// GPB-iW model through the context-aware Service API, persist it, and print
// the predicted poaching-risk map for the held-out year.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"paws"
)

func main() {
	ctx := context.Background()

	// 1. A Service carries deployment-wide defaults (seed, worker pool,
	//    ensemble shape) through every call; per-call options override them.
	svc := paws.NewService(
		paws.WithSeed(7),
		paws.WithPreset("MFNP", paws.ScaleSmall),
	)

	// 2. Generate a park with five years of SMART-style patrol history.
	//    ScaleSmall keeps this run under a few seconds.
	sc, err := svc.Scenario(ctx, "MFNP", paws.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	stats := sc.Data.TableIStats("MFNP-small")
	fmt.Printf("park: %d cells, %d features, %d data points, %.1f%% positive labels\n",
		stats.NumCells, stats.NumFeatures, stats.NumPoints, stats.PctPositive)

	// 3. Split chronologically: train on the first years, test on the last.
	steps := sc.Data.Steps
	testYear := steps[len(steps)-1].Year
	split, err := sc.Data.SplitByTestYear(testYear, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d points, testing on %d points (year %d)\n",
		len(split.Train), len(split.Test), testYear)

	// 4. Train the GPB-iW model: Gaussian-process weak learners inside the
	//    iWare-E ensemble, which discards unreliable low-effort negatives.
	model, err := svc.Train(ctx, split.Train, paws.WithKind(paws.GPBiW))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out AUC: %.3f\n", model.AUC(split.Test))

	// 5. Persist the model and reload it — the loaded model predicts
	//    byte-identically, so train once, serve forever (see cmd/pawsd).
	path := filepath.Join(os.TempDir(), "quickstart-gpbiw.paws")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := paws.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted to %s and reloaded (kind %v)\n", path, loaded.Kind)

	// 6. Register the loaded model and produce the test-year risk map at a
	//    nominal patrol effort.
	testFrom, _ := sc.Data.StepsForYear(testYear)
	if _, err := svc.AddModel(ctx, "mfnp", loaded, sc.Data, testFrom-1); err != nil {
		log.Fatal(err)
	}
	risk, _, err := svc.RiskMaps(ctx, "mfnp", paws.NominalEffort(sc.Data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted poaching risk (darker = higher):")
	fmt.Println(paws.RasterASCII(sc.Park, risk))
}
