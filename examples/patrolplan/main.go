// Patrolplan: compute robust patrol routes for one patrol post (Section VI).
// Trains GPB-iW through the Service API, builds the post's planning region,
// solves the patrol MILP at several robustness levels β, and shows how
// effort shifts away from high-uncertainty cells as β grows.
//
//	go run ./examples/patrolplan
package main

import (
	"context"
	"fmt"
	"log"

	"paws"
	"paws/internal/plan"
)

func main() {
	ctx := context.Background()
	svc := paws.NewService(
		paws.WithSeed(23),
		paws.WithPreset("QENP", paws.ScaleSmall),
	)
	sc, err := svc.Scenario(ctx, "QENP", paws.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	steps := sc.Data.Steps
	ps, err := svc.PlanStudy(ctx, sc,
		paws.WithKind(paws.GPBiW),
		paws.WithPosts(1),
		paws.WithRegionShape(2, 18),
		paws.WithPlanHorizon(5, 2, 8),
		paws.WithBetas(0.8, 0.9, 1.0),
		paws.WithTestYears(steps[len(steps)-1].Year),
	)
	if err != nil {
		log.Fatal(err)
	}
	region := ps.Regions[0]
	fmt.Printf("planning region: %d cells around post (park cell %d)\n",
		region.NumCells(), region.Post)

	for _, beta := range []float64{0, 0.5, 1} {
		cfg := ps.Config
		cfg.Beta = beta
		p, err := plan.Solve(region, ps.Model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Effort-weighted mean uncertainty of the plan.
		var wUnc, tot float64
		for i, cell := range region.Cells {
			if p.Effort[i] <= 0 {
				continue
			}
			wUnc += p.Effort[i] * ps.Model.Uncertainty(cell, p.Effort[i])
			tot += p.Effort[i]
		}
		if tot > 0 {
			wUnc /= tot
		}
		fmt.Printf("β=%.1f: objective %.4f, total effort %.1f km, runtime %s, "+
			"B&B nodes %d, effort-weighted uncertainty %.3f\n",
			beta, p.Objective, p.TotalEffort(), paws.FormatDuration(p.Runtime), p.Nodes, wUnc)
	}
	fmt.Println("\nAs β grows the plan trades expected detections for certainty,")
	fmt.Println("patrolling less in cells where the model has seen little data.")

	// Ratio study: how much better is the robust plan under the robust
	// objective (Fig 8 a-c analogue for one post)?
	pts, err := ps.RunFig8BetaCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nβ sweep: solution-quality ratio Uβ(Cβ)/Uβ(C0)")
	for _, pt := range pts {
		fmt.Printf("  β=%.2f: avg %.3f, max %.3f\n", pt.Beta, pt.Avg, pt.Max)
	}
}
