// Campaign: evaluate patrol policies the way the paper does — across
// scenarios, with paired statistics — instead of trusting a single
// simulation. A campaign sweeps a grid of parks × replicate seeds, runs
// every policy inside each cell under common random numbers, and reports
// per-park paired detection deltas with bootstrap confidence intervals: if
// the CI lower bound is positive, PAWS beats the baseline beyond what
// scenario luck explains.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"

	"paws"
)

func main() {
	ctx := context.Background()

	// Two small procedural parks × three replicate seeds, PAWS against the
	// uniform status quo, two planning seasons per cell. Workers fan the
	// grid cells out; the report is byte-identical for any worker count.
	svc := paws.NewService(paws.WithScale(paws.ScaleSmall), paws.WithWorkers(0))
	rep, err := svc.Campaign(ctx, paws.CampaignConfig{
		Parks:        []string{"rand:16", "rand:8"},
		Policies:     []string{"paws", "uniform"},
		Seeds:        []int64{1, 2, 3},
		SeasonCounts: []int{2},
	}, paws.WithProgress(func(e paws.ProgressEvent) {
		fmt.Printf("  finished cell %s (%d/%d)\n", e.Item, e.Current, e.Total)
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Format())

	// The paired deltas are the paper's field-test conclusion in numbers.
	for _, s := range rep.Summaries {
		for _, d := range s.Deltas {
			verdict := "not separable from"
			if d.CILow > 0 {
				verdict = "beats"
			} else if d.CIHigh < 0 {
				verdict = "loses to"
			}
			fmt.Printf("%s: %s %s %s (mean %+.1f detections, 95%% CI [%+.1f, %+.1f])\n",
				s.Park, d.Policy, verdict, d.Baseline, d.Mean, d.CILow, d.CIHigh)
		}
	}
}
