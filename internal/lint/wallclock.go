package lint

import (
	"fmt"
	"go/ast"
)

// wallclockFuncs are the time functions that read or depend on the
// ambient wall clock. Calling one in a deterministic-compute package
// makes output depend on when (or how fast) the code ran.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Sleep": true, "Until": true}

// checkWallclock flags calls to time.Now/Since/Sleep/Until in
// deterministic-compute packages. Only calls are flagged: referencing
// time.Now as a value — the injected-clock idiom, `if cfg.now == nil {
// cfg.now = time.Now }` (env.ManagerConfig, plan.Config) — is the
// sanctioned escape hatch and passes by construction.
func checkWallclock(pkg *Package) []Finding {
	if pkg.Class != ClassCompute {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgCall(pkg.Info, call); ok && path == "time" && wallclockFuncs[name] {
				out = append(out, pkg.finding(call.Pos(), "wallclock",
					fmt.Sprintf("call to time.%s in deterministic-compute package %s; inject a now func() time.Time hook (see env.ManagerConfig) or suppress with a reason", name, pkg.Rel)))
			}
			return true
		})
	}
	return out
}
