package lint

import (
	"go/ast"
)

// checkGoroutine flags bare `go` statements outside the sanctioned
// concurrency owners. The determinism contract survives parallelism only
// because all compute fan-out goes through internal/par's deterministic
// worker pool (results ordered by index, never by completion); lifecycle
// managers (internal/job, internal/env), the proxy and load layers
// (internal/gate, internal/load), and binaries own their concurrency
// explicitly. A goroutine anywhere else is either unsynchronized output
// waiting to happen or a worker-pool bypass.
func checkGoroutine(pkg *Package) []Finding {
	if goroutineSanctioned(pkg.Rel) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, pkg.finding(g.Pos(), "goroutine",
					"bare go statement outside the sanctioned concurrency owners (internal/par, internal/job, internal/env, internal/gate, internal/load, cmd); fan out through par.MapErr or move ownership"))
			}
			return true
		})
	}
	return out
}
