package lint

import (
	"fmt"
	"strings"
)

// allowMarker introduces an inline suppression:
//
//	//pawsvet:allow <check> -- <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; a marker without one (or naming an unknown check) is
// itself a finding, so waivers stay reviewable.
const allowMarker = "pawsvet:allow"

// suppressions is the per-package suppression table.
type suppressions struct {
	// byFile maps file → line → set of allowed check names. An entry at
	// line L covers findings on L and L+1 (trailing comment or
	// line-above placement).
	byFile map[string]map[int]map[string]bool
	// malformed collects findings for broken allow comments.
	malformed []Finding
}

// collectSuppressions scans every comment of the package for allow
// markers.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byFile: map[string]map[int]map[string]bool{}}
	valid := checkNames()
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				// Only a comment that *starts* with the marker is a
				// suppression; "//pawsvet:allow" quoted deeper inside a
				// doc comment (like the examples in this package) is not.
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				f := pkg.finding(c.Pos(), "suppress", "")
				rest := strings.TrimSpace(text[len(allowMarker):])
				check, reason, found := strings.Cut(rest, "--")
				check = strings.TrimSpace(check)
				reason = strings.TrimSpace(reason)
				switch {
				case !found || reason == "":
					f.Message = "allow comment missing its mandatory reason (use //pawsvet:allow <check> -- <reason>)"
					s.malformed = append(s.malformed, f)
					continue
				case !valid[check]:
					f.Message = fmt.Sprintf("allow comment names unknown check %q", check)
					s.malformed = append(s.malformed, f)
					continue
				}
				lines := s.byFile[f.File]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byFile[f.File] = lines
				}
				if lines[f.Line] == nil {
					lines[f.Line] = map[string]bool{}
				}
				lines[f.Line][check] = true
			}
		}
	}
	return s
}

// covers reports whether a finding is silenced by an allow comment on
// its own line or the line above.
func (s *suppressions) covers(f Finding) bool {
	lines := s.byFile[f.File]
	if lines == nil {
		return false
	}
	return lines[f.Line][f.Check] || lines[f.Line-1][f.Check]
}
