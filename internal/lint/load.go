package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package under analysis.
type Package struct {
	// Rel is the module-relative directory ("internal/plan"; "" for the
	// module root package).
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Class is the determinism classification (see classify.go).
	Class Class
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Types and Info carry the go/types results. Info may be partial if
	// the package did not typecheck cleanly; checks degrade to silence,
	// never to panics, on missing type information.
	Types *types.Package
	Info  *types.Info

	root string // module root, for rendering file paths
}

// finding builds a Finding at a token position, rendering the file path
// relative to the module root.
func (p *Package) finding(pos token.Pos, check, msg string) Finding {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return Finding{
		File:    filepath.ToSlash(file),
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: msg,
		Package: p.Rel,
	}
}

// Module is a loaded module tree.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Pkgs are the module's packages in import-dependency order.
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and typechecks every package of the module rooted at
// root (skipping *_test.go files, testdata, and hidden directories).
// Packages that fail to typecheck are still returned with partial type
// information; parse failures abort the load.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Discover and parse package directories.
	var rels []string
	byRel := map[string]*Package{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		pkg := byRel[rel]
		if pkg == nil {
			pkg = &Package{Rel: rel, Dir: dir, Class: classify(rel), Fset: fset, root: root}
			byRel[rel] = pkg
			rels = append(rels, rel)
		}
		file, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)

	// Topological order over module-internal imports, so each package's
	// dependencies are typechecked before it.
	importRel := func(imp string) (string, bool) {
		if imp == path {
			return "", true
		}
		if rest, ok := strings.CutPrefix(imp, path+"/"); ok {
			return rest, true
		}
		return "", false
	}
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(rel string) error
	visit = func(rel string) error {
		switch state[rel] {
		case 1:
			return fmt.Errorf("lint: import cycle through %q", rel)
		case 2:
			return nil
		}
		state[rel] = 1
		pkg := byRel[rel]
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ipath := strings.Trim(imp.Path.Value, `"`)
				if dep, ok := importRel(ipath); ok {
					if byRel[dep] != nil {
						if err := visit(dep); err != nil {
							return err
						}
					}
				}
			}
		}
		state[rel] = 2
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel); err != nil {
			return nil, err
		}
	}

	// Typecheck in dependency order. Module-internal imports resolve to
	// the packages just checked; the standard library comes from the
	// compiler's export data (with a from-source fallback).
	imp := newStdImporter(fset)
	checked := map[string]*types.Package{}
	mod := &Module{Root: root, Path: path}
	for _, rel := range order {
		pkg := byRel[rel]
		ipath := path
		if rel != "" {
			ipath = path + "/" + rel
		}
		cfg := types.Config{
			Importer: importerFunc(func(p string) (*types.Package, error) {
				if dep, ok := importRel(p); ok {
					if tp := checked[dep]; tp != nil {
						return tp, nil
					}
					return nil, fmt.Errorf("lint: internal package %q not loaded", p)
				}
				return imp.Import(p)
			}),
			Error: func(error) {}, // collect nothing; tolerate partial info
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tp, _ := cfg.Check(ipath, fset, pkg.Files, pkg.Info)
		pkg.Types = tp
		checked[rel] = tp
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// LoadDir parses and typechecks one directory as a standalone package
// with the given module-relative directory (which decides its
// classification). Imports resolve against the standard library only —
// the corpus-test entry point.
func LoadDir(dir, rel string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Rel: rel, Dir: abs, Class: classify(rel), Fset: fset, root: abs}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	cfg := types.Config{Importer: newStdImporter(fset), Error: func(error) {}}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg.Types, _ = cfg.Check("lintcorpus/"+rel, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdImporter resolves standard-library imports: compiler export data
// first (fast), from-source as a fallback (robust across toolchain
// layouts). Results are cached per load.
type stdImporter struct {
	fset  *token.FileSet
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{fset: fset, gc: importer.ForCompiler(fset, "gc", nil), cache: map[string]*types.Package{}}
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if p := s.cache[path]; p != nil {
		return p, nil
	}
	p, err := s.gc.Import(path)
	if err != nil {
		if s.src == nil {
			s.src = importer.ForCompiler(s.fset, "source", nil)
		}
		p, err = s.src.Import(path)
	}
	if err != nil {
		return nil, err
	}
	s.cache[path] = p
	return p, nil
}
