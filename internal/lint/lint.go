// Package lint is the pawsvet analyzer suite: static checks for the
// repository's determinism and hygiene invariants, built only on the
// standard library's go/ast, go/parser, go/token and go/types (the module
// has zero dependencies and stays that way).
//
// The system's core contract — byte-identical simulate/campaign/env output
// at any worker count, with CRN-paired policy deltas — is easy to break
// silently: one unsorted map iteration feeding an io.Writer, one stray
// time.Now() in a compute path, one goroutine spawned outside the
// deterministic worker pool. Example-based tests only notice when a golden
// file happens to cover the broken path; these analyzers check the whole
// tree mechanically.
//
// # Checks
//
//   - wallclock: calls to time.Now/Since/Sleep in deterministic-compute
//     packages. Injected clock hooks (a `now func() time.Time` field
//     defaulting to the time.Now *value*, as in env.ManagerConfig) are
//     exempt by construction: only calls are flagged, never references.
//   - globalrand: calls to math/rand's package-level functions (the shared
//     global source) anywhere; plus rand.New/rand.NewSource in
//     deterministic-compute packages, where streams must derive from
//     internal/rng instead.
//   - maporder: a `range` over a map that appends to a slice declared
//     outside the loop, writes to an io.Writer, or sends on a channel,
//     in a function with no key sort — the classic determinism killer.
//   - goroutine: bare `go` statements outside the sanctioned concurrency
//     owners (internal/par, internal/job, internal/env, internal/gate,
//     internal/load, and cmd/examples binaries).
//   - errenvelope: handlers in internal/serve and internal/gate producing
//     non-2xx responses via http.Error or a constant non-2xx WriteHeader
//     instead of the structured {"error":{code,message,trace_id}} envelope.
//
// Test files (*_test.go) and testdata directories are not analyzed: the
// checks target production code paths.
//
// # Suppressions
//
// A finding is silenced with an inline comment on the same line or the
// line directly above, and the reason is mandatory:
//
//	//pawsvet:allow <check> -- <reason>
//
// An allow comment with a missing reason or an unknown check name is
// itself reported (check "suppress"), so suppressions cannot rot into
// unreviewed blanket waivers.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Finding is one analyzer hit, rendered vet-style as
// "file:line: check: message".
type Finding struct {
	// File is the path of the offending file, relative to the module root.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check names the analyzer that fired (or "suppress" for malformed
	// allow comments).
	Check   string `json:"check"`
	Message string `json:"message"`
	// Package is the offending package's module-relative directory
	// ("internal/plan"; "" for the module root package).
	Package string `json:"package"`
}

// String renders the finding in the vet-style text format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Check, f.Message)
}

// Check is one registered analyzer.
type Check struct {
	// Name is the identifier used in output and in allow comments.
	Name string
	// Doc is a one-line description (pawsvet -list).
	Doc string
	// run analyzes one typechecked package.
	run func(*Package) []Finding
}

// Checks returns the full analyzer registry, in stable order.
func Checks() []Check {
	return []Check{
		{"wallclock", "time.Now/Since/Sleep calls in deterministic-compute packages (inject a now hook instead)", checkWallclock},
		{"globalrand", "global math/rand functions anywhere; rand.New/NewSource in compute packages (derive from internal/rng)", checkGlobalRand},
		{"maporder", "map iteration emitting order-dependent output (append to outer slice, io.Writer, channel send) without a key sort", checkMapOrder},
		{"goroutine", "bare go statements outside the sanctioned concurrency owners (internal/par, job, env, gate, load, cmd)", checkGoroutine},
		{"errenvelope", "serve/gate handlers writing non-2xx responses without the structured error envelope", checkErrEnvelope},
	}
}

// checkNames returns the set of valid check names (allow-comment
// validation).
func checkNames() map[string]bool {
	names := map[string]bool{}
	for _, c := range Checks() {
		names[c.Name] = true
	}
	return names
}

// Run executes the given checks over the packages, applies allow-comment
// suppressions, folds in malformed-suppression findings, and returns the
// result sorted by (file, line, col, check).
func Run(pkgs []*Package, checks []Check) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, c := range checks {
			for _, f := range c.run(pkg) {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// WriteText renders findings one per line in the vet-style format.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// WriteJSON renders findings as a JSON array (pawsvet -json). An empty
// set renders as [] rather than null so consumers can always range.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
