package lint

import "strings"

// Class is a package's determinism classification. Checks key off it:
// wallclock and the rand.New half of globalrand apply only to
// deterministic-compute packages, errenvelope only to the HTTP layers,
// goroutine to everything but the sanctioned concurrency owners.
type Class int

const (
	// ClassOther covers packages with no special contract: the module
	// root facade, internal/par (the determinism substrate itself),
	// internal/prof, internal/lint, and anything new until classified.
	ClassOther Class = iota
	// ClassCompute marks deterministic-compute packages: given the same
	// inputs and seed they must produce byte-identical output at any
	// worker count, so wall clocks and ambient randomness are banned.
	ClassCompute
	// ClassServing marks the serving/infrastructure layer: wall time and
	// scheduling are inherent (latency, TTLs, admission control), but
	// rendered output must still be order-deterministic.
	ClassServing
	// ClassMain marks cmd/ and examples/ binaries.
	ClassMain
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "deterministic-compute"
	case ClassServing:
		return "serving"
	case ClassMain:
		return "main"
	default:
		return "other"
	}
}

// computePackages lists the module-relative directories under the
// deterministic-compute contract. Subpackages inherit (internal/ml/gp is
// compute because internal/ml is).
var computePackages = []string{
	"internal/sim", "internal/env", "internal/campaign", "internal/plan",
	"internal/dataset", "internal/geo", "internal/ml", "internal/mat",
	"internal/stats", "internal/poach", "internal/iware", "internal/game",
	"internal/lp", "internal/milp", "internal/field", "internal/rng",
}

// servingPackages lists the serving-layer directories.
var servingPackages = []string{
	"internal/serve", "internal/gate", "internal/job", "internal/obs",
	"internal/store", "internal/load",
}

// goroutineOwners lists the packages allowed to spawn bare goroutines:
// the deterministic worker pool, the lifecycle managers that own their
// concurrency, and binaries. Everyone else must delegate (par.MapErr).
var goroutineOwners = []string{
	"internal/par", "internal/job", "internal/env", "internal/gate",
	"internal/load",
}

// classify maps a module-relative package directory ("" is the module
// root) to its class. When adding a new package, add it to
// computePackages or servingPackages here if it has either contract;
// unlisted packages default to ClassOther, which still gets the
// maporder and goroutine checks.
func classify(rel string) Class {
	if underAny(rel, []string{"cmd", "examples"}) {
		return ClassMain
	}
	if underAny(rel, computePackages) {
		return ClassCompute
	}
	if underAny(rel, servingPackages) {
		return ClassServing
	}
	return ClassOther
}

// goroutineSanctioned reports whether the package may contain bare go
// statements.
func goroutineSanctioned(rel string) bool {
	return underAny(rel, []string{"cmd", "examples"}) || underAny(rel, goroutineOwners)
}

// envelopeChecked reports whether the package's handlers must use the
// structured error envelope.
func envelopeChecked(rel string) bool {
	return underAny(rel, []string{"internal/serve", "internal/gate"})
}

// underAny reports whether rel is one of the roots or nested below one.
func underAny(rel string, roots []string) bool {
	for _, r := range roots {
		if rel == r || strings.HasPrefix(rel, r+"/") {
			return true
		}
	}
	return false
}
