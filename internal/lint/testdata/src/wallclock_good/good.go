// Corpus: the injected-clock idiom must pass wallclock — time.Now is
// referenced as a value (the hook default), never called (loaded as
// internal/sim).
package goodclock

import "time"

type Config struct {
	now func() time.Time
}

func (c *Config) withDefaults() {
	if c.now == nil {
		c.now = time.Now
	}
}

func (c *Config) Stamp() time.Time {
	c.withDefaults()
	return c.now()
}
