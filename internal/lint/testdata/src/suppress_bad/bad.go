// Corpus: a pawsvet:allow comment with no reason (or an unknown check
// name) must not suppress anything and is itself a finding (loaded as
// internal/sim).
package badsuppress

import (
	"math/rand"
	"time"
)

func MissingReason() time.Time {
	//pawsvet:allow wallclock
	return time.Now()
}

func UnknownCheck() float64 {
	//pawsvet:allow clockwall -- the reason is fine but the check name is not
	return rand.Float64()
}
