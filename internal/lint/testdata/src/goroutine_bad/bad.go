// Corpus: goroutine must fire on bare go statements outside the
// sanctioned owners (loaded as internal/stats).
package badgo

func Fan(n int, f func(int)) {
	for i := 0; i < n; i++ {
		go f(i)
	}
}
