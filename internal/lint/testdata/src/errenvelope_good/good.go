// Corpus: errenvelope must stay silent on 2xx statuses and on the
// envelope-writer idiom, where the status is computed (loaded as
// internal/serve).
package goodenv

import (
	"encoding/json"
	"net/http"
)

type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	var env envelope
	env.Error.Code = code
	env.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

func Handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "bad_request", "GET only")
		return
	}
	w.WriteHeader(http.StatusOK)
}
