// Corpus: goroutine must stay silent inside a sanctioned concurrency
// owner (loaded as internal/par).
package goodgo

import "sync"

func Fan(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}
