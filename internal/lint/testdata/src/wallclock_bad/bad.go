// Corpus: wallclock must fire on every ambient-clock call in a
// deterministic-compute package (loaded as internal/sim).
package badclock

import "time"

func Season(start time.Time) time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Until(start)
	return time.Since(t0)
}
