// Corpus: globalrand must stay silent on explicit *rand.Rand streams,
// and on constructors outside deterministic-compute packages (loaded as
// internal/load, a serving package).
package goodrand

import "math/rand"

func Jitter(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(100)
	}
	return out
}

func Draw(r *rand.Rand) float64 { return r.Float64() }
