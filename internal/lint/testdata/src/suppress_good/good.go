// Corpus: well-formed pawsvet:allow comments — trailing the offending
// line or on the line directly above — silence the named check (loaded
// as internal/sim).
package goodsuppress

import "time"

func Stamp() time.Time {
	return time.Now() //pawsvet:allow wallclock -- corpus: trailing-comment placement
}

func Elapsed(t0 time.Time) time.Duration {
	//pawsvet:allow wallclock -- corpus: line-above placement
	return time.Since(t0)
}
