// Corpus: maporder must fire on map iterations that emit
// order-dependent output with no key sort (loaded as internal/campaign).
package badmap

import (
	"fmt"
	"io"
)

func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func RenderUnsorted(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%g\n", k, v)
	}
}

func StreamUnsorted(m map[int]bool, ch chan<- int) {
	for k := range m {
		ch <- k
	}
}
