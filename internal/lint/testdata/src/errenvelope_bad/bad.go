// Corpus: errenvelope must fire on http.Error and constant non-2xx
// WriteHeader in the HTTP layers (loaded as internal/serve).
package badenv

import "net/http"

func Handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("model") == "" {
		http.Error(w, "missing model", http.StatusBadRequest)
		return
	}
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(500)
}
