// Corpus: globalrand must fire on global math/rand functions and on
// constructor calls in a deterministic-compute package (loaded as
// internal/ml).
package badrand

import "math/rand"

func Noise(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.Float64()
	}
	rand.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func Pick(n int) int {
	r := rand.New(rand.NewSource(42))
	_ = rand.Intn(n)
	return r.Intn(n)
}
