// Corpus: maporder must stay silent on the collect-then-sort idiom and
// on order-independent aggregation (loaded as internal/campaign).
package goodmap

import (
	"fmt"
	"io"
	"sort"
)

func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func RenderSorted(w io.Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}
}

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func LocalOnly(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var evens []int
		evens = append(evens, vs...)
		n += len(evens)
	}
	return n
}
