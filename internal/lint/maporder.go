package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkMapOrder flags `range` statements over maps whose body emits
// order-dependent output — appends to a slice declared outside the loop,
// writes to an io.Writer (which includes http.ResponseWriter and
// strings.Builder), or sends on a channel — in a function that performs
// no key sort. Go randomizes map iteration order per run, so any of
// these leaks scheduling noise into output that the determinism contract
// says is a pure function of the inputs.
//
// The standard collect-keys-then-sort idiom passes: the presence of any
// sort call (package sort, slices.Sort*, a .Sort() method, or a helper
// whose name starts with sort/Sort) anywhere in the same function
// exempts the whole function, and appends whose target is declared
// inside the loop body are invisible outside it.
// Aggregations that are order-independent by construction (summing into
// a scalar, writing into another map) are never flagged.
func checkMapOrder(pkg *Package) []Finding {
	var out []Finding
	eachFunc(pkg, func(fd *ast.FuncDecl) {
		if funcSorts(pkg.Info, fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if kind := emitKind(pkg.Info, rs); kind != "" {
				out = append(out, pkg.finding(rs.Pos(), "maporder",
					fmt.Sprintf("map iteration %s in %s with no key sort; iteration order is randomized per run — collect keys, sort, then emit", kind, funcName(fd))))
			}
			return true
		})
	})
	return out
}

// funcSorts reports whether the function contains any sort call.
func funcSorts(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgCall(info, call); ok {
			if path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort")) {
				found = true
				return false
			}
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if sortName(fun.Sel.Name) {
				found = true
				return false
			}
		case *ast.Ident:
			if sortName(fun.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortName reports whether a called function's name marks a key sort
// ("Sort", "sortSessionsByIdle", …).
func sortName(name string) bool {
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// emitKind classifies the first order-dependent emission inside a
// map-range body ("" when the body is order-safe).
func emitKind(info *types.Info, rs *ast.RangeStmt) string {
	kind := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			kind = "sends on a channel"
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAppendCall(info, rhs) || i >= len(n.Lhs) {
					continue
				}
				if id := rootIdent(n.Lhs[i]); id != nil && declaredOutside(info, id, rs) {
					kind = fmt.Sprintf("appends to %s (declared outside the loop)", id.Name)
					return false
				}
			}
		case *ast.CallExpr:
			if target := writerTarget(info, n); target != "" {
				kind = "writes to io.Writer " + target
				return false
			}
		}
		return true
	})
	return kind
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootIdent peels selectors, indexes, stars and parens down to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier's object is declared
// outside the range statement's extent (package-level objects and
// struct fields included). Missing type information resolves to false —
// silence over noise.
func declaredOutside(info *types.Info, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// writerTarget reports the argument or receiver of a call that is typed
// as (or implements) io.Writer, "" if none.
func writerTarget(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && implementsWriter(tv.Type) {
			return exprLabel(sel.X)
		}
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && implementsWriter(tv.Type) {
			return exprLabel(arg)
		}
	}
	return ""
}

// exprLabel renders a short display label for an expression.
func exprLabel(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprLabel(x.X) + "." + x.Sel.Name
	case *ast.UnaryExpr:
		return exprLabel(x.X)
	default:
		return "argument"
	}
}
