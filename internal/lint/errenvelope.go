package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// checkErrEnvelope enforces the structured error contract of the HTTP
// layers (internal/serve, internal/gate): every non-2xx response carries
// {"error":{code,message,trace_id}} so clients parse one error shape
// whether the failure came from a replica or the gate. Two escapes are
// flagged:
//
//   - http.Error — plain-text body, never the envelope;
//   - WriteHeader with a constant non-2xx status — a raw error response
//     with whatever body follows (or none).
//
// WriteHeader with a non-constant status is not flagged: the envelope
// writers themselves (serve.writeJSON, gate.writeGateErr) and the gate's
// verbatim proxying of upstream responses pass a computed status, and
// both are exactly the sanctioned paths.
func checkErrEnvelope(pkg *Package) []Finding {
	if !envelopeChecked(pkg.Rel) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgCall(pkg.Info, call); ok && path == "net/http" && name == "Error" {
				out = append(out, pkg.finding(call.Pos(), "errenvelope",
					"http.Error writes a plain-text error; use the structured envelope writer (serve.writeErr / gate.writeGateErr) instead"))
				return true
			}
			if status, ok := constantWriteHeader(pkg.Info, call); ok && (status < 200 || status > 299) {
				out = append(out, pkg.finding(call.Pos(), "errenvelope",
					fmt.Sprintf("raw WriteHeader(%d) bypasses the structured error envelope; use serve.writeErr / gate.writeGateErr", status)))
			}
			return true
		})
	}
	return out
}

// constantWriteHeader matches `x.WriteHeader(<constant int>)` where x's
// method set carries WriteHeader(int) — i.e. an http.ResponseWriter or a
// wrapper — and returns the constant status.
func constantWriteHeader(info *types.Info, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return 0, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return 0, false
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return 0, false
	}
	if basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.Int {
		return 0, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	status, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(status), true
}
