package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgCall resolves a call expression to (imported package path, function
// name) when its function is a selector on a package name — `time.Now()`
// → ("time", "Now"). Selectors on variables or missing type info resolve
// to ok == false.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// eachFunc visits every top-level function declaration with a body.
func eachFunc(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// funcName renders a function's display name, including the receiver
// type for methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ioWriterType is the io.Writer interface, constructed directly so the
// analyzers never need the io package loaded for the target.
var ioWriterType = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		),
		false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterType) {
		return true
	}
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return types.Implements(types.NewPointer(t), ioWriterType)
		}
	}
	return false
}
