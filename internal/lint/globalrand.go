package lint

import (
	"fmt"
	"go/ast"
)

// globalRandFuncs are math/rand (and math/rand/v2) package-level
// functions backed by the shared global source: unseeded, consumed by
// every caller in the process, and therefore never reproducible. The
// constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are not in
// this set — they are handled separately for compute packages.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true, "N": true,
}

// randConstructors create private sources. Fine in serving code (jitter,
// backoff); banned in deterministic-compute packages, where every stream
// must derive from internal/rng's seed-splitting so adding randomness to
// one component never perturbs another.
var randConstructors = map[string]bool{"New": true, "NewSource": true}

// checkGlobalRand flags (a) global math/rand functions anywhere and
// (b) rand.New/rand.NewSource in deterministic-compute packages.
// internal/rng itself is the sanctioned derivation root and carries an
// inline suppression at its single constructor site.
func checkGlobalRand(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgCall(pkg.Info, call)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			switch {
			case globalRandFuncs[name]:
				out = append(out, pkg.finding(call.Pos(), "globalrand",
					fmt.Sprintf("call to global rand.%s (process-shared source, never reproducible); use an explicit *rand.Rand derived from internal/rng", name)))
			case pkg.Class == ClassCompute && randConstructors[name]:
				out = append(out, pkg.finding(call.Pos(), "globalrand",
					fmt.Sprintf("rand.%s in deterministic-compute package %s; derive streams from internal/rng (rng.New / RNG.Split) or suppress with a reason", name, pkg.Rel)))
			}
			return true
		})
	}
	return out
}
