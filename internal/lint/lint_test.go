package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpus pairs each testdata/src directory with the module-relative
// package directory it is loaded as — which is what decides its
// classification, exactly like a real package's location would.
var corpus = []struct{ dir, rel string }{
	{"wallclock_bad", "internal/sim"},
	{"wallclock_good", "internal/sim"},
	{"globalrand_bad", "internal/ml"},
	{"globalrand_good", "internal/load"},
	{"maporder_bad", "internal/campaign"},
	{"maporder_good", "internal/campaign"},
	{"goroutine_bad", "internal/stats"},
	{"goroutine_good", "internal/par"},
	{"errenvelope_bad", "internal/serve"},
	{"errenvelope_good", "internal/serve"},
	{"suppress_bad", "internal/sim"},
	{"suppress_good", "internal/sim"},
}

// runCorpus loads one corpus dir and returns its findings.
func runCorpus(t *testing.T, dir, rel string) []Finding {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir), rel)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg.Types == nil {
		t.Fatalf("LoadDir(%s): no type information", dir)
	}
	return Run([]*Package{pkg}, Checks())
}

// TestCorpusGolden compares every corpus directory's findings against
// its golden expectation in testdata/expect/<dir>.txt (an empty file
// means the case must be clean). Regenerate with -update.
var update = os.Getenv("PAWSVET_UPDATE") == "1"

func TestCorpusGolden(t *testing.T) {
	for _, c := range corpus {
		t.Run(c.dir, func(t *testing.T) {
			var buf bytes.Buffer
			WriteText(&buf, runCorpus(t, c.dir, c.rel))
			got := buf.String()
			golden := filepath.Join("testdata", "expect", c.dir+".txt")
			if update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with PAWSVET_UPDATE=1 to create): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("findings mismatch for %s:\n--- got ---\n%s--- want ---\n%s", c.dir, got, want)
			}
		})
	}
}

// TestEveryCheckFires proves each registered check (and the suppress
// meta-check) has at least one corpus case that triggers it — so a
// check can't be deleted or neutered without a test failing.
func TestEveryCheckFires(t *testing.T) {
	fired := map[string]bool{}
	for _, c := range corpus {
		for _, f := range runCorpus(t, c.dir, c.rel) {
			fired[f.Check] = true
		}
	}
	for _, c := range Checks() {
		if !fired[c.Name] {
			t.Errorf("check %q fires on no corpus case", c.Name)
		}
	}
	if !fired["suppress"] {
		t.Error("malformed-suppression reporting fires on no corpus case")
	}
}

// TestSuppressionSemantics nails the allow-comment contract: a
// well-formed comment silences exactly its named check, a missing
// reason or unknown check name silences nothing and is itself reported.
func TestSuppressionSemantics(t *testing.T) {
	good := runCorpus(t, "suppress_good", "internal/sim")
	if len(good) != 0 {
		t.Errorf("suppress_good: want 0 findings, got %v", good)
	}

	bad := runCorpus(t, "suppress_bad", "internal/sim")
	counts := map[string]int{}
	for _, f := range bad {
		counts[f.Check]++
	}
	if counts["suppress"] != 2 {
		t.Errorf("suppress_bad: want 2 suppress findings (missing reason, unknown check), got %d: %v", counts["suppress"], bad)
	}
	if counts["wallclock"] != 1 {
		t.Errorf("suppress_bad: reasonless allow must not silence wallclock; findings: %v", bad)
	}
	if counts["globalrand"] != 1 {
		t.Errorf("suppress_bad: unknown-check allow must not silence globalrand; findings: %v", bad)
	}
}

// TestSelfLint asserts the whole repository is pawsvet-clean: every
// finding in the tree has either been fixed or carries a reasoned
// suppression. This is the test that keeps the gate meaningful.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("implausibly few packages loaded (%d) — loader regression?", len(mod.Pkgs))
	}
	findings := Run(mod.Pkgs, Checks())
	if len(findings) != 0 {
		var buf bytes.Buffer
		WriteText(&buf, findings)
		t.Errorf("repository is not pawsvet-clean:\n%s", buf.String())
	}
}

// TestClassify pins the package classification table.
func TestClassify(t *testing.T) {
	cases := []struct {
		rel  string
		want Class
	}{
		{"internal/sim", ClassCompute},
		{"internal/ml/gp", ClassCompute},
		{"internal/rng", ClassCompute},
		{"internal/serve", ClassServing},
		{"internal/load", ClassServing},
		{"cmd/pawsd", ClassMain},
		{"examples/quickstart", ClassMain},
		{"", ClassOther},
		{"internal/par", ClassOther},
		{"internal/lint", ClassOther},
	}
	for _, c := range cases {
		if got := classify(c.rel); got != c.want {
			t.Errorf("classify(%q) = %v, want %v", c.rel, got, c.want)
		}
	}
	if !goroutineSanctioned("internal/par") || !goroutineSanctioned("cmd/pawsd") {
		t.Error("par and cmd must be goroutine-sanctioned")
	}
	if goroutineSanctioned("internal/sim") || goroutineSanctioned("") {
		t.Error("sim and the root package must not be goroutine-sanctioned")
	}
	if !envelopeChecked("internal/serve") || !envelopeChecked("internal/gate") || envelopeChecked("internal/obs") {
		t.Error("errenvelope scope must be exactly serve and gate")
	}
}

// TestWriteJSON pins the machine-readable output shape.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings must render as [], got %q", got)
	}
	buf.Reset()
	fs := []Finding{{File: "a.go", Line: 3, Col: 2, Check: "wallclock", Message: "m", Package: "internal/sim"}}
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"file": "a.go"`, `"check": "wallclock"`, `"package": "internal/sim"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, buf.String())
		}
	}
}
