// Package milp implements a branch-and-bound mixed-integer solver on top of
// the bounded-variable simplex in internal/lp, plus the piecewise-linear
// (PWL) encodings the patrol planner needs to express black-box machine
// learning predictions inside problem (P) of Section VI.
//
// The solver handles maximization problems with binary/integer variables,
// using best-bound node selection, most-fractional branching, and an
// LP-guided rounding dive that supplies early incumbents. Concave PWL
// functions under maximization need no integer variables at all; the
// non-concave case uses the lambda method with segment-activation binaries.
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"paws/internal/lp"
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps explored nodes (default 10_000).
	MaxNodes int
	// TimeLimit caps wall time (0 = none).
	TimeLimit time.Duration
	// RelGap stops when (bound−incumbent)/|incumbent| falls below this
	// (default 1e-6).
	RelGap float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// LPMaxIter caps simplex iterations per node LP.
	LPMaxIter int
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status lp.Status
	X      []float64
	Obj    float64
	// Bound is the best remaining upper bound (== Obj at proven optimality).
	Bound float64
	// Nodes is the number of explored B&B nodes.
	Nodes int
	// Gap is the final relative optimality gap.
	Gap float64
}

// ErrNoIncumbent is returned when the search ends without any feasible
// integer solution.
var ErrNoIncumbent = errors.New("milp: no feasible integer solution found")

type node struct {
	lo, hi map[int]float64 // bound overrides
	bound  float64         // parent LP bound
	depth  int
}

// Solve maximizes the problem with the listed variables required integral.
func Solve(p *lp.Problem, intVars []int, opts Options) (Result, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 10000
	}
	if opts.RelGap <= 0 {
		opts.RelGap = 1e-6
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		//pawsvet:allow wallclock -- TimeLimit is an explicit opt-in wall-clock budget; zero (the deterministic default) never reads the clock
		deadline = time.Now().Add(opts.TimeLimit)
	}

	intSet := make(map[int]bool, len(intVars))
	for _, j := range intVars {
		if j < 0 || j >= p.NumVariables() {
			return Result{}, fmt.Errorf("milp: integer variable %d out of range", j)
		}
		intSet[j] = true
	}

	solveNode := func(nd *node) (lp.Solution, error) {
		q := p.Clone()
		for j, v := range nd.lo {
			lo, hi := q.Bounds(j)
			if v > lo {
				lo = v
			}
			q.SetBounds(j, lo, hi)
		}
		for j, v := range nd.hi {
			lo, hi := q.Bounds(j)
			if v < hi {
				hi = v
			}
			q.SetBounds(j, lo, hi)
		}
		return lp.Solve(q, lp.Options{MaxIter: opts.LPMaxIter})
	}

	root := &node{lo: map[int]float64{}, hi: map[int]float64{}, bound: math.Inf(1)}
	res := Result{Status: lp.Infeasible, Obj: math.Inf(-1), Bound: math.Inf(1)}
	var best []float64
	bestObj := math.Inf(-1)
	haveIncumbent := false

	// Node selection: depth-first dives until the first incumbent is found
	// (children are pushed so the LP-suggested branch is explored first),
	// then best-bound to close the gap. Pure best-bound can exhaust the node
	// budget without ever reaching an integral leaf on instances with many
	// SOS2 binaries.
	open := []*node{root}
	for len(open) > 0 {
		if res.Nodes >= opts.MaxNodes {
			res.Status = lp.IterLimit
			break
		}
		//pawsvet:allow wallclock -- deadline check for the opt-in TimeLimit budget; never taken when TimeLimit is unset
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Status = lp.IterLimit
			break
		}
		var nd *node
		if !haveIncumbent {
			nd = open[len(open)-1]
			open = open[:len(open)-1]
		} else {
			bi := 0
			for i := 1; i < len(open); i++ {
				if open[i].bound > open[bi].bound {
					bi = i
				}
			}
			nd = open[bi]
			open[bi] = open[len(open)-1]
			open = open[:len(open)-1]
		}

		if haveIncumbent && nd.bound <= bestObj+math.Abs(bestObj)*opts.RelGap {
			continue
		}
		res.Nodes++
		sol, err := solveNode(nd)
		if err != nil {
			return res, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return Result{Status: lp.Unbounded, Nodes: res.Nodes}, nil
		case lp.IterLimit:
			continue // treat as prunable; conservative
		}
		if haveIncumbent && sol.Obj <= bestObj+math.Abs(bestObj)*opts.RelGap {
			continue
		}
		// Find the most fractional integer variable.
		branch := -1
		bestFrac := opts.IntTol
		for j := range intSet {
			f := frac(sol.X[j])
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			if sol.Obj > bestObj {
				bestObj = sol.Obj
				best = append([]float64(nil), sol.X...)
				haveIncumbent = true
			}
			continue
		}
		v := sol.X[branch]
		down := &node{lo: cloneMap(nd.lo), hi: cloneMap(nd.hi), bound: sol.Obj, depth: nd.depth + 1}
		down.hi[branch] = math.Floor(v)
		up := &node{lo: cloneMap(nd.lo), hi: cloneMap(nd.hi), bound: sol.Obj, depth: nd.depth + 1}
		up.lo[branch] = math.Ceil(v)
		// Push so the LP-suggested side is popped first during DFS dives.
		if v-math.Floor(v) >= 0.5 {
			open = append(open, down, up)
		} else {
			open = append(open, up, down)
		}
	}

	if !haveIncumbent {
		if res.Status != lp.IterLimit {
			res.Status = lp.Infeasible
		}
		return res, ErrNoIncumbent
	}
	res.X = best
	res.Obj = bestObj
	// Remaining bound.
	remBound := bestObj
	for _, nd := range open {
		if nd.bound > remBound {
			remBound = nd.bound
		}
	}
	res.Bound = remBound
	if bestObj != 0 {
		res.Gap = (remBound - bestObj) / math.Abs(bestObj)
	} else {
		res.Gap = remBound - bestObj
	}
	if res.Status != lp.IterLimit {
		res.Status = lp.Optimal
	}
	return res, nil
}

func frac(v float64) float64 {
	f := v - math.Floor(v)
	return math.Min(f, 1-f)
}

func cloneMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// PWL describes a piecewise-linear function through breakpoints (Xs, Ys),
// with Xs strictly increasing.
type PWL struct {
	Xs, Ys []float64
}

// NewPWL validates and constructs a PWL function.
func NewPWL(xs, ys []float64) (PWL, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return PWL{}, fmt.Errorf("milp: PWL needs ≥2 matched breakpoints, got %d/%d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return PWL{}, fmt.Errorf("milp: PWL breakpoints must be strictly increasing at %d", i)
		}
	}
	return PWL{Xs: append([]float64(nil), xs...), Ys: append([]float64(nil), ys...)}, nil
}

// Eval linearly interpolates the PWL at x (clamped to the breakpoint range).
func (f PWL) Eval(x float64) float64 {
	xs, ys := f.Xs, f.Ys
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	i := sort.SearchFloat64s(xs, x)
	if xs[i] == x {
		return ys[i]
	}
	t := (x - xs[i-1]) / (xs[i] - xs[i-1])
	return ys[i-1]*(1-t) + ys[i]*t
}

// IsConcave reports whether the PWL has non-increasing slopes (within tol),
// in which case maximizing it needs no binaries.
func (f PWL) IsConcave(tol float64) bool {
	prev := math.Inf(1)
	for i := 1; i < len(f.Xs); i++ {
		s := (f.Ys[i] - f.Ys[i-1]) / (f.Xs[i] - f.Xs[i-1])
		if s > prev+tol {
			return false
		}
		prev = s
	}
	return true
}

// AddToProblem encodes y = f(x) into the problem with the lambda method:
//
//	x = Σ λ_k·Xs_k,  y = Σ λ_k·Ys_k,  Σ λ_k = 1,  λ ≥ 0,
//
// and, unless the function is concave (and the objective maximizes y),
// segment-activation binaries z_s with Σ z_s = 1 and λ_k ≤ z_{k-1} + z_k
// enforcing SOS2 adjacency. It returns the y variable index and the binary
// variable indices (empty for the concave case).
//
// objCoef is the objective coefficient placed directly on y.
func (f PWL) AddToProblem(p *lp.Problem, xVar int, objCoef float64, forceBinaries bool) (yVar int, binaries []int, err error) {
	k := len(f.Xs)
	lambdas := make([]int, k)
	for i := 0; i < k; i++ {
		lambdas[i] = p.AddVariable(0, 0, 1)
	}
	yVar = p.AddVariable(objCoef, minOf(f.Ys), maxOf(f.Ys))
	// Σ λ = 1.
	ones := make([]float64, k)
	for i := range ones {
		ones[i] = 1
	}
	if err := p.AddConstraint(lambdas, ones, lp.EQ, 1); err != nil {
		return 0, nil, err
	}
	// x − Σ λ Xs = 0.
	idx := append([]int{xVar}, lambdas...)
	coef := make([]float64, 0, k+1)
	coef = append(coef, 1)
	for _, xv := range f.Xs {
		coef = append(coef, -xv)
	}
	if err := p.AddConstraint(idx, coef, lp.EQ, 0); err != nil {
		return 0, nil, err
	}
	// y − Σ λ Ys = 0.
	idx2 := append([]int{yVar}, lambdas...)
	coef2 := make([]float64, 0, k+1)
	coef2 = append(coef2, 1)
	for _, yv := range f.Ys {
		coef2 = append(coef2, -yv)
	}
	if err := p.AddConstraint(idx2, coef2, lp.EQ, 0); err != nil {
		return 0, nil, err
	}
	if !forceBinaries && objCoef >= 0 && f.IsConcave(1e-9) {
		return yVar, nil, nil
	}
	// Segment binaries: z_s for segments s = 0..k−2.
	segs := k - 1
	zs := make([]int, segs)
	for s := 0; s < segs; s++ {
		zs[s] = p.AddVariable(0, 0, 1)
	}
	onesZ := make([]float64, segs)
	for i := range onesZ {
		onesZ[i] = 1
	}
	if err := p.AddConstraint(zs, onesZ, lp.EQ, 1); err != nil {
		return 0, nil, err
	}
	// λ_k ≤ z_{k−1} + z_k (boundary cases use the single adjacent segment).
	for i := 0; i < k; i++ {
		var zi []int
		if i > 0 {
			zi = append(zi, zs[i-1])
		}
		if i < segs {
			zi = append(zi, zs[i])
		}
		idx := append([]int{lambdas[i]}, zi...)
		coef := make([]float64, 0, len(zi)+1)
		coef = append(coef, 1)
		for range zi {
			coef = append(coef, -1)
		}
		if err := p.AddConstraint(idx, coef, lp.LE, 0); err != nil {
			return 0, nil, err
		}
	}
	return yVar, zs, nil
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
