package milp

import (
	"math"
	"testing"

	"paws/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary → a=0,b=1,c=1 (20).
	p := lp.NewProblem()
	a := p.AddVariable(10, 0, 1)
	b := p.AddVariable(13, 0, 1)
	c := p.AddVariable(7, 0, 1)
	p.AddConstraint([]int{a, b, c}, []float64{3, 4, 2}, lp.LE, 6)
	res, err := Solve(p, []int{a, b, c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-20) > 1e-6 {
		t.Fatalf("obj = %v want 20", res.Obj)
	}
	for _, j := range []int{a, b, c} {
		if frac(res.X[j]) > 1e-6 {
			t.Fatalf("non-integral solution: %v", res.X)
		}
	}
}

func TestIntegerVsRelaxation(t *testing.T) {
	// max x s.t. 2x ≤ 3, x integer → x=1 (relaxation 1.5).
	p := lp.NewProblem()
	x := p.AddVariable(1, 0, 10)
	p.AddConstraint([]int{x}, []float64{2}, lp.LE, 3)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj-1) > 1e-6 {
		t.Fatalf("obj = %v want 1", res.Obj)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(1, 0, 1)
	p.AddConstraint([]int{x}, []float64{2}, lp.GE, 1) // x ≥ 0.5
	p.AddConstraint([]int{x}, []float64{2}, lp.LE, 1.5)
	// 0.5 ≤ x ≤ 0.75 has no integer point.
	_, err := Solve(p, []int{x}, Options{})
	if err != ErrNoIncumbent {
		t.Fatalf("expected ErrNoIncumbent, got %v", err)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x binary, y ≤ 1.5 continuous, x + y ≤ 2 → x=1, y=1.
	p := lp.NewProblem()
	x := p.AddVariable(2, 0, 1)
	y := p.AddVariable(1, 0, 1.5)
	p.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 2)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj-3) > 1e-6 {
		t.Fatalf("obj = %v want 3", res.Obj)
	}
}

func TestIntVarOutOfRange(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable(1, 0, 1)
	if _, err := Solve(p, []int{5}, Options{}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestNodeLimitReported(t *testing.T) {
	// A problem with enough binaries that 1 node cannot close the gap.
	p := lp.NewProblem()
	var vars []int
	for i := 0; i < 12; i++ {
		vars = append(vars, p.AddVariable(1+0.1*float64(i%3), 0, 1))
	}
	coef := make([]float64, len(vars))
	for i := range coef {
		coef[i] = 1 + 0.37*float64(i%5)
	}
	p.AddConstraint(vars, coef, lp.LE, 7.3)
	res, err := Solve(p, vars, Options{MaxNodes: 1})
	if err == ErrNoIncumbent {
		return // acceptable: no incumbent in 1 node
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.IterLimit && res.Gap < 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestNewPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{0}, []float64{0}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := NewPWL([]float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := NewPWL([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Fatal("expected non-increasing error")
	}
	if _, err := NewPWL([]float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPWLEval(t *testing.T) {
	f, err := NewPWL([]float64{0, 1, 3}, []float64{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 1.5}, {3, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := f.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestPWLIsConcave(t *testing.T) {
	conc, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 1, 1.5})
	if !conc.IsConcave(1e-9) {
		t.Fatal("should be concave")
	}
	nonc, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 0.1, 2})
	if nonc.IsConcave(1e-9) {
		t.Fatal("should not be concave")
	}
}

func TestPWLConcaveMaximizationNoBinaries(t *testing.T) {
	// max f(x), f concave with peak at x=2 (f = min(x, 4-x) shape).
	p := lp.NewProblem()
	x := p.AddVariable(0, 0, 4)
	f, _ := NewPWL([]float64{0, 2, 4}, []float64{0, 2, 0})
	yv, bins, err := f.AddToProblem(p, x, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 0 {
		t.Fatal("concave maximization should not need binaries")
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj-2) > 1e-6 || math.Abs(res.X[yv]-2) > 1e-6 {
		t.Fatalf("obj = %v, y = %v, want 2", res.Obj, res.X[yv])
	}
	if math.Abs(res.X[x]-2) > 1e-6 {
		t.Fatalf("x = %v want 2", res.X[x])
	}
}

func TestPWLNonConcaveNeedsBinaries(t *testing.T) {
	// f has a dip: without SOS2 adjacency the LP would "cheat" by mixing
	// non-adjacent breakpoints. Constrain x = 1 where true f(1) = 0.1 but the
	// relaxation could claim (f(0)+f(2))/2 = 1.
	p := lp.NewProblem()
	x := p.AddVariable(0, 0, 2)
	p.AddConstraint([]int{x}, []float64{1}, lp.EQ, 1)
	f, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 0.1, 2})
	yv, bins, err := f.AddToProblem(p, x, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("non-concave function must get binaries")
	}
	res, err := Solve(p, bins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[yv]-0.1) > 1e-6 {
		t.Fatalf("y = %v want 0.1 (SOS2 adjacency enforced)", res.X[yv])
	}
}

func TestPWLSumOfTwoFunctions(t *testing.T) {
	// Two PWL objectives over a shared budget: max f(x1) + f(x2),
	// x1 + x2 ≤ 3, f concave sqrt-like → split the budget.
	p := lp.NewProblem()
	x1 := p.AddVariable(0, 0, 3)
	x2 := p.AddVariable(0, 0, 3)
	p.AddConstraint([]int{x1, x2}, []float64{1, 1}, lp.LE, 3)
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 1.4, 1.7}
	f, _ := NewPWL(xs, ys)
	if _, _, err := f.AddToProblem(p, x1, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.AddToProblem(p, x2, 1, false); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: x1 = 2, x2 = 1 (or symmetric) → 1.4 + 1 = 2.4.
	if math.Abs(res.Obj-2.4) > 1e-6 {
		t.Fatalf("obj = %v want 2.4", res.Obj)
	}
}

func TestSolveRespectsForceBinaries(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(0, 0, 2)
	f, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 1, 1.5}) // concave
	_, bins, err := f.AddToProblem(p, x, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("forceBinaries must add binaries even for concave PWL")
	}
	res, err := Solve(p, bins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj-1.5) > 1e-6 {
		t.Fatalf("obj = %v want 1.5", res.Obj)
	}
}
