// Package store is the shared durable model store of a pawsd fleet: a
// directory of content-addressed model artifacts plus one index file, so N
// stateless replicas can serve the same registry without sharing a process.
//
// Layout:
//
//	<dir>/<sha256>.pawsmodl — one immutable model blob per content hash
//	                          (the versioned PAWSMODL encoding; identical
//	                          models encode to identical bytes, so the file
//	                          name IS the artifact identity)
//	<dir>/index.json        — name → {hash, kind, park, generation, …}
//	<dir>/index.lock        — flock serializing read-modify-write publishes
//
// Blobs are written once under a temporary name and atomically renamed into
// place; a hash that already exists is never rewritten. The index is also
// replaced by atomic rename, so a reader can never observe a torn index —
// it sees either the old mapping or the new one. Publishes from concurrent
// processes are serialized by an advisory flock on index.lock; each publish
// bumps the per-name generation, so concurrent writers of the same name
// resolve last-writer-wins by generation and every intermediate state is a
// valid index.
//
// Readers are poll-based: Stat is a cheap mtime/size probe and Load decodes
// the full index, which is how pawsd replicas notice models published by
// their peers (paws.StoreSyncer).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// IndexVersion is the schema version written into index.json; readers
// reject newer versions so format evolution fails loudly.
const IndexVersion = 1

// indexName and lockName are the fixed file names inside a store directory.
const (
	indexName = "index.json"
	lockName  = "index.lock"
)

// ErrUnknownName is returned by Lookup for names absent from the index.
var ErrUnknownName = errors.New("store: unknown model name")

// Entry is one published model: the content hash of its artifact plus the
// metadata a replica needs to rebuild the model's serving context
// deterministically (park spec, scale and seed regenerate the same feature
// rasters everywhere).
type Entry struct {
	// Name is the registry name replicas serve the model under.
	Name string `json:"name"`
	// Hash is the sha256 (hex) of the PAWSMODL blob; the artifact lives at
	// <dir>/<hash>.pawsmodl.
	Hash string `json:"hash"`
	// Kind is the model kind string ("DTB-iW", …) — informational.
	Kind string `json:"kind"`
	// Park, Scale and Seed identify the serving context: regenerating the
	// park scenario from them yields the exact feature vectors the model
	// was trained against.
	Park  string `json:"park"`
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// Generation is the per-name publish counter, assigned by the store
	// under the publish lock. Replicas re-register a name whenever the
	// generation they serve falls behind; concurrent publishers of one name
	// resolve last-writer-wins by generation.
	Generation uint64 `json:"generation"`
}

// Index is the decoded index.json: the full name → entry mapping.
type Index struct {
	Version int              `json:"version"`
	Models  map[string]Entry `json:"models"`
}

// Store is a handle on one store directory. It holds no state beyond the
// path; every method goes to disk, so any number of handles (in any number
// of processes) may share a directory.
type Store struct {
	dir string
}

// Open ensures the directory exists and returns a handle on it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// HashBytes returns the sha256 hex digest used as a blob's identity.
func HashBytes(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// blobPath is the artifact path for a content hash.
func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.dir, hash+".pawsmodl")
}

// Publish writes the model blob (if its hash is not already present) and
// updates the index entry for e.Name under the publish lock, assigning the
// next per-name generation. The returned Entry carries the assigned hash
// and generation. e.Hash and e.Generation are ignored on input.
func (s *Store) Publish(e Entry, blob []byte) (Entry, error) {
	if e.Name == "" {
		return Entry{}, errors.New("store: publish needs a model name")
	}
	if len(blob) == 0 {
		return Entry{}, errors.New("store: publish needs a model blob")
	}
	e.Hash = HashBytes(blob)
	if err := s.writeBlob(e.Hash, blob); err != nil {
		return Entry{}, err
	}
	unlock, err := s.lock()
	if err != nil {
		return Entry{}, err
	}
	defer unlock()
	idx, _, err := s.Load()
	if err != nil {
		return Entry{}, err
	}
	e.Generation = idx.Models[e.Name].Generation + 1
	idx.Models[e.Name] = e
	if err := s.writeIndex(idx); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// writeBlob stores a content-addressed artifact: write to a temporary name,
// fsync, atomically rename. An existing blob with the same hash is the same
// bytes by construction and is left untouched.
func (s *Store) writeBlob(hash string, blob []byte) error {
	path := s.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "blob-*.tmp")
	if err != nil {
		return fmt.Errorf("store: write blob: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write blob: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: write blob: %w", err)
	}
	return nil
}

// writeIndex atomically replaces index.json (temp file + rename), so
// readers always parse a complete document.
func (s *Store) writeIndex(idx Index) error {
	idx.Version = IndexVersion
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(s.dir, "index-*.tmp")
	if err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	return nil
}

// lock takes the advisory publish lock (blocking) and returns its release.
func (s *Store) lock() (func(), error) {
	f, err := os.OpenFile(filepath.Join(s.dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

// Load reads and decodes the index. A store with no index yet returns an
// empty mapping and the zero time — a valid, empty fleet.
func (s *Store) Load() (Index, time.Time, error) {
	path := filepath.Join(s.dir, indexName)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Index{Version: IndexVersion, Models: map[string]Entry{}}, time.Time{}, nil
	}
	if err != nil {
		return Index{}, time.Time{}, fmt.Errorf("store: read index: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return Index{}, time.Time{}, fmt.Errorf("store: stat index: %w", err)
	}
	var idx Index
	if err := json.Unmarshal(b, &idx); err != nil {
		return Index{}, time.Time{}, fmt.Errorf("store: decode index: %w", err)
	}
	if idx.Version > IndexVersion {
		return Index{}, time.Time{}, fmt.Errorf("store: index has schema version %d; this build reads up to %d", idx.Version, IndexVersion)
	}
	if idx.Models == nil {
		idx.Models = map[string]Entry{}
	}
	return idx, fi.ModTime(), nil
}

// Stat is the cheap change probe replicas poll: the index mtime and size
// (zero values when no index exists yet). A reload is warranted whenever
// either differs from the last observation.
func (s *Store) Stat() (mtime time.Time, size int64, err error) {
	fi, err := os.Stat(filepath.Join(s.dir, indexName))
	if errors.Is(err, fs.ErrNotExist) {
		return time.Time{}, 0, nil
	}
	if err != nil {
		return time.Time{}, 0, fmt.Errorf("store: stat index: %w", err)
	}
	return fi.ModTime(), fi.Size(), nil
}

// Lookup returns the index entry for one name.
func (s *Store) Lookup(name string) (Entry, error) {
	idx, _, err := s.Load()
	if err != nil {
		return Entry{}, err
	}
	e, ok := idx.Models[name]
	if !ok {
		return Entry{}, fmt.Errorf("%w %q", ErrUnknownName, name)
	}
	return e, nil
}

// Get reads the artifact blob for a content hash.
func (s *Store) Get(hash string) ([]byte, error) {
	b, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("store: read blob %s: %w", hash, err)
	}
	if got := HashBytes(b); got != hash {
		return nil, fmt.Errorf("store: blob %s is corrupt (content hashes to %s)", hash, got)
	}
	return b, nil
}
