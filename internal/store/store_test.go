package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestPublishLookupGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("PAWSMODL-test-blob-1")
	e, err := s.Publish(Entry{Name: "default", Kind: "DTB-iW", Park: "MFNP", Scale: "small", Seed: 7}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if e.Hash != HashBytes(blob) || e.Generation != 1 {
		t.Fatalf("published entry %+v", e)
	}
	got, err := s.Lookup("default")
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("lookup %+v != published %+v", got, e)
	}
	back, err := s.Get(e.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(blob) {
		t.Fatalf("blob round trip: %q != %q", back, blob)
	}
	if _, err := s.Lookup("nope"); err == nil {
		t.Fatal("lookup of unknown name succeeded")
	}
}

func TestPublishBumpsGenerationAndKeepsOldBlobs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.Publish(Entry{Name: "m", Park: "MFNP"}, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Publish(Entry{Name: "m", Park: "MFNP"}, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Generation != e1.Generation+1 {
		t.Fatalf("generations %d then %d, want +1", e1.Generation, e2.Generation)
	}
	// Content addressing: the superseded artifact is still readable (a
	// replica mid-download of generation 1 must not 404).
	if _, err := s.Get(e1.Hash); err != nil {
		t.Fatalf("old blob gone: %v", err)
	}
	got, err := s.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != e2.Hash || got.Generation != e2.Generation {
		t.Fatalf("index entry %+v, want the later publish %+v", got, e2)
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Publish(Entry{Name: "m"}, []byte("clean"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.blobPath(e.Hash), []byte("dirty"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(e.Hash); err == nil {
		t.Fatal("corrupt blob read succeeded")
	}
}

// TestConcurrentPublishSameName is the two-replicas-publish-one-name race:
// many goroutines, each with its OWN handle on the shared directory (the
// multi-process topology), publish the same name concurrently while a
// reader continuously reloads the index. The index must parse on every
// read (atomic rename → never torn), generations must be dense, and the
// final entry must be the publish that was assigned the highest generation
// — last-writer-wins.
func TestConcurrentPublishSameName(t *testing.T) {
	dir := t.TempDir()
	const publishers, rounds = 4, 8

	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		rs, err := Open(dir)
		if err != nil {
			readerErr <- err
			return
		}
		var lastGen uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			idx, _, err := rs.Load()
			if err != nil {
				readerErr <- fmt.Errorf("torn or invalid index: %w", err)
				return
			}
			if e, ok := idx.Models["shared"]; ok {
				if e.Generation < lastGen {
					readerErr <- fmt.Errorf("generation went backwards: %d after %d", e.Generation, lastGen)
					return
				}
				lastGen = e.Generation
			}
		}
	}()

	var mu sync.Mutex
	byGen := map[uint64]string{} // generation → hash the publisher wrote
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				blob := []byte(fmt.Sprintf("model-p%d-r%d", p, r))
				e, err := s.Publish(Entry{Name: "shared", Park: "MFNP"}, blob)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, dup := byGen[e.Generation]; dup {
					t.Errorf("generation %d assigned twice (%s and %s)", e.Generation, prev, e.Hash)
				}
				byGen[e.Generation] = e.Hash
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Lookup("shared")
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(publishers * rounds)
	if final.Generation != total {
		t.Fatalf("final generation %d, want %d (dense under the publish lock)", final.Generation, total)
	}
	if want := byGen[total]; final.Hash != want {
		t.Fatalf("index hash %s is not the last writer's %s", final.Hash, want)
	}
	// Every published artifact stayed addressable.
	for gen, hash := range byGen {
		if _, err := s.Get(hash); err != nil {
			t.Fatalf("blob of generation %d unreadable: %v", gen, err)
		}
	}
}

func TestStatTracksIndexChanges(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mt, size, err := s.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !mt.IsZero() || size != 0 {
		t.Fatalf("empty store stat = (%v, %d), want zero values", mt, size)
	}
	if _, err := s.Publish(Entry{Name: "a"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	mt1, size1, err := s.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if mt1.IsZero() || size1 == 0 {
		t.Fatal("stat did not observe the first publish")
	}
	// Force a distinguishable mtime even on coarse filesystem clocks.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(s.dir, indexName), past, past); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(Entry{Name: "b"}, []byte("yy")); err != nil {
		t.Fatal(err)
	}
	mt2, size2, err := s.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !mt2.After(past) && size2 == size1 {
		t.Fatal("second publish changed neither mtime nor size")
	}
}
