package env

import (
	"context"
	"fmt"

	"paws/internal/obs"
	"paws/internal/rng"
)

// Stepper is what a policy driver needs from an environment: the local Env
// and the remote HTTP Client both implement it, so the same Drive call
// plays a policy against an in-process episode or a /v1/envs session — and
// produces byte-identical results for the same park, seed and budget.
type Stepper interface {
	// Reset starts a fresh episode and returns its initial observation.
	Reset(ctx context.Context) (*Obs, error)
	// Step executes one season of the given per-cell effort allocation.
	Step(ctx context.Context, effort []float64) (*Obs, SeasonStats, bool, error)
}

// DriveConfig tunes one Drive call.
type DriveConfig struct {
	// Seed roots the policy's deterministic random streams (one split per
	// season, labeled by policy name — the same convention sim.Run uses, so
	// a driven policy reproduces its sim.Run season log exactly).
	Seed int64
	// Seasons bounds the episode; Drive also stops early when the Stepper
	// reports done.
	Seasons int
	// Progress, when non-nil, is invoked after each completed season with
	// (policy name, seasons finished, total seasons). It is observational
	// only and never affects the result.
	Progress func(policy string, season, seasons int)
}

// Drive plays one policy through one episode: Reset, then for each season
// plan (under a per-season split of the seed's policy stream) and Step. The
// season's Routes count is overlaid from the plan — routes are a reporting
// artifact of the policy, not an environment outcome. The per-season "plan"
// and "patrol" compute spans match the ones sim.Run always recorded, so
// /tracez keeps its shape.
func Drive(ctx context.Context, st Stepper, p Policy, cfg DriveConfig) (PolicyResult, error) {
	o, err := st.Reset(ctx)
	if err != nil {
		return PolicyResult{}, err
	}
	res := PolicyResult{Policy: p.Name()}
	root := rng.New(cfg.Seed)
	for s := 0; s < cfg.Seasons; s++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		item := fmt.Sprintf("%s season %d", p.Name(), s)
		stream := root.Split(fmt.Sprintf("policy:%s:season:%d", p.Name(), s))
		endPlan := obs.StartSpan(ctx, "plan", item)
		plan, err := p.PlanSeason(ctx, o, s, stream)
		endPlan()
		if err != nil {
			return res, fmt.Errorf("env: policy %s season %d: %w", p.Name(), s, err)
		}
		endPatrol := obs.StartSpan(ctx, "patrol", item)
		next, stats, done, err := st.Step(ctx, plan.Effort)
		endPatrol()
		if err != nil {
			return res, fmt.Errorf("env: policy %s season %d: %w", p.Name(), s, err)
		}
		stats.Routes = len(plan.Routes)
		res.Seasons = append(res.Seasons, stats)
		res.Snares += stats.Snares
		res.Detections += stats.Detections
		res.Displaced += stats.Displaced
		o = next
		if cfg.Progress != nil {
			cfg.Progress(p.Name(), s+1, cfg.Seasons)
		}
		if done {
			break
		}
	}
	return res, nil
}
