package env

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"paws/internal/geo"
	"paws/internal/poach"
)

// Client is a remote environment session: a Stepper over internal/serve's
// /v1/envs endpoints. It accretes the observed record locally from the
// create response and per-step deltas, so every Step returns a complete Obs
// without re-shipping the whole history — and env.Drive plays a policy
// against it exactly as it would against a local Env, byte-identically for
// the same park, seed and budget.
//
// The park is injected, not fetched: the server resolves the spec in
// Req.Park at its default scale, and the caller must supply the identical
// *geo.Park (the root package's SimulateRemote resolves it the same way the
// local Simulate does). A Client is not safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	park    *geo.Park
	req     CreateRequest

	id string
	// Local copy of the observed record, accreted from wire messages.
	months       int
	effort       [][]float64
	detections   [][]bool
	observations []poach.Observation
	budgetKM     float64
}

// NewClient builds a remote session handle. baseURL addresses pawsd or
// pawsgate ("http://host:port"); hc nil selects http.DefaultClient; park
// must be the caller's resolution of req.Park. No request is made until
// Reset.
func NewClient(baseURL string, hc *http.Client, park *geo.Park, req CreateRequest) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: hc, park: park, req: req}
}

// ID returns the server-assigned session ID ("" before the first Reset).
func (c *Client) ID() string { return c.id }

// RemoteError is a structured error envelope decoded from a non-2xx
// response: the server's machine-readable code plus the HTTP status.
type RemoteError struct {
	Status  int
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("env: remote %s (%d %s)", e.Message, e.Status, e.Code)
}

// decodeError turns a non-2xx response into a *RemoteError, falling back to
// the raw body when it is not a structured envelope.
func decodeError(resp *http.Response, body []byte) error {
	var envl struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envl); err == nil && envl.Error.Code != "" {
		return &RemoteError{Status: resp.StatusCode, Code: envl.Error.Code, Message: envl.Error.Message}
	}
	return &RemoteError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(body))}
}

// do issues one JSON round-trip and decodes a 2xx body into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("env: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("env: build %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("env: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("env: read %s %s: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, raw)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("env: decode %s %s: %w", method, path, err)
	}
	return nil
}

// accrete replaces (full message) or appends (delta) the local record.
func (c *Client) accrete(w WireObs, full bool) {
	if full {
		c.effort = c.effort[:0]
		c.detections = c.detections[:0]
		c.observations = c.observations[:0]
	}
	c.effort = append(c.effort, w.Effort...)
	c.detections = append(c.detections, w.Detections...)
	for _, o := range w.Observations {
		c.observations = append(c.observations, poach.Observation{Month: o.Month, CellID: o.CellID, Poaching: o.Poaching})
	}
	c.months = w.Months
	c.budgetKM = w.BudgetKM
}

// obs builds the current local observation.
func (c *Client) obs() *Obs {
	return &Obs{
		Park:         c.park,
		Months:       c.months,
		Effort:       c.effort,
		Detections:   c.detections,
		Observations: c.observations,
		BudgetKM:     c.budgetKM,
	}
}

// Reset starts a fresh episode by creating a new server session (deleting
// the previous one first, best-effort, if this Client already held one) and
// returns the initial observation.
func (c *Client) Reset(ctx context.Context) (*Obs, error) {
	if c.id != "" {
		_ = c.do(ctx, http.MethodDelete, "/v1/envs/"+c.id, nil, nil)
		c.id = ""
	}
	var resp CreateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/envs", c.req, &resp); err != nil {
		return nil, err
	}
	c.id = resp.Session.ID
	c.accrete(resp.Obs, true)
	return c.obs(), nil
}

// Step executes one season remotely and accretes the returned delta.
func (c *Client) Step(ctx context.Context, effort []float64) (*Obs, SeasonStats, bool, error) {
	if c.id == "" {
		return nil, SeasonStats{}, false, fmt.Errorf("env: client has no session (call Reset first)")
	}
	var resp StepResponse
	err := c.do(ctx, http.MethodPost, "/v1/envs/"+c.id+"/step", StepRequest{Effort: effort, TimeoutMS: c.req.TimeoutMS}, &resp)
	if err != nil {
		return nil, SeasonStats{}, false, err
	}
	c.accrete(resp.Delta, false)
	return c.obs(), resp.Stats, resp.Done, nil
}

// Get fetches the session snapshot.
func (c *Client) Get(ctx context.Context) (Snapshot, error) {
	if c.id == "" {
		return Snapshot{}, fmt.Errorf("env: client has no session (call Reset first)")
	}
	var snap Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/envs/"+c.id, nil, &snap)
	return snap, err
}

// Close deletes the server session, if any.
func (c *Client) Close(ctx context.Context) error {
	if c.id == "" {
		return nil
	}
	err := c.do(ctx, http.MethodDelete, "/v1/envs/"+c.id, nil, nil)
	c.id = ""
	return err
}
