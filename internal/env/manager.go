package env

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the session layer behind POST /v1/envs: a Manager retains
// live environments by ID so a remote learner can step one episode across
// many HTTP requests. It follows internal/job's lifecycle conventions —
// replica-prefixed IDs ("e-<replica>-000001"), lazy TTL + LRU retention
// with a fake-clock test hook, drain-aware lookups (a miss during shutdown
// is "shutting down", not "unknown"), and a graceful Shutdown that waits
// for in-flight steps.

// Sentinel errors of the Manager API.
var (
	// ErrUnknownSession is returned for IDs that never existed or were
	// already evicted (idle TTL, LRU bound, or explicit delete).
	ErrUnknownSession = errors.New("env: unknown session")
	// ErrShuttingDown is returned by Create after Shutdown began.
	ErrShuttingDown = errors.New("env: manager is shutting down")
	// ErrCapacity is returned by Create when MaxSessions live sessions are
	// already retained; the HTTP layer renders it as 429 + Retry-After.
	ErrCapacity = errors.New("env: session capacity reached")
)

// ManagerConfig tunes a Manager.
type ManagerConfig struct {
	// TTL evicts sessions idle (no step/get) longer than this; 0 selects
	// the 15-minute default, negative disables TTL eviction. Eviction
	// happens lazily on Manager calls.
	TTL time.Duration
	// MaxSessions bounds retained sessions (0 selects the default of 64).
	// At the bound, finished (done) sessions are LRU-evicted to make room;
	// if every retained session is still live, Create fails with
	// ErrCapacity.
	MaxSessions int
	// IDPrefix namespaces session IDs ("e-<prefix>-000001" instead of
	// "e-000001"), mirroring job.Config.IDPrefix: in a fleet every replica
	// sets a distinct prefix so the routing proxy can tell whose session an
	// ID names.
	IDPrefix string
	// now is a test hook for TTL eviction; nil means time.Now.
	now func() time.Time
}

// Snapshot is a point-in-time view of a session, safe to serialize.
type Snapshot struct {
	ID string `json:"id"`
	// Park is the park's name (not its spec — the name the report prints).
	Park string `json:"park"`
	// Season is the next season index Step will execute (== seasons
	// completed); Seasons is the episode length.
	Season  int `json:"season"`
	Seasons int `json:"seasons"`
	// Months is the total observed months (bootstrap + stepped).
	Months   int       `json:"months"`
	Done     bool      `json:"done"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// Stats is a point-in-time load summary of a Manager — the env slice of
// /statusz, which the gate's env-session routing scores replicas by.
type Stats struct {
	// Active is the number of retained sessions whose episode is not done.
	Active int `json:"active"`
	// Sessions is the total retained (live + finished-but-not-evicted).
	Sessions int `json:"sessions"`
	// Created counts sessions created over the Manager's lifetime.
	Created int64 `json:"created"`
	// Steps counts seasons stepped over the Manager's lifetime.
	Steps int64 `json:"steps"`
}

// session is the Manager's record of one environment. The Manager lock
// guards the map and the bookkeeping fields; the per-session mutex
// serializes Step/Reset compute so concurrent requests against one ID
// execute in some serial order instead of racing the Env.
type session struct {
	id      string
	env     *Env
	created time.Time

	mu       sync.Mutex // serializes env access
	lastUsed time.Time  // guarded by the Manager lock
}

// Manager retains stepped environments by ID. All methods are safe for
// concurrent use.
type Manager struct {
	cfg ManagerConfig

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	closed   bool
	created  int64
	steps    int64
	inflight sync.WaitGroup // steps in progress, awaited by Shutdown
}

// NewManager builds a Manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.TTL == 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Manager{cfg: cfg, sessions: map[string]*session{}}
}

// Create retains a fresh environment and returns its session snapshot. The
// Env must be newly built (Reset) and is owned by the Manager afterwards.
func (m *Manager) Create(e *Env) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrShuttingDown
	}
	m.evictLocked()
	if len(m.sessions) >= m.cfg.MaxSessions {
		// Make room by retiring finished episodes before shedding.
		m.evictDoneLocked(len(m.sessions) - m.cfg.MaxSessions + 1)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return Snapshot{}, fmt.Errorf("%w (%d sessions retained, max %d)", ErrCapacity, len(m.sessions), m.cfg.MaxSessions)
	}
	m.nextID++
	id := fmt.Sprintf("e-%06d", m.nextID)
	if m.cfg.IDPrefix != "" {
		id = fmt.Sprintf("e-%s-%06d", m.cfg.IDPrefix, m.nextID)
	}
	now := m.cfg.now()
	s := &session{id: id, env: e, created: now, lastUsed: now}
	m.sessions[id] = s
	m.created++
	return m.snapshotLocked(s), nil
}

// lookupLocked resolves a session ID; callers hold the lock. A miss while
// the Manager is draining reports ErrShuttingDown, not ErrUnknownSession:
// during shutdown sessions are being dropped while clients may still hold
// valid IDs, and telling such a client its session "never existed" is
// wrong — the honest answer is that the server is going away. (This is the
// same drain-vs-unknown distinction the job manager makes.)
func (m *Manager) lookupLocked(id string) (*session, error) {
	if s, ok := m.sessions[id]; ok {
		return s, nil
	}
	if m.closed {
		return nil, fmt.Errorf("%w (session %q unknown or already drained)", ErrShuttingDown, id)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownSession, id)
}

// snapshotLocked builds a Snapshot; callers hold the Manager lock. The Env
// fields it reads are only mutated under the session mutex by Step, which
// also holds the Manager lock briefly before and after compute — stale
// reads here are bounded to "a step is in flight right now".
func (m *Manager) snapshotLocked(s *session) Snapshot {
	return Snapshot{
		ID:       s.id,
		Park:     s.env.Config().Park.Name,
		Season:   s.env.Season(),
		Seasons:  s.env.Config().Seasons,
		Months:   s.env.Months(),
		Done:     s.env.Done(),
		Created:  s.created,
		LastUsed: s.lastUsed,
	}
}

// Get returns a session's snapshot and refreshes its idle clock.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	s, err := m.lookupLocked(id)
	if err != nil {
		return Snapshot{}, err
	}
	s.lastUsed = m.cfg.now()
	return m.snapshotLocked(s), nil
}

// Step executes one season on a session. Concurrent steps on one session
// serialize on its mutex; the Manager lock is not held during compute, so
// one long step never blocks other sessions. Stepping a finished episode
// returns ErrDone (the Env's own error), an evicted or never-created ID
// returns ErrUnknownSession.
func (m *Manager) Step(ctx context.Context, id string, effort []float64) (*Obs, SeasonStats, bool, error) {
	m.mu.Lock()
	m.evictLocked()
	s, err := m.lookupLocked(id)
	if err != nil {
		m.mu.Unlock()
		return nil, SeasonStats{}, false, err
	}
	s.lastUsed = m.cfg.now()
	m.inflight.Add(1)
	m.mu.Unlock()
	defer m.inflight.Done()

	s.mu.Lock()
	o, st, done, err := s.env.Step(ctx, effort)
	s.mu.Unlock()

	m.mu.Lock()
	s.lastUsed = m.cfg.now()
	if err == nil {
		m.steps++
	}
	m.mu.Unlock()
	return o, st, done, err
}

// Remove drops a session (any state — unlike jobs, a live episode is the
// caller's to abandon).
func (m *Manager) Remove(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.lookupLocked(id)
	if err != nil {
		return Snapshot{}, err
	}
	snap := m.snapshotLocked(s)
	delete(m.sessions, id)
	return snap, nil
}

// Stats returns the Manager's current load summary.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	st := Stats{Sessions: len(m.sessions), Created: m.created, Steps: m.steps}
	for _, s := range m.sessions {
		if !s.env.Done() {
			st.Active++
		}
	}
	return st
}

// RetryAfter estimates when a shed Create is worth retrying: the soonest
// idle-TTL expiry among retained sessions (clamped to ≥ 1s), or 1s when TTL
// eviction is disabled.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.TTL <= 0 || len(m.sessions) == 0 {
		return time.Second
	}
	now := m.cfg.now()
	soonest := m.cfg.TTL
	for _, s := range m.sessions {
		if d := s.lastUsed.Add(m.cfg.TTL).Sub(now); d < soonest {
			soonest = d
		}
	}
	if soonest < time.Second {
		soonest = time.Second
	}
	return soonest
}

// Shutdown stops new sessions, waits for in-flight steps to finish (or ctx
// to expire), then drops every session. Unlike jobs, sessions hold no
// queued work to drain — an episode's remaining seasons simply never get
// stepped — so shutdown is bounded by the single step in flight per
// session.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	doneCh := make(chan struct{})
	go func() {
		m.inflight.Wait()
		close(doneCh)
	}()
	var err error
	select {
	case <-doneCh:
	case <-ctx.Done():
		err = ctx.Err()
	}
	m.mu.Lock()
	m.sessions = map[string]*session{}
	m.mu.Unlock()
	return err
}

// evictLocked applies retention lazily: sessions idle past the TTL go
// first (live or done — an abandoned episode must not pin memory forever),
// then finished sessions beyond MaxSessions, oldest-idle first. Live
// sessions are never LRU-evicted; Create sheds instead (ErrCapacity).
// Callers hold the lock.
func (m *Manager) evictLocked() {
	now := m.cfg.now()
	for id, s := range m.sessions {
		if m.cfg.TTL > 0 && now.Sub(s.lastUsed) > m.cfg.TTL {
			delete(m.sessions, id)
		}
	}
	m.evictDoneLocked(len(m.sessions) - m.cfg.MaxSessions)
}

// evictDoneLocked drops up to k finished sessions, oldest idle first (ID
// ascending on ties). Callers hold the lock.
func (m *Manager) evictDoneLocked(k int) {
	if k <= 0 {
		return
	}
	var done []*session
	for _, s := range m.sessions {
		if s.env.Done() {
			done = append(done, s)
		}
	}
	sortSessionsByIdle(done)
	for _, s := range done {
		if k <= 0 {
			break
		}
		delete(m.sessions, s.id)
		k--
	}
}

// sortSessionsByIdle orders oldest lastUsed first, ID ascending on ties.
func sortSessionsByIdle(ss []*session) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0; j-- {
			a, b := ss[j-1], ss[j]
			if a.lastUsed.Before(b.lastUsed) || (a.lastUsed.Equal(b.lastUsed) && a.id < b.id) {
				break
			}
			ss[j-1], ss[j] = b, a
		}
	}
}
