package env

import (
	"sort"

	"paws/internal/poach"
)

// This file is the wire schema of the remote environment surface
// (internal/serve's /v1/envs): the request/response DTOs shared by the
// server handlers and the HTTP Client, so the two cannot drift. Floats
// round-trip bit-exactly through JSON (encoding/json emits the shortest
// representation that parses back to the same float64), which is what makes
// a remote episode byte-identical to a local one.

// CreateRequest opens an environment session: one episode of the closed
// loop, stepped season by season over HTTP.
type CreateRequest struct {
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed>. The server
	// resolves it at its default scale, so a client reconstructing the park
	// locally (see Client) must use the same spec, seed and scale.
	Park string `json:"park"`
	// Seed roots every deterministic stream of the episode (0 keeps the
	// server's default root seed).
	Seed int64 `json:"seed,omitempty"`
	// Seasons is the episode length in seasons (default 4).
	Seasons int `json:"seasons,omitempty"`
	// SeasonMonths is the months per season (default 3).
	SeasonMonths int `json:"season_months,omitempty"`
	// BootstrapMonths is the historical record simulated before the episode
	// (default 24).
	BootstrapMonths int `json:"bootstrap_months,omitempty"`
	// BudgetKM overrides the per-month patrol budget (0 derives the park's
	// ranger capacity).
	BudgetKM float64 `json:"budget_km,omitempty"`
	// Attacker is "static" or "adaptive" (default adaptive — the same
	// default as /v1/simulate).
	Attacker string `json:"attacker,omitempty"`
	// TimeoutMS bounds the create request (bootstrap simulation) only.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// WireObservation is poach.Observation with explicit JSON tags.
type WireObservation struct {
	Month    int  `json:"month"`
	CellID   int  `json:"cell_id"`
	Poaching bool `json:"poaching"`
}

// WireObs is the observed record on the wire. In a CreateResponse it is the
// full bootstrap record; in a StepResponse it carries only the months the
// step appended (the client accretes them onto its local record).
type WireObs struct {
	// Months is the total observed months after this message.
	Months int `json:"months"`
	// Effort and Detections carry per-month rows — all months on create,
	// the newly appended months on step.
	Effort     [][]float64 `json:"effort"`
	Detections [][]bool    `json:"detections"`
	// Observations is the SMART-style log — full on create, the newly
	// appended entries on step.
	Observations []WireObservation `json:"observations"`
	// BudgetKM is the per-month budget step allocations are scaled to.
	BudgetKM float64 `json:"budget_km"`
}

// CreateResponse is the new session plus its initial observation.
type CreateResponse struct {
	Session Snapshot `json:"session"`
	Obs     WireObs  `json:"obs"`
}

// StepRequest executes one season of the given per-cell effort allocation.
type StepRequest struct {
	Effort    []float64 `json:"effort"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// StepResponse is one season's outcome: the updated session, the season
// statistics, whether the episode is done, and the record delta.
type StepResponse struct {
	Session Snapshot    `json:"session"`
	Stats   SeasonStats `json:"stats"`
	Done    bool        `json:"done"`
	// Delta carries only the months this step appended.
	Delta WireObs `json:"delta"`
}

// DeleteResponse acknowledges an explicit session delete.
type DeleteResponse struct {
	Session Snapshot `json:"session"`
}

// wireObservations converts a poach observation log slice.
func wireObservations(obs []poach.Observation) []WireObservation {
	out := make([]WireObservation, len(obs))
	for i, o := range obs {
		out[i] = WireObservation{Month: o.Month, CellID: o.CellID, Poaching: o.Poaching}
	}
	return out
}

// FullWire renders a complete observation as its wire form (create path).
func FullWire(o *Obs) WireObs {
	return WireObs{
		Months:       o.Months,
		Effort:       o.Effort,
		Detections:   o.Detections,
		Observations: wireObservations(o.Observations),
		BudgetKM:     o.BudgetKM,
	}
}

// DeltaWire renders the months of o appended at or after fromMonth (a
// step's StartMonth) as the wire delta. The observation log is appended in
// month order, so the cut point is found by binary search.
func DeltaWire(o *Obs, fromMonth int) WireObs {
	cut := sort.Search(len(o.Observations), func(i int) bool {
		return o.Observations[i].Month >= fromMonth
	})
	return WireObs{
		Months:       o.Months,
		Effort:       o.Effort[fromMonth:],
		Detections:   o.Detections[fromMonth:],
		Observations: wireObservations(o.Observations[cut:]),
		BudgetKM:     o.BudgetKM,
	}
}
