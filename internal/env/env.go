// Package env exposes the closed-loop patrol simulation as a stepped
// environment — the Reset/Step(allocation) → (observation, stats, done)
// shape reinforcement-learning harnesses expect — carved out of the season
// loop internal/sim used to inline. One Env is one episode stream: Reset
// rebuilds the observed record from the bootstrap history and re-warms the
// attacker's memory, and each Step executes one season of patrol effort
// against the responsive poacher, appending the realized effort,
// detections and observations to the policy-visible record.
//
// internal/sim drives every policy of a comparison through this package
// (see Drive), so an Env run, a sim.Run policy log and a remote HTTP env
// session (internal/serve's /v1/envs, consumed through Client) are all the
// same computation: given the same park, seed and effort sequence they
// produce byte-identical season statistics.
//
// # Determinism
//
// All randomness of a step is derived from (seed, month) only — the common
// random numbers of the comparison harness (see monthDraws). Two
// environments at the same park and seed diverge only where their effort
// allocations actually change an attack or detection probability, and an
// episode replayed after Reset reproduces itself exactly.
package env

import (
	"context"
	"errors"
	"fmt"
	"math"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/rng"
	"paws/internal/stats"
)

// Obs is the policy-visible state of an environment: the park and the
// observed patrol record. Hidden ground truth (where attacks actually
// happened) is deliberately absent — policies know exactly what real park
// managers know. All slices are owned by the engine and must be treated as
// read-only.
type Obs struct {
	Park *geo.Park
	// Months is the number of observed months; Effort and Detections have
	// one entry per month.
	Months int
	// Effort[m][cell] is the realized patrol effort (km).
	Effort [][]float64
	// Detections[m][cell] reports a detected poaching sign.
	Detections [][]bool
	// Observations is the SMART-style observation log (poaching and
	// non-poaching).
	Observations []poach.Observation
	// BudgetKM is the per-month patrol budget the plan will be scaled to.
	BudgetKM float64
}

// SeasonPlan is a policy's allocation for one season: desired per-cell
// patrol effort (rescaled by the engine to the budget) and, optionally, the
// executable routes behind it (reported, not re-derived).
type SeasonPlan struct {
	// Effort[cell] is the desired patrol effort; only its relative
	// distribution matters (the engine normalizes the total to the budget).
	Effort []float64
	// Routes are optional executable patrols in park cell ids.
	Routes [][]int
}

// Policy plans one season of patrol effort from the observed record. r is a
// deterministic stream derived from the simulation seed, the policy name and
// the season — the only randomness a policy may use.
type Policy interface {
	Name() string
	PlanSeason(ctx context.Context, obs *Obs, season int, r *rng.RNG) (*SeasonPlan, error)
}

// SeasonStats is one season's outcome.
type SeasonStats struct {
	Season     int     `json:"season"`
	StartMonth int     `json:"start_month"`
	Snares     int     `json:"snares"`
	Detections int     `json:"detections"`
	Displaced  int     `json:"displaced"`
	Routes     int     `json:"routes"`
	EffortKM   float64 `json:"effort_km"`
}

// PolicyResult is one policy's full season log plus totals.
type PolicyResult struct {
	Policy     string        `json:"policy"`
	Seasons    []SeasonStats `json:"seasons"`
	Snares     int           `json:"snares"`
	Detections int           `json:"detections"`
	Displaced  int           `json:"displaced"`
}

// Config drives one environment.
type Config struct {
	// Park is the generated park the loop runs on.
	Park *geo.Park
	// Sim supplies the generative-process parameters (ground truth shape,
	// detection rate, patrol character for the bootstrap, temporal noise).
	// Sim.Months is ignored; BootstrapMonths is used instead.
	Sim poach.SimConfig
	// Attacker selects the poacher response behaviour (default: static, the
	// historical process).
	Attacker poach.AttackerConfig
	// Seasons is the number of seasons an episode lasts.
	Seasons int
	// SeasonMonths is the number of months per season (default 3 — one
	// quarterly planning cycle, matching the dataset discretization).
	SeasonMonths int
	// BootstrapMonths is the historical record simulated before the loop
	// starts (default 24). It must cover at least one dataset step.
	BootstrapMonths int
	// BudgetKM is the per-month patrol budget; 0 derives the park's ranger
	// capacity from Sim.Patrol (posts × patrols × length).
	BudgetKM float64
}

// WithDefaults validates and fills cfg. Zero values select defaults;
// negative values (and degenerate parks) are rejected rather than silently
// replaced, so a caller's typo surfaces as a structured error instead of a
// simulation of the wrong thing. It is idempotent.
func (cfg Config) WithDefaults() (Config, error) {
	if cfg.Park == nil {
		return cfg, fmt.Errorf("env: nil park")
	}
	if len(cfg.Park.Posts) == 0 {
		return cfg, fmt.Errorf("env: park %s has no patrol posts", cfg.Park.Name)
	}
	if cfg.Seasons < 1 {
		return cfg, fmt.Errorf("env: seasons must be ≥ 1, got %d", cfg.Seasons)
	}
	if cfg.SeasonMonths < 0 {
		return cfg, fmt.Errorf("env: season months must be ≥ 1, got %d", cfg.SeasonMonths)
	}
	if cfg.SeasonMonths == 0 {
		cfg.SeasonMonths = 3
	}
	if cfg.BootstrapMonths < 0 {
		return cfg, fmt.Errorf("env: bootstrap months must be ≥ 1, got %d", cfg.BootstrapMonths)
	}
	if cfg.BootstrapMonths == 0 {
		cfg.BootstrapMonths = 24
	}
	if cfg.BudgetKM < 0 || math.IsNaN(cfg.BudgetKM) || math.IsInf(cfg.BudgetKM, 0) {
		return cfg, fmt.Errorf("env: budget %v km/month must be a non-negative finite number", cfg.BudgetKM)
	}
	if cfg.BudgetKM == 0 {
		p := cfg.Sim.Patrol
		cfg.BudgetKM = float64(len(cfg.Park.Posts) * p.PatrolsPerPostMonth * p.LengthKM)
	}
	if cfg.BudgetKM <= 0 {
		return cfg, fmt.Errorf("env: no patrol budget (set BudgetKM or Sim.Patrol)")
	}
	return cfg, nil
}

// ErrDone is returned by Step once the episode's seasons are exhausted;
// call Reset to start a fresh episode. Over HTTP it renders as a structured
// 409 conflict.
var ErrDone = errors.New("env: episode is done")

// Bootstrap simulates the historical record an environment starts from —
// BootstrapMonths of the park's status-quo ranger behaviour.
func Bootstrap(cfg Config) (*poach.History, error) {
	bootCfg := cfg.Sim
	bootCfg.Months = cfg.BootstrapMonths
	boot, err := poach.Simulate(cfg.Park, bootCfg)
	if err != nil {
		return nil, fmt.Errorf("env: bootstrap history: %w", err)
	}
	return boot, nil
}

// Env is the local stepped environment. It is not safe for concurrent use;
// the session Manager serializes remote steps per session.
type Env struct {
	cfg  Config
	boot *poach.History

	// Per-episode state, rebuilt by Reset.
	h      *poach.History
	att    poach.Attacker
	season int
	done   bool
}

// New builds an environment: validate the config, simulate the bootstrap
// history, and reset to the first episode.
func New(cfg Config) (*Env, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	boot, err := Bootstrap(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithHistory(cfg, boot)
}

// NewWithHistory builds an environment over an existing bootstrap history,
// so N environments (one per policy of a comparison) share one bootstrap
// computation. The history is treated as read-only: each episode appends to
// its own extendable copy.
func NewWithHistory(cfg Config, boot *poach.History) (*Env, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	// Validate the attacker config up front, not on first Reset.
	if _, err := poach.NewAttacker(boot.Truth, cfg.Attacker); err != nil {
		return nil, err
	}
	e := &Env{cfg: cfg, boot: boot}
	if _, err := e.Reset(context.Background()); err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the defaults-filled configuration.
func (e *Env) Config() Config { return e.cfg }

// Season returns the index of the next season Step will execute (equal to
// the number of seasons completed this episode).
func (e *Env) Season() int { return e.season }

// Done reports whether the episode's seasons are exhausted.
func (e *Env) Done() bool { return e.done }

// Months returns the number of observed months (bootstrap + stepped).
func (e *Env) Months() int { return e.h.Months }

// Obs returns the current policy-visible observation.
func (e *Env) Obs() *Obs {
	return &Obs{
		Park:         e.cfg.Park,
		Months:       e.h.Months,
		Effort:       e.h.Effort,
		Detections:   e.h.Detected,
		Observations: e.h.Observations,
		BudgetKM:     e.cfg.BudgetKM,
	}
}

// Reset starts a fresh episode: a fresh attacker instance warmed on the
// bootstrap record, and an extendable copy of the bootstrap history. The
// context parameter exists for the Stepper interface (a remote Reset is a
// network call); the local reset never blocks on it.
func (e *Env) Reset(context.Context) (*Obs, error) {
	att, err := poach.NewAttacker(e.boot.Truth, e.cfg.Attacker)
	if err != nil {
		return nil, err
	}
	h := extendableCopy(e.boot)
	// Warm the attacker's memory on the bootstrap record.
	for m := 0; m < h.Months; m++ {
		att.BeginMonth(m, prevEffort(h, m))
	}
	e.h, e.att = h, att
	e.season, e.done = 0, false
	return e.Obs(), nil
}

// Step executes one season of the episode: rescale the allocation to the
// monthly budget, then for each month let the attacker react, place snares,
// and detect signs under the effort-dependent detection probability —
// appending everything observable to the record. It returns the new
// observation, the season's statistics (Routes is always 0 — routes are a
// driver-side artifact, see Drive), and whether the episode is done.
// Stepping a done episode returns ErrDone.
func (e *Env) Step(ctx context.Context, effort []float64) (*Obs, SeasonStats, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, SeasonStats{}, e.done, err
	}
	if e.done {
		return nil, SeasonStats{}, true, ErrDone
	}
	n := e.cfg.Park.Grid.NumCells()
	eff, err := scaleToBudget(effort, e.cfg.BudgetKM, n)
	if err != nil {
		return nil, SeasonStats{}, false, err
	}
	gt := e.boot.Truth
	h := e.h
	st := SeasonStats{Season: e.season, StartMonth: h.Months}
	for k := 0; k < e.cfg.SeasonMonths; k++ {
		m := h.Months
		e.att.BeginMonth(m, prevEffort(h, m))
		noise, attackU, detectU, obsU := monthDraws(e.cfg.Sim.Seed, m, n)
		attacked := make([]bool, n)
		detected := make([]bool, n)
		for id := 0; id < n; id++ {
			logit := e.att.AttackLogit(id) + e.cfg.Sim.TemporalNoise*noise[id]
			if attackU[id] >= stats.Logistic(logit) {
				continue
			}
			attacked[id] = true
			st.Snares++
			if e.att.Displaced(id) {
				st.Displaced++
			}
			if detectU[id] < gt.DetectProb(eff[id]) {
				detected[id] = true
				st.Detections++
				h.Observations = append(h.Observations, poach.Observation{Month: m, CellID: id, Poaching: true})
			}
		}
		for id := 0; id < n; id++ {
			if eff[id] > 0 && obsU[id] < e.cfg.Sim.NonPoachingRate {
				h.Observations = append(h.Observations, poach.Observation{Month: m, CellID: id, Poaching: false})
			}
		}
		h.Effort = append(h.Effort, eff)
		h.Attacked = append(h.Attacked, attacked)
		h.Detected = append(h.Detected, detected)
		h.Months++
		for _, v := range eff {
			st.EffortKM += v
		}
	}
	e.season++
	if e.season >= e.cfg.Seasons {
		e.done = true
	}
	return e.Obs(), st, e.done, nil
}

// monthDraws returns the per-cell random draws for one simulated month,
// derived from the root seed and the month only — every policy sees the same
// draws (common random numbers), so two policies' outcomes differ only where
// their patrol effort actually changes a probability. Exactly four draws per
// cell are consumed in a fixed order, so the streams stay aligned across
// policies regardless of outcomes.
func monthDraws(seed int64, month, n int) (noise, attackU, detectU, obsU []float64) {
	r := rng.New(seed).Split(fmt.Sprintf("sim-month:%d", month))
	noise = make([]float64, n)
	attackU = make([]float64, n)
	detectU = make([]float64, n)
	obsU = make([]float64, n)
	for id := 0; id < n; id++ {
		noise[id] = r.NormFloat64()
		attackU[id] = r.Float64()
		detectU[id] = r.Float64()
		obsU[id] = r.Float64()
	}
	return noise, attackU, detectU, obsU
}

// prevEffort returns month m−1's realized effort, or nil for the first month.
func prevEffort(h *poach.History, m int) []float64 {
	if m <= 0 {
		return nil
	}
	return h.Effort[m-1]
}

// extendableCopy clones the outer slices of a history so each episode can
// append months without touching the shared bootstrap. Inner per-month
// slices are shared read-only.
func extendableCopy(boot *poach.History) *poach.History {
	h := *boot
	h.Effort = append(make([][]float64, 0, len(boot.Effort)+8), boot.Effort...)
	h.Attacked = append(make([][]bool, 0, len(boot.Attacked)+8), boot.Attacked...)
	h.Detected = append(make([][]bool, 0, len(boot.Detected)+8), boot.Detected...)
	h.Observations = append(make([]poach.Observation, 0, len(boot.Observations)+64), boot.Observations...)
	return &h
}

// scaleToBudget clamps negatives and rescales the allocation so the total
// equals the monthly budget. An all-zero allocation falls back to uniform.
func scaleToBudget(effort []float64, budget float64, n int) ([]float64, error) {
	if len(effort) != n {
		return nil, fmt.Errorf("env: plan has %d cells, park has %d", len(effort), n)
	}
	out := make([]float64, n)
	var total float64
	for i, e := range effort {
		if e > 0 {
			out[i] = e
			total += e
		}
	}
	if total <= 0 {
		u := budget / float64(n)
		for i := range out {
			out[i] = u
		}
		return out, nil
	}
	scale := budget / total
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}
