package env

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the Manager's TTL test hook: time only moves when the test
// says so.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// managerFixture is the shared config/cell-count pair the manager tests
// build their sessions from (park generation is deterministic, so every
// call sees the same park).
type managerFixture struct {
	cfg   Config
	cells int
}

func testFixture(t *testing.T) managerFixture {
	t.Helper()
	cfg := testConfig(t)
	return managerFixture{cfg: cfg, cells: cfg.Park.Grid.NumCells()}
}

// newSessionEnv builds a fresh Env over the fixture config.
func newSessionEnv(t *testing.T) *Env {
	t.Helper()
	e, err := New(testFixture(t).cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestManagerLifecycleAndIDs(t *testing.T) {
	ctx := context.Background()
	f := testFixture(t)
	m := NewManager(ManagerConfig{IDPrefix: "alpha"})
	snap, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "e-alpha-000001" {
		t.Fatalf("session ID %q, want e-alpha-000001", snap.ID)
	}
	if snap.Done || snap.Season != 0 {
		t.Fatalf("fresh session snapshot: %+v", snap)
	}
	eff := uniformEffort(f.cells)
	for season := 0; season < f.cfg.Seasons; season++ {
		_, st, done, err := m.Step(ctx, snap.ID, eff)
		if err != nil {
			t.Fatalf("season %d: %v", season, err)
		}
		if st.Season != season {
			t.Fatalf("season index %d, want %d", st.Season, season)
		}
		if wantDone := season == f.cfg.Seasons-1; done != wantDone {
			t.Fatalf("season %d: done=%v, want %v", season, done, wantDone)
		}
	}
	if _, _, _, err := m.Step(ctx, snap.ID, eff); !errors.Is(err, ErrDone) {
		t.Fatalf("step after done: err %v, want ErrDone", err)
	}
	got, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done || got.Season != f.cfg.Seasons {
		t.Fatalf("finished snapshot: %+v", got)
	}
	st := m.Stats()
	if st.Active != 0 || st.Sessions != 1 || st.Created != 1 || st.Steps != int64(f.cfg.Seasons) {
		t.Fatalf("stats after one episode: %+v", st)
	}
	if _, err := m.Remove(snap.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("get after remove: err %v, want ErrUnknownSession", err)
	}
	if _, _, _, err := m.Step(ctx, "e-alpha-999999", eff); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("step of never-created ID: err %v, want ErrUnknownSession", err)
	}
}

// TestManagerTTLEviction: with the fake clock, a session idle past the TTL
// is evicted — live or done — and the idle clock refreshes on use.
func TestManagerTTLEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(ManagerConfig{TTL: time.Minute, now: clock.now})
	snap, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(45 * time.Second)
	if _, err := m.Get(snap.ID); err != nil {
		t.Fatalf("45s idle with a 60s TTL: %v", err)
	}
	// The Get refreshed lastUsed, so another 45s keeps it alive...
	clock.advance(45 * time.Second)
	if _, err := m.Get(snap.ID); err != nil {
		t.Fatalf("idle clock did not refresh on Get: %v", err)
	}
	// ...but 61s of silence evicts even a live episode.
	clock.advance(61 * time.Second)
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("TTL-expired session: err %v, want ErrUnknownSession", err)
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Fatalf("evicted session still retained: %+v", st)
	}
}

// TestManagerCapacity: live sessions shed creates with ErrCapacity (and a
// sane RetryAfter), while finished sessions are LRU-evicted to make room.
func TestManagerCapacity(t *testing.T) {
	ctx := context.Background()
	f := testFixture(t)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(ManagerConfig{TTL: 10 * time.Minute, MaxSessions: 2, now: clock.now})
	a, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(newSessionEnv(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(newSessionEnv(t)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("create over capacity with all-live sessions: err %v, want ErrCapacity", err)
	}
	if ra := m.RetryAfter(); ra < time.Second || ra > 10*time.Minute {
		t.Fatalf("RetryAfter %v outside [1s, TTL]", ra)
	}
	// Finish session a; the next create LRU-evicts it.
	eff := uniformEffort(f.cells)
	for season := 0; season < f.cfg.Seasons; season++ {
		if _, _, _, err := m.Step(ctx, a.ID, eff); err != nil {
			t.Fatal(err)
		}
	}
	clock.advance(time.Second)
	c, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatalf("create after finishing a session: %v", err)
	}
	if _, err := m.Get(a.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("done session not LRU-evicted at capacity: err %v", err)
	}
	if _, err := m.Get(c.ID); err != nil {
		t.Fatal(err)
	}
}

// TestManagerDrainVsUnknown: after Shutdown, both creates and lookups of
// drained IDs answer "shutting down" — never "unknown", which would tell a
// client holding a valid ID that its session never existed.
func TestManagerDrainVsUnknown(t *testing.T) {
	ctx := context.Background()
	f := testFixture(t)
	m := NewManager(ManagerConfig{})
	snap, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(newSessionEnv(t)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("create after shutdown: err %v, want ErrShuttingDown", err)
	}
	for name, err := range map[string]error{
		"get":    errOf(func() error { _, e := m.Get(snap.ID); return e }),
		"step":   errOf(func() error { _, _, _, e := m.Step(ctx, snap.ID, uniformEffort(f.cells)); return e }),
		"remove": errOf(func() error { _, e := m.Remove(snap.ID); return e }),
	} {
		if !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("%s of drained ID: err %v, want ErrShuttingDown", name, err)
		}
		if errors.Is(err, ErrUnknownSession) || strings.Contains(err.Error(), "unknown session") {
			t.Fatalf("%s of drained ID claims unknown: %v", name, err)
		}
	}
}

func errOf(f func() error) error { return f() }

// TestManagerConcurrentStorm drives many goroutines against shared and
// distinct sessions under -race: steps on one session serialize, totals
// add up, and nothing panics.
func TestManagerConcurrentStorm(t *testing.T) {
	ctx := context.Background()
	f := testFixture(t)
	cfg := f.cfg
	cfg.Seasons = 8
	m := NewManager(ManagerConfig{})
	const sessions = 3
	ids := make([]string, sessions)
	for i := range ids {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := m.Create(e)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	eff := uniformEffort(f.cells)
	var wg sync.WaitGroup
	errCh := make(chan error, sessions*4*cfg.Seasons)
	for _, id := range ids {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for {
					_, _, done, err := m.Step(ctx, id, eff)
					if errors.Is(err, ErrDone) {
						return
					}
					if err != nil {
						errCh <- err
						return
					}
					if done {
						return
					}
					if _, err := m.Get(id); err != nil {
						errCh <- err
						return
					}
				}
			}(id)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Steps != int64(sessions*cfg.Seasons) {
		t.Fatalf("stats count %d steps, want %d (each session exactly Seasons times)", st.Steps, sessions*cfg.Seasons)
	}
	if st.Active != 0 {
		t.Fatalf("%d sessions still active after every episode finished", st.Active)
	}
}

// TestManagerShutdownWaitsForInflight: Shutdown returns only after the
// in-flight step completes (or reports the context error if it cannot).
func TestManagerShutdownWaitsForInflight(t *testing.T) {
	ctx := context.Background()
	f := testFixture(t)
	m := NewManager(ManagerConfig{})
	snap, err := m.Create(newSessionEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	stepped := make(chan error, 1)
	go func() {
		close(started)
		_, _, _, err := m.Step(ctx, snap.ID, uniformEffort(f.cells))
		stepped <- err
	}()
	<-started
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-stepped; err != nil {
		t.Fatalf("in-flight step failed across shutdown: %v", err)
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions survived shutdown: %+v", st)
	}
}
