package env

import (
	"context"
	"errors"
	"math"
	"testing"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/rng"
)

// testConfig builds a small, fast environment configuration.
func testConfig(t *testing.T) Config {
	t.Helper()
	parkCfg := geo.RandomConfig(16) // 359 cells
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Park:            park,
		Sim:             poach.RandomSim(parkCfg, 21),
		Attacker:        poach.AttackerConfig{Kind: poach.AttackerAdaptive},
		Seasons:         2,
		SeasonMonths:    1,
		BootstrapMonths: 6,
	}
}

// uniformEffort is the simplest valid allocation: the engine rescales it
// to the budget anyway, so only its shape matters.
func uniformEffort(n int) []float64 {
	eff := make([]float64, n)
	for i := range eff {
		eff[i] = 1
	}
	return eff
}

// TestEpisodeReplayAfterReset: an episode replayed after Reset under the
// same effort sequence reproduces itself exactly — the determinism claim
// remote sessions and the Drive harness are built on.
func TestEpisodeReplayAfterReset(t *testing.T) {
	ctx := context.Background()
	e, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	n := e.Config().Park.Grid.NumCells()
	run := func() ([]SeasonStats, int) {
		var log []SeasonStats
		for !e.Done() {
			_, st, _, err := e.Step(ctx, uniformEffort(n))
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, st)
		}
		return log, e.Months()
	}
	first, months1 := run()
	if len(first) != e.Config().Seasons {
		t.Fatalf("episode ran %d seasons, want %d", len(first), e.Config().Seasons)
	}
	if _, _, _, err := e.Step(ctx, uniformEffort(n)); !errors.Is(err, ErrDone) {
		t.Fatalf("stepping a done episode: err %v, want ErrDone", err)
	}
	if _, err := e.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Done() || e.Season() != 0 {
		t.Fatalf("reset left done=%v season=%d", e.Done(), e.Season())
	}
	second, months2 := run()
	if months1 != months2 {
		t.Fatalf("replay observed %d months, first run %d", months2, months1)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("season %d stats differ after reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestStepCommonRandomNumbers: two environments at the same seed stepped
// with the same effort see identical outcomes — the draws depend only on
// (seed, month).
func TestStepCommonRandomNumbers(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t)
	cfg.Attacker.Kind = poach.AttackerStatic
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Park.Grid.NumCells()
	for !a.Done() {
		_, sa, _, err := a.Step(ctx, uniformEffort(n))
		if err != nil {
			t.Fatal(err)
		}
		_, sb, _, err := b.Step(ctx, uniformEffort(n))
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("same seed and effort, different outcomes: %+v vs %+v", sa, sb)
		}
	}
}

// TestStepBudgetAndValidation: the executed effort is rescaled to the
// monthly budget, and a wrong-length allocation is a structured error.
func TestStepBudgetAndValidation(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t)
	cfg.BudgetKM = 100
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Park.Grid.NumCells()
	if _, _, _, err := e.Step(ctx, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-length allocation accepted")
	}
	_, st, _, err := e.Step(ctx, uniformEffort(n))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.BudgetKM * float64(cfg.SeasonMonths)
	if math.Abs(st.EffortKM-want) > 1e-6*want {
		t.Fatalf("season effort %v km, want %v", st.EffortKM, want)
	}
	if st.Routes != 0 {
		t.Fatalf("engine stats claim %d routes; routes are a driver overlay", st.Routes)
	}
}

// TestScaleToBudget covers the allocation rescaler: proportional scaling,
// negative clamping, the all-zero uniform fallback, and the length check.
func TestScaleToBudget(t *testing.T) {
	got, err := scaleToBudget([]float64{1, 3}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 6 {
		t.Fatalf("scaleToBudget([1 3], 8) = %v, want [2 6]", got)
	}
	got, err = scaleToBudget([]float64{-5, 1, 1}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("negative effort not clamped: %v", got)
	}
	got, err = scaleToBudget([]float64{0, 0, 0, 0}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 3 {
			t.Fatalf("all-zero fallback not uniform: got[%d] = %v", i, v)
		}
	}
	if _, err := scaleToBudget([]float64{1}, 10, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestBetaSampler: rng.Beta respects its support and its mean tracks
// a/(a+b) — enough sanity for the Thompson posterior draws built on it.
func TestBetaSampler(t *testing.T) {
	r := rng.New(11).Split("beta-test")
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta(2,5) sample %v outside [0,1]", v)
		}
		sum += v
	}
	mean := sum / n
	want := 2.0 / 7.0
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("Beta(2,5) sample mean %v, want ≈ %v", mean, want)
	}
	// Asymmetry: Beta(5,1) concentrates near 1, Beta(1,5) near 0.
	hi, lo := 0.0, 0.0
	for i := 0; i < 2000; i++ {
		hi += r.Beta(5, 1)
		lo += r.Beta(1, 5)
	}
	if hi/2000 < 0.7 || lo/2000 > 0.3 {
		t.Fatalf("Beta asymmetry off: mean(5,1)=%v mean(1,5)=%v", hi/2000, lo/2000)
	}
}

// syntheticObs builds an observed record with one clearly hot cell: every
// month patrols cells 0..4 at 2 km, detections only ever in hotCell.
func syntheticObs(t *testing.T, hotCell, months int) *Obs {
	t.Helper()
	parkCfg := geo.RandomConfig(16)
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		t.Fatal(err)
	}
	n := park.Grid.NumCells()
	o := &Obs{Park: park, Months: months, BudgetKM: 40}
	for m := 0; m < months; m++ {
		eff := make([]float64, n)
		det := make([]bool, n)
		for id := 0; id < 5; id++ {
			eff[id] = 2
		}
		det[hotCell] = true
		o.Effort = append(o.Effort, eff)
		o.Detections = append(o.Detections, det)
	}
	return o
}

// TestThompsonExploitsDetections: with a decisive record, the posterior
// draw ranks the always-productive cell above the patrolled-but-empty
// ones, and the plan covers exactly the budget's worth of cells.
func TestThompsonExploitsDetections(t *testing.T) {
	o := syntheticObs(t, 2, 12)
	n := o.Park.Grid.NumCells()
	plan, err := Thompson().PlanSeason(context.Background(), o, 0, rng.New(7).Split("policy:thompson:season:0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Effort) != n {
		t.Fatalf("plan has %d cells, park %d", len(plan.Effort), n)
	}
	if plan.Effort[2] <= 0 {
		t.Fatalf("hot cell got no effort: %v", plan.Effort[2])
	}
	positive := 0
	for _, e := range plan.Effort {
		if e > 0 {
			positive++
		}
	}
	if want := budgetTargets(o.BudgetKM, n); positive != want {
		t.Fatalf("plan targets %d cells, want %d", positive, want)
	}
	// Cells patrolled 12 months without a detection (Beta(1,13)) should
	// essentially never outdraw the always-hot cell (Beta(13,1)).
	for _, id := range []int{0, 1, 3, 4} {
		if plan.Effort[id] > plan.Effort[2] {
			t.Fatalf("empty cell %d outranked the hot cell: %v > %v", id, plan.Effort[id], plan.Effort[2])
		}
	}
}

// TestSoftmaxDeterministicAndFocused: the softmax policy ignores its
// stream (same plan twice), spreads positive effort everywhere, and puts
// its maximum on the productive cell.
func TestSoftmaxDeterministicAndFocused(t *testing.T) {
	o := syntheticObs(t, 3, 12)
	ctx := context.Background()
	a, err := Softmax().PlanSeason(ctx, o, 0, rng.New(7).Split("policy:softmax:season:0"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Softmax().PlanSeason(ctx, o, 0, rng.New(99).Split("different-stream"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Effort {
		if a.Effort[i] != b.Effort[i] {
			t.Fatalf("softmax is not deterministic: cell %d %v vs %v", i, a.Effort[i], b.Effort[i])
		}
	}
	maxID := 0
	for i, e := range a.Effort {
		if e <= 0 {
			t.Fatalf("softmax wrote off cell %d entirely", i)
		}
		if e > a.Effort[maxID] {
			maxID = i
		}
	}
	if maxID != 3 {
		t.Fatalf("softmax peak at cell %d, want the productive cell 3", maxID)
	}
}

// TestConfigValidation mirrors the sim-level edge validation at the env
// layer, where the checks now live.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil park", func(c *Config) { c.Park = nil }},
		{"zero-post park", func(c *Config) {
			park := *c.Park
			park.Posts = nil
			c.Park = &park
		}},
		{"zero seasons", func(c *Config) { c.Seasons = 0 }},
		{"negative season months", func(c *Config) { c.SeasonMonths = -2 }},
		{"negative bootstrap months", func(c *Config) { c.BootstrapMonths = -6 }},
		{"negative budget", func(c *Config) { c.BudgetKM = -40 }},
		{"NaN budget", func(c *Config) { c.BudgetKM = math.NaN() }},
		{"no derivable budget", func(c *Config) { c.BudgetKM = 0; c.Sim.Patrol = poach.PatrolConfig{} }},
	}
	for _, tc := range cases {
		cfg := testConfig(t)
		tc.mutate(&cfg)
		if _, err := cfg.WithDefaults(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	cfg := testConfig(t)
	cfg.SeasonMonths, cfg.BootstrapMonths, cfg.BudgetKM = 0, 0, 0
	filled, err := cfg.WithDefaults()
	if err != nil {
		t.Fatalf("zero-value defaults rejected: %v", err)
	}
	if filled.SeasonMonths != 3 || filled.BootstrapMonths != 24 || filled.BudgetKM <= 0 {
		t.Fatalf("defaults not applied: %+v", filled)
	}
}
