package env

import (
	"context"
	"math"
	"sort"

	"paws/internal/rng"
)

// This file hosts the learned sequential policies the environment makes
// cheap to add: both plan each season purely from the observed record the
// Obs carries, so they run identically against a local Env or a remote
// /v1/envs session. The paper-faithful PAWS policy (retrain + Frank-Wolfe
// plan) stays in the root package; these are the classic bandit-flavoured
// baselines between "ignore the data" (uniform/random) and "full model"
// (paws).

// thompsonTargetKMPerCell spreads the budget at the same nominal ~1 km/cell
// the paws policy targets, so the two concentrate effort over sectors of
// comparable size and differ only in how they rank cells.
const thompsonTargetKMPerCell = 1.0

// Thompson returns the Thompson-sampling policy: each cell keeps a
// Beta(1 + detections, 1 + patrolled-months-without-detection) posterior
// over "a patrol month here finds a snare", one sample is drawn per cell
// from the season's policy stream, and the budget concentrates on the
// highest samples — the posterior draw IS the exploration, so rarely
// patrolled cells (wide posteriors) keep getting probed while confirmed
// hot cells are exploited.
func Thompson() Policy { return thompsonPolicy{} }

type thompsonPolicy struct{}

func (thompsonPolicy) Name() string { return "thompson" }

func (thompsonPolicy) PlanSeason(_ context.Context, o *Obs, _ int, r *rng.RNG) (*SeasonPlan, error) {
	n := o.Park.Grid.NumCells()
	alpha := make([]float64, n)
	beta := make([]float64, n)
	for i := range alpha {
		alpha[i], beta[i] = 1, 1
	}
	for m := 0; m < o.Months; m++ {
		det := o.Detections[m]
		for id, e := range o.Effort[m] {
			if e <= 0 {
				continue
			}
			if det[id] {
				alpha[id]++
			} else {
				beta[id]++
			}
		}
	}
	theta := make([]float64, n)
	for id := 0; id < n; id++ {
		theta[id] = r.Beta(alpha[id], beta[id])
	}
	eff := make([]float64, n)
	for _, id := range topCells(theta, budgetTargets(o.BudgetKM, n)) {
		eff[id] = theta[id]
	}
	return &SeasonPlan{Effort: eff}, nil
}

// softmaxTemperature is the concentration knob of the softmax policy: the
// empirical risk scores are normalized to [0, 1], so τ = 0.25 gives the
// hottest cell ≈ e⁴ ≈ 55× the weight of a never-productive one — strongly
// focused, but never writing any cell off entirely.
const (
	softmaxTemperature = 0.25
	// Laplace smoothing of the detections-per-km rate: half a phantom
	// detection over five phantom kilometres, so unpatrolled cells score a
	// small positive prior instead of 0/0.
	softmaxPriorDetections = 0.5
	softmaxPriorKM         = 5.0
)

// Softmax returns the softmax-over-riskmap policy: each cell's empirical
// risk is its Laplace-smoothed detections-per-patrol-km over the whole
// observed record, and the budget is spread over ALL cells proportional to
// exp(risk/τ) — a deterministic, smoothly exploring allocation (the policy
// stream is unused) that chases where detections have actually been
// productive per kilometre walked.
func Softmax() Policy { return softmaxPolicy{} }

type softmaxPolicy struct{}

func (softmaxPolicy) Name() string { return "softmax" }

func (softmaxPolicy) PlanSeason(_ context.Context, o *Obs, _ int, _ *rng.RNG) (*SeasonPlan, error) {
	n := o.Park.Grid.NumCells()
	det := make([]float64, n)
	km := make([]float64, n)
	for m := 0; m < o.Months; m++ {
		dm := o.Detections[m]
		for id, e := range o.Effort[m] {
			km[id] += e
			if dm[id] {
				det[id]++
			}
		}
	}
	score := make([]float64, n)
	maxScore := 0.0
	for id := 0; id < n; id++ {
		score[id] = (det[id] + softmaxPriorDetections) / (km[id] + softmaxPriorKM)
		if score[id] > maxScore {
			maxScore = score[id]
		}
	}
	eff := make([]float64, n)
	for id := 0; id < n; id++ {
		s := 0.0
		if maxScore > 0 {
			s = score[id] / maxScore
		}
		eff[id] = math.Exp(s / softmaxTemperature)
	}
	return &SeasonPlan{Effort: eff}, nil
}

// budgetTargets is how many cells a budget covers at the nominal per-cell
// effort, clamped to [1, n].
func budgetTargets(budgetKM float64, n int) int {
	k := int(budgetKM / thompsonTargetKMPerCell)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// topCells returns the indices of the k largest values, value descending
// with cell id ascending on ties — deterministic for equal inputs.
func topCells(v []float64, k int) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	// Selection by full sort keeps the tie-break explicit; n is park-sized.
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if v[a] != v[b] {
			return v[a] > v[b]
		}
		return a < b
	})
	return order[:k]
}
