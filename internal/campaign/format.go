package campaign

import (
	"fmt"
	"strings"
)

// Format renders the report as a fixed-width text table: per park, each
// policy's aggregate stats followed by the paired deltas against the
// baseline. The output is a pure function of the report values —
// byte-identical for any worker count — which the pawscamp smoke script
// diffs across worker counts.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d parks × %d seeds × %d season counts = %d cells × %d policies, baseline %s\n",
		len(r.Parks), len(r.Seeds), len(r.SeasonCounts), len(r.Cells), len(r.Policies), r.Baseline)
	for _, s := range r.Summaries {
		fmt.Fprintf(&b, "park %s (%d cells)\n", s.Park, s.Cells)
		fmt.Fprintf(&b, "  %-12s %12s %12s %14s %14s\n",
			"policy", "mean-snares", "mean-detect", "total-snares", "total-detect")
		for _, p := range s.Policies {
			fmt.Fprintf(&b, "  %-12s %12.1f %12.1f %14d %14d\n",
				p.Policy, p.MeanSnares, p.MeanDetections, p.TotalSnares, p.TotalDetections)
		}
		if len(s.Deltas) > 0 {
			fmt.Fprintf(&b, "  paired detection deltas vs %s (CRN, 95%% bootstrap CI):\n", r.Baseline)
			for _, d := range s.Deltas {
				fmt.Fprintf(&b, "  %-12s mean %+8.2f  [%+8.2f, %+8.2f]  wins %d/%d\n",
					d.Policy, d.Mean, d.CILow, d.CIHigh, d.Wins, len(d.PerCell))
			}
		}
	}
	return b.String()
}
