package campaign

import (
	"context"
	"encoding/json"
	"testing"
)

// TestRenderByteStable pins both campaign emitters — the text table and
// the JSON report — as byte-identical across repeated renders of the
// same report. Together with TestRunDeterministicAcrossWorkers this
// keeps campaign output diffable across runs, which the smoke scripts
// rely on.
func TestRenderByteStable(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Format()
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := rep.Format(); got != text {
			t.Fatalf("Format render %d differs", i)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(js) {
			t.Fatalf("JSON render %d differs", i)
		}
	}
}
