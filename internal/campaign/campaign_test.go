package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paws/internal/sim"
)

// fakeRunner builds a deterministic synthetic report per cell: policy p's
// detections are a fixed function of (park, seed, seasons, p), so every
// aggregation property can be checked exactly without running simulations.
func fakeRunner(policies []string) Runner {
	return func(_ context.Context, cell Cell) (*sim.Report, error) {
		rep := &sim.Report{Park: cell.Park, Seed: cell.Seed, Seasons: cell.Seasons}
		for i, p := range policies {
			det := fakeDetections(cell, i)
			rep.Policies = append(rep.Policies, sim.PolicyResult{
				Policy:     p,
				Snares:     det + 5,
				Detections: det,
			})
		}
		return rep, nil
	}
}

// fakeDetections is the synthetic ground truth: policy i detects i more than
// policy 0 plus a seed- and park-dependent base common to all policies.
func fakeDetections(cell Cell, policyIdx int) int {
	base := int(cell.Seed)*3 + len(cell.Park) + cell.Seasons
	return base + 4*policyIdx
}

func testConfig() Config {
	return Config{
		Parks:        []string{"MFNP", "rand:1-2"},
		Policies:     []string{"uniform", "paws", "random"},
		Seeds:        []int64{1, 2, 3},
		SeasonCounts: []int{1, 2},
	}
}

func TestExpandParks(t *testing.T) {
	got, err := ExpandParks([]string{"MFNP", "rand:3-5", "rand:7..8", "rand:42"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MFNP", "rand:3", "rand:4", "rand:5", "rand:7", "rand:8", "rand:42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpandParks = %v, want %v", got, want)
	}
	// A negative single seed is a spec, not a range.
	got, err = ExpandParks([]string{"rand:-5"})
	if err != nil || !reflect.DeepEqual(got, []string{"rand:-5"}) {
		t.Fatalf("negative single seed: got %v, %v", got, err)
	}
	// A one-element range ending at MaxInt64 must terminate (the expansion
	// loop cannot rely on v <= hi, which never goes false after wraparound).
	got, err = ExpandParks([]string{"rand:9223372036854775807-9223372036854775807"})
	if err != nil || !reflect.DeepEqual(got, []string{"rand:9223372036854775807"}) {
		t.Fatalf("MaxInt64 range: got %v, %v", got, err)
	}
	for _, bad := range [][]string{
		{"rand:5-3"},                    // inverted
		{"rand:1-999999"},               // over the range cap
		{"rand:0-9223372036854775807"},  // size overflows int64; must still hit the cap
		{"rand:0..9223372036854775807"}, // same via the .. form
		{"rand:1-2-3"},                  // malformed
		{"rand:a-b"},                    // non-integer bounds
		{"rand:1..x"},                   // non-integer hi
		{"rand:1-3", "rand:2"},          // duplicate after expansion
		{"MFNP", "MFNP"},                // duplicate preset
	} {
		if _, err := ExpandParks(bad); err == nil {
			t.Errorf("ExpandParks(%v) accepted", bad)
		}
	}
}

// TestConfigValidation: every malformed grid is rejected with an error (the
// HTTP layer maps these to structured bad_request envelopes) instead of
// panicking or looping.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no parks", func(c *Config) { c.Parks = nil }},
		{"unknown park spec", func(c *Config) { c.Parks = []string{"ATLANTIS"} }},
		{"malformed rand spec", func(c *Config) { c.Parks = []string{"rand:nope"} }},
		{"no policies", func(c *Config) { c.Policies = nil }},
		{"empty policy name", func(c *Config) { c.Policies = []string{"paws", ""} }},
		{"duplicate policy", func(c *Config) { c.Policies = []string{"paws", "paws"} }},
		{"no seeds", func(c *Config) { c.Seeds = nil }},
		{"duplicate seed", func(c *Config) { c.Seeds = []int64{4, 4} }},
		{"no season counts", func(c *Config) { c.SeasonCounts = nil }},
		{"zero season count", func(c *Config) { c.SeasonCounts = []int{0} }},
		{"negative season count", func(c *Config) { c.SeasonCounts = []int{-3} }},
		{"duplicate season count", func(c *Config) { c.SeasonCounts = []int{2, 2} }},
		{"unknown baseline", func(c *Config) { c.Baseline = "skynet" }},
		{"negative resamples", func(c *Config) { c.Resamples = -1 }},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Run(context.Background(), testConfig(), nil); err == nil {
		t.Error("nil runner accepted")
	}
}

// TestBaselineDefault: "uniform" is preferred when present, else the first
// policy anchors the deltas.
func TestBaselineDefault(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline != "uniform" {
		t.Fatalf("baseline %q, want uniform", rep.Baseline)
	}
	cfg.Policies = []string{"paws", "random"}
	rep, err = Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline != "paws" {
		t.Fatalf("baseline %q, want paws (first policy)", rep.Baseline)
	}
}

// TestRunDeterministicAcrossWorkers: the aggregated report — cells, stats,
// deltas and every bootstrap CI — is byte-identical for any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		rep, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("report differs at workers=%d", workers)
		}
	}
}

// TestGridOrderAndPairing: cells are laid out park-major (then seed, then
// season count) and every paired delta equals the per-cell difference of the
// synthetic ground truth.
func TestGridOrderAndPairing(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 3 * len(cfg.Seeds) * len(cfg.SeasonCounts) // MFNP, rand:1, rand:2
	if len(rep.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(rep.Cells), wantCells)
	}
	i := 0
	for _, park := range []string{"MFNP", "rand:1", "rand:2"} {
		for _, seed := range cfg.Seeds {
			for _, seasons := range cfg.SeasonCounts {
				c := rep.Cells[i]
				if c.Index != i || c.Park != park || c.Seed != seed || c.Seasons != seasons {
					t.Fatalf("cell %d = %+v, want {%d %s %d %d}", i, c.Cell, i, park, seed, seasons)
				}
				i++
			}
		}
	}
	if len(rep.Summaries) != 3 {
		t.Fatalf("%d summaries", len(rep.Summaries))
	}
	for _, s := range rep.Summaries {
		if len(s.Deltas) != 2 {
			t.Fatalf("park %s: %d deltas, want 2 (non-baseline policies)", s.Park, len(s.Deltas))
		}
		for _, d := range s.Deltas {
			if d.Baseline != "uniform" {
				t.Fatalf("delta baseline %q", d.Baseline)
			}
			// The synthetic ground truth separates policies by a constant, so
			// every paired delta is exactly that constant: scenario variance
			// cancels, the core CRN property.
			polIdx := map[string]int{"uniform": 0, "paws": 1, "random": 2}[d.Policy]
			wantDelta := float64(4 * polIdx)
			for i, delta := range d.PerCell {
				if delta != wantDelta {
					t.Fatalf("park %s %s: per-cell delta[%d] = %v, want %v", s.Park, d.Policy, i, delta, wantDelta)
				}
			}
			if d.Mean != wantDelta || d.Wins != len(d.PerCell) {
				t.Fatalf("park %s %s: mean %v wins %d", s.Park, d.Policy, d.Mean, d.Wins)
			}
			// Constant deltas bootstrap to a degenerate interval at the mean.
			if d.CILow != wantDelta || d.CIHigh != wantDelta {
				t.Fatalf("park %s %s: CI [%v, %v], want degenerate at %v", s.Park, d.Policy, d.CILow, d.CIHigh, wantDelta)
			}
		}
	}
}

// TestRunnerErrorCancelsCampaign: one failing cell fails the whole run with
// its error — the root cause, not a cancellation cascade — and in-flight
// cells are drained.
func TestRunnerErrorCancelsCampaign(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	boom := func(ctx context.Context, cell Cell) (*sim.Report, error) {
		if cell.Park == "rand:1" && cell.Seed == 2 {
			return nil, fmt.Errorf("boom")
		}
		return fakeRunner(cfg.Policies)(ctx, cell)
	}
	_, err := Run(context.Background(), cfg, boom)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRunnerErrorAbortsRemainingCells: the first failure cancels the other
// cells' contexts immediately, so a doomed campaign does not simulate the
// rest of the grid — even when the failing cell sits in the middle and the
// collection loop is still waiting on earlier indices.
func TestRunnerErrorAbortsRemainingCells(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1 // strictly sequential: cells run in grid order
	var completed atomic.Int64
	boom := func(ctx context.Context, cell Cell) (*sim.Report, error) {
		if cell.Index == 1 {
			return nil, fmt.Errorf("boom")
		}
		// A well-behaved runner observes its context, as Simulate does.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		completed.Add(1)
		return fakeRunner(cfg.Policies)(ctx, cell)
	}
	_, err := Run(context.Background(), cfg, boom)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the root-cause boom, not a cancellation cascade", err)
	}
	total := int64(3 * len(cfg.Seeds) * len(cfg.SeasonCounts))
	if got := completed.Load(); got >= total-1 {
		t.Fatalf("%d of %d cells completed after the failure — remaining cells were not canceled", got, total)
	}
}

// TestRunnerPanicAbortsCampaign: a panicking cell is contained (the panic
// message becomes the campaign error) and cancels the remaining cells just
// like an ordinary error.
func TestRunnerPanicAbortsCampaign(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	var completed atomic.Int64
	boom := func(ctx context.Context, cell Cell) (*sim.Report, error) {
		if cell.Index == 1 {
			panic("kaboom")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		completed.Add(1)
		return fakeRunner(cfg.Policies)(ctx, cell)
	}
	_, err := Run(context.Background(), cfg, boom)
	if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want the contained panic", err)
	}
	total := int64(3 * len(cfg.Seeds) * len(cfg.SeasonCounts))
	if got := completed.Load(); got >= total-1 {
		t.Fatalf("%d of %d cells completed after the panic — remaining cells were not canceled", got, total)
	}
}

// TestRunCanceledContext: a canceled caller context aborts the sweep.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig()
	_, err := Run(ctx, cfg, fakeRunner(cfg.Policies))
	if err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestProgressPerCell: the callback fires once per cell with a monotonic
// completed count, and observing progress does not change the report.
func TestProgressPerCell(t *testing.T) {
	cfg := testConfig()
	base, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls int
	var maxDone int
	cfg.Workers = 4
	cfg.Progress = func(cell Cell, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		// Strictly monotonic: the i-th observed callback carries done == i,
		// even with cells completing concurrently.
		if done != calls {
			t.Errorf("call %d carried done %d — progress regressed", calls, done)
		}
		if done > maxDone {
			maxDone = done
		}
		if total != len(base.Cells) {
			t.Errorf("total = %d, want %d", total, len(base.Cells))
		}
	}
	withProgress, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(base.Cells) || maxDone != len(base.Cells) {
		t.Fatalf("progress calls %d maxDone %d, want %d", calls, maxDone, len(base.Cells))
	}
	a, _ := json.Marshal(base)
	b, _ := json.Marshal(withProgress)
	if string(a) != string(b) {
		t.Fatal("progress callback changed the report")
	}
}

// TestProgressPanicDoesNotHang: a panicking progress callback fails the
// campaign (contained like a runner panic) instead of deadlocking the other
// cells on the progress lock.
func TestProgressPanicDoesNotHang(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	cfg.Progress = func(Cell, int, int) { panic("progress boom") }
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("err = %v, want the contained panic", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign hung after the progress callback panicked")
	}
}

// TestMissingPolicyRejected: a runner that drops a policy from its report
// fails the campaign instead of silently misaligning the pairing.
func TestMissingPolicyRejected(t *testing.T) {
	cfg := testConfig()
	short := func(ctx context.Context, cell Cell) (*sim.Report, error) {
		rep, _ := fakeRunner(cfg.Policies)(ctx, cell)
		rep.Policies = rep.Policies[:2]
		return rep, nil
	}
	if _, err := Run(context.Background(), cfg, short); err == nil {
		t.Fatal("short report accepted")
	}
}

// TestFormatShape: the text rendering carries the header, every park block
// and the delta lines.
func TestFormatShape(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg, fakeRunner(cfg.Policies))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Format()
	for _, want := range []string{
		"campaign: 3 parks × 3 seeds × 2 season counts = 18 cells × 3 policies, baseline uniform",
		"park MFNP (6 cells)",
		"park rand:2 (6 cells)",
		"paired detection deltas vs uniform",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Format() missing %q:\n%s", want, text)
		}
	}
}
