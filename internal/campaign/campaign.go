// Package campaign is the multi-scenario evaluation layer of the PAWS
// pipeline: one deterministic sweep over a grid of parks × replicate seeds ×
// season counts, with every patrol policy compared inside each grid cell and
// the results aggregated into paired, uncertainty-quantified policy deltas —
// the Table III-style "PAWS finds more snares than the status quo"
// conclusion the paper's field tests rest on, produced as one call instead
// of ad-hoc scripting around single simulations.
//
// # Grid cells and pairing
//
// A Cell is one (park, seed, seasons) triple. All of a campaign's policies
// run inside a single cell through one closed-loop simulation (internal/sim)
// under common random numbers: the attack, detection and observation draws
// for month m derive from (seed, m) only, never from the policy, so within a
// cell two policies' outcomes differ only where their patrol effort actually
// changed a probability. That makes the per-cell difference in detections a
// *paired* observation — the variance contributed by the scenario itself
// (which park, which poacher realization) cancels out of the delta, exactly
// the common-random-numbers trick simulation-optimization uses to sharpen
// head-to-head comparisons. A campaign with k replicate seeds therefore
// yields k paired deltas per park, not two independent k-samples, and the
// confidence interval on the mean delta is correspondingly tighter.
//
// # Aggregation
//
// Per park, the report carries each policy's mean and total snares and
// detections across the park's cells, plus one Delta per non-baseline
// policy: the per-cell paired detection differences (cell order), their
// mean, and a 95% percentile-bootstrap confidence interval on that mean
// (internal/stats.BootstrapMeanCI, resampling the paired deltas). A
// baseline-beating policy shows a positive CI lower bound.
//
// # Determinism
//
// Cells fan out through internal/job's bounded Manager (Config.Workers
// slots), but results are collected and aggregated in cell-index order and
// the bootstrap streams are derived from fixed labels, so the report —
// including every CI — is byte-identical for any worker count.
package campaign

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"paws/internal/geo"
	"paws/internal/job"
	"paws/internal/rng"
	"paws/internal/sim"
	"paws/internal/stats"
)

// Cell is one grid point of a campaign: every policy of the campaign plays
// the closed loop on Park for Seasons seasons under replicate seed Seed.
type Cell struct {
	// Index is the cell's position in the deterministic grid order
	// (park-major, then seed, then season count).
	Index int `json:"index"`
	// Park is a single expanded park spec (preset name or rand:<seed>).
	Park string `json:"park"`
	// Seed is the replicate seed: it drives the bootstrap history and every
	// common-random-number draw of the cell (and, for preset parks, the
	// park-generation stream), so one seed is one complete scenario
	// realization shared by all policies.
	Seed int64 `json:"seed"`
	// Seasons is the number of planning seasons the cell runs.
	Seasons int `json:"seasons"`
}

// Runner executes one cell: a closed-loop simulation comparing every
// campaign policy on cell.Park at cell.Seed over cell.Seasons seasons. The
// root package supplies Service.Simulate here; tests supply fakes. The
// returned report must contain exactly the campaign's policies.
type Runner func(ctx context.Context, cell Cell) (*sim.Report, error)

// Config drives one campaign. Parks/Policies/Seeds/SeasonCounts span the
// grid; Baseline anchors the paired deltas.
type Config struct {
	// Parks are park specs; "rand:<lo>-<hi>" (or "rand:<lo>..<hi>") ranges
	// expand to one spec per seed (ExpandParks).
	Parks []string
	// Policies are the policy names compared inside every cell.
	Policies []string
	// Seeds are the replicate seeds (one paired observation per seed).
	Seeds []int64
	// SeasonCounts are the season-count grid values; most campaigns use one.
	SeasonCounts []int
	// Baseline names the policy the deltas are measured against (default:
	// "uniform" when present, else the first policy).
	Baseline string
	// Resamples is the bootstrap resample count of the delta CIs
	// (default 2000).
	Resamples int
	// Workers bounds concurrently running cells (par.Workers semantics, via
	// internal/job). The report is byte-identical for any worker count.
	Workers int
	// Progress, when non-nil, is invoked as each cell completes with the
	// cell and the monotonic completed count. Cells finish in any order;
	// the callback must be safe for concurrent use and is observational
	// only — it never affects the report.
	Progress func(cell Cell, done, total int)
}

// maxRandRange bounds how many parks one "rand:<lo>-<hi>" range may expand
// to, so a typo cannot request a million-park campaign.
const maxRandRange = 256

// ExpandParks expands procedural range specs — "rand:<lo>-<hi>" or
// "rand:<lo>..<hi>", bounds inclusive and non-negative — into one
// "rand:<seed>" spec per value, passing every other spec through untouched.
// The expanded list must be duplicate-free.
func ExpandParks(specs []string) ([]string, error) {
	out := make([]string, 0, len(specs))
	seen := map[string]bool{}
	for _, spec := range specs {
		expanded, err := expandSpec(spec)
		if err != nil {
			return nil, err
		}
		for _, s := range expanded {
			if seen[s] {
				return nil, fmt.Errorf("campaign: duplicate park %q", s)
			}
			seen[s] = true
			out = append(out, s)
		}
	}
	return out, nil
}

// expandSpec expands one spec: a rand range to its seeds, anything else to
// itself.
func expandSpec(spec string) ([]string, error) {
	if !geo.IsRandSpec(spec) {
		return []string{spec}, nil
	}
	body := strings.TrimPrefix(spec, geo.RandPrefix)
	sep := ""
	switch {
	case strings.Contains(body, ".."):
		sep = ".."
	case strings.Index(body, "-") > 0: // a leading "-" is a negative single seed
		sep = "-"
	default:
		return []string{spec}, nil
	}
	loStr, hiStr, _ := strings.Cut(body, sep)
	lo, err1 := strconv.ParseInt(loStr, 10, 64)
	hi, err2 := strconv.ParseInt(hiStr, 10, 64)
	if err1 != nil || err2 != nil || lo < 0 || hi < 0 {
		return nil, fmt.Errorf("campaign: invalid park range %q (want rand:<lo>-<hi> with non-negative integer bounds)", spec)
	}
	if hi < lo {
		return nil, fmt.Errorf("campaign: empty park range %q (lo %d > hi %d)", spec, lo, hi)
	}
	// Size is hi−lo+1; compare without the +1 so a range ending at MaxInt64
	// cannot overflow past the cap.
	if hi-lo >= maxRandRange {
		return nil, fmt.Errorf("campaign: park range %q spans more than %d parks", spec, maxRandRange)
	}
	out := make([]string, 0, hi-lo+1)
	// Terminate on v == hi rather than v <= hi: for a range ending at
	// MaxInt64 the increment would wrap and v <= hi would never go false.
	for v := lo; ; v++ {
		out = append(out, fmt.Sprintf("%s%d", geo.RandPrefix, v))
		if v == hi {
			break
		}
	}
	return out, nil
}

// withDefaults expands, validates and fills cfg. Every rejection is a plain
// error the HTTP layer maps to a structured bad_request.
func (cfg Config) withDefaults() (Config, error) {
	parks, err := ExpandParks(cfg.Parks)
	if err != nil {
		return cfg, err
	}
	if len(parks) == 0 {
		return cfg, fmt.Errorf("campaign: no parks")
	}
	for _, p := range parks {
		if _, err := geo.ParseSpec(p, 0); err != nil {
			return cfg, fmt.Errorf("campaign: %w", err)
		}
	}
	cfg.Parks = parks
	if len(cfg.Policies) == 0 {
		return cfg, fmt.Errorf("campaign: no policies")
	}
	seenPolicy := map[string]bool{}
	for _, p := range cfg.Policies {
		if p == "" {
			return cfg, fmt.Errorf("campaign: empty policy name")
		}
		if seenPolicy[p] {
			return cfg, fmt.Errorf("campaign: duplicate policy %q", p)
		}
		seenPolicy[p] = true
	}
	if len(cfg.Seeds) == 0 {
		return cfg, fmt.Errorf("campaign: no seeds")
	}
	seenSeed := map[int64]bool{}
	for _, s := range cfg.Seeds {
		if seenSeed[s] {
			return cfg, fmt.Errorf("campaign: duplicate seed %d", s)
		}
		seenSeed[s] = true
	}
	if len(cfg.SeasonCounts) == 0 {
		return cfg, fmt.Errorf("campaign: no season counts")
	}
	seenSeasons := map[int]bool{}
	for _, n := range cfg.SeasonCounts {
		if n <= 0 {
			return cfg, fmt.Errorf("campaign: season count must be ≥ 1, got %d", n)
		}
		if seenSeasons[n] {
			return cfg, fmt.Errorf("campaign: duplicate season count %d", n)
		}
		seenSeasons[n] = true
	}
	if cfg.Baseline == "" {
		cfg.Baseline = cfg.Policies[0]
		if seenPolicy["uniform"] {
			cfg.Baseline = "uniform"
		}
	}
	if !seenPolicy[cfg.Baseline] {
		return cfg, fmt.Errorf("campaign: baseline %q is not one of the policies %v", cfg.Baseline, cfg.Policies)
	}
	if cfg.Resamples < 0 {
		return cfg, fmt.Errorf("campaign: resamples must be ≥ 0, got %d", cfg.Resamples)
	}
	if cfg.Resamples == 0 {
		cfg.Resamples = 2000
	}
	return cfg, nil
}

// Resolve validates the grid configuration and returns it defaults-filled:
// parks expanded (ranges unrolled), baseline and resamples defaulted. This
// is the one validation pass — Run and the submit-time surfaces all go
// through it, so they cannot drift.
func (cfg Config) Resolve() (Config, error) { return cfg.withDefaults() }

// Validate is Resolve discarding the resolved configuration: the
// submit-time surface the HTTP layer uses to reject a malformed campaign
// with a structured 400 instead of accepting a job doomed to fail.
func (cfg Config) Validate() error {
	_, err := cfg.withDefaults()
	return err
}

// cells lays out the deterministic grid order: park-major, then seed, then
// season count. Aggregation and the report's cell list follow this order.
func (cfg Config) cells() []Cell {
	cells := make([]Cell, 0, len(cfg.Parks)*len(cfg.Seeds)*len(cfg.SeasonCounts))
	for _, park := range cfg.Parks {
		for _, seed := range cfg.Seeds {
			for _, seasons := range cfg.SeasonCounts {
				cells = append(cells, Cell{Index: len(cells), Park: park, Seed: seed, Seasons: seasons})
			}
		}
	}
	return cells
}

// CellResult is one grid cell plus its full simulation report.
type CellResult struct {
	Cell
	Report *sim.Report `json:"report"`
}

// PolicyStats aggregates one policy over one park's cells.
type PolicyStats struct {
	Policy          string  `json:"policy"`
	Cells           int     `json:"cells"`
	TotalSnares     int     `json:"total_snares"`
	TotalDetections int     `json:"total_detections"`
	MeanSnares      float64 `json:"mean_snares"`
	MeanDetections  float64 `json:"mean_detections"`
}

// Delta is one policy's paired comparison against the baseline on one park:
// per-cell common-random-number detection differences and the bootstrap
// interval on their mean.
type Delta struct {
	Policy   string `json:"policy"`
	Baseline string `json:"baseline"`
	// PerCell[i] is (policy − baseline) total detections in the park's i-th
	// cell (grid order) — one paired observation per (seed, seasons) pair.
	PerCell []float64 `json:"per_cell"`
	// Mean is the mean paired delta; CILow/CIHigh bound it at 95%
	// (percentile bootstrap over the paired deltas).
	Mean   float64 `json:"mean"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
	// Wins counts cells where the policy strictly beat the baseline.
	Wins int `json:"wins"`
}

// ParkSummary aggregates one park across its grid cells.
type ParkSummary struct {
	// Park is the spec the cells ran (the sim reports carry the generated
	// park's display name).
	Park     string        `json:"park"`
	Cells    int           `json:"cells"`
	Policies []PolicyStats `json:"policies"`
	// Deltas holds one paired comparison per non-baseline policy, in
	// campaign policy order.
	Deltas []Delta `json:"deltas"`
}

// Report is the outcome of one campaign: the raw per-cell simulation
// reports (grid order) and the per-park paired aggregation.
type Report struct {
	Parks        []string      `json:"parks"`
	Policies     []string      `json:"policies"`
	Baseline     string        `json:"baseline"`
	Seeds        []int64       `json:"seeds"`
	SeasonCounts []int         `json:"season_counts"`
	Resamples    int           `json:"resamples"`
	Cells        []CellResult  `json:"cells"`
	Summaries    []ParkSummary `json:"summaries"`
}

// bootstrapSeedRoot anchors the delta-CI bootstrap streams: each
// (park, policy, baseline) triple splits its own labelled stream off this
// fixed root, so CIs are reproducible and independent of worker count,
// completion order and every other campaign parameter.
const bootstrapSeedRoot = 1

// Run executes the campaign grid and aggregates the paired report. Cells
// fan out through an internal job.Manager bounded by cfg.Workers; results
// are collected in grid order, so the report is byte-identical for any
// worker count. The first cell error (or ctx's error) cancels the remaining
// cells' contexts immediately, and they are drained before Run returns.
func Run(ctx context.Context, cfg Config, run Runner) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if run == nil {
		return nil, fmt.Errorf("campaign: nil runner")
	}
	cells := cfg.cells()
	reports, err := runCells(ctx, cfg, cells, run)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Parks:        cfg.Parks,
		Policies:     cfg.Policies,
		Baseline:     cfg.Baseline,
		Seeds:        cfg.Seeds,
		SeasonCounts: cfg.SeasonCounts,
		Resamples:    cfg.Resamples,
		Cells:        make([]CellResult, len(cells)),
	}
	for i, cell := range cells {
		if err := checkPolicies(reports[i], cfg.Policies); err != nil {
			return nil, fmt.Errorf("campaign: cell %s seed=%d seasons=%d: %w", cell.Park, cell.Seed, cell.Seasons, err)
		}
		rep.Cells[i] = CellResult{Cell: cell, Report: reports[i]}
	}
	perPark := len(cfg.Seeds) * len(cfg.SeasonCounts)
	for pi, park := range cfg.Parks {
		rep.Summaries = append(rep.Summaries, summarize(park, rep.Cells[pi*perPark:(pi+1)*perPark], cfg))
	}
	return rep, nil
}

// runCells fans the cells out through a bounded job.Manager and collects
// the simulation reports in grid order. The first failing cell (in
// completion order) cancels every other cell's context immediately — a
// doomed campaign drains in milliseconds instead of simulating the rest of
// the grid — and its error is the one Run reports.
func runCells(ctx context.Context, cfg Config, cells []Cell, run Runner) ([]*sim.Report, error) {
	mgr := job.NewManager(job.Config{Workers: cfg.Workers, ResultTTL: -1, MaxRetained: len(cells)})
	// The counter increment and the callback run under one lock so observers
	// (e.g. the NDJSON job stream) see a strictly monotonic completed count.
	var progressMu sync.Mutex
	completed := 0
	total := len(cells)
	ids := make([]string, len(cells))
	// The first genuine failure cancels runCtx, which every cell's context
	// is derived from, so in-flight and queued cells stop promptly.
	runCtx, stopAll := context.WithCancel(context.Background())
	defer stopAll()
	var failMu sync.Mutex
	var failErr error
	recordFailure := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
		stopAll()
	}
	firstFailure := func(fallback error) error {
		failMu.Lock()
		defer failMu.Unlock()
		if failErr != nil {
			return failErr
		}
		return fallback
	}
	// abort cancels every in-flight cell and awaits the drain, so no cell
	// goroutine outlives Run on the error paths.
	abort := func(err error) ([]*sim.Report, error) {
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		_ = mgr.Shutdown(expired)
		return nil, err
	}
	for i, cell := range cells {
		cell := cell
		id, err := mgr.Submit(fmt.Sprintf("cell:%d", cell.Index), func(jctx context.Context, _ func(job.Event)) (any, error) {
			// Synchronous check first: AfterFunc fires cancel on its own
			// goroutine, so a cell starting just after the failure would
			// otherwise race past an only-async link and simulate anyway.
			if err := runCtx.Err(); err != nil {
				return nil, err
			}
			// A panicking runner must cancel the grid like an ordinary
			// error; re-panic so the job manager still contains it and the
			// job fails with the panic message.
			defer func() {
				if p := recover(); p != nil {
					recordFailure(fmt.Errorf("campaign: cell %s seed=%d seasons=%d: panic: %v", cell.Park, cell.Seed, cell.Seasons, p))
					panic(p)
				}
			}()
			cctx, cancel := context.WithCancel(jctx)
			defer cancel()
			defer context.AfterFunc(runCtx, cancel)()
			r, err := run(cctx, cell)
			if err != nil {
				recordFailure(fmt.Errorf("campaign: cell %s seed=%d seasons=%d: %w", cell.Park, cell.Seed, cell.Seasons, err))
				return nil, err
			}
			if r == nil {
				err := fmt.Errorf("campaign: cell %s seed=%d seasons=%d: runner returned a nil report", cell.Park, cell.Seed, cell.Seasons)
				recordFailure(err)
				return nil, err
			}
			if cfg.Progress != nil {
				func() {
					// Deferred unlock: a panicking callback must not leave
					// the lock held, or every other completing cell would
					// block on it forever and the campaign would hang.
					progressMu.Lock()
					defer progressMu.Unlock()
					completed++
					cfg.Progress(cell, completed, total)
				}()
			}
			return r, nil
		})
		if err != nil {
			return abort(err)
		}
		ids[i] = id
	}
	reports := make([]*sim.Report, len(cells))
	for i, id := range ids {
		if _, err := mgr.Wait(ctx, id); err != nil {
			return abort(err) // ctx done: cancel and drain the rest
		}
		v, _, err := mgr.Result(id)
		if err != nil {
			// Report the root cause, not the cascade: once one cell fails,
			// the others fail with context.Canceled from the shared cancel.
			return abort(firstFailure(fmt.Errorf("campaign: cell %s seed=%d seasons=%d: %w", cells[i].Park, cells[i].Seed, cells[i].Seasons, err)))
		}
		reports[i] = v.(*sim.Report)
	}
	_ = mgr.Shutdown(context.Background()) // nothing active; returns at once
	return reports, nil
}

// checkPolicies verifies a cell report carries exactly the campaign's
// policies — the Runner contract the aggregation relies on.
func checkPolicies(r *sim.Report, policies []string) error {
	if len(r.Policies) != len(policies) {
		return fmt.Errorf("report has %d policies, campaign wants %d", len(r.Policies), len(policies))
	}
	for _, want := range policies {
		if _, err := policyResult(r, want); err != nil {
			return err
		}
	}
	return nil
}

// policyResult extracts one policy's result from a cell report by name.
func policyResult(r *sim.Report, policy string) (sim.PolicyResult, error) {
	for _, p := range r.Policies {
		if p.Policy == policy {
			return p, nil
		}
	}
	return sim.PolicyResult{}, fmt.Errorf("report is missing policy %q", policy)
}

// summarize aggregates one park's cells: per-policy stats and paired deltas
// against the baseline, with bootstrap CIs from fixed labelled streams.
func summarize(park string, cells []CellResult, cfg Config) ParkSummary {
	s := ParkSummary{Park: park, Cells: len(cells)}
	detections := map[string][]float64{}
	for _, policy := range cfg.Policies {
		st := PolicyStats{Policy: policy, Cells: len(cells)}
		per := make([]float64, len(cells))
		for i, c := range cells {
			pr, _ := policyResult(c.Report, policy) // presence checked in Run
			st.TotalSnares += pr.Snares
			st.TotalDetections += pr.Detections
			per[i] = float64(pr.Detections)
		}
		st.MeanSnares = float64(st.TotalSnares) / float64(len(cells))
		st.MeanDetections = float64(st.TotalDetections) / float64(len(cells))
		detections[policy] = per
		s.Policies = append(s.Policies, st)
	}
	base := detections[cfg.Baseline]
	for _, policy := range cfg.Policies {
		if policy == cfg.Baseline {
			continue
		}
		d := Delta{Policy: policy, Baseline: cfg.Baseline, PerCell: make([]float64, len(cells))}
		for i := range cells {
			d.PerCell[i] = detections[policy][i] - base[i]
			d.Mean += d.PerCell[i]
			if d.PerCell[i] > 0 {
				d.Wins++
			}
		}
		d.Mean /= float64(len(cells))
		r := rng.New(bootstrapSeedRoot).Split(fmt.Sprintf("campaign-bootstrap:%s:%s:%s", park, policy, cfg.Baseline))
		d.CILow, d.CIHigh = stats.BootstrapMeanCI(d.PerCell, cfg.Resamples, 0.95, r)
		s.Deltas = append(s.Deltas, d)
	}
	return s
}
