package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCtxRunsAll checks the uncancelled path is equivalent to ForEach.
func TestForEachCtxRunsAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := ForEachCtx(context.Background(), workers, 100, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 100 {
			t.Fatalf("workers=%d: ran %d tasks, want 100", workers, ran.Load())
		}
	}
}

// TestForEachCtxNilContext checks nil ctx runs uncancelled.
func TestForEachCtxNilContext(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachCtx(nil, 4, 50, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
}

// TestForEachCtxAlreadyCanceled checks a dead context runs zero tasks.
func TestForEachCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := ForEachCtx(ctx, workers, 10, func(i int) { ran = true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran {
			t.Fatalf("workers=%d: task ran under a canceled context", workers)
		}
	}
}

// TestForEachCtxDrainsInFlight cancels mid-sweep and asserts that (a) the
// call does not return before every started task has finished — the drain
// guarantee callers rely on to free task-owned memory — and (b) the sweep
// stops early.
func TestForEachCtxDrainsInFlight(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	err := ForEachCtx(ctx, 4, n, func(i int) {
		started.Add(1)
		if i == 2 {
			cancel()
		}
		time.Sleep(200 * time.Microsecond)
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("returned with %d tasks started but only %d finished (in-flight work not drained)", s, f)
	}
	if started.Load() == n {
		t.Fatalf("all %d tasks ran despite cancellation at task 3", n)
	}
}

// TestForEachCtxNoGoroutineLeak cancels many sweeps mid-flight and asserts
// the worker goroutines all exit.
func TestForEachCtxNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForEachCtx(ctx, 8, 500, func(i int) {
			if i == 1 {
				cancel()
			}
			time.Sleep(50 * time.Microsecond)
		})
		cancel()
	}
	// Workers are waited on before ForEachCtx returns, so no settling loop
	// should be needed; allow a couple of rechecks for unrelated runtime
	// goroutines to park.
	for attempt := 0; ; attempt++ {
		if g := runtime.NumGoroutine(); g <= base {
			return
		} else if attempt >= 50 {
			t.Fatalf("goroutines grew from %d to %d after canceled sweeps (worker leak)", base, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestForEachErrCtxContextWins checks the deterministic error precedence:
// when the context dies, ctx.Err() is reported even if some task failed.
func TestForEachErrCtxContextWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	taskErr := errors.New("task failure")
	err := ForEachErrCtx(ctx, 4, 100, func(i int) error {
		if i == 0 {
			cancel()
			return taskErr
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to shadow task errors", err)
	}
}

// TestForEachErrCtxTaskError checks task errors still surface (lowest index)
// when the context stays live.
func TestForEachErrCtxTaskError(t *testing.T) {
	want := errors.New("boom-3")
	err := ForEachErrCtx(context.Background(), 4, 10, func(i int) error {
		if i == 3 {
			return want
		}
		if i == 7 {
			return errors.New("boom-7")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want lowest-index error %v", err, want)
	}
}

// TestMapErrCtxDeadline checks deadline expiry surfaces as DeadlineExceeded.
func TestMapErrCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := MapErrCtx(ctx, 2, 10000, func(i int) (int, error) {
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestForEachSliceCtxCoversAll checks chunked scheduling covers every index
// exactly once for awkward chunk/size combinations.
func TestForEachSliceCtxCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, chunk int }{{0, 4}, {1, 4}, {7, 3}, {12, 3}, {100, 0}, {5, 100}} {
		seen := make([]int, tc.n)
		err := ForEachSliceCtx(context.Background(), 3, tc.n, tc.chunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		if err != nil {
			t.Fatalf("n=%d chunk=%d: %v", tc.n, tc.chunk, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", tc.n, tc.chunk, i, c)
			}
		}
	}
}
