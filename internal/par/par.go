// Package par is the deterministic parallel-execution substrate of the PAWS
// pipeline. It provides a bounded worker pool over index spaces with
// index-ordered results, so every caller gets byte-identical output no matter
// how many workers run, plus seed pre-derivation helpers that let random
// work fan out without perturbing the sequential draw order.
//
// The determinism contract has two halves:
//
//  1. Results are written to slots owned by their task index, never appended
//     in completion order, so output layout is independent of scheduling.
//  2. Any randomness a task needs is derived BEFORE fan-out by draining seeds
//     from the parent stream in index order (Seeds / SeedsFrom). Task i
//     therefore sees the same seed whether it runs first, last, or alone.
//
// Under this contract, Workers(1) and Workers(N) runs of the same
// computation produce identical floats, which the determinism tests in the
// root package assert for every model kind.
//
// Worker-count semantics, shared by every Workers/Config.Workers field in
// the repo: a value ≥ 1 is used as-is (1 means inline sequential execution,
// no goroutines); 0 or negative means one worker per available CPU
// (runtime.GOMAXPROCS(0)), so `GOMAXPROCS=4 go test` or `-cpu 4` scale the
// whole pipeline without touching any option struct.
//
// The Ctx variants (ForEachCtx, ForEachErrCtx, MapCtx, MapErrCtx,
// ForEachSliceCtx) additionally observe a context.Context between tasks:
// once the context is done no new task starts, tasks already in flight are
// drained (they run to completion before the call returns, and no worker
// goroutine outlives the call), and the context's error is returned. This is
// how request deadlines reach mid-sweep into training and map generation.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"paws/internal/rng"
)

// Workers resolves a requested worker count: n ≥ 1 is used as-is; 0 or
// negative selects one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved by Workers). With one worker it runs inline on the calling
// goroutine. fn must confine its writes to data owned by index i; under that
// discipline the result is identical for any worker count.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach under a context: no new task starts once ctx is
// done, but tasks already in flight run to completion before the call
// returns (callers may free task-owned memory immediately after), and every
// worker goroutine has exited by then — cancellation never leaks goroutines.
// It returns nil when all n tasks ran, or ctx.Err() when the sweep was cut
// short (and, racily, when cancellation lands after the last task; callers
// treat both as a canceled sweep). A nil ctx runs uncancelled.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ForEach(workers, n, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	// Drain: wait for in-flight tasks even after cancellation, so fn never
	// runs concurrently with whatever the caller does on error return.
	wg.Wait()
	if int(next.Load()) < n {
		return ctx.Err()
	}
	return nil
}

// ForEachErr is ForEach for fallible tasks. Every task runs regardless of
// other tasks' failures; the returned error is the one from the lowest
// failing index, so error reporting is deterministic under any interleaving.
func ForEachErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachErrCtx is ForEachErr under a context, with ForEachCtx's
// drain-and-return semantics. The context error takes precedence over task
// errors: once the sweep is cut short, which tasks ran (and therefore which
// task errors exist) depends on scheduling, so reporting ctx.Err() is the
// only deterministic choice.
func ForEachErrCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	if err := ForEachCtx(ctx, workers, n, func(i int) { errs[i] = fn(i) }); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map collects fn(i) for i in [0, n) into a slice in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapCtx is Map under a context; on cancellation the partial results are
// discarded and ctx.Err() is returned.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if err := ForEachCtx(ctx, workers, n, func(i int) { out[i] = fn(i) }); err != nil {
		return nil, err
	}
	return out, nil
}

// MapErrCtx is MapErr under a context, with ForEachErrCtx's error
// precedence. On any error the partial results are discarded.
func MapErrCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErrCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapErr is Map for fallible tasks, with ForEachErr's lowest-index error
// semantics. On error the partial results are discarded.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachChunk splits [0, n) into at most Workers(workers) contiguous chunks
// of near-equal size and runs fn(lo, hi) for each — the right shape for
// batch APIs that amortize per-call setup over many indices.
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	ForEach(workers, workers, func(c int) {
		lo := c * n / workers
		hi := (c + 1) * n / workers
		if lo < hi {
			fn(lo, hi)
		}
	})
}

// ForEachSliceCtx runs fn(lo, hi) over [0, n) in contiguous chunks of at
// most `chunk` indices, scheduled dynamically over the worker pool with
// cancellation observed between chunks. Unlike ForEachChunk — which cuts
// exactly one chunk per worker — the fixed chunk size bounds how much work
// starts after ctx is canceled, which is what gives long batch sweeps
// (risk maps, batched prediction) a deadline with useful granularity.
// Chunk boundaries must not affect fn's per-index output; every batch
// prediction path in this repo satisfies that (per-row arithmetic is
// independent of batch composition), so results stay byte-identical for any
// chunk size and worker count.
func ForEachSliceCtx(ctx context.Context, workers, n, chunk int, fn func(lo, hi int)) error {
	if chunk <= 0 {
		chunk = 256
	}
	nChunks := (n + chunk - 1) / chunk
	return ForEachCtx(ctx, workers, nChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Seeds pre-derives n per-task seeds from a root seed by draining a fresh
// stream sequentially. Drawing all seeds before fan-out is what keeps
// parallel execution byte-identical to sequential: task i receives the same
// seed regardless of worker count or completion order.
func Seeds(root int64, n int) []int64 {
	return SeedsFrom(rng.New(root), n)
}

// SeedsFrom drains n seeds from an existing stream in index order. Use this
// when the parent stream interleaves seed draws with other sampling and the
// historical draw order must be preserved exactly.
func SeedsFrom(r *rng.RNG, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}
