package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 101
		counts := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndTinyN(t *testing.T) {
	ran := 0
	ForEach(8, 0, func(i int) { ran++ })
	if ran != 0 {
		t.Fatalf("n=0 ran %d tasks", ran)
	}
	ForEach(8, 1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d tasks", ran)
	}
}

func TestMapIsIndexOrdered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) error {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		return ForEachErr(4, 20, func(i int) error {
			if isBad[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	if err := errAt(); err != nil {
		t.Fatalf("no failures: %v", err)
	}
	// Regardless of scheduling, the lowest failing index wins.
	for trial := 0; trial < 20; trial++ {
		err := errAt(17, 3, 11)
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: got %v, want task 3's error", trial, err)
		}
	}
}

func TestMapErrDiscardsPartialResults(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := MapErr(2, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatalf("expected nil results on error, got %v", out)
	}
}

func TestForEachChunkPartitions(t *testing.T) {
	for _, workers := range []int{1, 3, 4, 7} {
		for _, n := range []int{0, 1, 5, 100} {
			covered := make([]atomic.Int64, n)
			ForEachChunk(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if c := covered[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestSeedsDeterministicAndIndexStable(t *testing.T) {
	a := Seeds(42, 8)
	b := Seeds(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Seeds not deterministic at %d", i)
		}
	}
	// A longer drain shares the prefix: task i's seed does not depend on n.
	long := Seeds(42, 16)
	for i := range a {
		if a[i] != long[i] {
			t.Fatalf("seed %d depends on n", i)
		}
	}
	if Seeds(42, 4)[0] == Seeds(43, 4)[0] {
		t.Fatal("different roots should give different seeds")
	}
}
