// Package poach implements the ground-truth wildlife-crime process that
// substitutes for the proprietary SMART patrol data used in the paper
// (see DESIGN.md, substitution table).
//
// The generative model has three parts, mirroring Section III of the paper:
//
//  1. An attacker places snares in cell n during month m with probability
//     σ(w·x_n + b + seasonal(n,m) − d·c_{m−1,n}): a logistic function of the
//     true static features, a park-specific seasonal term, and a deterrence
//     term in the previous month's patrol coverage.
//  2. Rangers patrol from posts along biased walks, producing waypoint
//     streams (sparser for motorbike parks) and per-cell monthly effort.
//  3. Detection is one-sided noise: an attack in a patrolled cell is found
//     with probability 1 − exp(−λ·effort). Positives are therefore reliable
//     while negatives are only as trustworthy as the effort behind them —
//     exactly the label-noise structure iWare-E is designed for.
package poach

import (
	"fmt"
	"math"

	"paws/internal/geo"
	"paws/internal/stats"
)

// GroundTruth is the true attack and detection process for one park.
type GroundTruth struct {
	Park *geo.Park

	// Weights over the park's static features (parallel to FeatureNames).
	Weights []float64
	// Bias is the attack-logit intercept, set by Calibrate.
	Bias float64
	// Deterrence scales the previous-month coverage penalty in the logit.
	Deterrence float64
	// SeasonalAmp modulates attacks between north (dry) and south (wet).
	// Zero for parks without seasonality.
	SeasonalAmp float64
	// DetectLambda is the detection saturation rate per km of effort.
	DetectLambda float64
	// Hidden is the per-cell unobserved risk shift (see NewGroundTruth).
	Hidden []float64
	// SignalGain scales the observable part of the attack score (default 1).
	// Larger gains concentrate true risk into hot spots, producing the
	// heavy-tailed risk landscape real parks exhibit (a few snaring hot
	// spots, large cold areas) — the regime where field tests have power.
	SignalGain float64

	// score caches the attack score per cell: the linear term w·x plus the
	// nonlinear terms below and the hidden field. The nonlinearity matters
	// for Table II's model ranking — real poaching risk is not linearly
	// separable in the raw features, which is why linear SVMs underperform
	// trees and GPs.
	score []float64
}

// nonlinearScore adds the non-additive structure of the attack logit:
// poachers favour a band of distances from rivers (close enough for water
// and game trails, far enough to stay hidden) and the conjunction of high
// animal density with forest cover (game to snare AND concealment).
func nonlinearScore(park *geo.Park, id int) float64 {
	var s float64
	if r := park.FeatureByName("dist_river"); r != nil {
		d := r.V[id]
		s += 1.4 * math.Exp(-(d-2.5)*(d-2.5)/2)
	}
	animal := park.FeatureByName("animal_density")
	forest := park.FeatureByName("forest_cover")
	if animal != nil && forest != nil {
		s += 2.0 * animal.V[id] * forest.V[id]
	}
	return s
}

// NewGroundTruth builds a ground truth with the standard weight profile:
// attacks concentrate in cells with high animal density and forest cover,
// near rivers and villages, and toward the park edge — the qualitative
// structure the paper describes for MFNP/QENP/SWS.
//
// hiddenAmp adds a smooth spatially-correlated risk field that is NOT
// derivable from any observed feature: unmeasured drivers (market access,
// poacher village locations, traditional hunting grounds) that cap the
// achievable AUC of any model, as in real wildlife-crime data.
func NewGroundTruth(park *geo.Park, deterrence, seasonalAmp, detectLambda, hiddenAmp float64) *GroundTruth {
	w := make([]float64, park.NumFeatures())
	for j, name := range park.FeatureNames {
		switch name {
		case "animal_density":
			w[j] = 0.8
		case "forest_cover":
			w[j] = 0.2
		case "dist_river":
			w[j] = -0.05
		case "dist_village":
			w[j] = -0.30
		case "dist_boundary":
			w[j] = -0.12
		case "dist_road":
			w[j] = -0.05
		case "slope":
			w[j] = -0.6
		case "dist_patrol_post":
			w[j] = 0.04
		}
	}
	gt := &GroundTruth{
		Park:         park,
		Weights:      w,
		Deterrence:   deterrence,
		SeasonalAmp:  seasonalAmp,
		DetectLambda: detectLambda,
		SignalGain:   1,
	}
	n := park.Grid.NumCells()
	gt.Hidden = make([]float64, n)
	if hiddenAmp > 0 {
		nz := geo.NewNoise(park.Config.Seed+777, 4, 0.5, 0.06)
		for id := 0; id < n; id++ {
			x, y := park.Grid.CellXY(id)
			gt.Hidden[id] = hiddenAmp * (2*nz.At(float64(x), float64(y)) - 1)
		}
	}
	gt.rebuildScores()
	return gt
}

func (gt *GroundTruth) rebuildScores() {
	n := gt.Park.Grid.NumCells()
	nf := gt.Park.NumFeatures()
	// Standardize features inside the true score so the observable signal's
	// magnitude does not grow with park size (raw distance features scale
	// with the park diameter); this keeps the signal-to-noise ratio — and
	// therefore the achievable AUC — comparable across park scales.
	mean := make([]float64, nf)
	std := make([]float64, nf)
	buf := make([]float64, nf)
	for id := 0; id < n; id++ {
		buf = gt.Park.FeatureVector(id, buf)
		for j, v := range buf {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for id := 0; id < n; id++ {
		buf = gt.Park.FeatureVector(id, buf)
		for j, v := range buf {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	gain := gt.SignalGain
	if gain <= 0 {
		gain = 1
	}
	gt.score = make([]float64, n)
	for id := 0; id < n; id++ {
		buf = gt.Park.FeatureVector(id, buf)
		var s float64
		for j, v := range buf {
			s += gt.Weights[j] * (v - mean[j]) / std[j]
		}
		gt.score[id] = gain*(s+nonlinearScore(gt.Park, id)) + gt.Hidden[id]
	}
}

// SetSignalGain rescales the observable score component and rebuilds the
// cached scores. Call before Calibrate.
func (gt *GroundTruth) SetSignalGain(gain float64) {
	gt.SignalGain = gain
	gt.rebuildScores()
}

// DrySeason reports whether month m (0 = January) falls in the November–April
// dry season used for the SWS field tests.
func DrySeason(m int) bool {
	mm := m % 12
	return mm >= 10 || mm <= 3
}

// seasonal returns the seasonal logit shift for cell id in month m: in
// seasonal parks, dry-season attacks shift north and wet-season attacks
// shift south (Section VII-C of the paper).
func (gt *GroundTruth) seasonal(id, month int) float64 {
	if gt.SeasonalAmp == 0 {
		return 0
	}
	ns := gt.Park.NorthSouth.V[id]
	if DrySeason(month) {
		return gt.SeasonalAmp * ns
	}
	return -gt.SeasonalAmp * ns
}

// AttackLogit returns the attack log-odds for cell id in month m given the
// previous month's patrol effort in that cell.
func (gt *GroundTruth) AttackLogit(id, month int, prevEffort float64) float64 {
	return gt.score[id] + gt.Bias + gt.seasonal(id, month) - gt.Deterrence*prevEffort
}

// AttackProb returns the attack probability for cell id in month m.
func (gt *GroundTruth) AttackProb(id, month int, prevEffort float64) float64 {
	return stats.Logistic(gt.AttackLogit(id, month, prevEffort))
}

// DetectProb returns the probability that an attack present in a cell is
// detected under the given patrol effort (km). It is 0 at zero effort and
// saturates toward 1 — the one-sided noise of Section III-C.
func (gt *GroundTruth) DetectProb(effort float64) float64 {
	if effort <= 0 {
		return 0
	}
	return 1 - math.Exp(-gt.DetectLambda*effort)
}

// Calibrate sets the bias so that the expected positive-label rate over the
// supplied patrolled points (pairs of cell id and effort) matches target.
// It returns the achieved rate. Points with zero effort are ignored, since
// they generate no dataset rows.
func (gt *GroundTruth) Calibrate(cells []int, efforts []float64, months []int, target float64) (float64, error) {
	if len(cells) != len(efforts) || len(cells) != len(months) {
		return 0, fmt.Errorf("poach: calibrate length mismatch %d/%d/%d", len(cells), len(efforts), len(months))
	}
	if len(cells) == 0 {
		return 0, fmt.Errorf("poach: no patrolled points to calibrate on")
	}
	rate := func(bias float64) float64 {
		var sum float64
		n := 0
		for i, id := range cells {
			if efforts[i] <= 0 {
				continue
			}
			logit := gt.score[id] + bias + gt.seasonal(id, months[i])
			sum += stats.Logistic(logit) * gt.DetectProb(efforts[i])
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	lo, hi := -20.0, 10.0
	if rate(hi) < target {
		gt.Bias = hi
		return rate(hi), nil
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if rate(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	gt.Bias = (lo + hi) / 2
	return rate(gt.Bias), nil
}
