package poach

import (
	"math"
	"testing"
	"testing/quick"

	"paws/internal/geo"
	"paws/internal/rng"
)

// smallPark builds a fast test park.
func smallPark(t *testing.T, seed int64) *geo.Park {
	t.Helper()
	cfg := geo.ParkConfig{
		Name: "TEST", Seed: seed, W: 24, H: 24, TargetCells: 420,
		Shape: geo.ShapeRound, NumRivers: 2, NumRoads: 2, NumVillages: 3,
		NumPosts: 3, ExtraFeatures: 2,
	}
	p, err := geo.GeneratePark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallSim(seed int64) SimConfig {
	return SimConfig{
		Seed:   seed,
		Months: 24,
		Patrol: PatrolConfig{
			PatrolsPerPostMonth: 3,
			LengthKM:            10,
			RecordEvery:         1,
			RoadBias:            0.3,
			AttractBias:         0.5,
		},
		TargetPositiveRate: 0.12,
		Deterrence:         0.3,
		SeasonalAmp:        0,
		DetectLambda:       0.5,
		NonPoachingRate:    0.08,
	}
}

func TestDetectProbMonotoneSaturating(t *testing.T) {
	p := smallPark(t, 1)
	gt := NewGroundTruth(p, 0.3, 0, 0.5, 0)
	if gt.DetectProb(0) != 0 {
		t.Fatal("zero effort must give zero detection")
	}
	if gt.DetectProb(-1) != 0 {
		t.Fatal("negative effort must give zero detection")
	}
	prev := 0.0
	for e := 0.1; e < 20; e += 0.1 {
		d := gt.DetectProb(e)
		if d <= prev-1e-15 {
			t.Fatalf("DetectProb not monotone at %v", e)
		}
		if d < 0 || d >= 1 {
			t.Fatalf("DetectProb out of [0,1): %v", d)
		}
		prev = d
	}
	if gt.DetectProb(100) < 0.99 {
		t.Fatal("DetectProb should saturate toward 1")
	}
}

func TestAttackProbDeterrence(t *testing.T) {
	p := smallPark(t, 2)
	gt := NewGroundTruth(p, 0.5, 0, 0.5, 0)
	// More previous effort must reduce attack probability.
	p0 := gt.AttackProb(10, 0, 0)
	p1 := gt.AttackProb(10, 0, 2)
	if p1 >= p0 {
		t.Fatalf("deterrence failed: %v >= %v", p1, p0)
	}
}

func TestAttackProbBounds(t *testing.T) {
	p := smallPark(t, 3)
	gt := NewGroundTruth(p, 0.3, 0.5, 0.5, 0)
	f := func(cell uint16, month uint8, eff float64) bool {
		id := int(cell) % p.Grid.NumCells()
		e := math.Abs(eff)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			e = 1
		}
		pr := gt.AttackProb(id, int(month), e)
		return pr >= 0 && pr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDrySeason(t *testing.T) {
	// Nov(10), Dec(11), Jan(0), Feb(1), Mar(2), Apr(3) are dry.
	dry := []int{0, 1, 2, 3, 10, 11, 12, 13, 22, 23}
	wet := []int{4, 5, 6, 7, 8, 9, 16, 21}
	for _, m := range dry {
		if !DrySeason(m) {
			t.Fatalf("month %d should be dry", m)
		}
	}
	for _, m := range wet {
		if DrySeason(m) {
			t.Fatalf("month %d should be wet", m)
		}
	}
}

func TestSeasonalShiftFlips(t *testing.T) {
	p := smallPark(t, 4)
	gt := NewGroundTruth(p, 0.3, 1.0, 0.5, 0)
	// Find a northern cell.
	north := -1
	for id := 0; id < p.Grid.NumCells(); id++ {
		if p.NorthSouth.V[id] == 1 {
			north = id
			break
		}
	}
	if north < 0 {
		t.Skip("no northern cell")
	}
	dry := gt.AttackProb(north, 0, 0) // Jan = dry
	wet := gt.AttackProb(north, 6, 0) // Jul = wet
	if dry <= wet {
		t.Fatalf("northern cell should be riskier in dry season: dry=%v wet=%v", dry, wet)
	}
}

func TestCalibrateHitsTarget(t *testing.T) {
	p := smallPark(t, 5)
	gt := NewGroundTruth(p, 0.3, 0, 0.5, 0)
	r := rng.New(6)
	var cells []int
	var efforts []float64
	var months []int
	for i := 0; i < 3000; i++ {
		cells = append(cells, r.Intn(p.Grid.NumCells()))
		efforts = append(efforts, 0.5+3*r.Float64())
		months = append(months, r.Intn(24))
	}
	for _, target := range []float64{0.005, 0.05, 0.15} {
		got, err := gt.Calibrate(cells, efforts, months, target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-target) > target*0.02+1e-6 {
			t.Fatalf("calibrated rate %v for target %v", got, target)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	p := smallPark(t, 7)
	gt := NewGroundTruth(p, 0.3, 0, 0.5, 0)
	if _, err := gt.Calibrate([]int{1}, []float64{1, 2}, []int{0}, 0.1); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := gt.Calibrate(nil, nil, nil, 0.1); err == nil {
		t.Fatal("expected empty-points error")
	}
}

func TestSimulatePatrolMonthEffortMatchesWalk(t *testing.T) {
	p := smallPark(t, 8)
	cfg := smallSim(9).Patrol
	wps, effort := SimulatePatrolMonth(p, cfg, 0, 0, rng.New(10))
	if len(wps) == 0 {
		t.Fatal("no waypoints generated")
	}
	var total float64
	touched := 0
	for _, e := range effort {
		if e < 0 {
			t.Fatal("negative effort")
		}
		if e > 0 {
			touched++
		}
		total += e
	}
	if touched == 0 || total == 0 {
		t.Fatal("patrols generated no effort")
	}
	// Effort should be within the theoretical ceiling: patrols × length × √2.
	ceiling := float64(len(p.Posts)*cfg.PatrolsPerPostMonth*cfg.LengthKM) * math.Sqrt2
	if total > ceiling {
		t.Fatalf("total effort %v exceeds ceiling %v", total, ceiling)
	}
	// Waypoints must be inside the lattice frame and ordered within patrols.
	for _, w := range wps {
		if w.X < 0 || w.Y < 0 || w.X > float64(p.Grid.W) || w.Y > float64(p.Grid.H) {
			t.Fatalf("waypoint out of frame: %+v", w)
		}
	}
}

func TestWaypointDensityReflectsRecordEvery(t *testing.T) {
	p := smallPark(t, 11)
	cfgDense := smallSim(1).Patrol
	cfgSparse := cfgDense
	cfgSparse.RecordEvery = 4
	wpsDense, _ := SimulatePatrolMonth(p, cfgDense, 0, 0, rng.New(2))
	wpsSparse, _ := SimulatePatrolMonth(p, cfgSparse, 0, 0, rng.New(2))
	if len(wpsSparse) >= len(wpsDense) {
		t.Fatalf("sparse recording should produce fewer waypoints: %d vs %d", len(wpsSparse), len(wpsDense))
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	p := smallPark(t, 12)
	h, err := Simulate(p, smallSim(13))
	if err != nil {
		t.Fatal(err)
	}
	if h.Months != 24 || len(h.Effort) != 24 {
		t.Fatal("month bookkeeping wrong")
	}
	// Positive rate should land near the calibration target.
	rate := h.PositiveRate()
	if rate < 0.05 || rate > 0.25 {
		t.Fatalf("positive rate %v far from target 0.12", rate)
	}
	// Every detection implies an attack and positive effort.
	for m := 0; m < h.Months; m++ {
		for id := range h.Detected[m] {
			if h.Detected[m][id] {
				if !h.Attacked[m][id] {
					t.Fatal("detection without attack")
				}
				if h.Effort[m][id] <= 0 {
					t.Fatal("detection without patrol effort")
				}
			}
		}
	}
	// Observations must be consistent with the detection matrix.
	for _, o := range h.Observations {
		if o.Poaching && !h.Detected[o.Month][o.CellID] {
			t.Fatal("poaching observation without detection")
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := smallPark(t, 14)
	h1, err := Simulate(p, smallSim(15))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Simulate(p, smallSim(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(h1.Observations) != len(h2.Observations) || len(h1.Waypoints) != len(h2.Waypoints) {
		t.Fatal("simulation is not deterministic")
	}
	if h1.Truth.Bias != h2.Truth.Bias {
		t.Fatal("calibration differs between identical runs")
	}
}

func TestSimulateInvalidMonths(t *testing.T) {
	p := smallPark(t, 16)
	cfg := smallSim(17)
	cfg.Months = 0
	if _, err := Simulate(p, cfg); err == nil {
		t.Fatal("expected error for zero months")
	}
}

func TestTotalEffort(t *testing.T) {
	p := smallPark(t, 18)
	h, err := Simulate(p, smallSim(19))
	if err != nil {
		t.Fatal(err)
	}
	tot := h.TotalEffort(0, h.Months)
	var sum float64
	for _, e := range tot {
		sum += e
	}
	var direct float64
	for m := 0; m < h.Months; m++ {
		for _, e := range h.Effort[m] {
			direct += e
		}
	}
	if math.Abs(sum-direct) > 1e-9 {
		t.Fatal("TotalEffort does not sum per-month effort")
	}
	// Out-of-range months are clipped harmlessly.
	clip := h.TotalEffort(-5, h.Months+10)
	var clipSum float64
	for _, e := range clip {
		clipSum += e
	}
	if math.Abs(clipSum-direct) > 1e-9 {
		t.Fatal("TotalEffort clipping wrong")
	}
}

func TestSimPresets(t *testing.T) {
	for _, name := range []string{"MFNP", "QENP", "SWS"} {
		cfg, ok := SimByName(name, 1)
		if !ok {
			t.Fatalf("missing sim preset %q", name)
		}
		if cfg.Months != 72 {
			t.Fatalf("%s: expected 6 years of history", name)
		}
	}
	if _, ok := SimByName("NOPE", 1); ok {
		t.Fatal("unknown sim preset should return false")
	}
	// SWS is the seasonal motorbike park.
	sws, _ := SimByName("SWS", 1)
	if !sws.Patrol.WetSeasonRiverBlock || sws.Patrol.RecordEvery < 2 || sws.SeasonalAmp == 0 {
		t.Fatal("SWS preset should model motorbikes and seasonality")
	}
}
