package poach

import (
	"fmt"

	"paws/internal/geo"
	"paws/internal/rng"
	"paws/internal/stats"
)

// Observation is a SMART-style ranger record: a detected poaching sign
// (snare, cartridge, slain animal) or a non-poaching observation, located in
// a cell during a month.
type Observation struct {
	Month    int
	CellID   int
	Poaching bool
}

// History is the complete simulated record for one park: the raw waypoint
// stream (what the dataset layer rebuilds effort from), the observation log,
// and the hidden truths (per-month effort, attacks, detections) kept for
// evaluation and field tests.
type History struct {
	Park   *geo.Park
	Truth  *GroundTruth
	Months int

	Waypoints    []Waypoint
	Observations []Observation

	// Effort[m][cell] is the true km patrolled (hidden from the pipeline,
	// which must rebuild it from waypoints).
	Effort [][]float64
	// Attacked[m][cell] and Detected[m][cell] are the hidden outcomes.
	Attacked [][]bool
	Detected [][]bool
}

// SimConfig bundles everything needed to simulate a park's history.
type SimConfig struct {
	Seed   int64
	Months int
	Patrol PatrolConfig
	// TargetPositiveRate calibrates the attack bias so the positive-label
	// rate over patrolled cell-months approximates this value.
	TargetPositiveRate float64
	Deterrence         float64
	SeasonalAmp        float64
	DetectLambda       float64
	// HiddenAmp scales the unobserved spatial risk field (see
	// poach.NewGroundTruth); it bounds the best achievable AUC.
	HiddenAmp float64
	// TemporalNoise is the per-(cell,month) standard deviation of transient
	// logit noise applied when sampling attacks (poaching opportunism).
	TemporalNoise float64
	// SignalGain concentrates true risk into hot spots (default 1; see
	// poach.GroundTruth.SignalGain).
	SignalGain float64
	// NonPoachingRate is the per-visited-cell-month probability of logging a
	// non-poaching observation (animals seen, campsites, etc.).
	NonPoachingRate float64
}

// MFNPSim returns simulation parameters for Murchison Falls: foot patrols,
// dense waypoints, high poaching prevalence (Table I: 14.3% positives).
func MFNPSim(seed int64) SimConfig {
	return SimConfig{
		Seed:   seed,
		Months: 72,
		Patrol: PatrolConfig{
			PatrolsPerPostMonth: 4,
			LengthKM:            19,
			RecordEvery:         1,
			RoadBias:            0.25,
			AttractBias:         0.6,
			Roam:                0.6,
		},
		TargetPositiveRate: 0.143,
		Deterrence:         0.35,
		SeasonalAmp:        0,
		DetectLambda:       0.35,
		HiddenAmp:          1.8,
		TemporalNoise:      1.2,
		SignalGain:         1.9,
		NonPoachingRate:    0.10,
	}
}

// QENPSim returns simulation parameters for Queen Elizabeth: foot patrols,
// lower prevalence (Table I: 4.7% positives).
func QENPSim(seed int64) SimConfig {
	return SimConfig{
		Seed:   seed,
		Months: 72,
		Patrol: PatrolConfig{
			PatrolsPerPostMonth: 5,
			LengthKM:            19,
			RecordEvery:         1,
			RoadBias:            0.3,
			AttractBias:         0.5,
			Roam:                0.6,
		},
		TargetPositiveRate: 0.047,
		Deterrence:         0.35,
		SeasonalAmp:        0,
		DetectLambda:       0.35,
		HiddenAmp:          1.7,
		TemporalNoise:      1.2,
		SignalGain:         1.9,
		NonPoachingRate:    0.10,
	}
}

// SWSSim returns simulation parameters for Srepok: motorbike patrols (long,
// sparse waypoints, less careful observation → lower detection rate), very
// low prevalence (Table I: 0.36% positives), strong seasonality.
func SWSSim(seed int64) SimConfig {
	return SimConfig{
		Seed:   seed,
		Months: 72,
		Patrol: PatrolConfig{
			PatrolsPerPostMonth: 13,
			LengthKM:            38,
			RecordEvery:         3,
			RoadBias:            0.5,
			AttractBias:         0.35,
			Roam:                0.6,
			WetSeasonRiverBlock: true,
		},
		TargetPositiveRate: 0.0036,
		Deterrence:         0.25,
		SeasonalAmp:        0.8,
		DetectLambda:       0.18,
		HiddenAmp:          1.8,
		TemporalNoise:      1.3,
		SignalGain:         3.2,
		NonPoachingRate:    0.05,
	}
}

// SimByName returns the simulation preset matching a park preset name.
func SimByName(name string, seed int64) (SimConfig, bool) {
	switch name {
	case "MFNP":
		return MFNPSim(seed), true
	case "QENP":
		return QENPSim(seed), true
	case "SWS":
		return SWSSim(seed), true
	}
	return SimConfig{}, false
}

// RandomSim derives simulation parameters for a procedural park
// (geo.RandomConfig): patrol character, prevalence, detectability and
// seasonality are drawn from the park's seed — so a given "rand:<seed>" park
// always poaches the same way — while seed seeds the history's random
// streams, so different histories can be sampled on the same park. The
// ranges span the qualitative spread of the three presets.
func RandomSim(park geo.ParkConfig, seed int64) SimConfig {
	r := rng.New(park.Seed).Split("randsim")
	cfg := SimConfig{
		Seed:   seed,
		Months: 60,
		Patrol: PatrolConfig{
			PatrolsPerPostMonth: 3 + r.Intn(5),
			LengthKM:            10 + r.Intn(14),
			RecordEvery:         1,
			RoadBias:            0.2 + 0.3*r.Float64(),
			AttractBias:         0.3 + 0.4*r.Float64(),
			Roam:                0.3 + 0.4*r.Float64(),
		},
		TargetPositiveRate: 0.02 + 0.12*r.Float64(),
		Deterrence:         0.2 + 0.3*r.Float64(),
		DetectLambda:       0.18 + 0.2*r.Float64(),
		HiddenAmp:          1.5 + 0.4*r.Float64(),
		TemporalNoise:      1.1 + 0.3*r.Float64(),
		SignalGain:         1.8 + 1.4*r.Float64(),
		NonPoachingRate:    0.05 + 0.06*r.Float64(),
	}
	if r.Float64() < 0.25 {
		// Motorbike park: long, sparse patrols.
		cfg.Patrol.RecordEvery = 3
		cfg.Patrol.LengthKM += 10
	}
	if park.Seasonal {
		cfg.SeasonalAmp = 0.6 + 0.4*r.Float64()
		cfg.Patrol.WetSeasonRiverBlock = true
	}
	return cfg
}

// Simulate runs the full generative process: patrols for every month, bias
// calibration against the realized patrolled points, then attack and
// detection sampling.
func Simulate(park *geo.Park, cfg SimConfig) (*History, error) {
	if cfg.Months <= 0 {
		return nil, fmt.Errorf("poach: months must be positive, got %d", cfg.Months)
	}
	root := rng.New(cfg.Seed)
	gt := NewGroundTruth(park, cfg.Deterrence, cfg.SeasonalAmp, cfg.DetectLambda, cfg.HiddenAmp)
	if cfg.SignalGain > 0 {
		gt.SetSignalGain(cfg.SignalGain)
	}

	h := &History{Park: park, Truth: gt, Months: cfg.Months}
	h.Effort = make([][]float64, cfg.Months)
	h.Attacked = make([][]bool, cfg.Months)
	h.Detected = make([][]bool, cfg.Months)

	// Pass 1: patrol effort (independent of attacks).
	patrolRNG := root.Split("patrols")
	pid := 0
	for m := 0; m < cfg.Months; m++ {
		wps, eff := SimulatePatrolMonth(park, cfg.Patrol, m, pid, patrolRNG)
		if len(wps) > 0 {
			pid = wps[len(wps)-1].PatrolID + 1
		}
		h.Waypoints = append(h.Waypoints, wps...)
		h.Effort[m] = eff
	}

	// Calibrate the attack bias on the realized patrolled points.
	var cCells []int
	var cEfforts []float64
	var cMonths []int
	for m := 0; m < cfg.Months; m++ {
		for id, e := range h.Effort[m] {
			if e > 0 {
				cCells = append(cCells, id)
				cEfforts = append(cEfforts, e)
				cMonths = append(cMonths, m)
			}
		}
	}
	if _, err := gt.Calibrate(cCells, cEfforts, cMonths, cfg.TargetPositiveRate); err != nil {
		return nil, err
	}

	// Pass 2: attacks and detections.
	attackRNG := root.Split("attacks")
	obsRNG := root.Split("observations")
	n := park.Grid.NumCells()
	for m := 0; m < cfg.Months; m++ {
		h.Attacked[m] = make([]bool, n)
		h.Detected[m] = make([]bool, n)
		for id := 0; id < n; id++ {
			prev := 0.0
			if m > 0 {
				prev = h.Effort[m-1][id]
			}
			logit := gt.AttackLogit(id, m, prev)
			if cfg.TemporalNoise > 0 {
				logit += attackRNG.Normal(0, cfg.TemporalNoise)
			}
			if !attackRNG.Bernoulli(stats.Logistic(logit)) {
				continue
			}
			h.Attacked[m][id] = true
			if attackRNG.Bernoulli(gt.DetectProb(h.Effort[m][id])) {
				h.Detected[m][id] = true
				h.Observations = append(h.Observations, Observation{Month: m, CellID: id, Poaching: true})
			}
		}
		// Non-poaching observations in visited cells.
		for id := 0; id < n; id++ {
			if h.Effort[m][id] > 0 && obsRNG.Bernoulli(cfg.NonPoachingRate) {
				h.Observations = append(h.Observations, Observation{Month: m, CellID: id, Poaching: false})
			}
		}
	}
	return h, nil
}

// PositiveRate returns the fraction of patrolled cell-months with a
// detection — the raw analogue of Table I's "% positive labels".
func (h *History) PositiveRate() float64 {
	var pos, tot int
	for m := 0; m < h.Months; m++ {
		for id, e := range h.Effort[m] {
			if e > 0 {
				tot++
				if h.Detected[m][id] {
					pos++
				}
			}
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(pos) / float64(tot)
}

// TotalEffort returns the per-cell effort summed over [fromMonth, toMonth).
func (h *History) TotalEffort(fromMonth, toMonth int) []float64 {
	n := h.Park.Grid.NumCells()
	out := make([]float64, n)
	for m := fromMonth; m < toMonth && m < h.Months; m++ {
		if m < 0 {
			continue
		}
		for id, e := range h.Effort[m] {
			out[id] += e
		}
	}
	return out
}
