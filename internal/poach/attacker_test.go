package poach

import (
	"testing"

	"paws/internal/geo"
)

func attackerTestTruth(t *testing.T) *GroundTruth {
	t.Helper()
	park, err := geo.GeneratePark(geo.ParkConfig{
		Name: "att", Seed: 5, W: 20, H: 20, TargetCells: 260,
		Shape: geo.ShapeRound, NumRivers: 2, NumRoads: 2, NumVillages: 2, NumPosts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt := NewGroundTruth(park, 0.35, 0, 0.3, 1.0)
	gt.Bias = -1
	return gt
}

// TestStaticAttackerMatchesGroundTruth pins the default behaviour: the
// static attacker is exactly the historical generative process.
func TestStaticAttackerMatchesGroundTruth(t *testing.T) {
	gt := attackerTestTruth(t)
	att, err := NewAttacker(gt, AttackerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := att.(*StaticAttacker); !ok {
		t.Fatalf("zero-value config built %T, want *StaticAttacker", att)
	}
	n := gt.Park.Grid.NumCells()
	prev := make([]float64, n)
	for id := 0; id < n; id++ {
		prev[id] = float64(id%5) * 0.7
	}
	for _, month := range []int{0, 3, 14} {
		var p []float64
		if month > 0 {
			p = prev
		}
		att.BeginMonth(month, p)
		for id := 0; id < n; id += 17 {
			e := 0.0
			if p != nil {
				e = p[id]
			}
			if got, want := att.AttackLogit(id), gt.AttackLogit(id, month, e); got != want {
				t.Fatalf("month %d cell %d: static logit %v, ground truth %v", month, id, got, want)
			}
			if att.Displaced(id) {
				t.Fatalf("static attacker reported displacement at cell %d", id)
			}
		}
	}
}

// TestAdaptiveAttackerDeterrence: sustained effort on a cell must lower its
// attack logit, and more than a single month of the same effort would under
// the static model's one-month memory.
func TestAdaptiveAttackerDeterrence(t *testing.T) {
	gt := attackerTestTruth(t)
	att, err := NewAttacker(gt, AttackerConfig{Kind: AttackerAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	n := gt.Park.Grid.NumCells()
	target := n / 2
	base := func() float64 {
		fresh, _ := NewAttacker(gt, AttackerConfig{Kind: AttackerAdaptive})
		fresh.BeginMonth(0, nil)
		return fresh.AttackLogit(target)
	}()
	eff := make([]float64, n)
	eff[target] = 2
	for m := 0; m < 6; m++ {
		att.BeginMonth(m, eff)
	}
	if got := att.AttackLogit(target); got >= base {
		t.Fatalf("sustained patrols did not deter: logit %v, unpatrolled %v", got, base)
	}
}

// TestAdaptiveAttackerDisplacement: heavy patrols on a blob push attack
// log-odds UP in the adjacent ring, and the ring reports Displaced.
func TestAdaptiveAttackerDisplacement(t *testing.T) {
	gt := attackerTestTruth(t)
	grid := gt.Park.Grid
	n := grid.NumCells()
	// Patrol a 3×3 blob around an interior cell.
	center := -1
	for id := 0; id < n; id++ {
		x, y := grid.CellXY(id)
		ok := true
		for dy := -3; dy <= 3 && ok; dy++ {
			for dx := -3; dx <= 3; dx++ {
				if grid.CellID(x+dx, y+dy) < 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			center = id
			break
		}
	}
	if center < 0 {
		t.Fatal("no interior cell with a 7×7 neighbourhood")
	}
	cx, cy := grid.CellXY(center)
	eff := make([]float64, n)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			eff[grid.CellID(cx+dx, cy+dy)] = 4
		}
	}
	att, err := NewAttacker(gt, AttackerConfig{Kind: AttackerAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 6; m++ {
		att.BeginMonth(m, eff)
	}
	ring := grid.CellID(cx+2, cy) // adjacent to the blob, unpatrolled
	adapt := att.AttackLogit(ring)
	static := gt.AttackLogit(ring, 5, 0)
	if adapt <= static {
		t.Fatalf("displacement did not raise the ring cell's logit: adaptive %v static %v", adapt, static)
	}
	if !att.Displaced(ring) {
		t.Fatal("ring cell not reported as displaced")
	}
	if att.Displaced(center) {
		t.Fatal("patrolled centre reported as displaced")
	}
}

func TestNewAttackerUnknownKind(t *testing.T) {
	gt := attackerTestTruth(t)
	if _, err := NewAttacker(gt, AttackerConfig{Kind: "quantum"}); err == nil {
		t.Fatal("unknown attacker kind accepted")
	}
}

func TestRandomSimDeterministicAndSeasonal(t *testing.T) {
	cfg := geo.RandomConfig(9)
	a := RandomSim(cfg, 100)
	b := RandomSim(cfg, 200)
	// Park character derives from the park seed, not the history seed.
	a2 := a
	a2.Seed = b.Seed
	if a2 != b {
		t.Fatalf("RandomSim park character varies with history seed: %+v vs %+v", a, b)
	}
	seasonal := cfg
	seasonal.Seasonal = true
	if s := RandomSim(seasonal, 100); s.SeasonalAmp <= 0 || !s.Patrol.WetSeasonRiverBlock {
		t.Fatal("seasonal park did not get seasonal sim parameters")
	}
	plain := cfg
	plain.Seasonal = false
	if s := RandomSim(plain, 100); s.SeasonalAmp != 0 {
		t.Fatal("non-seasonal park got a seasonal amplitude")
	}
}
