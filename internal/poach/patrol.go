package poach

import (
	"math"

	"paws/internal/geo"
	"paws/internal/rng"
)

// Waypoint is one GPS fix recorded by a ranger team. Consecutive waypoints
// of the same patrol are typically ~30 minutes apart; parks patrolled by
// motorbike record fewer fixes per km (Section III-A of the paper), which
// the simulator models with a larger RecordEvery.
type Waypoint struct {
	PatrolID int
	Seq      int
	Month    int
	X, Y     float64 // km coordinates in the park lattice frame
}

// PatrolConfig controls the ranger-walk simulator.
type PatrolConfig struct {
	PatrolsPerPostMonth int
	// LengthKM is the number of 1 km steps in one patrol.
	LengthKM int
	// RecordEvery records a waypoint every k steps (1 = every cell; larger
	// values model fast motorbike patrols with sparse fixes).
	RecordEvery int
	// RoadBias, AttractBias control the walk's preference for road cells and
	// for high-attractiveness cells (animal density).
	RoadBias    float64
	AttractBias float64
	// Roam scales the outbound push away from the patrol post (default
	// 0.15); larger values spread patrols over more distinct cells, as with
	// fast motorbike patrols.
	Roam float64
	// WetSeasonRiverBlock forbids crossing river cells in wet-season months
	// (SWS: rivers are impassable in the wet season).
	WetSeasonRiverBlock bool
}

// patrolWalk simulates one patrol starting and ending at a post. Each patrol
// draws a random sector target within half the patrol length of the post,
// heads toward it on the outbound leg, then returns — the sector-rotation
// behaviour that spreads real ranger patrols over many distinct cells.
func patrolWalk(p *geo.Park, post int, cfg PatrolConfig, month int, riverSet map[int]bool, r *rng.RNG) []int {
	attract := p.FeatureByName("animal_density")
	roads := map[int]bool{}
	for _, id := range p.Roads {
		roads[id] = true
	}
	blocked := func(id int) bool {
		return cfg.WetSeasonRiverBlock && !DrySeason(month) && riverSet[id]
	}
	roam := cfg.Roam
	if roam <= 0 {
		roam = 0.15
	}

	// Random sector target: a park cell within half the patrol length.
	maxR := float64(cfg.LengthKM) / 2
	target := post
	for try := 0; try < 30; try++ {
		cand := r.Intn(p.Grid.NumCells())
		if d := p.Grid.EuclidKM(post, cand); d > 1 && d <= maxR {
			target = cand
			break
		}
	}

	path := []int{post}
	cur := post
	nbr := make([]int, 0, 8)
	half := cfg.LengthKM / 2
	for step := 1; step < cfg.LengthKM; step++ {
		nbr = p.Grid.Neighbors8(cur, nbr[:0])
		if len(nbr) == 0 {
			break
		}
		best := -1
		bestScore := math.Inf(-1)
		for _, n := range nbr {
			if blocked(n) {
				continue
			}
			score := r.Float64()
			if roads[n] {
				score += cfg.RoadBias
			}
			if attract != nil {
				score += cfg.AttractBias * attract.V[n]
			}
			if step < half {
				// Outbound: pull toward the sector target.
				score -= roam * p.Grid.EuclidKM(n, target)
			} else {
				// Return leg: pull back toward the post.
				score -= 0.3 * p.Grid.EuclidKM(n, post)
			}
			if score > bestScore {
				bestScore = score
				best = n
			}
		}
		if best < 0 {
			break
		}
		cur = best
		path = append(path, cur)
		if step >= half && cur == post {
			break
		}
	}
	return path
}

// SimulatePatrolMonth runs all patrols for one month and returns the raw
// waypoint stream plus the true per-cell effort (km walked in each cell).
// patrolIDBase offsets patrol identifiers so IDs are globally unique.
func SimulatePatrolMonth(p *geo.Park, cfg PatrolConfig, month, patrolIDBase int, r *rng.RNG) ([]Waypoint, []float64) {
	effort := make([]float64, p.Grid.NumCells())
	var wps []Waypoint
	riverSet := map[int]bool{}
	if cfg.WetSeasonRiverBlock {
		for _, id := range p.Rivers {
			riverSet[id] = true
		}
	}
	pid := patrolIDBase
	for _, post := range p.Posts {
		for k := 0; k < cfg.PatrolsPerPostMonth; k++ {
			path := patrolWalk(p, post, cfg, month, riverSet, r)
			prev := -1
			for step, cell := range path {
				// Effort: distance entering the cell (1 or √2 km).
				if prev >= 0 {
					effort[cell] += p.Grid.EuclidKM(prev, cell)
				}
				prev = cell
				if step%maxInt(cfg.RecordEvery, 1) == 0 || step == len(path)-1 {
					x, y := p.Grid.CellXY(cell)
					// Jitter the fix inside the cell.
					wps = append(wps, Waypoint{
						PatrolID: pid,
						Seq:      step,
						Month:    month,
						X:        float64(x) + r.Float64()*0.9,
						Y:        float64(y) + r.Float64()*0.9,
					})
				}
			}
			pid++
		}
	}
	return wps, effort
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
