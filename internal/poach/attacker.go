package poach

import "fmt"

// Attacker is the poacher decision model the closed-loop simulator
// (internal/sim) plays patrol policies against. The simulator drives it month
// by month: BeginMonth folds the previous month's *realized* patrol effort
// into the attacker's state, then AttackLogit is queried per cell to sample
// this month's snares.
//
// Two implementations exist. The static attacker reproduces exactly the
// generative process poach.Simulate uses for historical data — a
// previous-month deterrence term and nothing else — and is the default, so
// existing behaviour is unchanged unless a caller opts in. The adaptive
// attacker is the "Game Theory on the Ground" response model: poachers
// remember patrol pressure over several months (deterrence) and shift their
// effort into less-patrolled neighbouring cells (displacement).
type Attacker interface {
	// BeginMonth starts month m, folding the previous month's realized
	// per-cell effort into internal state (nil when there is no previous
	// month). Months must be fed in order; replaying a historical record
	// through BeginMonth warm-starts the attacker's memory.
	BeginMonth(month int, prevEffort []float64)
	// AttackLogit returns the attack log-odds for cell id in the current
	// month.
	AttackLogit(id int) float64
	// Displaced reports whether an attack at cell id this month should be
	// attributed to displacement — patrol pressure on neighbouring cells
	// pushing poachers here — rather than the cell's intrinsic risk.
	Displaced(id int) bool
}

// Attacker kinds accepted by AttackerConfig.Kind.
const (
	AttackerStatic   = "static"
	AttackerAdaptive = "adaptive"
)

// AttackerConfig selects and tunes an attacker behaviour. The zero value is
// the static attacker, preserving the historical generative process.
type AttackerConfig struct {
	// Kind is "static" (default) or "adaptive".
	Kind string
	// Memory is the adaptive attacker's month-over-month pressure decay in
	// [0,1): pressure ← Memory·pressure + realized effort. Default 0.6.
	Memory float64
	// Deterrence scales the own-cell pressure penalty in the attack logit.
	// Default: the ground truth's Deterrence scaled by (1 − Memory), so the
	// steady-state penalty under constant effort matches the static model.
	Deterrence float64
	// Displacement scales the neighbourhood-pressure bonus: patrols next
	// door push attacks here. Default: half of Deterrence.
	Displacement float64
	// Radius is the displacement neighbourhood radius in cells (Chebyshev
	// distance, self excluded). Default 2.
	Radius int
}

// ValidateAttackerKind checks a kind without building anything — the
// submit-time validation surface of the async job API.
func ValidateAttackerKind(kind string) error {
	switch kind {
	case "", AttackerStatic, AttackerAdaptive:
		return nil
	}
	return fmt.Errorf("poach: unknown attacker kind %q (want %s or %s)", kind, AttackerStatic, AttackerAdaptive)
}

// NewAttacker builds the attacker behaviour cfg selects over a ground truth.
func NewAttacker(gt *GroundTruth, cfg AttackerConfig) (Attacker, error) {
	switch cfg.Kind {
	case "", AttackerStatic:
		return &StaticAttacker{Truth: gt}, nil
	case AttackerAdaptive:
		mem := cfg.Memory
		if mem <= 0 || mem >= 1 {
			mem = 0.6
		}
		det := cfg.Deterrence
		if det <= 0 {
			det = gt.Deterrence * (1 - mem)
		}
		disp := cfg.Displacement
		if disp <= 0 {
			disp = det / 2
		}
		radius := cfg.Radius
		if radius <= 0 {
			radius = 2
		}
		n := gt.Park.Grid.NumCells()
		return &AdaptiveAttacker{
			Truth:        gt,
			Memory:       mem,
			Deterrence:   det,
			Displacement: disp,
			Radius:       radius,
			pressure:     make([]float64, n),
			spill:        make([]float64, n),
		}, nil
	}
	// Single source of truth for the error: a kind NewAttacker cannot build
	// must be one ValidateAttackerKind rejects, or the submit-time
	// validation drifts from the build path.
	if err := ValidateAttackerKind(cfg.Kind); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("poach: attacker kind %q passes validation but has no builder", cfg.Kind)
}

// StaticAttacker reproduces the historical generative process of
// poach.Simulate: the attack logit responds only to the previous month's
// effort in the same cell, through the ground truth's Deterrence.
type StaticAttacker struct {
	Truth *GroundTruth

	month int
	prev  []float64
}

// BeginMonth records the month and the previous month's effort.
func (a *StaticAttacker) BeginMonth(month int, prevEffort []float64) {
	a.month = month
	a.prev = prevEffort
}

// AttackLogit returns the ground truth's attack log-odds for the cell.
func (a *StaticAttacker) AttackLogit(id int) float64 {
	prev := 0.0
	if a.prev != nil {
		prev = a.prev[id]
	}
	return a.Truth.AttackLogit(id, a.month, prev)
}

// Displaced always reports false: the static attacker never relocates.
func (a *StaticAttacker) Displaced(id int) bool { return false }

// AdaptiveAttacker responds to realized patrol effort with memory: an
// exponentially decayed per-cell pressure trace deters attacks where patrols
// have been, and the average pressure of the surrounding neighbourhood
// attracts the displaced remainder — poachers stepping sideways out of
// patrolled areas rather than quitting.
type AdaptiveAttacker struct {
	Truth        *GroundTruth
	Memory       float64
	Deterrence   float64
	Displacement float64
	Radius       int

	month    int
	pressure []float64 // decayed realized-effort trace per cell
	spill    []float64 // mean neighbourhood pressure per cell, current month
}

// BeginMonth decays the pressure trace, folds in the previous month's
// realized effort, and rebuilds the neighbourhood-spill field.
func (a *AdaptiveAttacker) BeginMonth(month int, prevEffort []float64) {
	a.month = month
	for i := range a.pressure {
		a.pressure[i] *= a.Memory
	}
	if prevEffort != nil {
		for i, e := range prevEffort {
			a.pressure[i] += e
		}
	}
	grid := a.Truth.Park.Grid
	n := grid.NumCells()
	for id := 0; id < n; id++ {
		x, y := grid.CellXY(id)
		var sum float64
		count := 0
		for dy := -a.Radius; dy <= a.Radius; dy++ {
			for dx := -a.Radius; dx <= a.Radius; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if nb := grid.CellID(x+dx, y+dy); nb >= 0 {
					sum += a.pressure[nb]
					count++
				}
			}
		}
		if count > 0 {
			a.spill[id] = sum / float64(count)
		} else {
			a.spill[id] = 0
		}
	}
}

// AttackLogit returns the cell's intrinsic log-odds (the ground truth's
// logit at zero effort) minus the own-cell deterrence plus the displacement
// bonus from patrolled neighbours.
func (a *AdaptiveAttacker) AttackLogit(id int) float64 {
	base := a.Truth.AttackLogit(id, a.month, 0)
	return base - a.Deterrence*a.pressure[id] + a.Displacement*a.spill[id]
}

// displacedLogitMargin is the minimum net displacement bonus (in logit
// units) before an attack is attributed to displacement rather than the
// cell's intrinsic risk.
const displacedLogitMargin = 0.05

// Displaced reports whether the displacement bonus at the cell currently
// outweighs its own deterrence by a material margin.
func (a *AdaptiveAttacker) Displaced(id int) bool {
	return a.Displacement*a.spill[id] > a.Deterrence*a.pressure[id]+displacedLogitMargin
}
