package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func squareGrid(n int) *Grid {
	mask := make([]bool, n*n)
	for i := range mask {
		mask[i] = true
	}
	return NewGrid(n, n, mask)
}

func TestGridIndexRoundTrip(t *testing.T) {
	mask := []bool{true, false, true, true, true, false}
	g := NewGrid(3, 2, mask)
	if g.NumCells() != 4 {
		t.Fatalf("NumCells = %d want 4", g.NumCells())
	}
	for id := 0; id < g.NumCells(); id++ {
		x, y := g.CellXY(id)
		if g.CellID(x, y) != id {
			t.Fatalf("round trip failed for id %d", id)
		}
		if !g.InPark(x, y) {
			t.Fatalf("cell %d not in park", id)
		}
	}
	if g.CellID(1, 0) != -1 {
		t.Fatal("masked-out cell should have id -1")
	}
	if g.CellID(-1, 0) != -1 || g.CellID(3, 0) != -1 {
		t.Fatal("out-of-bounds should have id -1")
	}
}

func TestNeighbors(t *testing.T) {
	g := squareGrid(3)
	center := g.CellID(1, 1)
	n4 := g.Neighbors4(center, nil)
	if len(n4) != 4 {
		t.Fatalf("center should have 4 4-neighbors, got %d", len(n4))
	}
	n8 := g.Neighbors8(center, nil)
	if len(n8) != 8 {
		t.Fatalf("center should have 8 8-neighbors, got %d", len(n8))
	}
	corner := g.CellID(0, 0)
	if len(g.Neighbors4(corner, nil)) != 2 {
		t.Fatal("corner should have 2 4-neighbors")
	}
	if len(g.Neighbors8(corner, nil)) != 3 {
		t.Fatal("corner should have 3 8-neighbors")
	}
}

func TestOnBoundary(t *testing.T) {
	g := squareGrid(3)
	if !g.OnBoundary(g.CellID(0, 1)) {
		t.Fatal("edge cell should be boundary")
	}
	if g.OnBoundary(g.CellID(1, 1)) {
		t.Fatal("center of full 3×3 should not be boundary")
	}
}

func TestEuclidKM(t *testing.T) {
	g := squareGrid(5)
	a := g.CellID(0, 0)
	b := g.CellID(3, 4)
	if d := g.EuclidKM(a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v want 5", d)
	}
}

func TestRasterNormalizeAndMinMax(t *testing.T) {
	g := squareGrid(2)
	r := NewRaster(g)
	copy(r.V, []float64{2, 4, 6, 10})
	lo, hi := r.MinMax()
	if lo != 2 || hi != 10 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	r.Normalize()
	if r.V[0] != 0 || r.V[3] != 1 {
		t.Fatalf("Normalize = %v", r.V)
	}
	// Constant raster is a no-op, not NaN.
	c := NewRaster(g)
	for i := range c.V {
		c.V[i] = 5
	}
	c.Normalize()
	for _, v := range c.V {
		if math.IsNaN(v) {
			t.Fatal("Normalize produced NaN on constant raster")
		}
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	n1 := NewNoise(42, 4, 0.5, 0.05)
	n2 := NewNoise(42, 4, 0.5, 0.05)
	n3 := NewNoise(43, 4, 0.5, 0.05)
	differ := false
	for i := 0; i < 50; i++ {
		x, y := float64(i)*1.37, float64(i)*0.61
		v1, v2 := n1.At(x, y), n2.At(x, y)
		if v1 != v2 {
			t.Fatal("noise must be deterministic in seed")
		}
		if v1 < 0 || v1 > 1 {
			t.Fatalf("noise out of [0,1]: %v", v1)
		}
		if n3.At(x, y) != v1 {
			differ = true
		}
	}
	if !differ {
		t.Fatal("different seeds should give different noise")
	}
}

func TestNoiseSmoothness(t *testing.T) {
	n := NewNoise(7, 3, 0.5, 0.05)
	// Nearby points should have nearby values.
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.9
		d := math.Abs(n.At(x, 10) - n.At(x+0.1, 10))
		if d > 0.2 {
			t.Fatalf("noise jump %v too large for 0.1-cell step", d)
		}
	}
}

func TestDistanceTransform(t *testing.T) {
	g := squareGrid(5)
	src := g.CellID(0, 0)
	d := DistanceTransform(g, []int{src})
	if d.V[src] != 0 {
		t.Fatal("source distance should be 0")
	}
	// Diagonal moves make (4,4) exactly 4√2 away.
	far := g.CellID(4, 4)
	if math.Abs(d.V[far]-4*math.Sqrt2) > 1e-9 {
		t.Fatalf("corner distance = %v want %v", d.V[far], 4*math.Sqrt2)
	}
	// (4,0): straight line 4.
	if math.Abs(d.V[g.CellID(4, 0)]-4) > 1e-9 {
		t.Fatal("straight-line distance wrong")
	}
}

func TestDistanceTransformRespectMask(t *testing.T) {
	// A 3-wide corridor with a wall: distances must route around it.
	// Mask layout (1=park):
	// 1 1 1
	// 0 0 1
	// 1 1 1
	mask := []bool{true, true, true, false, false, true, true, true, true}
	g := NewGrid(3, 3, mask)
	src := g.CellID(0, 0)
	d := DistanceTransform(g, []int{src})
	// (0,2) must be reached the long way around through (2,1).
	got := d.V[g.CellID(0, 2)]
	want := 1 + math.Sqrt2 + math.Sqrt2 + 1 // rough path (0,0)->(1,0)->(2,1)->(1,2)->(0,2)
	if math.Abs(got-want) > 0.5 {
		t.Fatalf("masked distance = %v want ≈ %v", got, want)
	}
}

func TestDistanceTransformEmptySources(t *testing.T) {
	g := squareGrid(3)
	d := DistanceTransform(g, nil)
	for _, v := range d.V {
		if !math.IsInf(v, 1) {
			t.Fatal("no sources should give all-Inf")
		}
	}
}

func TestDistanceTransformTriangleInequality(t *testing.T) {
	g := squareGrid(8)
	f := func(sx, sy uint8) bool {
		x, y := int(sx)%8, int(sy)%8
		src := g.CellID(x, y)
		d := DistanceTransform(g, []int{src})
		// Euclidean distance is a lower bound for the 8-connected path.
		for id := 0; id < g.NumCells(); id++ {
			if d.V[id]+1e-9 < g.EuclidKM(src, id)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryCells(t *testing.T) {
	g := squareGrid(4)
	b := BoundaryCells(g)
	if len(b) != 12 {
		t.Fatalf("4×4 full grid should have 12 boundary cells, got %d", len(b))
	}
}

func TestASCIIRendering(t *testing.T) {
	g := squareGrid(2)
	r := NewRaster(g)
	copy(r.V, []float64{0, 0.33, 0.66, 1})
	s := r.ASCII()
	if len(s) != 6 { // 2 chars + newline, twice
		t.Fatalf("ASCII length = %d want 6", len(s))
	}
}
