package geo

import "math"

// Noise is deterministic multi-octave value noise over the plane. It is the
// generator for elevation, forest cover, NPP and similar smooth fields. All
// values depend only on (seed, x, y), never on evaluation order.
type Noise struct {
	seed    uint64
	octaves int
	persist float64
	freq    float64
}

// NewNoise creates a noise field with the given seed, number of octaves,
// persistence (amplitude decay per octave, typically 0.5) and base frequency
// (cycles per cell, typically 0.02–0.1).
func NewNoise(seed int64, octaves int, persist, freq float64) *Noise {
	if octaves < 1 {
		octaves = 1
	}
	return &Noise{seed: uint64(seed), octaves: octaves, persist: persist, freq: freq}
}

// latticeHash returns a deterministic pseudo-random value in [0,1) for an
// integer lattice point at a given octave, using a SplitMix64-style mixer so
// values depend only on (seed, point, octave).
func (n *Noise) latticeHash(ix, iy int64, octave int) float64 {
	x := uint64(ix)*0x9E3779B97F4A7C15 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ n.seed ^ uint64(octave)*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// smoothstep is the cubic smoothing used for bilinear value noise.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// octaveAt evaluates a single octave of smooth value noise at (x, y).
func (n *Noise) octaveAt(x, y float64, octave int) float64 {
	ix, iy := math.Floor(x), math.Floor(y)
	fx, fy := x-ix, y-iy
	x0, y0 := int64(ix), int64(iy)
	v00 := n.latticeHash(x0, y0, octave)
	v10 := n.latticeHash(x0+1, y0, octave)
	v01 := n.latticeHash(x0, y0+1, octave)
	v11 := n.latticeHash(x0+1, y0+1, octave)
	sx, sy := smoothstep(fx), smoothstep(fy)
	top := v00*(1-sx) + v10*sx
	bot := v01*(1-sx) + v11*sx
	return top*(1-sy) + bot*sy
}

// At evaluates the multi-octave noise at (x, y), returning a value in [0, 1].
func (n *Noise) At(x, y float64) float64 {
	var sum, amp, norm float64
	amp = 1
	freq := n.freq
	for o := 0; o < n.octaves; o++ {
		sum += amp * n.octaveAt(x*freq, y*freq, o)
		norm += amp
		amp *= n.persist
		freq *= 2
	}
	return sum / norm
}

// Fill evaluates the noise over every in-park cell of g.
func (n *Noise) Fill(g *Grid) *Raster {
	r := NewRaster(g)
	for id := 0; id < g.NumCells(); id++ {
		x, y := g.CellXY(id)
		r.V[id] = n.At(float64(x), float64(y))
	}
	return r
}
