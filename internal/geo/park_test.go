package geo

import (
	"math"
	"testing"
)

func TestGenerateParkPresets(t *testing.T) {
	tests := []struct {
		cfg       ParkConfig
		wantCells int
		wantFeats int // static features (Table I count minus coverage covariate)
	}{
		{MFNPConfig(1), 4613, 21},
		{QENPConfig(1), 2522, 18},
		{SWSConfig(1), 3750, 20},
	}
	for _, tc := range tests {
		p, err := GeneratePark(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.cfg.Name, err)
		}
		if got := p.Grid.NumCells(); got != tc.wantCells {
			t.Errorf("%s: cells = %d want %d", tc.cfg.Name, got, tc.wantCells)
		}
		if got := p.NumFeatures(); got != tc.wantFeats {
			t.Errorf("%s: features = %d want %d", tc.cfg.Name, got, tc.wantFeats)
		}
		if len(p.Posts) == 0 {
			t.Errorf("%s: no patrol posts", tc.cfg.Name)
		}
		if len(p.Rivers) == 0 {
			t.Errorf("%s: no rivers", tc.cfg.Name)
		}
	}
}

func TestGenerateParkDeterministic(t *testing.T) {
	p1, err := GeneratePark(QENPConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePark(QENPConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Grid.NumCells() != p2.Grid.NumCells() {
		t.Fatal("cell counts differ across runs with same seed")
	}
	for j := 0; j < p1.NumFeatures(); j++ {
		a, b := p1.Feature(j), p2.Feature(j)
		for i := range a.V {
			if a.V[i] != b.V[i] {
				t.Fatalf("feature %q differs at cell %d", p1.FeatureNames[j], i)
			}
		}
	}
	p3, err := GeneratePark(QENPConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	e1, e3 := p1.Elevation, p3.Elevation
	for i := range e1.V {
		if i < len(e3.V) && e1.V[i] != e3.V[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different parks")
	}
}

func TestParkMaskConnected(t *testing.T) {
	for _, cfg := range []ParkConfig{MFNPConfig(3), QENPConfig(3), SWSConfig(3)} {
		p, err := GeneratePark(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := p.Grid
		mask := make([]bool, g.W*g.H)
		for id := 0; id < g.NumCells(); id++ {
			mask[g.LatticeIndex(id)] = true
		}
		if !maskConnected(g.W, g.H, mask) {
			t.Errorf("%s: park mask is not connected", cfg.Name)
		}
	}
}

func TestParkFeatureVector(t *testing.T) {
	p, err := GeneratePark(QENPConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	v := p.FeatureVector(10, nil)
	if len(v) != p.NumFeatures() {
		t.Fatalf("vector length %d want %d", len(v), p.NumFeatures())
	}
	for j := range v {
		if v[j] != p.Feature(j).V[10] {
			t.Fatal("feature vector does not match rasters")
		}
		if math.IsNaN(v[j]) || math.IsInf(v[j], 0) {
			t.Fatalf("feature %q has non-finite value", p.FeatureNames[j])
		}
	}
	// Reuse the buffer.
	v2 := p.FeatureVector(11, v)
	if &v2[0] != &v[0] {
		t.Fatal("FeatureVector should reuse the provided buffer")
	}
}

func TestParkLandmarksInsidePark(t *testing.T) {
	p, err := GeneratePark(SWSConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	n := p.Grid.NumCells()
	for _, set := range [][]int{p.Rivers, p.Roads, p.Villages, p.Posts} {
		for _, id := range set {
			if id < 0 || id >= n {
				t.Fatalf("landmark cell %d out of range", id)
			}
		}
	}
}

func TestParkDistanceFeaturesFinite(t *testing.T) {
	p, err := GeneratePark(MFNPConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dist_river", "dist_road", "dist_village", "dist_patrol_post", "dist_boundary"} {
		r := p.FeatureByName(name)
		if r == nil {
			t.Fatalf("missing feature %q", name)
		}
		for i, v := range r.V {
			if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
				t.Fatalf("%s[%d] = %v", name, i, v)
			}
		}
	}
}

func TestParkPostsSpread(t *testing.T) {
	p, err := GeneratePark(MFNPConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Posts) < 2 {
		t.Skip("need at least 2 posts")
	}
	// Posts should be spread out: min pairwise distance above a few km.
	minD := math.Inf(1)
	for i := 0; i < len(p.Posts); i++ {
		for j := i + 1; j < len(p.Posts); j++ {
			if d := p.Grid.EuclidKM(p.Posts[i], p.Posts[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 3 {
		t.Fatalf("posts too close together: min distance %v km", minD)
	}
}

func TestGenerateParkErrors(t *testing.T) {
	if _, err := GeneratePark(ParkConfig{W: 0, H: 5, TargetCells: 1}); err == nil {
		t.Fatal("expected error for zero width")
	}
	if _, err := GeneratePark(ParkConfig{W: 3, H: 3, TargetCells: 100}); err == nil {
		t.Fatal("expected error for target exceeding lattice")
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"MFNP", "QENP", "SWS"} {
		if _, ok := PresetByName(name, 1); !ok {
			t.Fatalf("preset %q missing", name)
		}
	}
	if _, ok := PresetByName("NOPE", 1); ok {
		t.Fatal("unknown preset should return false")
	}
}

func TestNorthSouthField(t *testing.T) {
	p, err := GeneratePark(SWSConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	sawNorth, sawSouth := false, false
	for id := 0; id < p.Grid.NumCells(); id++ {
		switch p.NorthSouth.V[id] {
		case 1:
			sawNorth = true
		case -1:
			sawSouth = true
		default:
			t.Fatalf("NorthSouth value %v not in {+1,-1}", p.NorthSouth.V[id])
		}
	}
	if !sawNorth || !sawSouth {
		t.Fatal("park should span both halves")
	}
}
