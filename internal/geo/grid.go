// Package geo provides the synthetic geospatial substrate for the PAWS
// reproduction: grids of 1×1 km cells with park-boundary masks, rasters of
// terrain/landscape/ecological features, deterministic fractal noise, river
// and road tracing, and multi-source distance transforms.
//
// The real PAWS system consumes GIS shapefiles and GeoTIFF rasters supplied
// by conservation NGOs; those data are proprietary. This package generates
// parks with the same statistical structure (documented in DESIGN.md) so the
// rest of the pipeline runs unchanged.
package geo

import (
	"fmt"
	"math"
)

// Grid is a W×H lattice of 1×1 km cells with a boolean park mask. Cells are
// addressed either by (x, y) lattice coordinates or by a compact cell id
// enumerating only in-park cells (the order is row-major over masked cells).
type Grid struct {
	W, H int
	// mask[y*W+x] reports whether the lattice cell is inside the park.
	mask []bool
	// cells lists lattice indices (y*W+x) of in-park cells in row-major order.
	cells []int
	// cellID maps lattice index -> compact id, or -1 if outside the park.
	cellID []int
}

// NewGrid builds a grid from a mask of length W*H.
func NewGrid(w, h int, mask []bool) *Grid {
	if len(mask) != w*h {
		panic(fmt.Sprintf("geo: mask length %d want %d", len(mask), w*h))
	}
	g := &Grid{W: w, H: h, mask: append([]bool(nil), mask...)}
	g.cellID = make([]int, w*h)
	for i := range g.cellID {
		g.cellID[i] = -1
	}
	for i, in := range g.mask {
		if in {
			g.cellID[i] = len(g.cells)
			g.cells = append(g.cells, i)
		}
	}
	return g
}

// NumCells returns the number of in-park cells.
func (g *Grid) NumCells() int { return len(g.cells) }

// InPark reports whether lattice coordinates are inside the park.
func (g *Grid) InPark(x, y int) bool {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return false
	}
	return g.mask[y*g.W+x]
}

// CellID returns the compact id for lattice coordinates, or -1.
func (g *Grid) CellID(x, y int) int {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return -1
	}
	return g.cellID[y*g.W+x]
}

// CellXY returns the lattice coordinates of compact cell id.
func (g *Grid) CellXY(id int) (x, y int) {
	li := g.cells[id]
	return li % g.W, li / g.W
}

// LatticeIndex returns the lattice index (y*W+x) of compact cell id.
func (g *Grid) LatticeIndex(id int) int { return g.cells[id] }

// Neighbors4 appends the compact ids of the in-park 4-neighbors of id to dst.
func (g *Grid) Neighbors4(id int, dst []int) []int {
	x, y := g.CellXY(id)
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		if n := g.CellID(x+d[0], y+d[1]); n >= 0 {
			dst = append(dst, n)
		}
	}
	return dst
}

// Neighbors8 appends the compact ids of the in-park 8-neighbors of id to dst.
func (g *Grid) Neighbors8(id int, dst []int) []int {
	x, y := g.CellXY(id)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if n := g.CellID(x+dx, y+dy); n >= 0 {
				dst = append(dst, n)
			}
		}
	}
	return dst
}

// OnBoundary reports whether cell id touches the park boundary (has a
// lattice neighbor outside the park or lies on the grid edge).
func (g *Grid) OnBoundary(id int) bool {
	x, y := g.CellXY(id)
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nx, ny := x+d[0], y+d[1]
		if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H || !g.mask[ny*g.W+nx] {
			return true
		}
	}
	return false
}

// EuclidKM returns the Euclidean distance in km between two cell centers.
func (g *Grid) EuclidKM(a, b int) float64 {
	ax, ay := g.CellXY(a)
	bx, by := g.CellXY(b)
	dx, dy := float64(ax-bx), float64(ay-by)
	return math.Sqrt(dx*dx + dy*dy)
}

// Raster is a per-cell scalar field over a grid (indexed by compact cell id).
type Raster struct {
	Grid *Grid
	V    []float64
}

// NewRaster allocates a zero raster over g.
func NewRaster(g *Grid) *Raster {
	return &Raster{Grid: g, V: make([]float64, g.NumCells())}
}

// Clone returns a deep copy of the raster.
func (r *Raster) Clone() *Raster {
	out := NewRaster(r.Grid)
	copy(out.V, r.V)
	return out
}

// MinMax returns the minimum and maximum values of the raster.
func (r *Raster) MinMax() (lo, hi float64) {
	if len(r.V) == 0 {
		return 0, 0
	}
	lo, hi = r.V[0], r.V[0]
	for _, v := range r.V[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Normalize rescales the raster to [0, 1] in place (no-op for constant
// rasters).
func (r *Raster) Normalize() {
	lo, hi := r.MinMax()
	if hi-lo < 1e-15 {
		return
	}
	inv := 1 / (hi - lo)
	for i, v := range r.V {
		r.V[i] = (v - lo) * inv
	}
}

// ASCII renders the raster as a coarse character heatmap (for figures and
// debugging). Cells outside the park print as spaces.
func (r *Raster) ASCII() string {
	const ramp = " .:-=+*#%@"
	lo, hi := r.MinMax()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	g := r.Grid
	buf := make([]byte, 0, (g.W+1)*g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			id := g.CellID(x, y)
			if id < 0 {
				buf = append(buf, ' ')
				continue
			}
			f := (r.V[id] - lo) / span
			k := int(f * float64(len(ramp)-1))
			if k < 0 {
				k = 0
			}
			if k > len(ramp)-1 {
				k = len(ramp) - 1
			}
			buf = append(buf, ramp[k])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
