package geo

import (
	"fmt"
	"math"
	"sort"

	"paws/internal/rng"
)

// Shape selects the park-boundary silhouette used by the mask generator.
type Shape int

const (
	// ShapeRound is a roughly circular park with a protected core (MFNP).
	ShapeRound Shape = iota
	// ShapeElongated is a long thin park easy to access from the boundary
	// (QENP).
	ShapeElongated
	// ShapeIrregular is a sprawling, noisy silhouette (SWS).
	ShapeIrregular
)

// ParkConfig controls synthetic park generation. The presets in presets.go
// calibrate these to Table I of the paper.
type ParkConfig struct {
	Name        string
	Seed        int64
	W, H        int // bounding lattice
	TargetCells int // exact number of in-park 1×1 km cells
	Shape       Shape
	NumRivers   int
	NumRoads    int
	NumVillages int
	NumPosts    int
	// ExtraFeatures appends park-specific noise features so the static
	// feature count matches Table I.
	ExtraFeatures int
	// Seasonal marks parks with a wet/dry season divide (SWS).
	Seasonal bool
}

// Park is a generated protected area: grid, named static feature rasters,
// and landmark cell sets. Static features are ordered and exposed both as a
// name list and as a per-cell feature-vector view.
type Park struct {
	Name   string
	Config ParkConfig
	Grid   *Grid

	FeatureNames []string
	features     []*Raster // parallel to FeatureNames

	Elevation *Raster
	Rivers    []int // cell ids carrying river segments
	Roads     []int
	Villages  []int // cell ids of in-park cells nearest to villages
	Posts     []int // patrol-post cell ids

	// NorthSouth is +1 in the north half, -1 in the south half (used by the
	// seasonal attack model for SWS).
	NorthSouth *Raster
}

// NumFeatures returns the number of static features.
func (p *Park) NumFeatures() int { return len(p.features) }

// Feature returns the raster for feature index j.
func (p *Park) Feature(j int) *Raster { return p.features[j] }

// FeatureByName returns the raster with the given name, or nil.
func (p *Park) FeatureByName(name string) *Raster {
	for i, n := range p.FeatureNames {
		if n == name {
			return p.features[i]
		}
	}
	return nil
}

// FeatureVector copies the static features of cell id into dst (allocating
// when dst is too small) and returns it.
func (p *Park) FeatureVector(id int, dst []float64) []float64 {
	if cap(dst) < len(p.features) {
		dst = make([]float64, len(p.features))
	}
	dst = dst[:len(p.features)]
	for j, r := range p.features {
		dst[j] = r.V[id]
	}
	return dst
}

// GeneratePark builds a synthetic park from cfg. Generation is fully
// deterministic in cfg.Seed.
func GeneratePark(cfg ParkConfig) (*Park, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("geo: invalid lattice %d×%d", cfg.W, cfg.H)
	}
	if cfg.TargetCells <= 0 || cfg.TargetCells > cfg.W*cfg.H {
		return nil, fmt.Errorf("geo: target cells %d out of range for %d×%d", cfg.TargetCells, cfg.W, cfg.H)
	}
	r := rng.New(cfg.Seed)

	grid := buildMask(cfg, r.Split("mask"))
	p := &Park{Name: cfg.Name, Config: cfg, Grid: grid}

	// --- Terrain ---
	elev := NewNoise(cfg.Seed+101, 5, 0.55, 0.035).Fill(grid)
	// Tilt the terrain slightly so rivers have a consistent direction.
	for id := 0; id < grid.NumCells(); id++ {
		_, y := grid.CellXY(id)
		elev.V[id] += 0.25 * float64(y) / float64(grid.H)
	}
	elev.Normalize()
	p.Elevation = elev

	slope := computeSlope(grid, elev)
	forest := NewNoise(cfg.Seed+202, 4, 0.5, 0.05).Fill(grid)
	npp := NewNoise(cfg.Seed+303, 4, 0.5, 0.03).Fill(grid)
	rain := NewNoise(cfg.Seed+404, 3, 0.5, 0.02).Fill(grid)

	// Animal density: higher in low-slope, high-NPP areas away from boundary.
	distBoundary := DistanceTransform(grid, BoundaryCells(grid))
	animal := NewRaster(grid)
	animalNoise := NewNoise(cfg.Seed+505, 4, 0.5, 0.04)
	for id := 0; id < grid.NumCells(); id++ {
		x, y := grid.CellXY(id)
		interior := 1 - math.Exp(-distBoundary.V[id]/6)
		animal.V[id] = 0.45*npp.V[id] + 0.3*interior + 0.25*animalNoise.At(float64(x), float64(y))
	}
	animal.Normalize()

	// --- Landmarks ---
	p.Rivers = traceRivers(grid, elev, cfg.NumRivers, r.Split("rivers"))
	p.Roads = traceRoads(grid, cfg.NumRoads, r.Split("roads"))
	p.Villages = placeNearBoundary(grid, cfg.NumVillages, r.Split("villages"))
	p.Posts = placePosts(grid, p.Roads, cfg.NumPosts, r.Split("posts"))

	distRiver := DistanceTransform(grid, p.Rivers)
	distRoad := DistanceTransform(grid, p.Roads)
	distVillage := DistanceTransform(grid, p.Villages)
	distPost := DistanceTransform(grid, p.Posts)
	capInf := func(rr *Raster) {
		// Replace Inf (no landmark of this kind) with the park diameter.
		diam := float64(grid.W + grid.H)
		for i, v := range rr.V {
			if math.IsInf(v, 1) {
				rr.V[i] = diam
			}
		}
	}
	capInf(distRiver)
	capInf(distRoad)
	capInf(distVillage)
	capInf(distPost)

	ns := NewRaster(grid)
	for id := 0; id < grid.NumCells(); id++ {
		_, y := grid.CellXY(id)
		if float64(y) < float64(grid.H)/2 {
			ns.V[id] = 1
		} else {
			ns.V[id] = -1
		}
	}
	p.NorthSouth = ns

	add := func(name string, rr *Raster) {
		p.FeatureNames = append(p.FeatureNames, name)
		p.features = append(p.features, rr)
	}
	add("elevation", elev)
	add("slope", slope)
	add("forest_cover", forest)
	add("npp", npp)
	add("rainfall", rain)
	add("animal_density", animal)
	add("dist_boundary", distBoundary)
	add("dist_river", distRiver)
	add("dist_road", distRoad)
	add("dist_village", distVillage)
	add("dist_patrol_post", distPost)
	for e := 0; e < cfg.ExtraFeatures; e++ {
		nz := NewNoise(cfg.Seed+1000+int64(e)*37, 3, 0.5, 0.03+0.01*float64(e%4)).Fill(grid)
		add(fmt.Sprintf("aux_%02d", e), nz)
	}
	return p, nil
}

// buildMask generates the park silhouette and selects exactly
// cfg.TargetCells cells by ranking a shape potential.
func buildMask(cfg ParkConfig, r *rng.RNG) *Grid {
	w, h := cfg.W, cfg.H
	pot := make([]float64, w*h)
	noise := NewNoise(cfg.Seed+7, 4, 0.55, 0.04)
	cx, cy := float64(w)/2, float64(h)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			var base float64
			switch cfg.Shape {
			case ShapeRound:
				dx, dy := (fx-cx)/cx, (fy-cy)/cy
				base = 1 - math.Sqrt(dx*dx+dy*dy)
			case ShapeElongated:
				dx, dy := (fx-cx)/cx, (fy-cy)/cy
				base = 1 - math.Sqrt(0.25*dx*dx+2.2*dy*dy)
			case ShapeIrregular:
				dx, dy := (fx-cx)/cx, (fy-cy)/cy
				base = 1 - math.Pow(dx*dx+dy*dy, 0.38)
			}
			pot[y*w+x] = base + 0.35*noise.At(fx, fy)
		}
	}
	// Keep the TargetCells cells with the highest potential.
	order := make([]rankedCell, len(pot))
	for i, v := range pot {
		order[i] = rankedCell{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v > order[b].v })
	mask := make([]bool, w*h)
	for i := 0; i < cfg.TargetCells; i++ {
		mask[order[i].idx] = true
	}
	g := NewGrid(w, h, mask)
	// The threshold cut can strand isolated cells; absorb them into the main
	// component by swapping with the best excluded cells adjacent to it.
	g = largestComponentWithTopUp(w, h, mask, order, cfg.TargetCells)
	_ = r
	return g
}

// rankedCell pairs a lattice index with its shape potential.
type rankedCell struct {
	idx int
	v   float64
}

// largestComponentWithTopUp keeps the largest connected component of the
// mask and, if that drops below target, greedily adds the highest-potential
// excluded cells adjacent to the component until the count is exact.
func largestComponentWithTopUp(w, h int, mask []bool, order []rankedCell, target int) *Grid {
	comp := make([]int, w*h)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var stack []int
	for i, in := range mask {
		if !in || comp[i] >= 0 {
			continue
		}
		c := len(sizes)
		size := 0
		stack = append(stack[:0], i)
		comp[i] = c
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			x, y := cur%w, cur/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := ny*w + nx
				if mask[ni] && comp[ni] < 0 {
					comp[ni] = c
					stack = append(stack, ni)
				}
			}
		}
		sizes = append(sizes, size)
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	kept := make([]bool, w*h)
	count := 0
	for i := range mask {
		if mask[i] && comp[i] == best {
			kept[i] = true
			count++
		}
	}
	// Top up to the exact target by repeatedly adding the highest-potential
	// excluded cell adjacent to the kept region. The kept region only grows,
	// so adjacency to it is monotone: once an excluded cell becomes adjacent
	// it stays adjacent. A min-rank heap of adjacent excluded cells therefore
	// selects exactly the cell a full rescan of `order` would — same cells,
	// same insertion sequence — in near-linear time instead of quadratic,
	// which is what keeps mask generation tractable when sized specs strand
	// thousands of cells at 10^6-cell scale.
	if count < target {
		rank := make([]int32, w*h)
		for pos, o := range order {
			rank[o.idx] = int32(pos)
		}
		heap := make([]int32, 0, 1024)
		less := func(a, b int32) bool { return rank[a] < rank[b] }
		push := func(idx int32) {
			heap = append(heap, idx)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !less(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
		}
		pop := func() int32 {
			top := heap[0]
			last := len(heap) - 1
			heap[0] = heap[last]
			heap = heap[:last]
			for i := 0; ; {
				l, r := 2*i+1, 2*i+2
				s := i
				if l < last && less(heap[l], heap[s]) {
					s = l
				}
				if r < last && less(heap[r], heap[s]) {
					s = r
				}
				if s == i {
					break
				}
				heap[i], heap[s] = heap[s], heap[i]
				i = s
			}
			return top
		}
		inHeap := make([]bool, w*h)
		pushExcludedNeighbors := func(idx int) {
			x, y := idx%w, idx/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				ni := ny*w + nx
				if !kept[ni] && !inHeap[ni] {
					inHeap[ni] = true
					push(int32(ni))
				}
			}
		}
		for i := range kept {
			if kept[i] {
				pushExcludedNeighbors(i)
			}
		}
		for count < target && len(heap) > 0 {
			idx := int(pop())
			kept[idx] = true
			count++
			pushExcludedNeighbors(idx)
		}
	}
	// Trim overshoot (possible when the largest component exceeds target):
	// remove lowest-potential boundary cells that do not disconnect the mask.
	for count > target {
		removed := false
		for k := len(order) - 1; k >= 0; k-- {
			idx := order[k].idx
			if !kept[idx] {
				continue
			}
			kept[idx] = false
			if maskConnected(w, h, kept) {
				count--
				removed = true
				break
			}
			kept[idx] = true
		}
		if !removed {
			break
		}
	}
	return NewGrid(w, h, kept)
}

// maskConnected reports whether the true cells of mask form one connected
// component (4-connectivity).
func maskConnected(w, h int, mask []bool) bool {
	start := -1
	total := 0
	for i, in := range mask {
		if in {
			total++
			if start < 0 {
				start = i
			}
		}
	}
	if total == 0 {
		return true
	}
	seen := make([]bool, w*h)
	stack := []int{start}
	seen[start] = true
	visited := 0
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		x, y := cur%w, cur/w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			ni := ny*w + nx
			if mask[ni] && !seen[ni] {
				seen[ni] = true
				stack = append(stack, ni)
			}
		}
	}
	return visited == total
}

// computeSlope approximates per-cell slope as the max elevation difference
// to 8-neighbors.
func computeSlope(g *Grid, elev *Raster) *Raster {
	slope := NewRaster(g)
	nbr := make([]int, 0, 8)
	for id := 0; id < g.NumCells(); id++ {
		nbr = g.Neighbors8(id, nbr[:0])
		var maxd float64
		for _, n := range nbr {
			d := math.Abs(elev.V[id] - elev.V[n])
			if d > maxd {
				maxd = d
			}
		}
		slope.V[id] = maxd
	}
	slope.Normalize()
	return slope
}

// traceRivers follows downhill paths from random high-elevation springs.
func traceRivers(g *Grid, elev *Raster, count int, r *rng.RNG) []int {
	if count <= 0 || g.NumCells() == 0 {
		return nil
	}
	riverSet := map[int]bool{}
	// Candidate springs: top-quartile elevation cells.
	var springs []int
	for id := 0; id < g.NumCells(); id++ {
		if elev.V[id] > 0.7 {
			springs = append(springs, id)
		}
	}
	if len(springs) == 0 {
		springs = append(springs, 0)
	}
	nbr := make([]int, 0, 8)
	for k := 0; k < count; k++ {
		cur := springs[r.Intn(len(springs))]
		for step := 0; step < g.W+g.H; step++ {
			riverSet[cur] = true
			if g.OnBoundary(cur) {
				break
			}
			nbr = g.Neighbors8(cur, nbr[:0])
			next := -1
			bestE := elev.V[cur] + 1e-9
			for _, n := range nbr {
				// Prefer strictly downhill; small noise breaks plateaus.
				e := elev.V[n] + 0.002*r.Float64()
				if e < bestE && !riverSet[n] {
					bestE = e
					next = n
				}
			}
			if next < 0 {
				// Plateau or local pit: pick any non-river neighbor to keep
				// the river moving toward the boundary.
				for _, n := range nbr {
					if !riverSet[n] {
						next = n
						break
					}
				}
			}
			if next < 0 {
				break
			}
			cur = next
		}
	}
	out := make([]int, 0, len(riverSet))
	for id := range riverSet {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// traceRoads draws straight-line roads between pairs of boundary cells.
func traceRoads(g *Grid, count int, r *rng.RNG) []int {
	if count <= 0 {
		return nil
	}
	boundary := BoundaryCells(g)
	if len(boundary) < 2 {
		return nil
	}
	roadSet := map[int]bool{}
	for k := 0; k < count; k++ {
		a := boundary[r.Intn(len(boundary))]
		b := boundary[r.Intn(len(boundary))]
		if a == b {
			continue
		}
		ax, ay := g.CellXY(a)
		bx, by := g.CellXY(b)
		steps := int(math.Max(math.Abs(float64(bx-ax)), math.Abs(float64(by-ay)))) + 1
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			x := int(math.Round(float64(ax) + t*float64(bx-ax)))
			y := int(math.Round(float64(ay) + t*float64(by-ay)))
			if id := g.CellID(x, y); id >= 0 {
				roadSet[id] = true
			}
		}
	}
	out := make([]int, 0, len(roadSet))
	for id := range roadSet {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// placeNearBoundary places landmark cells on the boundary ring.
func placeNearBoundary(g *Grid, count int, r *rng.RNG) []int {
	boundary := BoundaryCells(g)
	if count <= 0 || len(boundary) == 0 {
		return nil
	}
	picks := r.SampleWithoutReplacement(len(boundary), count)
	out := make([]int, 0, len(picks))
	for _, i := range picks {
		out = append(out, boundary[i])
	}
	sort.Ints(out)
	return out
}

// placePosts puts patrol posts on road cells (falling back to boundary
// cells), spread out by greedy max-min distance.
func placePosts(g *Grid, roads []int, count int, r *rng.RNG) []int {
	candidates := roads
	if len(candidates) == 0 {
		candidates = BoundaryCells(g)
	}
	if count <= 0 || len(candidates) == 0 {
		return nil
	}
	posts := []int{candidates[r.Intn(len(candidates))]}
	for len(posts) < count {
		best, bestD := -1, -1.0
		for _, c := range candidates {
			minD := math.Inf(1)
			for _, p := range posts {
				if d := g.EuclidKM(c, p); d < minD {
					minD = d
				}
			}
			if minD > bestD {
				bestD = minD
				best = c
			}
		}
		if best < 0 || bestD == 0 {
			break
		}
		posts = append(posts, best)
	}
	sort.Ints(posts)
	return posts
}
