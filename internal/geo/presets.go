package geo

// Preset park configurations calibrated to Table I of the paper:
//
//	                MFNP    QENP    SWS
//	features          22      19     21   (static features + 1 coverage covariate)
//	1×1 km cells    4,613   2,522  3,750
//
// The static feature count below is therefore Table I's count minus one,
// since the dataset layer appends the previous-step patrol-coverage
// covariate (Section III-B of the paper).

// MFNPConfig returns the Murchison Falls National Park preset: a large,
// round savanna park with a protected core, 4,613 cells and 22 features.
func MFNPConfig(seed int64) ParkConfig {
	return ParkConfig{
		Name:        "MFNP",
		Seed:        seed,
		W:           86,
		H:           86,
		TargetCells: 4613,
		Shape:       ShapeRound,
		NumRivers:   6,
		NumRoads:    7,
		NumVillages: 9,
		NumPosts:    8,
		// 11 base features + 10 extra = 21 static; +1 coverage = 22.
		ExtraFeatures: 10,
		Seasonal:      false,
	}
}

// QENPConfig returns the Queen Elizabeth National Park preset: an elongated
// park that is easy to access from the boundary, 2,522 cells, 19 features.
func QENPConfig(seed int64) ParkConfig {
	return ParkConfig{
		Name:        "QENP",
		Seed:        seed,
		W:           108,
		H:           40,
		TargetCells: 2522,
		Shape:       ShapeElongated,
		NumRivers:   4,
		NumRoads:    6,
		NumVillages: 8,
		NumPosts:    7,
		// 11 base + 7 extra = 18 static; +1 coverage = 19.
		ExtraFeatures: 7,
		Seasonal:      false,
	}
}

// SWSConfig returns the Srepok Wildlife Sanctuary preset: an irregular,
// densely forested park with strong seasonality, 3,750 cells, 21 features.
func SWSConfig(seed int64) ParkConfig {
	return ParkConfig{
		Name:        "SWS",
		Seed:        seed,
		W:           80,
		H:           78,
		TargetCells: 3750,
		Shape:       ShapeIrregular,
		NumRivers:   8,
		NumRoads:    4,
		NumVillages: 6,
		NumPosts:    6,
		// 11 base + 9 extra = 20 static; +1 coverage = 21.
		ExtraFeatures: 9,
		Seasonal:      true,
	}
}

// PresetByName returns the preset config for "MFNP", "QENP" or "SWS",
// or false if the name is unknown.
func PresetByName(name string, seed int64) (ParkConfig, bool) {
	switch name {
	case "MFNP":
		return MFNPConfig(seed), true
	case "QENP":
		return QENPConfig(seed), true
	case "SWS":
		return SWSConfig(seed), true
	}
	return ParkConfig{}, false
}
