package geo

import (
	"math"
	"testing"
)

// TestRandomParkInvariants is the property test over many procedural seeds:
// every generated park must hit its target cell count exactly, form one
// 4-connected component with a closed boundary, and carry finite features.
func TestRandomParkInvariants(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		cfg := RandomConfig(seed)
		p, err := GeneratePark(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := p.Grid
		if g.NumCells() != cfg.TargetCells {
			t.Errorf("seed %d: %d cells, want exactly %d", seed, g.NumCells(), cfg.TargetCells)
		}
		if !connected4(g) {
			t.Errorf("seed %d: park mask is not one 4-connected component", seed)
		}
		// Boundary closure: every cell is either interior (all four lattice
		// neighbours in-park) or reported as boundary, and the boundary ring
		// is non-empty.
		boundary := 0
		for id := 0; id < g.NumCells(); id++ {
			x, y := g.CellXY(id)
			interior := g.InPark(x+1, y) && g.InPark(x-1, y) && g.InPark(x, y+1) && g.InPark(x, y-1)
			if interior == g.OnBoundary(id) {
				t.Fatalf("seed %d: cell %d interior=%v but OnBoundary=%v", seed, id, interior, g.OnBoundary(id))
			}
			if g.OnBoundary(id) {
				boundary++
			}
		}
		if boundary == 0 {
			t.Errorf("seed %d: no boundary cells", seed)
		}
		for j := 0; j < p.NumFeatures(); j++ {
			for i, v := range p.Feature(j).V {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("seed %d: feature %q not finite at cell %d", seed, p.FeatureNames[j], i)
				}
			}
		}
		if len(p.Posts) != cfg.NumPosts {
			t.Errorf("seed %d: %d posts, want %d", seed, len(p.Posts), cfg.NumPosts)
		}
	}
}

// connected4 reports whether the park's cells form one component under
// 4-adjacency.
func connected4(g *Grid) bool {
	n := g.NumCells()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	visited := 0
	nbr := make([]int, 0, 4)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		nbr = g.Neighbors4(cur, nbr[:0])
		for _, nb := range nbr {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return visited == n
}

// TestRandomConfigDeterministic pins the procedural draw: the same spec seed
// must produce the identical configuration (and therefore the identical
// park), different seeds a different one.
func TestRandomConfigDeterministic(t *testing.T) {
	if RandomConfig(11) != RandomConfig(11) {
		t.Fatal("RandomConfig(11) not deterministic")
	}
	if RandomConfig(11) == RandomConfig(12) {
		t.Fatal("distinct seeds produced identical configs")
	}
}

// TestPresetCellCountsAtFixedSeeds asserts the Table I cell counts are
// reproduced exactly at fixed seeds — the presets stay pinned while the
// procedural generator evolves.
func TestPresetCellCountsAtFixedSeeds(t *testing.T) {
	for _, tc := range []struct {
		cfg  ParkConfig
		want int
	}{
		{MFNPConfig(7), 4613},
		{QENPConfig(7), 2522},
		{SWSConfig(7), 3750},
	} {
		p, err := GeneratePark(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.cfg.Name, err)
		}
		if p.Grid.NumCells() != tc.want {
			t.Errorf("%s: %d cells, want %d", tc.cfg.Name, p.Grid.NumCells(), tc.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	if cfg, err := ParseSpec("MFNP", 3); err != nil || cfg.Name != "MFNP" || cfg.Seed != 3 {
		t.Fatalf("ParseSpec MFNP = %+v, %v", cfg, err)
	}
	cfg, err := ParseSpec("rand:42", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != RandomConfig(42) {
		t.Fatal("rand:42 spec does not match RandomConfig(42)")
	}
	if cfg.Seed != 42 {
		t.Fatalf("procedural park seed = %d, want the spec seed 42", cfg.Seed)
	}
	if _, err := ParseSpec("rand:oops", 3); err == nil {
		t.Fatal("malformed rand seed accepted")
	}
	if _, err := ParseSpec("ATLANTIS", 3); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if !IsRandSpec("rand:1") || IsRandSpec("MFNP") {
		t.Fatal("IsRandSpec misclassifies")
	}
}
