package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"paws/internal/rng"
)

// This file implements procedural park specs: alongside the three hand-built
// presets (MFNP, QENP, SWS), a park can be named "rand:<seed>", in which case
// its entire configuration — lattice size, silhouette, landmark counts,
// feature count, seasonality — is derived deterministically from the seed.
// The spec fully identifies the park: "rand:42" is the same park everywhere,
// regardless of the caller's root seed, so fleets of diverse scenarios can be
// swept and the results referenced by spec.

// RandPrefix marks a procedural park spec: "rand:<seed>".
const RandPrefix = "rand:"

// SpecHelp is the one-line description of valid park specs, for flag usage
// strings and error messages.
const SpecHelp = "MFNP, QENP, SWS or rand:<seed> (procedurally generated)"

// IsRandSpec reports whether spec names a procedural park.
func IsRandSpec(spec string) bool { return strings.HasPrefix(spec, RandPrefix) }

// ParseRandSpec parses a "rand:<seed>" spec into its procedural park
// configuration. ok is false when spec lacks the rand: prefix; err is
// non-nil when the prefix is present but the seed is malformed.
func ParseRandSpec(spec string) (cfg ParkConfig, ok bool, err error) {
	if !IsRandSpec(spec) {
		return ParkConfig{}, false, nil
	}
	seed, err := strconv.ParseInt(strings.TrimPrefix(spec, RandPrefix), 10, 64)
	if err != nil {
		return ParkConfig{}, true, fmt.Errorf("geo: invalid park spec %q: seed must be an integer", spec)
	}
	return RandomConfig(seed), true, nil
}

// ParseSpec resolves a park spec — a preset name or a rand:<seed> procedural
// spec (see SpecHelp) — to its park configuration. Preset parks take their
// generation seed from seed; procedural parks are identified entirely by the
// spec and ignore it.
func ParseSpec(spec string, seed int64) (ParkConfig, error) {
	if cfg, ok := PresetByName(spec, seed); ok {
		return cfg, nil
	}
	if cfg, ok, err := ParseRandSpec(spec); ok {
		return cfg, err
	}
	return ParkConfig{}, fmt.Errorf("geo: unknown park spec %q (want %s)", spec, SpecHelp)
}

// RandomConfig derives a procedural park configuration from a seed: a few
// hundred to ~1,400 cells, any of the three silhouettes, and landmark and
// feature counts drawn from the ranges the presets span. The lattice is kept
// at most ~65% full so the mask builder can always hit the target cell
// count exactly (see buildMask), which the property tests assert over many
// seeds.
func RandomConfig(seed int64) ParkConfig {
	r := rng.New(seed).Split("randpark")
	shape := Shape(r.Intn(3))
	cells := 350 + r.Intn(1050)
	// Aspect ratio by silhouette: elongated parks are 2–3× wider than tall.
	aspect := 0.9 + 0.4*r.Float64()
	if shape == ShapeElongated {
		aspect = 2.0 + r.Float64()
	}
	fill := 0.50 + 0.15*r.Float64()
	area := float64(cells) / fill
	w := int(math.Sqrt(area*aspect) + 0.5)
	h := int(area/float64(w) + 0.5)
	if w < 10 {
		w = 10
	}
	if h < 10 {
		h = 10
	}
	for w*h <= cells { // paranoia: never ask for more cells than the lattice holds
		h++
	}
	return ParkConfig{
		Name:          fmt.Sprintf("rand-%d", seed),
		Seed:          seed,
		W:             w,
		H:             h,
		TargetCells:   cells,
		Shape:         shape,
		NumRivers:     2 + r.Intn(7),
		NumRoads:      2 + r.Intn(6),
		NumVillages:   3 + r.Intn(7),
		NumPosts:      3 + r.Intn(5),
		ExtraFeatures: r.Intn(10),
		Seasonal:      r.Float64() < 1.0/3,
	}
}
