package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"paws/internal/rng"
)

// This file implements procedural park specs: alongside the three hand-built
// presets (MFNP, QENP, SWS), a park can be named "rand:<seed>", in which case
// its entire configuration — lattice size, silhouette, landmark counts,
// feature count, seasonality — is derived deterministically from the seed.
// The spec fully identifies the park: "rand:42" is the same park everywhere,
// regardless of the caller's root seed, so fleets of diverse scenarios can be
// swept and the results referenced by spec.
//
// A size suffix scales the same park family to arbitrary cell counts:
// "rand:<seed>@<cells>" keeps every stylistic draw of "rand:<seed>" (shape,
// aspect, fill, seasonality, feature count) but retargets the lattice to the
// requested number of in-park cells, up to MaxSizedCells (10^6-cell parks for
// the scale benchmarks). The cell count accepts both plain integers and
// scientific notation ("250000", "1e6", "2.5e5").

// RandPrefix marks a procedural park spec: "rand:<seed>" or
// "rand:<seed>@<cells>".
const RandPrefix = "rand:"

// SpecHelp is the one-line description of valid park specs, for flag usage
// strings and error messages.
const SpecHelp = "MFNP, QENP, SWS, rand:<seed> or rand:<seed>@<cells> (procedurally generated; cells in [50, 2e6], forms like 250000 or 1e6)"

// Bounds on the cell count of a sized procedural spec. The lower bound keeps
// the mask builder's silhouette machinery meaningful; the upper bound caps
// the lattice at a size the flat data path still handles in CI memory.
const (
	MinSizedCells = 50
	MaxSizedCells = 2_000_000
)

// IsRandSpec reports whether spec names a procedural park.
func IsRandSpec(spec string) bool { return strings.HasPrefix(spec, RandPrefix) }

// ParseRandSpec parses a "rand:<seed>" or "rand:<seed>@<cells>" spec into its
// procedural park configuration. ok is false when spec lacks the rand:
// prefix; err is non-nil when the prefix is present but the seed or cell
// count is malformed.
func ParseRandSpec(spec string) (cfg ParkConfig, ok bool, err error) {
	if !IsRandSpec(spec) {
		return ParkConfig{}, false, nil
	}
	body := strings.TrimPrefix(spec, RandPrefix)
	seedStr, sizeStr, sized := strings.Cut(body, "@")
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return ParkConfig{}, true, fmt.Errorf("geo: invalid park spec %q: seed must be an integer", spec)
	}
	if !sized {
		return RandomConfig(seed), true, nil
	}
	f, err := strconv.ParseFloat(sizeStr, 64)
	if err != nil || math.IsNaN(f) || f != math.Trunc(f) {
		return ParkConfig{}, true, fmt.Errorf("geo: invalid park spec %q: cell count must be a whole number (like 250000 or 1e6)", spec)
	}
	if f < MinSizedCells || f > MaxSizedCells {
		return ParkConfig{}, true, fmt.Errorf("geo: invalid park spec %q: cell count %v out of [%d, %d]", spec, f, MinSizedCells, MaxSizedCells)
	}
	return RandomConfigSized(seed, int(f)), true, nil
}

// ParseSpec resolves a park spec — a preset name or a rand:<seed>[@<cells>]
// procedural spec (see SpecHelp) — to its park configuration. Preset parks
// take their generation seed from seed; procedural parks are identified
// entirely by the spec and ignore it.
func ParseSpec(spec string, seed int64) (ParkConfig, error) {
	if cfg, ok := PresetByName(spec, seed); ok {
		return cfg, nil
	}
	if cfg, ok, err := ParseRandSpec(spec); ok {
		return cfg, err
	}
	return ParkConfig{}, fmt.Errorf("geo: unknown park spec %q (want %s)", spec, SpecHelp)
}

// RandomConfig derives a procedural park configuration from a seed: a few
// hundred to ~1,400 cells, any of the three silhouettes, and landmark and
// feature counts drawn from the ranges the presets span. The lattice is kept
// at most ~65% full so the mask builder can always hit the target cell
// count exactly (see buildMask), which the property tests assert over many
// seeds.
func RandomConfig(seed int64) ParkConfig {
	return randomConfig(seed, 0)
}

// RandomConfigSized derives the configuration of "rand:<seed>@<cells>": the
// same park family as RandomConfig(seed) — identical shape, aspect, fill and
// seasonality draws, in the same RNG order — retargeted to exactly cells
// in-park cells. Landmark counts scale with the park's linear dimension
// (rivers and roads are curves, so their count grows with the perimeter, not
// the area), capped so generation stays near-linear at 10^6 cells.
func RandomConfigSized(seed int64, cells int) ParkConfig {
	return randomConfig(seed, cells)
}

// randomConfig draws the procedural configuration. When sized > 0 the drawn
// target cell count is overridden after all draws complete — never changing
// the number or order of RNG consumptions — so the unsized spec remains
// byte-identical to historical output and every size of one seed shares its
// stylistic identity.
func randomConfig(seed int64, sized int) ParkConfig {
	r := rng.New(seed).Split("randpark")
	shape := Shape(r.Intn(3))
	cells := 350 + r.Intn(1050)
	// Aspect ratio by silhouette: elongated parks are 2–3× wider than tall.
	aspect := 0.9 + 0.4*r.Float64()
	if shape == ShapeElongated {
		aspect = 2.0 + r.Float64()
	}
	fill := 0.50 + 0.15*r.Float64()
	numRivers := 2 + r.Intn(7)
	numRoads := 2 + r.Intn(6)
	numVillages := 3 + r.Intn(7)
	numPosts := 3 + r.Intn(5)
	extraFeatures := r.Intn(10)
	seasonal := r.Float64() < 1.0/3

	name := fmt.Sprintf("rand-%d", seed)
	if sized > 0 {
		name = fmt.Sprintf("rand-%d@%d", seed, sized)
		// Linear-dimension scale relative to the drawn base size: a 100×
		// larger area is 10× wider, so curve-like landmarks (rivers, roads)
		// and boundary landmarks (villages) grow ~10×, not 100×. Posts are
		// capped low — planning fans out per post, and real parks run few
		// posts even at great size.
		s := math.Sqrt(float64(sized) / float64(cells))
		cells = sized
		numRivers = scaleCount(numRivers, s, 40)
		numRoads = scaleCount(numRoads, s, 32)
		numVillages = scaleCount(numVillages, s, 64)
		numPosts = scaleCount(numPosts, s, 16)
	}

	area := float64(cells) / fill
	w := int(math.Sqrt(area*aspect) + 0.5)
	h := int(area/float64(w) + 0.5)
	if w < 10 {
		w = 10
	}
	if h < 10 {
		h = 10
	}
	for w*h <= cells { // paranoia: never ask for more cells than the lattice holds
		h++
	}
	return ParkConfig{
		Name:          name,
		Seed:          seed,
		W:             w,
		H:             h,
		TargetCells:   cells,
		Shape:         shape,
		NumRivers:     numRivers,
		NumRoads:      numRoads,
		NumVillages:   numVillages,
		NumPosts:      numPosts,
		ExtraFeatures: extraFeatures,
		Seasonal:      seasonal,
	}
}

// scaleCount scales a landmark count by the linear factor s, keeping at
// least the base count and at most max.
func scaleCount(base int, s float64, max int) int {
	n := int(float64(base)*s + 0.5)
	if n < base {
		n = base
	}
	if n > max {
		n = max
	}
	return n
}
