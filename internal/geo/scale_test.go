package geo

import (
	"math"
	"testing"
)

// TestParseSizedSpec covers the rand:<seed>@<cells> syntax: integer and
// scientific-notation counts, and rejection of malformed or out-of-range
// sizes.
func TestParseSizedSpec(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		cells int
	}{
		{"rand:7@10000", 10000},
		{"rand:7@1e6", 1000000},
		{"rand:7@2.5e5", 250000},
		{"rand:-3@50", 50},
	} {
		cfg, ok, err := ParseRandSpec(tc.spec)
		if !ok || err != nil {
			t.Fatalf("%s: ok=%v err=%v", tc.spec, ok, err)
		}
		if cfg.TargetCells != tc.cells {
			t.Errorf("%s: TargetCells=%d, want %d", tc.spec, cfg.TargetCells, tc.cells)
		}
		if cfg != RandomConfigSized(cfg.Seed, tc.cells) {
			t.Errorf("%s: spec does not match RandomConfigSized", tc.spec)
		}
	}
	for _, bad := range []string{
		"rand:7@", "rand:7@abc", "rand:7@1.5", "rand:7@1e99",
		"rand:7@49", "rand:7@2000001", "rand:7@NaN", "rand:7@-100",
	} {
		if _, ok, err := ParseRandSpec(bad); !ok || err == nil {
			t.Errorf("%s: accepted (ok=%v err=%v)", bad, ok, err)
		}
	}
	// The unsized spec must keep resolving exactly as before.
	cfg, ok, err := ParseRandSpec("rand:42")
	if !ok || err != nil || cfg != RandomConfig(42) {
		t.Fatalf("rand:42 = %+v, ok=%v, err=%v", cfg, ok, err)
	}
}

// TestRandomConfigSizedSharesFamily asserts that sizing preserves the park's
// stylistic identity: every draw-derived property other than the lattice and
// the (scaled) landmark counts matches the unsized config for the same seed.
func TestRandomConfigSizedSharesFamily(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		base := RandomConfig(seed)
		sized := RandomConfigSized(seed, 100000)
		if sized.Shape != base.Shape || sized.Seasonal != base.Seasonal ||
			sized.ExtraFeatures != base.ExtraFeatures || sized.Seed != base.Seed {
			t.Fatalf("seed %d: sized config left the family: %+v vs %+v", seed, sized, base)
		}
		if sized.TargetCells != 100000 {
			t.Fatalf("seed %d: TargetCells=%d", seed, sized.TargetCells)
		}
		if sized.NumRivers < base.NumRivers || sized.NumRivers > 40 ||
			sized.NumRoads < base.NumRoads || sized.NumRoads > 32 ||
			sized.NumVillages < base.NumVillages || sized.NumVillages > 64 ||
			sized.NumPosts < base.NumPosts || sized.NumPosts > 16 {
			t.Fatalf("seed %d: landmark counts out of range: %+v", seed, sized)
		}
		// The aspect ratio survives sizing (within lattice rounding).
		ar := func(c ParkConfig) float64 { return float64(c.W) / float64(c.H) }
		if r := ar(sized) / ar(base); r < 0.8 || r > 1.25 {
			t.Fatalf("seed %d: aspect drifted: %.2f vs %.2f", seed, ar(sized), ar(base))
		}
	}
}

// TestSizedParkInvariantsAtScale is the scale property test: sized parks at
// 10^5 (and 10^6, skipped under -short) must satisfy the same invariants as
// ordinary procedural parks — exact cell count, one 4-connected component,
// closed boundary, finite rasters.
func TestSizedParkInvariantsAtScale(t *testing.T) {
	sizes := []int{100000}
	if !testing.Short() {
		sizes = append(sizes, 1000000)
	}
	for _, cells := range sizes {
		cfg := RandomConfigSized(7, cells)
		p, err := GeneratePark(cfg)
		if err != nil {
			t.Fatalf("cells=%d: %v", cells, err)
		}
		g := p.Grid
		if g.NumCells() != cells {
			t.Errorf("cells=%d: got %d cells", cells, g.NumCells())
		}
		if !connected4(g) {
			t.Errorf("cells=%d: park mask is not one 4-connected component", cells)
		}
		boundary := 0
		for id := 0; id < g.NumCells(); id++ {
			x, y := g.CellXY(id)
			interior := g.InPark(x+1, y) && g.InPark(x-1, y) && g.InPark(x, y+1) && g.InPark(x, y-1)
			if interior == g.OnBoundary(id) {
				t.Fatalf("cells=%d: cell %d interior=%v but OnBoundary=%v", cells, id, interior, g.OnBoundary(id))
			}
			if g.OnBoundary(id) {
				boundary++
			}
		}
		if boundary == 0 {
			t.Errorf("cells=%d: no boundary cells", cells)
		}
		for j := 0; j < p.NumFeatures(); j++ {
			for i, v := range p.Feature(j).V {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cells=%d: feature %q not finite at cell %d", cells, p.FeatureNames[j], i)
				}
			}
		}
		if len(p.Posts) != cfg.NumPosts {
			t.Errorf("cells=%d: %d posts, want %d", cells, len(p.Posts), cfg.NumPosts)
		}
	}
}
