package geo

import (
	"container/heap"
	"math"
)

// DistanceTransform computes, for every in-park cell, the shortest-path
// distance in km to the nearest source cell, moving through in-park cells
// with 8-connectivity (diagonal steps cost √2). Cells unreachable from any
// source get +Inf. An empty source set yields an all-Inf raster.
func DistanceTransform(g *Grid, sources []int) *Raster {
	r := NewRaster(g)
	for i := range r.V {
		r.V[i] = math.Inf(1)
	}
	pq := &distHeap{}
	heap.Init(pq)
	for _, s := range sources {
		if s < 0 || s >= g.NumCells() {
			continue
		}
		if r.V[s] > 0 {
			r.V[s] = 0
			heap.Push(pq, distItem{id: s, d: 0})
		}
	}
	scratch := make([]int, 0, 8)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > r.V[it.id] {
			continue
		}
		x, y := g.CellXY(it.id)
		scratch = scratch[:0]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				n := g.CellID(x+dx, y+dy)
				if n < 0 {
					continue
				}
				step := 1.0
				if dx != 0 && dy != 0 {
					step = math.Sqrt2
				}
				nd := it.d + step
				if nd < r.V[n] {
					r.V[n] = nd
					heap.Push(pq, distItem{id: n, d: nd})
				}
			}
		}
		_ = scratch
	}
	return r
}

type distItem struct {
	id int
	d  float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BoundaryCells returns the compact ids of all cells on the park boundary.
func BoundaryCells(g *Grid) []int {
	var out []int
	for id := 0; id < g.NumCells(); id++ {
		if g.OnBoundary(id) {
			out = append(out, id)
		}
	}
	return out
}
