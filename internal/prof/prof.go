// Package prof wires Go's pprof profile writers into the command-line
// tools: the batch commands (pawssim, pawscamp) take -cpuprofile and
// -memprofile flags, and the daemon exposes net/http/pprof behind -pprof.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges for a
// heap profile at memPath (if non-empty) when the returned stop function is
// called. stop is idempotent, so it is safe to both defer it and call it
// explicitly to surface write errors before exiting.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			// Settle allocations so the profile reflects live data, not
			// garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
