// Package load is the deterministic fleet load harness behind the
// pawsload binary: it drives a mixed predict/riskmap/plan/job/env
// workload against a pawsd replica or a pawsgate front-end at a target
// request rate and records per-endpoint throughput and latency
// percentiles.
//
// Determinism: the op sequence (which endpoint, which effort, which
// cells, which post) is generated up front from one seed, so two runs
// against different deployments (one replica vs three behind a gate,
// affinity on vs off) answer the exact same questions in the exact same
// order — the only thing that varies is the serving side. Riskmap ops
// draw efforts from a small discrete set, so repeat keys exist for the
// response cache (and the gate's affinity routing) to win on; the
// response's "cached" field feeds the measured hit rate.
//
// The harness is open-loop with a bounded in-flight cap: ops fire on a
// fixed schedule derived from the target rate, and latency is measured
// from each op's *scheduled* start, so queueing delay behind a saturated
// server counts against it (no coordinated omission).
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"paws/internal/obs"
	"paws/internal/rng"
)

// Config tunes a load run.
type Config struct {
	// BaseURL is the target: one pawsd replica or a pawsgate.
	BaseURL string
	// Label names this run in BENCH_load.json (e.g. "1-replica",
	// "3-replica-affinity"); defaults to BaseURL.
	Label string
	// Rate is the target request rate per second (default 20).
	Rate float64
	// Duration bounds the run (default 10s); the op count is
	// Rate×Duration, generated up front.
	Duration time.Duration
	// Concurrency bounds in-flight requests (default 8).
	Concurrency int
	// Seed makes the op sequence reproducible (default 1).
	Seed int64
	// Model names the served model to drive (default: first model reported
	// by /v1/models).
	Model string
	// Efforts is the discrete riskmap/predict effort set (default
	// 1, 1.5, 2, 2.5) — small so repeat keys exist for caches to hit.
	Efforts []float64
	// Weights sets the op mix per endpoint name (predict, riskmap, plan,
	// job, env); default 5/5/1/1/1. A zero-weight endpoint is skipped.
	// An env op is one whole remote episode: create a /v1/envs session,
	// step it to completion with a deterministic random allocation drawn
	// from the op's pre-drawn seed, then delete it.
	Weights map[string]int
	// Client overrides the HTTP client (nil = default with 60s timeout).
	Client *http.Client
}

// SlowRequest is one of an endpoint's slowest successful requests, with
// the server-assigned trace ID (the X-Paws-Trace response header) so a
// tail-latency outlier in the bench file can be looked up in the
// serving side's /tracez flight recorder.
type SlowRequest struct {
	LatencyMS float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// EndpointStats aggregates one endpoint's outcomes.
type EndpointStats struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Shed counts structured 429 admission rejections (not errors: the
	// server kept its latency promise by refusing the work).
	Shed          int     `json:"shed,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMS        float64 `json:"mean_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	// Slowest holds the top slowestK successful requests, latency
	// descending, each with its server trace ID.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// slowestK bounds the per-endpoint slow-request log in the bench file.
const slowestK = 3

// Result is one labeled run's record in BENCH_load.json.
type Result struct {
	Label string `json:"label"`
	// Target describes what was driven (URL and model).
	Target string `json:"target"`
	Model  string `json:"model"`
	// Config echo, for reproducibility.
	TargetRate  float64 `json:"target_rate_rps"`
	Seed        int64   `json:"seed"`
	Concurrency int     `json:"concurrency"`
	// Measured totals.
	DurationSeconds float64                  `json:"duration_seconds"`
	AchievedRPS     float64                  `json:"achieved_rps"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
	// RiskMapCacheHitRate is the fraction of successful riskmap responses
	// served from a replica LRU ("cached": true) — the number affinity
	// routing exists to raise.
	RiskMapCacheHitRate float64 `json:"riskmap_cache_hit_rate"`
}

// op is one scheduled request.
type op struct {
	kind string
	at   time.Duration // offset from run start
	// parameters, pre-drawn for determinism
	effort float64
	cells  []int
	post   int
	seed   int64 // env ops: session seed and effort-allocation stream
}

// sample is one completed request.
type sample struct {
	kind      string
	latency   time.Duration
	err       bool
	shed      bool
	rmCached  bool
	rmCounted bool
	// traceID is the server's X-Paws-Trace response header (for jobs,
	// the submit response's — the ID the replica's job trace reuses).
	traceID string
}

// modelProbe is the slice of /v1/models the harness needs.
type modelProbe struct {
	Models []struct {
		Name  string `json:"name"`
		Cells int    `json:"cells"`
		Posts int    `json:"posts"`
	} `json:"models"`
}

// Run executes one load run.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Rate <= 0 {
		cfg.Rate = 20
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Efforts) == 0 {
		cfg.Efforts = []float64{1, 1.5, 2, 2.5}
	}
	if cfg.Weights == nil {
		cfg.Weights = map[string]int{"predict": 5, "riskmap": 5, "plan": 1, "job": 1, "env": 1}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}

	model, cells, posts, err := discover(ctx, client, cfg.BaseURL, cfg.Model)
	if err != nil {
		return Result{}, err
	}

	ops := buildOps(cfg, cells, posts)
	if len(ops) == 0 {
		return Result{}, fmt.Errorf("load: empty op schedule (rate %.1f × %s)", cfg.Rate, cfg.Duration)
	}

	// Open-loop dispatch: each op fires at its scheduled offset; the
	// semaphore bounds in-flight work. Latency runs from the scheduled
	// start, so server-side queueing is charged to the server.
	samples := make([]sample, len(ops))
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i, o := range ops {
		if d := time.Until(start.Add(o.at)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		wg.Add(1)
		go func(i int, o op) {
			defer wg.Done()
			defer func() { <-sem }()
			scheduled := start.Add(o.at)
			s := doOp(ctx, client, cfg.BaseURL, model, o)
			s.latency = time.Since(scheduled)
			samples[i] = s
		}(i, o)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return aggregate(cfg, model, samples, elapsed), nil
}

// discover reads /v1/models off the target and picks the driven model.
func discover(ctx context.Context, client *http.Client, base, want string) (model string, cells, posts int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/models", nil)
	if err != nil {
		return "", 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, 0, fmt.Errorf("load: probing %s: %w", base, err)
	}
	defer resp.Body.Close()
	var probe modelProbe
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		return "", 0, 0, fmt.Errorf("load: bad /v1/models response: %w", err)
	}
	for _, m := range probe.Models {
		if want == "" || m.Name == want {
			return m.Name, m.Cells, m.Posts, nil
		}
	}
	return "", 0, 0, fmt.Errorf("load: target serves no model %q (%d models)", want, len(probe.Models))
}

// buildOps pre-draws the deterministic op schedule. The stream comes
// from internal/rng so the schedule derivation is the same machinery the
// compute layers use; rng.New(seed) is stream-identical to the previous
// rand.New(rand.NewSource(seed)), so recorded BENCH_load.json runs stay
// byte-reproducible for the same -seed.
func buildOps(cfg Config, cells, posts int) []op {
	rng := rng.New(cfg.Seed)
	kinds := []string{"predict", "riskmap", "plan", "job", "env"} // fixed draw order
	var weighted []string
	for _, k := range kinds {
		for i := 0; i < cfg.Weights[k]; i++ {
			weighted = append(weighted, k)
		}
	}
	if len(weighted) == 0 {
		return nil
	}
	total := int(cfg.Rate * cfg.Duration.Seconds())
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	ops := make([]op, 0, total)
	for i := 0; i < total; i++ {
		o := op{
			kind:   weighted[rng.Intn(len(weighted))],
			at:     time.Duration(i) * interval,
			effort: cfg.Efforts[rng.Intn(len(cfg.Efforts))],
		}
		switch o.kind {
		case "predict":
			o.cells = make([]int, 8)
			for j := range o.cells {
				o.cells[j] = rng.Intn(max(cells, 1))
			}
		case "plan":
			if posts > 0 {
				o.post = rng.Intn(posts)
			}
		case "env":
			o.seed = rng.Int63()
		}
		ops = append(ops, o)
	}
	return ops
}

// doOp performs one request and classifies the outcome.
func doOp(ctx context.Context, client *http.Client, base, model string, o op) sample {
	s := sample{kind: o.kind}
	switch o.kind {
	case "predict":
		body, _ := json.Marshal(map[string]any{"model": model, "effort": o.effort, "cells": o.cells})
		var ok bool
		ok, s.traceID = post2xx(ctx, client, base+"/v1/predict", body, nil)
		s.err = !ok
	case "riskmap":
		var rm struct {
			Cached bool `json:"cached"`
		}
		url := fmt.Sprintf("%s/v1/riskmap?model=%s&effort=%g", base, model, o.effort)
		var ok bool
		ok, s.traceID = get2xx(ctx, client, url, &rm)
		if ok {
			s.rmCounted, s.rmCached = true, rm.Cached
		} else {
			s.err = true
		}
	case "plan":
		body, _ := json.Marshal(map[string]any{"model": model, "post": o.post, "beta": 0.9})
		var ok bool
		ok, s.traceID = post2xx(ctx, client, base+"/v1/plan", body, nil)
		s.err = !ok
	case "job":
		s = doJobOp(ctx, client, base, model, o)
	case "env":
		s = doEnvOp(ctx, client, base, o)
	}
	return s
}

// Env-op episode shape: short and fixed, so one op is a bounded unit of
// work. The per-op seed (pre-drawn in buildOps) roots both the session's
// simulation and the random effort allocation it is stepped with.
const (
	envOpPark            = "MFNP"
	envOpSeasons         = 2
	envOpSeasonMonths    = 1
	envOpBootstrapMonths = 6
)

// doEnvOp plays one whole remote episode: create a session, step every
// season with a deterministic random per-cell allocation, delete the
// session. The sample's latency covers the full create → done → delete
// round trip.
func doEnvOp(ctx context.Context, client *http.Client, base string, o op) sample {
	s := sample{kind: "env"}
	body, _ := json.Marshal(map[string]any{
		"park":             envOpPark,
		"seed":             o.seed,
		"seasons":          envOpSeasons,
		"season_months":    envOpSeasonMonths,
		"bootstrap_months": envOpBootstrapMonths,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/envs", bytes.NewReader(body))
	if err != nil {
		s.err = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		s.err = true
		return s
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	s.traceID = resp.Header.Get(obs.TraceHeader)
	if resp.StatusCode == http.StatusTooManyRequests {
		s.shed = true
		return s
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
		Obs struct {
			Effort   [][]float64 `json:"effort"`
			BudgetKM float64     `json:"budget_km"`
		} `json:"obs"`
	}
	if resp.StatusCode != http.StatusCreated || json.Unmarshal(raw, &created) != nil ||
		created.Session.ID == "" || len(created.Obs.Effort) == 0 {
		s.err = true
		return s
	}
	cells := len(created.Obs.Effort[0])
	erng := rng.New(o.seed)
	for season := 0; season < envOpSeasons; season++ {
		eff := make([]float64, cells)
		sum := 0.0
		for i := range eff {
			eff[i] = erng.Float64()
			sum += eff[i]
		}
		for i := range eff {
			eff[i] = eff[i] / sum * created.Obs.BudgetKM
		}
		stepBody, _ := json.Marshal(map[string]any{"effort": eff})
		var step struct {
			Done bool `json:"done"`
		}
		ok, _ := post2xx(ctx, client, base+"/v1/envs/"+created.Session.ID+"/step", stepBody, &step)
		if !ok {
			s.err = true
			break
		}
		if step.Done {
			break
		}
	}
	// Delete even after a failed step, so the session does not linger
	// until TTL eviction and distort later capacity behavior.
	if dreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/envs/"+created.Session.ID, nil); err == nil {
		if dresp, err := client.Do(dreq); err == nil {
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
	}
	return s
}

// doJobOp submits a riskmap job and polls it to completion; the sample's
// latency covers submit → terminal state (assigned by the caller from the
// scheduled start).
func doJobOp(ctx context.Context, client *http.Client, base, model string, o op) sample {
	s := sample{kind: "job"}
	body, _ := json.Marshal(map[string]any{
		"kind":    "riskmap",
		"riskmap": map[string]any{"model": model, "effort": o.effort},
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		s.err = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		s.err = true
		return s
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	s.traceID = resp.Header.Get(obs.TraceHeader)
	if resp.StatusCode == http.StatusTooManyRequests {
		s.shed = true
		return s
	}
	var snap struct {
		ID string `json:"id"`
	}
	if resp.StatusCode != http.StatusAccepted || json.Unmarshal(raw, &snap) != nil || snap.ID == "" {
		s.err = true
		return s
	}
	for {
		var st struct {
			State string `json:"state"`
		}
		if ok, _ := get2xx(ctx, client, base+"/v1/jobs/"+snap.ID, &st); !ok {
			s.err = true
			return s
		}
		switch st.State {
		case "done":
			return s
		case "failed", "canceled":
			s.err = true
			return s
		}
		select {
		case <-ctx.Done():
			s.err = true
			return s
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// get2xx / post2xx report success and the response's X-Paws-Trace
// header (empty on transport errors).
func get2xx(ctx context.Context, client *http.Client, url string, out any) (bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, ""
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	trace := resp.Header.Get(obs.TraceHeader)
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || resp.StatusCode/100 != 2 {
		return false, trace
	}
	if out != nil && json.Unmarshal(raw, out) != nil {
		return false, trace
	}
	return true, trace
}

func post2xx(ctx context.Context, client *http.Client, url string, body []byte, out any) (bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, ""
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	trace := resp.Header.Get(obs.TraceHeader)
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || resp.StatusCode/100 != 2 {
		return false, trace
	}
	if out != nil && json.Unmarshal(raw, out) != nil {
		return false, trace
	}
	return true, trace
}

// aggregate folds samples into the run result.
func aggregate(cfg Config, model string, samples []sample, elapsed time.Duration) Result {
	type timed struct {
		latency time.Duration
		traceID string
	}
	byKind := map[string][]timed{}
	stats := map[string]*EndpointStats{}
	rmHits, rmTotal := 0, 0
	for _, s := range samples {
		st := stats[s.kind]
		if st == nil {
			st = &EndpointStats{}
			stats[s.kind] = st
		}
		st.Requests++
		switch {
		case s.shed:
			st.Shed++
		case s.err:
			st.Errors++
		default:
			byKind[s.kind] = append(byKind[s.kind], timed{s.latency, s.traceID})
		}
		if s.rmCounted {
			rmTotal++
			if s.rmCached {
				rmHits++
			}
		}
	}
	label := cfg.Label
	if label == "" {
		label = cfg.BaseURL
	}
	res := Result{
		Label:           label,
		Target:          cfg.BaseURL,
		Model:           model,
		TargetRate:      cfg.Rate,
		Seed:            cfg.Seed,
		Concurrency:     cfg.Concurrency,
		DurationSeconds: elapsed.Seconds(),
		AchievedRPS:     float64(len(samples)) / elapsed.Seconds(),
		Endpoints:       map[string]EndpointStats{},
	}
	for kind, st := range stats {
		ts := byKind[kind]
		sort.Slice(ts, func(a, b int) bool { return ts[a].latency < ts[b].latency })
		if n := len(ts); n > 0 {
			lats := make([]time.Duration, n)
			var sum time.Duration
			for i, t := range ts {
				lats[i] = t.latency
				sum += t.latency
			}
			st.MeanMS = roundMS(sum / time.Duration(n))
			st.P50MS = roundMS(percentile(lats, 0.50))
			st.P95MS = roundMS(percentile(lats, 0.95))
			st.P99MS = roundMS(percentile(lats, 0.99))
			for i := n - 1; i >= 0 && len(st.Slowest) < slowestK; i-- {
				st.Slowest = append(st.Slowest, SlowRequest{
					LatencyMS: roundMS(ts[i].latency),
					TraceID:   ts[i].traceID,
				})
			}
		}
		st.ThroughputRPS = round3(float64(st.Requests-st.Errors-st.Shed) / elapsed.Seconds())
		res.Endpoints[kind] = *st
	}
	if rmTotal > 0 {
		res.RiskMapCacheHitRate = round3(float64(rmHits) / float64(rmTotal))
	}
	return res
}

// percentile reads the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func roundMS(d time.Duration) float64 { return round3(float64(d) / float64(time.Millisecond)) }

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
