package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"paws"
	"paws/internal/serve"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1..100ms sorted
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.q); got != c.want {
			t.Errorf("percentile(q=%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile(lats[:1], 0.99); got != time.Millisecond {
		t.Errorf("percentile(single, 0.99) = %v, want 1ms", got)
	}
}

func TestBuildOpsDeterministicAndMixed(t *testing.T) {
	cfg := Config{Rate: 50, Duration: 2 * time.Second, Seed: 42,
		Efforts: []float64{1, 2}, Weights: map[string]int{"predict": 5, "riskmap": 5, "plan": 1, "job": 1}}
	a := buildOps(cfg, 16, 2)
	b := buildOps(cfg, 16, 2)
	if len(a) != 100 {
		t.Fatalf("want 100 ops, got %d", len(a))
	}
	counts := map[string]int{}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].effort != b[i].effort || a[i].post != b[i].post {
			t.Fatalf("op %d differs between identical-seed builds: %+v vs %+v", i, a[i], b[i])
		}
		counts[a[i].kind]++
	}
	for _, k := range []string{"predict", "riskmap", "plan", "job"} {
		if counts[k] == 0 {
			t.Errorf("mix produced zero %s ops: %v", k, counts)
		}
	}
	cfg.Seed = 43
	c := buildOps(cfg, 16, 2)
	same := true
	for i := range a {
		if a[i].kind != c[i].kind || a[i].effort != c[i].effort {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical op sequences")
	}
}

func TestMergeIntoUpsertsByLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := MergeInto(path, Result{Label: "b", AchievedRPS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := MergeInto(path, Result{Label: "a", AchievedRPS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := MergeInto(path, Result{Label: "b", AchievedRPS: 3}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 {
		t.Fatalf("want 2 labeled runs after upsert, got %d", len(bf.Runs))
	}
	if bf.Runs[0].Label != "a" || bf.Runs[1].Label != "b" {
		t.Fatalf("runs not sorted by label: %q, %q", bf.Runs[0].Label, bf.Runs[1].Label)
	}
	if bf.Runs[1].AchievedRPS != 3 {
		t.Fatalf("label b not replaced: rps=%v", bf.Runs[1].AchievedRPS)
	}
}

// TestRunAgainstServer drives a short deterministic run against a real
// serve.Server with a cheap model and checks the aggregate shape: every
// endpoint in the mix saw traffic, nothing errored, latencies are
// ordered, and the small effort set produced riskmap cache hits.
func TestRunAgainstServer(t *testing.T) {
	ctx := context.Background()
	svc := paws.NewService(paws.WithWorkers(2), paws.WithSeed(7))
	sc, err := svc.Scenario(ctx, "rand:16")
	if err != nil {
		t.Fatal(err)
	}
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := svc.Train(ctx, split.Train,
		paws.WithKind(paws.DTBiW), paws.WithThresholds(4), paws.WithEnsembleSize(4), paws.WithTreeDepth(6))
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(year)
	if _, err := svc.AddModel(ctx, "default", m, sc.Data, testFrom-1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.New(svc, serve.Config{JobWorkers: 2}))
	defer srv.Close()

	res, err := Run(ctx, Config{
		BaseURL:     srv.URL,
		Label:       "test",
		Rate:        60,
		Duration:    1500 * time.Millisecond,
		Concurrency: 4,
		Seed:        7,
		Efforts:     []float64{1, 2}, // tiny set → guaranteed repeat keys
		Weights:     map[string]int{"predict": 4, "riskmap": 6, "plan": 1, "job": 1, "env": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "test" || res.Model != "default" {
		t.Fatalf("bad run identity: label=%q model=%q", res.Label, res.Model)
	}
	total := 0
	for _, kind := range []string{"predict", "riskmap", "plan", "job", "env"} {
		st, ok := res.Endpoints[kind]
		if !ok || st.Requests == 0 {
			t.Fatalf("endpoint %s saw no traffic: %+v", kind, res.Endpoints)
		}
		if st.Errors != 0 {
			t.Errorf("endpoint %s had %d errors", kind, st.Errors)
		}
		if st.P50MS > st.P95MS || st.P95MS > st.P99MS {
			t.Errorf("endpoint %s percentiles out of order: %+v", kind, st)
		}
		total += st.Requests
	}
	if total != 90 {
		t.Errorf("want 90 total ops (60 rps × 1.5s), got %d", total)
	}
	if res.RiskMapCacheHitRate == 0 {
		t.Error("expected riskmap cache hits with a 2-effort set, got hit rate 0")
	}
	if res.AchievedRPS <= 0 || res.DurationSeconds <= 0 {
		t.Errorf("degenerate run totals: %+v", res)
	}
}
