package load

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchFile is the BENCH_load.json layout: labeled runs, so "1-replica"
// and "3-replica" (and affinity on/off) live side by side and a re-run
// of one label replaces only that label's record.
type benchFile struct {
	Runs []Result `json:"runs"`
}

// MergeInto upserts res into the labeled-run file at path (created if
// absent), keyed by Label, and writes it back sorted by label.
func MergeInto(path string, res Result) error {
	var bf benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("load: %s exists but is not a bench file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i := range bf.Runs {
		if bf.Runs[i].Label == res.Label {
			bf.Runs[i] = res
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Runs = append(bf.Runs, res)
	}
	sort.Slice(bf.Runs, func(a, b int) bool { return bf.Runs[a].Label < bf.Runs[b].Label })
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
