package ml

import "testing"

// pointwiseOnly deliberately implements just the scalar interfaces so the
// non-batch branches of the parallel helpers get exercised.
type pointwiseOnly struct{}

func (pointwiseOnly) Fit(X [][]float64, y []int) error { return nil }
func (pointwiseOnly) PredictProba(x []float64) float64 { return x[0] / (1 + x[0]*x[0]) }
func (pointwiseOnly) PredictWithVariance(x []float64) (float64, float64) {
	return x[0] / (1 + x[0]*x[0]), x[0] * x[0]
}

func testMatrix(n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i) * 0.37}
	}
	return X
}

// TestPredictAllParallelMatchesSequential covers both dispatch branches —
// batch (ConstantClassifier) and pointwise (pointwiseOnly) — across worker
// counts, including the chunked multi-worker paths.
func TestPredictAllParallelMatchesSequential(t *testing.T) {
	X := testMatrix(103)
	classifiers := map[string]Classifier{
		"batch":     &ConstantClassifier{P: 0.25},
		"pointwise": pointwiseOnly{},
	}
	for name, c := range classifiers {
		t.Run(name, func(t *testing.T) {
			want := PredictAll(c, X)
			for _, workers := range []int{1, 3, 8, 0} {
				got := PredictAllParallel(c, X, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPredictWithVarianceAllMatchesSequential does the same for the
// uncertainty-path helper.
func TestPredictWithVarianceAllMatchesSequential(t *testing.T) {
	X := testMatrix(97)
	classifiers := map[string]UncertaintyClassifier{
		"batch":     &ConstantClassifier{P: 0.7},
		"pointwise": pointwiseOnly{},
	}
	for name, c := range classifiers {
		t.Run(name, func(t *testing.T) {
			wantP, wantV := PredictWithVarianceAll(c, X, 1)
			for _, workers := range []int{3, 8, 0} {
				gotP, gotV := PredictWithVarianceAll(c, X, workers)
				for i := range wantP {
					if gotP[i] != wantP[i] || gotV[i] != wantV[i] {
						t.Fatalf("workers=%d: point %d diverged", workers, i)
					}
				}
			}
		})
	}
}
