// Package ml defines the model interfaces and shared utilities of the PAWS
// predictive layer: binary probabilistic classifiers, classifiers with
// per-prediction uncertainty, feature standardization, and cross-validation
// folds. Concrete learners live in the subpackages tree, bagging, svm and gp.
package ml

import (
	"errors"
	"fmt"
	"math"

	"paws/internal/par"
	"paws/internal/rng"
)

// ErrNotFitted is returned when predicting with an untrained model.
var ErrNotFitted = errors.New("ml: model is not fitted")

// ErrNoData is returned when fitting on an empty dataset.
var ErrNoData = errors.New("ml: empty training set")

// Classifier is a binary probabilistic classifier. PredictProba returns the
// estimated probability of the positive class.
type Classifier interface {
	Fit(X [][]float64, y []int) error
	PredictProba(x []float64) float64
}

// UncertaintyClassifier additionally quantifies per-prediction uncertainty.
// For Gaussian processes the variance is intrinsic to the model; for bagged
// ensembles it is a heuristic (Section V-C of the paper).
type UncertaintyClassifier interface {
	Classifier
	PredictWithVariance(x []float64) (p, variance float64)
}

// BatchClassifier is a Classifier with a vectorized prediction path: scoring
// a whole matrix at once lets implementations amortize per-call setup (the
// GP's batched back-substitution, the ensemble's per-member dispatch) that a
// one-point-at-a-time loop repays on every row. Implementations must return
// exactly the floats the pointwise path would.
type BatchClassifier interface {
	Classifier
	// PredictProbaBatch returns PredictProba for every row of X.
	PredictProbaBatch(X [][]float64) []float64
}

// BatchUncertaintyClassifier is the batched form of UncertaintyClassifier.
type BatchUncertaintyClassifier interface {
	UncertaintyClassifier
	// PredictWithVarianceBatch returns PredictWithVariance for every row of
	// X as parallel probability and variance slices.
	PredictWithVarianceBatch(X [][]float64) (p, variance []float64)
}

// Factory builds a fresh, untrained classifier. Ensembles and
// cross-validation use factories so every member starts from scratch with an
// independent seed.
type Factory func(seed int64) Classifier

// PredictAll applies PredictProba to every row of X, preferring the batch
// fast path when c implements BatchClassifier.
func PredictAll(c Classifier, X [][]float64) []float64 {
	return PredictAllParallel(c, X, 1)
}

// PredictAllParallel scores every row of X on up to workers goroutines (see
// par.Workers for the count semantics). Batch implementations are dispatched
// in index-ordered chunks, so the output is identical for any worker count.
func PredictAllParallel(c Classifier, X [][]float64, workers int) []float64 {
	out := make([]float64, len(X))
	if bc, ok := c.(BatchClassifier); ok {
		par.ForEachChunk(workers, len(X), func(lo, hi int) {
			copy(out[lo:hi], bc.PredictProbaBatch(X[lo:hi]))
		})
		return out
	}
	par.ForEach(workers, len(X), func(i int) { out[i] = c.PredictProba(X[i]) })
	return out
}

// PredictWithVarianceAll scores every row of X with uncertainty on up to
// workers goroutines, preferring the batch fast path.
func PredictWithVarianceAll(c UncertaintyClassifier, X [][]float64, workers int) (p, variance []float64) {
	p = make([]float64, len(X))
	variance = make([]float64, len(X))
	if bc, ok := c.(BatchUncertaintyClassifier); ok {
		par.ForEachChunk(workers, len(X), func(lo, hi int) {
			ps, vs := bc.PredictWithVarianceBatch(X[lo:hi])
			copy(p[lo:hi], ps)
			copy(variance[lo:hi], vs)
		})
		return p, variance
	}
	par.ForEach(workers, len(X), func(i int) { p[i], variance[i] = c.PredictWithVariance(X[i]) })
	return p, variance
}

// CheckXY validates a training set shape.
func CheckXY(X [][]float64, y []int) error {
	if len(X) == 0 {
		return ErrNoData
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	w := len(X[0])
	for i, row := range X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("ml: label %d at row %d is not binary", v, i)
		}
	}
	return nil
}

// Standardizer centers and scales features to zero mean and unit variance.
// Constant features are left centered with unit divisor.
type Standardizer struct {
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes per-feature moments from X.
func FitStandardizer(X [][]float64) (*Standardizer, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	k := len(X[0])
	s := &Standardizer{Mean: make([]float64, k), Scale: make([]float64, k)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += d * d
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] < 1e-12 {
			s.Scale[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformInto(x, out)
	return out
}

// TransformInto standardizes x into dst, which must have the same length —
// the allocation-free variant batch predictors use for their scratch buffer.
func (s *Standardizer) TransformInto(x, dst []float64) {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Scale[j]
	}
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// KFold splits indices 0..n-1 into k shuffled folds of near-equal size.
// It returns, for each fold, the held-out (validation) indices.
func KFold(n, k int, r *rng.RNG) [][]int {
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds
}

// TrainIndices returns all indices not in the given validation fold.
func TrainIndices(n int, fold []int) []int {
	in := make([]bool, n)
	for _, i := range fold {
		in[i] = true
	}
	out := make([]int, 0, n-len(fold))
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// Subset gathers rows of X and y at the given indices.
func Subset(X [][]float64, y []int, idx []int) ([][]float64, []int) {
	sx := make([][]float64, len(idx))
	sy := make([]int, len(idx))
	for i, j := range idx {
		sx[i] = X[j]
		sy[i] = y[j]
	}
	return sx, sy
}

// ClassCounts returns the number of negative and positive labels.
func ClassCounts(y []int) (neg, pos int) {
	for _, v := range y {
		if v == 1 {
			pos++
		} else {
			neg++
		}
	}
	return neg, pos
}

// ConstantClassifier predicts a fixed probability; it is the fallback when a
// training subset is degenerate (single-class), which happens routinely
// under 1:200 imbalance.
type ConstantClassifier struct{ P float64 }

// Fit sets P to the positive rate of y.
func (c *ConstantClassifier) Fit(X [][]float64, y []int) error {
	if len(y) == 0 {
		return ErrNoData
	}
	neg, pos := ClassCounts(y)
	c.P = float64(pos) / float64(neg+pos)
	return nil
}

// PredictProba returns the stored constant.
func (c *ConstantClassifier) PredictProba(x []float64) float64 { return c.P }

// PredictWithVariance returns the constant with zero variance.
func (c *ConstantClassifier) PredictWithVariance(x []float64) (float64, float64) { return c.P, 0 }

// PredictProbaBatch returns the stored constant for every row.
func (c *ConstantClassifier) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i := range out {
		out[i] = c.P
	}
	return out
}

// PredictWithVarianceBatch returns the constant with zero variance per row.
func (c *ConstantClassifier) PredictWithVarianceBatch(X [][]float64) ([]float64, []float64) {
	return c.PredictProbaBatch(X), make([]float64, len(X))
}
