package tree

import (
	"math"
	"testing"

	"paws/internal/rng"
	"paws/internal/stats"
)

// xorData is a dataset a linear model cannot fit but a depth-2 tree can.
func xorData(n int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := r.Float64(), r.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestTreeFitsXOR(t *testing.T) {
	X, y := xorData(400, 1)
	tr := New(Config{MaxDepth: 6, MinLeaf: 3})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := xorData(200, 2)
	scores := make([]float64, len(Xt))
	for i, x := range Xt {
		scores[i] = tr.PredictProba(x)
	}
	if auc := stats.AUC(yt, scores); auc < 0.9 {
		t.Fatalf("XOR AUC = %v want > 0.9", auc)
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatal("pure training set should give a stump")
	}
	if tr.PredictProba([]float64{10}) != 1 {
		t.Fatal("pure positive leaf should predict 1")
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	X, y := xorData(500, 3)
	tr := New(Config{MaxDepth: 2})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 2 {
		t.Fatalf("depth %d exceeds max 2", tr.Depth())
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	X, y := xorData(200, 4)
	tr := New(Config{MinLeaf: 30})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 30 and 200 points, at most ~6 leaves are possible.
	if tr.NumLeaves() > 7 {
		t.Fatalf("too many leaves (%d) for MinLeaf=30", tr.NumLeaves())
	}
}

func TestTreeProbabilitiesInRange(t *testing.T) {
	X, y := xorData(300, 5)
	tr := New(Config{MaxDepth: 4, MinLeaf: 10})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := tr.PredictProba(X[i])
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// All feature values identical → no split possible → root leaf.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatal("constant features should give a stump")
	}
	if tr.PredictProba([]float64{1, 1}) != 0.5 {
		t.Fatal("stump should predict base rate")
	}
}

func TestTreeErrors(t *testing.T) {
	tr := New(Config{})
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic predicting with unfitted tree")
		}
	}()
	tr.PredictProba([]float64{1})
}

func TestTreeFeatureDimPanic(t *testing.T) {
	X, y := xorData(50, 6)
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong feature count")
		}
	}()
	tr.PredictProba([]float64{1, 2, 3})
}

func TestTreeFeatureSubsamplingDeterministic(t *testing.T) {
	X, y := xorData(300, 7)
	t1 := New(Config{MaxFeatures: 1, Seed: 42})
	t2 := New(Config{MaxFeatures: 1, Seed: 42})
	if err := t1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := t2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if t1.PredictProba(X[i]) != t2.PredictProba(X[i]) {
			t.Fatal("same seed should give identical trees")
		}
	}
}

func TestTreeImbalancedData(t *testing.T) {
	// 1:50 imbalance; tree should still isolate the positive cluster.
	r := rng.New(8)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		X = append(X, []float64{r.Float64(), r.Float64()})
		y = append(y, 0)
	}
	for i := 0; i < 10; i++ {
		X = append(X, []float64{5 + r.Float64()*0.1, 5 + r.Float64()*0.1})
		y = append(y, 1)
	}
	tr := New(Config{MinLeaf: 1})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := tr.PredictProba([]float64{5.05, 5.05}); p < 0.9 {
		t.Fatalf("positive cluster prediction %v", p)
	}
	if p := tr.PredictProba([]float64{0.5, 0.5}); p > 0.1 {
		t.Fatalf("negative region prediction %v", p)
	}
}
