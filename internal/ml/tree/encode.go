package tree

import (
	"bytes"
	"encoding/gob"
	"errors"
)

func init() {
	// Stable name for encoding *Tree behind the ml.Classifier interface.
	gob.RegisterName("paws/internal/ml/tree.Tree", &Tree{})
}

// nodeState mirrors node with exported fields; gob handles the recursion.
type nodeState struct {
	Leaf      bool
	Prob      float64
	N         int
	Feature   int
	Threshold float64
	Left      *nodeState
	Right     *nodeState
}

func toState(n *node) *nodeState {
	if n == nil {
		return nil
	}
	return &nodeState{
		Leaf: n.leaf, Prob: n.prob, N: n.n,
		Feature: n.feature, Threshold: n.threshold,
		Left: toState(n.left), Right: toState(n.right),
	}
}

func fromState(s *nodeState) (*node, error) {
	if s == nil {
		return nil, nil
	}
	n := &node{
		leaf: s.Leaf, prob: s.Prob, n: s.N,
		feature: s.Feature, threshold: s.Threshold,
	}
	if n.leaf {
		return n, nil
	}
	var err error
	if n.left, err = fromState(s.Left); err != nil {
		return nil, err
	}
	if n.right, err = fromState(s.Right); err != nil {
		return nil, err
	}
	if n.left == nil || n.right == nil {
		return nil, errors.New("tree: corrupt encoding: internal node missing a child")
	}
	return n, nil
}

// treeState is the exported gob image of a fitted Tree.
type treeState struct {
	Cfg   Config
	Root  *nodeState
	NFeat int
}

// GobEncode implements gob.GobEncoder over the fitted tree structure.
func (t *Tree) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(treeState{Cfg: t.cfg, Root: toState(t.root), NFeat: t.nFeat})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var st treeState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	root, err := fromState(st.Root)
	if err != nil {
		return err
	}
	t.cfg, t.root, t.nFeat = st.Cfg, root, st.NFeat
	return nil
}
