// Package tree implements CART binary classification trees with Gini
// impurity, depth/leaf-size controls and per-split feature subsampling.
// Bagged ensembles of these trees (package bagging) reproduce the paper's
// DTB weak learner, equivalent to a random forest (Section V-C).
package tree

import (
	"fmt"
	"sort"

	"paws/internal/ml"
	"paws/internal/rng"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth limits tree depth (0 means unlimited).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// MaxFeatures is the number of features examined per split; 0 means all
	// (√k is the random-forest convention, set by the bagging layer).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64
}

// Tree is a fitted CART classifier.
type Tree struct {
	cfg   Config
	root  *node
	nFeat int
}

type node struct {
	// Leaf fields.
	leaf bool
	prob float64 // positive fraction of training samples in this leaf
	n    int
	// Internal fields.
	feature   int
	threshold float64
	left      *node
	right     *node
}

// New creates an untrained tree.
func New(cfg Config) *Tree {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg}
}

// Fit grows the tree on (X, y).
func (t *Tree) Fit(X [][]float64, y []int) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	t.nFeat = len(X[0])
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(t.cfg.Seed)
	t.root = t.grow(X, y, idx, 0, r)
	return nil
}

// grow recursively builds the tree over the sample indices idx.
func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, r *rng.RNG) *node {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	n := len(idx)
	nd := &node{prob: float64(pos) / float64(n), n: n}
	if pos == 0 || pos == n || n < 2*t.cfg.MinLeaf ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		nd.leaf = true
		return nd
	}
	feat, thr, ok := t.bestSplit(X, y, idx, r)
	if !ok {
		nd.leaf = true
		return nd
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		nd.leaf = true
		return nd
	}
	nd.feature = feat
	nd.threshold = thr
	nd.left = t.grow(X, y, left, depth+1, r)
	nd.right = t.grow(X, y, right, depth+1, r)
	return nd
}

// bestSplit searches candidate features for the split minimizing weighted
// Gini impurity. Features are subsampled when MaxFeatures is set.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int, r *rng.RNG) (feat int, thr float64, ok bool) {
	candidates := t.candidateFeatures(r)
	n := len(idx)
	bestGini := gini(countPos(y, idx), n) // must strictly improve on parent
	bestFeat, bestThr := -1, 0.0

	type sv struct {
		v float64
		y int
	}
	vals := make([]sv, n)
	for _, f := range candidates {
		for i, id := range idx {
			vals[i] = sv{X[id][f], y[id]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		posLeft, nLeft := 0, 0
		posTotal := 0
		for _, v := range vals {
			posTotal += v.y
		}
		for i := 0; i < n-1; i++ {
			posLeft += vals[i].y
			nLeft++
			if vals[i].v == vals[i+1].v {
				continue // cannot split between equal values
			}
			if nLeft < t.cfg.MinLeaf || n-nLeft < t.cfg.MinLeaf {
				continue
			}
			gl := gini(posLeft, nLeft)
			gr := gini(posTotal-posLeft, n-nLeft)
			g := (float64(nLeft)*gl + float64(n-nLeft)*gr) / float64(n)
			if g < bestGini-1e-12 {
				bestGini = g
				bestFeat = f
				bestThr = (vals[i].v + vals[i+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	return bestFeat, bestThr, true
}

func (t *Tree) candidateFeatures(r *rng.RNG) []int {
	k := t.cfg.MaxFeatures
	if k <= 0 || k >= t.nFeat {
		out := make([]int, t.nFeat)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return r.SampleWithoutReplacement(t.nFeat, k)
}

func countPos(y []int, idx []int) int {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	return pos
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba returns the positive fraction of the leaf x falls into.
func (t *Tree) PredictProba(x []float64) float64 {
	if t.root == nil {
		panic(ml.ErrNotFitted)
	}
	if len(x) != t.nFeat {
		panic(fmt.Sprintf("tree: input has %d features, trained on %d", len(x), t.nFeat))
	}
	nd := t.root
	for !nd.leaf {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.prob
}

// PredictProbaBatch scores every row of X with one tree walk per row.
func (t *Tree) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = t.PredictProba(x)
	}
	return out
}

// PredictProbaFlat scores every row of a flat matrix with one tree walk per
// row, iterating the backing array without per-row slice headers.
func (t *Tree) PredictProbaFlat(X ml.Matrix) []float64 {
	out := make([]float64, X.Rows)
	for i := range out {
		out[i] = t.PredictProba(X.Row(i))
	}
	return out
}

// Depth returns the maximum depth of the fitted tree (0 for a stump).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumLeaves returns the number of leaves in the fitted tree.
func (t *Tree) NumLeaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}
