package ml

import "fmt"

// Matrix is a flat row-major feature matrix: Rows feature vectors of Cols
// entries each, stored contiguously in Data with stride Cols. It is the
// columnar (structure-of-arrays) counterpart of [][]float64 — one backing
// allocation instead of one per row, cache-linear row iteration, and cheap
// sub-range views. Row and Slice return views into the same backing array;
// mutating a view mutates the matrix.
type Matrix struct {
	Data []float64
	Rows int
	Cols int
}

// NewMatrix allocates a zeroed rows×cols matrix in one backing slice.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// MatrixFromRows copies X into a freshly allocated flat matrix. Rows must be
// rectangular; it panics otherwise (callers validate with CheckXY upstream).
func MatrixFromRows(X [][]float64) Matrix {
	if len(X) == 0 {
		return Matrix{}
	}
	m := NewMatrix(len(X), len(X[0]))
	for i, row := range X {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("ml: row %d has %d features, want %d", i, len(row), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m
}

// Row returns the i-th feature vector as a view into the backing array.
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// Slice returns the [lo, hi) row range as a view sharing the backing array.
func (m Matrix) Slice(lo, hi int) Matrix {
	return Matrix{Data: m.Data[lo*m.Cols : hi*m.Cols], Rows: hi - lo, Cols: m.Cols}
}

// ToRows returns per-row views over the backing array — the zero-copy bridge
// to [][]float64 APIs. The views alias the matrix; do not mutate them.
func (m Matrix) ToRows() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// FlatBatchClassifier is a BatchClassifier that can additionally score a flat
// row-major matrix directly, without per-row slice headers or gather copies.
// Implementations must return exactly the floats the pointwise path would —
// flat layout is a storage change, never an arithmetic one.
type FlatBatchClassifier interface {
	Classifier
	// PredictProbaFlat returns PredictProba for every row of X.
	PredictProbaFlat(X Matrix) []float64
}

// FlatBatchUncertaintyClassifier is the flat form of
// BatchUncertaintyClassifier.
type FlatBatchUncertaintyClassifier interface {
	UncertaintyClassifier
	// PredictWithVarianceFlat returns PredictWithVariance for every row of X
	// as parallel probability and variance slices.
	PredictWithVarianceFlat(X Matrix) (p, variance []float64)
}

// PredictAllFlat scores every row of a flat matrix, preferring the flat fast
// path, then the [][]-batch path over zero-copy row views, then pointwise.
func PredictAllFlat(c Classifier, X Matrix) []float64 {
	if fc, ok := c.(FlatBatchClassifier); ok {
		return fc.PredictProbaFlat(X)
	}
	if bc, ok := c.(BatchClassifier); ok {
		return bc.PredictProbaBatch(X.ToRows())
	}
	out := make([]float64, X.Rows)
	for i := range out {
		out[i] = c.PredictProba(X.Row(i))
	}
	return out
}

// PredictWithVarianceAllFlat scores every row of a flat matrix with
// uncertainty, with PredictAllFlat's dispatch order.
func PredictWithVarianceAllFlat(c UncertaintyClassifier, X Matrix) (p, variance []float64) {
	if fc, ok := c.(FlatBatchUncertaintyClassifier); ok {
		return fc.PredictWithVarianceFlat(X)
	}
	if bc, ok := c.(BatchUncertaintyClassifier); ok {
		return bc.PredictWithVarianceBatch(X.ToRows())
	}
	p = make([]float64, X.Rows)
	variance = make([]float64, X.Rows)
	for i := range p {
		p[i], variance[i] = c.PredictWithVariance(X.Row(i))
	}
	return p, variance
}

// PredictProbaFlat returns the stored constant for every row.
func (c *ConstantClassifier) PredictProbaFlat(X Matrix) []float64 {
	out := make([]float64, X.Rows)
	for i := range out {
		out[i] = c.P
	}
	return out
}

// PredictWithVarianceFlat returns the constant with zero variance per row.
func (c *ConstantClassifier) PredictWithVarianceFlat(X Matrix) ([]float64, []float64) {
	return c.PredictProbaFlat(X), make([]float64, X.Rows)
}
