// Package bagging implements bootstrap-aggregated ensembles, including the
// balanced bagging variant that undersamples the majority (negative) class —
// the paper's remedy for SWS's 1:200 class imbalance (Section V-A, citing
// imbalanced-learn) — and two uncertainty heuristics for bagged ensembles:
// the between-member prediction variance and the infinitesimal-jackknife
// estimator of Wager, Hastie & Efron used in Section V-C.
package bagging

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"paws/internal/ml"
	"paws/internal/par"
	"paws/internal/rng"
)

// Config controls the ensemble.
type Config struct {
	// Members is the number of bagged learners.
	Members int
	// MaxSamples caps each bootstrap sample size as a fraction of the
	// training set (0 means 1.0). Values < 1 subsample, which is how bagged
	// Gaussian processes stay tractable.
	MaxSamples float64
	// MaxSampleCount, when > 0, caps the absolute bootstrap sample size.
	MaxSampleCount int
	// Balanced undersamples negatives so each bag has an equal number of
	// negatives and positives (all positives are kept, then capped).
	Balanced bool
	// Seed drives all resampling.
	Seed int64
	// Workers bounds the goroutines used to fit members and to fan batch
	// predictions out across members (par.Workers semantics: 1 is
	// sequential, ≤ 0 means GOMAXPROCS). Bags and member seeds are derived
	// before fan-out, so results are identical for any worker count.
	Workers int
}

// Ensemble is a fitted bagging classifier.
type Ensemble struct {
	cfg  Config
	base ml.Factory
	// progress, when non-nil, observes member-fit completion (OnMemberFit).
	// Kept off Config so the gob-encoded state never sees a func field.
	progress func(done, total int)
	members  []ml.Classifier
	// inBag[b][i] counts how many times training row i entered bag b
	// (needed by the infinitesimal jackknife).
	inBag  [][]int
	nTrain int
	// oddsInflation records how balanced bags shifted class odds relative to
	// the full training set; member predictions divide it back out so the
	// ensemble stays calibrated to the true base rate (the standard
	// undersampling prior correction).
	oddsInflation float64
}

// New creates an untrained ensemble over the given base factory.
func New(base ml.Factory, cfg Config) *Ensemble {
	if cfg.Members <= 0 {
		cfg.Members = 10
	}
	if cfg.MaxSamples <= 0 || cfg.MaxSamples > 1 {
		cfg.MaxSamples = 1
	}
	return &Ensemble{cfg: cfg, base: base}
}

// OnMemberFit registers a callback invoked after each member fit with
// (members fitted so far, ensemble size). It may be called concurrently
// from worker goroutines; it never affects the fitted state and does not
// survive persistence. A nil callback disables reporting.
func (e *Ensemble) OnMemberFit(fn func(done, total int)) { e.progress = fn }

// Fit trains all members on bootstrap resamples of (X, y).
func (e *Ensemble) Fit(X [][]float64, y []int) error {
	return e.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit under a context: member fits already in flight when ctx is
// canceled run to completion, no new member starts, and ctx.Err() is
// returned (see par.ForEachErrCtx).
func (e *Ensemble) FitCtx(ctx context.Context, X [][]float64, y []int) error {
	if e.base == nil {
		return ErrNoFactory
	}
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	r := rng.New(e.cfg.Seed)
	e.nTrain = len(X)
	e.members = make([]ml.Classifier, 0, e.cfg.Members)
	e.inBag = make([][]int, 0, e.cfg.Members)
	e.oddsInflation = 1
	var posIdx, negIdx []int
	for i, v := range y {
		if v == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if e.cfg.Balanced && len(posIdx) > 0 && len(negIdx) > 0 {
		// Balanced bags are ~1:1, so the odds inflation is 1/(true odds).
		e.oddsInflation = float64(len(negIdx)) / float64(len(posIdx))
	}
	// Draw every bag and member seed sequentially before fan-out: the parent
	// stream is consumed in exactly the historical order (bag b, then seed
	// b), so member b trains on the same data with the same seed no matter
	// how many workers run.
	bags := make([][]int, e.cfg.Members)
	seeds := make([]int64, e.cfg.Members)
	for b := range bags {
		bags[b] = e.sampleBag(posIdx, negIdx, len(X), r)
		seeds[b] = r.Int63()
	}
	members := make([]ml.Classifier, e.cfg.Members)
	inBag := make([][]int, e.cfg.Members)
	var fitted atomic.Int64
	err := par.ForEachErrCtx(ctx, e.cfg.Workers, e.cfg.Members, func(b int) error {
		idx := bags[b]
		counts := make([]int, len(X))
		for _, i := range idx {
			counts[i]++
		}
		bx, by := ml.Subset(X, y, idx)
		m := e.base(seeds[b])
		if err := fitWithFallback(m, bx, by); err != nil {
			return fmt.Errorf("bagging: member %d: %w", b, err)
		}
		members[b] = m
		inBag[b] = counts
		if e.progress != nil {
			e.progress(int(fitted.Add(1)), e.cfg.Members)
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.members = members
	e.inBag = inBag
	// The hook's job is done; drop it so a long-lived fitted ensemble never
	// pins whatever the callback closed over (e.g. an async train job's
	// event stream).
	e.progress = nil
	return nil
}

// fitWithFallback replaces a member that cannot be fit on a single-class bag
// with a constant classifier (frequent under extreme imbalance).
func fitWithFallback(m ml.Classifier, X [][]float64, y []int) error {
	neg, pos := ml.ClassCounts(y)
	if neg == 0 || pos == 0 {
		if cc, ok := m.(*ml.ConstantClassifier); ok {
			return cc.Fit(X, y)
		}
	}
	return m.Fit(X, y)
}

// sampleBag draws one bootstrap bag. In balanced mode, each bag gets all
// positives (bootstrap-resampled) plus an equal number of negatives
// sampled without replacement — the imbalanced-learn BalancedBagging
// construction.
func (e *Ensemble) sampleBag(posIdx, negIdx []int, n int, r *rng.RNG) []int {
	if e.cfg.Balanced && len(posIdx) > 0 && len(negIdx) > 0 {
		nPos := len(posIdx)
		cap := e.capFor(2 * nPos)
		half := cap / 2
		if half < 1 {
			half = 1
		}
		idx := make([]int, 0, 2*half)
		for i := 0; i < half; i++ {
			idx = append(idx, posIdx[r.Intn(nPos)])
		}
		for _, j := range r.SampleWithoutReplacement(len(negIdx), half) {
			idx = append(idx, negIdx[j])
		}
		return idx
	}
	size := e.capFor(int(math.Ceil(e.cfg.MaxSamples * float64(n))))
	if size < 1 {
		size = 1
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	return idx
}

func (e *Ensemble) capFor(size int) int {
	if e.cfg.MaxSampleCount > 0 && size > e.cfg.MaxSampleCount {
		return e.cfg.MaxSampleCount
	}
	return size
}

// Members returns the fitted ensemble members.
func (e *Ensemble) Members() []ml.Classifier { return e.members }

// calibrate divides the balanced-sampling odds inflation out of a member
// probability (identity for plain bagging).
func (e *Ensemble) calibrate(p float64) float64 {
	if e.oddsInflation == 1 {
		return p
	}
	odds := p / (1 - p + 1e-12) / e.oddsInflation
	return odds / (1 + odds)
}

// PredictProba returns the mean calibrated member probability.
func (e *Ensemble) PredictProba(x []float64) float64 {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	var s float64
	for _, m := range e.members {
		s += e.calibrate(m.PredictProba(x))
	}
	return s / float64(len(e.members))
}

// PredictProbaBatch returns the mean calibrated member probability for every
// row of X. Members are scored concurrently (Config.Workers), each over the
// whole batch via its own batch fast path; the aggregation always sums in
// member order, so the output matches pointwise PredictProba exactly.
func (e *Ensemble) PredictProbaBatch(X [][]float64) []float64 {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	memberPreds := par.Map(e.cfg.Workers, len(e.members), func(b int) []float64 {
		return ml.PredictAll(e.members[b], X)
	})
	out := make([]float64, len(X))
	for v := range out {
		var s float64
		for _, preds := range memberPreds {
			s += e.calibrate(preds[v])
		}
		out[v] = s / float64(len(e.members))
	}
	return out
}

// PredictProbaFlat is PredictProbaBatch over a flat matrix: members score
// the shared backing array directly (ml.PredictAllFlat), and the aggregation
// still sums in member order, so the floats are unchanged.
func (e *Ensemble) PredictProbaFlat(X ml.Matrix) []float64 {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	memberPreds := par.Map(e.cfg.Workers, len(e.members), func(b int) []float64 {
		return ml.PredictAllFlat(e.members[b], X)
	})
	out := make([]float64, X.Rows)
	for v := range out {
		var s float64
		for _, preds := range memberPreds {
			s += e.calibrate(preds[v])
		}
		out[v] = s / float64(len(e.members))
	}
	return out
}

// MemberPredictions returns every member's calibrated probability for x.
func (e *Ensemble) MemberPredictions(x []float64) []float64 {
	out := make([]float64, len(e.members))
	for i, m := range e.members {
		out[i] = e.calibrate(m.PredictProba(x))
	}
	return out
}

// PredictWithVariance returns the ensemble mean and an uncertainty score.
// If the members expose intrinsic variances (Gaussian processes), it returns
// the mean of member variances plus the between-member variance of means
// (the law of total variance); otherwise it returns the between-member
// prediction variance — the random-forest heuristic of Section V-C.
func (e *Ensemble) PredictWithVariance(x []float64) (p, variance float64) {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	n := float64(len(e.members))
	var mean, m2, intrinsic float64
	hasIntrinsic := false
	for i, m := range e.members {
		var pi, vi float64
		if um, ok := m.(ml.UncertaintyClassifier); ok {
			pi, vi = um.PredictWithVariance(x)
			if _, isConst := m.(*ml.ConstantClassifier); !isConst {
				hasIntrinsic = true
			}
			intrinsic += vi
		} else {
			pi = m.PredictProba(x)
		}
		pi = e.calibrate(pi)
		// Welford update for between-member variance.
		delta := pi - mean
		mean += delta / float64(i+1)
		m2 += delta * (pi - mean)
	}
	between := m2 / n
	if hasIntrinsic {
		return mean, intrinsic/n + between
	}
	return mean, between
}

// PredictWithVarianceBatch returns PredictWithVariance for every row of X.
// Members predict concurrently over the whole batch; the per-point Welford
// recursion then runs in member order, reproducing the pointwise floats bit
// for bit.
func (e *Ensemble) PredictWithVarianceBatch(X [][]float64) ([]float64, []float64) {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	type memberOut struct {
		p, v      []float64
		intrinsic bool // counts toward the hasIntrinsic flag
	}
	outs := par.Map(e.cfg.Workers, len(e.members), func(b int) memberOut {
		m := e.members[b]
		if um, ok := m.(ml.UncertaintyClassifier); ok {
			p, v := ml.PredictWithVarianceAll(um, X, 1)
			_, isConst := m.(*ml.ConstantClassifier)
			return memberOut{p: p, v: v, intrinsic: !isConst}
		}
		return memberOut{p: ml.PredictAll(m, X)}
	})
	n := float64(len(e.members))
	ps := make([]float64, len(X))
	vs := make([]float64, len(X))
	for row := range X {
		var mean, m2, intrinsic float64
		hasIntrinsic := false
		for i, mo := range outs {
			pi := mo.p[row]
			if mo.v != nil {
				if mo.intrinsic {
					hasIntrinsic = true
				}
				intrinsic += mo.v[row]
			}
			pi = e.calibrate(pi)
			delta := pi - mean
			mean += delta / float64(i+1)
			m2 += delta * (pi - mean)
		}
		between := m2 / n
		ps[row] = mean
		if hasIntrinsic {
			vs[row] = intrinsic/n + between
		} else {
			vs[row] = between
		}
	}
	return ps, vs
}

// PredictWithVarianceFlat is PredictWithVarianceBatch over a flat matrix,
// with the same member-order Welford recursion per row.
func (e *Ensemble) PredictWithVarianceFlat(X ml.Matrix) ([]float64, []float64) {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	type memberOut struct {
		p, v      []float64
		intrinsic bool // counts toward the hasIntrinsic flag
	}
	outs := par.Map(e.cfg.Workers, len(e.members), func(b int) memberOut {
		m := e.members[b]
		if um, ok := m.(ml.UncertaintyClassifier); ok {
			p, v := ml.PredictWithVarianceAllFlat(um, X)
			_, isConst := m.(*ml.ConstantClassifier)
			return memberOut{p: p, v: v, intrinsic: !isConst}
		}
		return memberOut{p: ml.PredictAllFlat(m, X)}
	})
	n := float64(len(e.members))
	ps := make([]float64, X.Rows)
	vs := make([]float64, X.Rows)
	for row := range ps {
		var mean, m2, intrinsic float64
		hasIntrinsic := false
		for i, mo := range outs {
			pi := mo.p[row]
			if mo.v != nil {
				if mo.intrinsic {
					hasIntrinsic = true
				}
				intrinsic += mo.v[row]
			}
			pi = e.calibrate(pi)
			delta := pi - mean
			mean += delta / float64(i+1)
			m2 += delta * (pi - mean)
		}
		between := m2 / n
		ps[row] = mean
		if hasIntrinsic {
			vs[row] = intrinsic/n + between
		} else {
			vs[row] = between
		}
	}
	return ps, vs
}

// JackknifeVariance returns the infinitesimal-jackknife variance estimate of
// the bagged prediction at x (Wager, Hastie & Efron 2014):
//
//	V_IJ = Σ_i Cov_b(N_{b,i}, p_b)²
//
// where N_{b,i} is the number of times training point i appears in bag b and
// p_b is member b's prediction. Requires Fit to have been called.
func (e *Ensemble) JackknifeVariance(x []float64) float64 {
	if len(e.members) == 0 {
		panic(ml.ErrNotFitted)
	}
	b := len(e.members)
	preds := e.MemberPredictions(x)
	var meanP float64
	for _, p := range preds {
		meanP += p
	}
	meanP /= float64(b)
	// Mean in-bag count per training point.
	meanN := make([]float64, e.nTrain)
	for _, counts := range e.inBag {
		for i, c := range counts {
			meanN[i] += float64(c)
		}
	}
	for i := range meanN {
		meanN[i] /= float64(b)
	}
	var v float64
	for i := 0; i < e.nTrain; i++ {
		var cov float64
		for bi, counts := range e.inBag {
			cov += (float64(counts[i]) - meanN[i]) * (preds[bi] - meanP)
		}
		cov /= float64(b)
		v += cov * cov
	}
	return v
}
