package bagging

import (
	"bytes"
	"encoding/gob"
	"errors"

	"paws/internal/ml"
)

func init() {
	// Stable name for encoding *Ensemble behind the ml.Classifier interface
	// (iWare-E ladders store their weak learners this way).
	gob.RegisterName("paws/internal/ml/bagging.Ensemble", &Ensemble{})
}

// ensembleState is the exported gob image of a fitted ensemble. Members are
// interface values; every concrete learner registers itself with gob in its
// own package init. The base factory is a function and cannot be encoded —
// a decoded ensemble is predict-only (Fit reports ErrNoFactory).
type ensembleState struct {
	Cfg           Config
	Members       []ml.Classifier
	InBag         [][]int
	NTrain        int
	OddsInflation float64
}

// ErrNoFactory is returned by Fit on an ensemble decoded from a persisted
// model: the base-learner factory is a function and does not survive
// encoding, so such ensembles are predict-only.
var ErrNoFactory = errors.New("bagging: ensemble has no base factory (decoded from a persisted model); predict-only")

// GobEncode implements gob.GobEncoder.
func (e *Ensemble) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ensembleState{
		Cfg: e.cfg, Members: e.members, InBag: e.inBag,
		NTrain: e.nTrain, OddsInflation: e.oddsInflation,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (e *Ensemble) GobDecode(b []byte) error {
	var st ensembleState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	for _, m := range st.Members {
		if m == nil {
			return errors.New("bagging: corrupt encoding: nil member")
		}
	}
	e.cfg, e.members, e.inBag = st.Cfg, st.Members, st.InBag
	e.nTrain, e.oddsInflation = st.NTrain, st.OddsInflation
	e.base = nil
	return nil
}
