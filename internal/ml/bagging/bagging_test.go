package bagging

import (
	"math"
	"testing"

	"paws/internal/ml"
	"paws/internal/ml/tree"
	"paws/internal/rng"
	"paws/internal/stats"
)

func treeFactory(maxDepth int) ml.Factory {
	return func(seed int64) ml.Classifier {
		return tree.New(tree.Config{MaxDepth: maxDepth, MinLeaf: 2, Seed: seed})
	}
}

// blobs builds two Gaussian clusters with the given counts.
func blobs(nNeg, nPos int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	var X [][]float64
	var y []int
	for i := 0; i < nNeg; i++ {
		X = append(X, []float64{r.Normal(0, 1), r.Normal(0, 1)})
		y = append(y, 0)
	}
	for i := 0; i < nPos; i++ {
		X = append(X, []float64{r.Normal(3, 1), r.Normal(3, 1)})
		y = append(y, 1)
	}
	return X, y
}

func TestEnsembleLearnsBlobs(t *testing.T) {
	X, y := blobs(200, 200, 1)
	e := New(treeFactory(5), Config{Members: 15, Seed: 2})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := blobs(100, 100, 3)
	scores := make([]float64, len(Xt))
	for i, x := range Xt {
		scores[i] = e.PredictProba(x)
	}
	if auc := stats.AUC(yt, scores); auc < 0.95 {
		t.Fatalf("blobs AUC = %v", auc)
	}
}

func TestBalancedBaggingBeatsPlainUnderImbalance(t *testing.T) {
	// 1:60 imbalance with overlapping clusters.
	r := rng.New(4)
	var X [][]float64
	var y []int
	for i := 0; i < 1200; i++ {
		X = append(X, []float64{r.Normal(0, 1.5), r.Normal(0, 1.5)})
		y = append(y, 0)
	}
	for i := 0; i < 20; i++ {
		X = append(X, []float64{r.Normal(2, 1), r.Normal(2, 1)})
		y = append(y, 1)
	}
	var Xt [][]float64
	var yt []int
	for i := 0; i < 300; i++ {
		Xt = append(Xt, []float64{r.Normal(0, 1.5), r.Normal(0, 1.5)})
		yt = append(yt, 0)
	}
	for i := 0; i < 30; i++ {
		Xt = append(Xt, []float64{r.Normal(2, 1), r.Normal(2, 1)})
		yt = append(yt, 1)
	}
	aucOf := func(balanced bool) float64 {
		e := New(treeFactory(4), Config{Members: 20, Balanced: balanced, Seed: 5})
		if err := e.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, len(Xt))
		for i, x := range Xt {
			scores[i] = e.PredictProba(x)
		}
		return stats.AUC(yt, scores)
	}
	plain, balanced := aucOf(false), aucOf(true)
	// Balanced bagging should not be dramatically worse, and each bag must
	// be usable. (On average it is better; we assert non-collapse.)
	if balanced < 0.6 {
		t.Fatalf("balanced bagging collapsed: AUC %v (plain %v)", balanced, plain)
	}
}

func TestBalancedBagsAreBalanced(t *testing.T) {
	X, y := blobs(500, 10, 6)
	e := New(treeFactory(3), Config{Members: 5, Balanced: true, Seed: 7})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for b, counts := range e.inBag {
		var neg, pos int
		for i, c := range counts {
			if c == 0 {
				continue
			}
			if y[i] == 1 {
				pos += c
			} else {
				neg += c
			}
		}
		if pos == 0 || neg == 0 {
			t.Fatalf("bag %d is single-class (%d/%d)", b, neg, pos)
		}
		ratio := float64(pos) / float64(neg)
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("bag %d unbalanced: %d pos vs %d neg", b, pos, neg)
		}
	}
}

func TestPredictWithVarianceBetweenMembers(t *testing.T) {
	X, y := blobs(100, 100, 8)
	e := New(treeFactory(6), Config{Members: 12, Seed: 9})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p, v := e.PredictWithVariance([]float64{1.5, 1.5})
	if p < 0 || p > 1 {
		t.Fatalf("p = %v", p)
	}
	if v < 0 {
		t.Fatalf("variance = %v", v)
	}
	// Deep in the negative cluster, members agree → near-zero variance.
	_, vSure := e.PredictWithVariance([]float64{-1, -1})
	if vSure > v+1e-9 && v > 0.01 {
		t.Logf("boundary var %v, interior var %v", v, vSure)
	}
}

func TestJackknifeVarianceNonNegative(t *testing.T) {
	X, y := blobs(80, 80, 10)
	e := New(treeFactory(5), Config{Members: 25, Seed: 11})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {3, 3}, {1.5, 1.5}, {-2, 5}} {
		if v := e.JackknifeVariance(x); v < 0 || math.IsNaN(v) {
			t.Fatalf("jackknife variance = %v", v)
		}
	}
}

func TestMaxSampleCount(t *testing.T) {
	X, y := blobs(300, 300, 12)
	e := New(treeFactory(3), Config{Members: 4, MaxSampleCount: 50, Seed: 13})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for b, counts := range e.inBag {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total > 50 {
			t.Fatalf("bag %d has %d samples, cap 50", b, total)
		}
	}
}

func TestSingleClassBagFallsBackToConstant(t *testing.T) {
	// All-negative training data with a constant-capable base.
	X := [][]float64{{1}, {2}, {3}, {4}, {5}}
	y := []int{0, 0, 0, 0, 0}
	base := func(seed int64) ml.Classifier { return &ml.ConstantClassifier{} }
	e := New(base, Config{Members: 3, Seed: 14})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := e.PredictProba([]float64{1}); p != 0 {
		t.Fatalf("all-negative data should predict 0, got %v", p)
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	X, y := blobs(100, 100, 15)
	e1 := New(treeFactory(4), Config{Members: 8, Seed: 16})
	e2 := New(treeFactory(4), Config{Members: 8, Seed: 16})
	if err := e1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := e2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if e1.PredictProba(X[i]) != e2.PredictProba(X[i]) {
			t.Fatal("same seed must give identical ensembles")
		}
	}
}

func TestEnsembleErrors(t *testing.T) {
	e := New(treeFactory(3), Config{Members: 2})
	if err := e.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfitted predict")
		}
	}()
	e.PredictProba([]float64{1})
}

func TestMemberPredictions(t *testing.T) {
	X, y := blobs(60, 60, 17)
	e := New(treeFactory(4), Config{Members: 6, Seed: 18})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	preds := e.MemberPredictions(X[0])
	if len(preds) != 6 {
		t.Fatalf("member predictions = %d want 6", len(preds))
	}
	var mean float64
	for _, p := range preds {
		mean += p
	}
	mean /= 6
	if math.Abs(mean-e.PredictProba(X[0])) > 1e-12 {
		t.Fatal("PredictProba must equal mean of member predictions")
	}
}
