package bagging

import (
	"testing"

	"paws/internal/rng"
)

// TestBalancedBaggingCalibrated checks the undersampling prior correction:
// with 1:50 imbalance, a balanced-bagged forest must not predict ~0.5 in
// background regions.
func TestBalancedBaggingCalibrated(t *testing.T) {
	r := rng.New(3)
	var X [][]float64
	var y []int
	for i := 0; i < 1000; i++ {
		X = append(X, []float64{r.Normal(0, 1), r.Normal(0, 1)})
		y = append(y, 0)
	}
	for i := 0; i < 20; i++ {
		X = append(X, []float64{r.Normal(4, 0.5), r.Normal(4, 0.5)})
		y = append(y, 1)
	}
	e := New(treeFactory(4), Config{Members: 15, Balanced: true, Seed: 4})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pNeg := e.PredictProba([]float64{0, 0})
	if pNeg > 0.2 {
		t.Fatalf("background probability %v too high for 2%% base rate", pNeg)
	}
	pPos := e.PredictProba([]float64{4, 4})
	if pPos <= pNeg {
		t.Fatal("ranking destroyed by calibration")
	}
	// Member predictions must be calibrated consistently with the mean.
	preds := e.MemberPredictions([]float64{0, 0})
	var mean float64
	for _, p := range preds {
		mean += p
	}
	mean /= float64(len(preds))
	if diff := mean - pNeg; diff > 1e-12 || diff < -1e-12 {
		t.Fatal("MemberPredictions inconsistent with PredictProba")
	}
}

// TestPlainBaggingUncalibrated: without Balanced, no correction is applied.
func TestPlainBaggingNoCorrection(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 1, 1}
	e := New(treeFactory(2), Config{Members: 5, Seed: 5})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e.oddsInflation != 1 {
		t.Fatalf("plain bagging inflation = %v want 1", e.oddsInflation)
	}
}
