package bagging

import (
	"testing"

	"paws/internal/ml"
	"paws/internal/ml/gp"
	"paws/internal/ml/tree"
	"paws/internal/rng"
	"paws/internal/stats"
)

func synthBinary(n int, seed int64) (X [][]float64, y []int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		X = append(X, []float64{a, b, r.Float64()})
		if r.Bernoulli(stats.Logistic(3*a - 3*b)) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return X, y
}

// TestFitParallelMatchesSequential asserts that the worker count does not
// change a fitted ensemble's predictions: bags and member seeds are derived
// before fan-out, so Workers=4 must reproduce Workers=1 exactly.
func TestFitParallelMatchesSequential(t *testing.T) {
	X, y := synthBinary(220, 5)
	factories := map[string]ml.Factory{
		"tree": func(s int64) ml.Classifier {
			return tree.New(tree.Config{MaxDepth: 5, MinLeaf: 2, MaxFeatures: 2, Seed: s})
		},
		"gp": func(s int64) ml.Classifier {
			return gp.New(gp.Config{MaxTrain: 50, Seed: s})
		},
	}
	for name, base := range factories {
		t.Run(name, func(t *testing.T) {
			fit := func(workers int) *Ensemble {
				e := New(base, Config{Members: 6, Balanced: true, Seed: 11, Workers: workers})
				if err := e.Fit(X, y); err != nil {
					t.Fatal(err)
				}
				return e
			}
			seq, par4 := fit(1), fit(4)
			for i, x := range X[:50] {
				if a, b := seq.PredictProba(x), par4.PredictProba(x); a != b {
					t.Fatalf("point %d: sequential %v != parallel %v", i, a, b)
				}
				ap, av := seq.PredictWithVariance(x)
				bp, bv := par4.PredictWithVariance(x)
				if ap != bp || av != bv {
					t.Fatalf("point %d: variance path diverged", i)
				}
			}
		})
	}
}

// TestBatchMatchesPointwise asserts the ensemble batch predictors reproduce
// the pointwise floats bit for bit, including the intrinsic-variance path.
func TestBatchMatchesPointwise(t *testing.T) {
	X, y := synthBinary(180, 7)
	e := New(func(s int64) ml.Classifier {
		return gp.New(gp.Config{MaxTrain: 40, Seed: s})
	}, Config{Members: 4, Seed: 3, Workers: 2})
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Q := X[:60]
	probs := e.PredictProbaBatch(Q)
	ps, vs := e.PredictWithVarianceBatch(Q)
	for i, q := range Q {
		if probs[i] != e.PredictProba(q) {
			t.Fatalf("point %d: proba batch mismatch", i)
		}
		p, v := e.PredictWithVariance(q)
		if ps[i] != p || vs[i] != v {
			t.Fatalf("point %d: batch (%v, %v) != pointwise (%v, %v)", i, ps[i], vs[i], p, v)
		}
	}
}
