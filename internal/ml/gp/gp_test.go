package gp

import (
	"math"
	"testing"

	"paws/internal/rng"
	"paws/internal/stats"
)

func blobs(nNeg, nPos int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	var X [][]float64
	var y []int
	for i := 0; i < nNeg; i++ {
		X = append(X, []float64{r.Normal(-1.5, 0.8), r.Normal(-1.5, 0.8)})
		y = append(y, 0)
	}
	for i := 0; i < nPos; i++ {
		X = append(X, []float64{r.Normal(1.5, 0.8), r.Normal(1.5, 0.8)})
		y = append(y, 1)
	}
	return X, y
}

func TestGPLearnsBlobs(t *testing.T) {
	X, y := blobs(80, 80, 1)
	g := New(Config{Seed: 2})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := blobs(60, 60, 3)
	scores := make([]float64, len(Xt))
	for i, x := range Xt {
		scores[i] = g.PredictProba(x)
	}
	if auc := stats.AUC(yt, scores); auc < 0.95 {
		t.Fatalf("blobs AUC = %v", auc)
	}
}

func TestGPProbabilityDirection(t *testing.T) {
	X, y := blobs(60, 60, 4)
	g := New(Config{Seed: 5})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pPos := g.PredictProba([]float64{1.5, 1.5})
	pNeg := g.PredictProba([]float64{-1.5, -1.5})
	if pPos < 0.8 || pNeg > 0.2 {
		t.Fatalf("cluster centers: pos %v neg %v", pPos, pNeg)
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	X, y := blobs(60, 60, 6)
	g := New(Config{Seed: 7})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_, vNear := g.PredictWithVariance([]float64{1.5, 1.5})
	_, vFar := g.PredictWithVariance([]float64{25, -30})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
	// Far from data the latent variance approaches the prior signal variance.
	if vFar < 0.9*g.cfg.SignalVar {
		t.Fatalf("far-field variance %v should approach prior %v", vFar, g.cfg.SignalVar)
	}
}

func TestGPFarFieldPredictionNearBaseRate(t *testing.T) {
	X, y := blobs(60, 60, 8)
	g := New(Config{Seed: 9})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With a zero-mean prior, predictions far from any data revert toward 0.5.
	p := g.PredictProba([]float64{40, 40})
	if math.Abs(p-0.5) > 0.15 {
		t.Fatalf("far-field prediction %v should revert toward 0.5", p)
	}
}

func TestGPVarianceNonNegativeEverywhere(t *testing.T) {
	X, y := blobs(40, 40, 10)
	g := New(Config{Seed: 11})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	for i := 0; i < 200; i++ {
		x := []float64{r.Normal(0, 10), r.Normal(0, 10)}
		p, v := g.PredictWithVariance(x)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("variance %v at %v", v, x)
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v", p)
		}
	}
}

func TestGPSubsampleKeepsPositives(t *testing.T) {
	// 500 negatives, 20 positives, cap 100: every positive must survive.
	y := make([]int, 520)
	for i := 500; i < 520; i++ {
		y[i] = 1
	}
	idx := subsample(y, 100, rng.New(13))
	if len(idx) != 100 {
		t.Fatalf("subsample size = %d want 100", len(idx))
	}
	pos := 0
	for _, i := range idx {
		if y[i] == 1 {
			pos++
		}
	}
	if pos != 20 {
		t.Fatalf("subsample kept %d of 20 positives", pos)
	}
}

func TestGPSubsampleSmallData(t *testing.T) {
	y := []int{0, 1, 0}
	idx := subsample(y, 100, rng.New(14))
	if len(idx) != 3 {
		t.Fatal("small data should be used whole")
	}
}

func TestGPMaxTrainRespected(t *testing.T) {
	X, y := blobs(300, 300, 15)
	g := New(Config{MaxTrain: 80, Seed: 16})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if g.TrainSize() != 80 {
		t.Fatalf("train size = %d want 80", g.TrainSize())
	}
}

func TestGPMedianHeuristic(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	ls := medianHeuristic(X)
	// Pairwise distances: 1 (×4), √2 (×2) → median ≈ 1.
	if ls < 0.5 || ls > 1.5 {
		t.Fatalf("median heuristic = %v", ls)
	}
	if medianHeuristic([][]float64{{1}}) != 1 {
		t.Fatal("single point should fall back to 1")
	}
	// Identical points: fall back to 1 rather than 0.
	if medianHeuristic([][]float64{{2, 2}, {2, 2}, {2, 2}}) != 1 {
		t.Fatal("zero median distance should fall back to 1")
	}
}

func TestGPDeterministic(t *testing.T) {
	X, y := blobs(50, 50, 17)
	g1 := New(Config{Seed: 18})
	g2 := New(Config{Seed: 18})
	if err := g1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := g2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p1, v1 := g1.PredictWithVariance(X[i])
		p2, v2 := g2.PredictWithVariance(X[i])
		if p1 != p2 || v1 != v2 {
			t.Fatal("same seed must give identical GPs")
		}
	}
}

func TestGPErrors(t *testing.T) {
	g := New(Config{})
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfitted predict")
		}
	}()
	g.PredictProba([]float64{1})
}

func TestGPLatentAt(t *testing.T) {
	X, y := blobs(40, 40, 19)
	g := New(Config{Seed: 20})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mPos, _ := g.LatentAt([]float64{1.5, 1.5})
	mNeg, _ := g.LatentAt([]float64{-1.5, -1.5})
	if mPos <= 0 || mNeg >= 0 {
		t.Fatalf("latent means: pos %v neg %v", mPos, mNeg)
	}
}

// TestGPUncertaintyNotCorrelatedWithPrediction is the package-level
// precursor to Fig. 7: GP variance is driven by data density, not by the
// predicted probability, so |Pearson(p, var)| should be well below the
// near-perfect correlation bagged trees exhibit.
func TestGPUncertaintyNotPerfectlyCorrelated(t *testing.T) {
	X, y := blobs(80, 80, 21)
	g := New(Config{Seed: 22})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	var ps, vs []float64
	for i := 0; i < 300; i++ {
		x := []float64{r.Normal(0, 3), r.Normal(0, 3)}
		p, v := g.PredictWithVariance(x)
		ps = append(ps, p)
		vs = append(vs, v)
	}
	if c := math.Abs(stats.Pearson(ps, vs)); c > 0.9 {
		t.Fatalf("GP prediction-variance correlation %v suspiciously high", c)
	}
}
