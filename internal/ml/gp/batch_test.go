package gp

import (
	"testing"

	"paws/internal/rng"
	"paws/internal/stats"
)

// TestPredictBatchMatchesPointwise asserts the batched GP prediction path
// (single back-substitution pass per batch) returns exactly the floats the
// per-point path does.
func TestPredictBatchMatchesPointwise(t *testing.T) {
	r := rng.New(9)
	var X [][]float64
	var y []int
	for i := 0; i < 120; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		X = append(X, []float64{a, b})
		if r.Bernoulli(stats.Logistic(2*a - b)) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	g := New(Config{MaxTrain: 80, Seed: 4})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var Q [][]float64
	for i := 0; i < 40; i++ {
		Q = append(Q, []float64{r.NormFloat64(), r.NormFloat64()})
	}
	ps, vs := g.PredictWithVarianceBatch(Q)
	for i, q := range Q {
		p, v := g.PredictWithVariance(q)
		if ps[i] != p || vs[i] != v {
			t.Fatalf("point %d: batch (%v, %v) != pointwise (%v, %v)", i, ps[i], vs[i], p, v)
		}
	}
	probs := g.PredictProbaBatch(Q)
	for i, q := range Q {
		if probs[i] != g.PredictProba(q) {
			t.Fatalf("point %d: proba batch mismatch", i)
		}
	}
}
