// Package gp implements a binary Gaussian-process classifier with an RBF
// kernel and the Laplace approximation to the posterior (Rasmussen &
// Williams, "Gaussian Processes for Machine Learning", Algorithms 3.1/3.2).
//
// Unlike the tree and SVM learners, the GP exposes an intrinsic predictive
// variance driven by the density of training data around the query point —
// the uncertainty signal the paper exploits for robust patrol planning
// (Sections IV–VI). Training cost is O(n³), so the PAWS pipeline always bags
// GPs over capped subsamples (Config.MaxTrain).
package gp

import (
	"math"
	"sync"

	"paws/internal/mat"
	"paws/internal/ml"
	"paws/internal/rng"
	"paws/internal/stats"
)

// Config controls the GP classifier.
type Config struct {
	// LengthScale is the RBF length scale; 0 selects the median heuristic
	// (median pairwise distance over a subsample of training points).
	LengthScale float64
	// SignalVar is the kernel signal variance σ_f² (default 1).
	SignalVar float64
	// MaxTrain caps the training subsample size (default 200). The subsample
	// keeps every positive when possible — the imbalance-aware choice.
	MaxTrain int
	// MaxNewton caps Laplace mode-finding iterations (default 30).
	MaxNewton int
	// Jitter is the diagonal stabilizer added to the kernel (default 1e-6).
	Jitter float64
	// Seed drives subsampling.
	Seed int64
}

// GP is a fitted Gaussian-process classifier.
type GP struct {
	cfg Config
	std *ml.Standardizer

	xf ml.Matrix // standardized training subsample, flat row-major
	ls float64   // resolved length scale

	// Laplace state (R&W notation).
	fhat  []float64 // posterior mode
	grad  []float64 // ∇ log p(y|f̂)
	wSqrt []float64 // W^{1/2} diagonal
	chB   *mat.Cholesky

	// oddsInflation is how much the class-balanced subsample inflated the
	// odds relative to the full training set; predictions divide it back
	// out (the standard undersampling prior correction), so probabilities
	// stay calibrated to the true base rate.
	oddsInflation float64

	fitted bool
}

// New creates an untrained GP classifier.
func New(cfg Config) *GP {
	if cfg.SignalVar <= 0 {
		cfg.SignalVar = 1
	}
	if cfg.MaxTrain <= 0 {
		cfg.MaxTrain = 200
	}
	if cfg.MaxNewton <= 0 {
		cfg.MaxNewton = 30
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 1e-6
	}
	return &GP{cfg: cfg}
}

// kernel is the RBF kernel on standardized inputs.
func (g *GP) kernel(a, b []float64) float64 {
	b = b[:len(a)] // hoist the bounds check out of the distance loop
	var d2 float64
	for j := range a {
		d := a[j] - b[j]
		d2 += d * d
	}
	return g.cfg.SignalVar * math.Exp(-d2/(2*g.ls*g.ls))
}

// Fit subsamples, standardizes, resolves the length scale, and runs Newton
// iterations to the Laplace mode.
func (g *GP) Fit(X [][]float64, y []int) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	idx := subsample(y, g.cfg.MaxTrain, rng.New(g.cfg.Seed))
	sx, sy := ml.Subset(X, y, idx)
	g.oddsInflation = oddsInflation(y, sy)
	std, err := ml.FitStandardizer(sx)
	if err != nil {
		return err
	}
	g.std = std
	Xs := std.TransformAll(sx)
	g.xf = ml.MatrixFromRows(Xs)
	g.ls = g.cfg.LengthScale
	if g.ls <= 0 {
		g.ls = medianHeuristic(Xs)
	}

	n := g.xf.Rows
	K := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel(g.xf.Row(i), g.xf.Row(j))
			if i == j {
				v += g.cfg.Jitter
			}
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
	}

	// Newton iterations for the posterior mode (R&W Algorithm 3.1), with the
	// logistic likelihood: for y ∈ {0,1}, ∇ log p = y − σ(f), W = σ(1−σ).
	f := make([]float64, n)
	grad := make([]float64, n)
	w := make([]float64, n)
	wsq := make([]float64, n)
	var chB *mat.Cholesky
	prevObj := math.Inf(-1)
	for iter := 0; iter < g.cfg.MaxNewton; iter++ {
		for i := 0; i < n; i++ {
			p := stats.Logistic(f[i])
			grad[i] = float64(sy[i]) - p
			w[i] = math.Max(p*(1-p), 1e-10)
			wsq[i] = math.Sqrt(w[i])
		}
		// B = I + W^{1/2} K W^{1/2}
		B := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := wsq[i] * K.At(i, j) * wsq[j]
				if i == j {
					v += 1
				}
				B.Set(i, j, v)
			}
		}
		var err error
		chB, err = mat.NewCholeskyJitter(B, 1e-10, 8)
		if err != nil {
			return err
		}
		// b = W f + grad;  a = b − W^{1/2} B⁻¹ W^{1/2} K b;  f = K a.
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = w[i]*f[i] + grad[i]
		}
		kb := K.MulVec(b)
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			rhs[i] = wsq[i] * kb[i]
		}
		sol := chB.SolveVec(rhs)
		a := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = b[i] - wsq[i]*sol[i]
		}
		f = K.MulVec(a)
		// Objective: log p(y|f) − ½ aᵀf (monotone under Newton; used for
		// convergence detection).
		obj := -0.5 * mat.Dot(a, f)
		for i := 0; i < n; i++ {
			yi := 2*float64(sy[i]) - 1
			obj += -math.Log1p(math.Exp(-yi * f[i]))
		}
		if math.Abs(obj-prevObj) < 1e-8*(1+math.Abs(obj)) {
			break
		}
		prevObj = obj
	}
	// Final state at the mode.
	for i := 0; i < n; i++ {
		p := stats.Logistic(f[i])
		grad[i] = float64(sy[i]) - p
		w[i] = math.Max(p*(1-p), 1e-10)
		wsq[i] = math.Sqrt(w[i])
	}
	B := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := wsq[i] * K.At(i, j) * wsq[j]
			if i == j {
				v += 1
			}
			B.Set(i, j, v)
		}
	}
	chB, errB := mat.NewCholeskyJitter(B, 1e-10, 8)
	if errB != nil {
		return errB
	}
	g.fhat = f
	g.grad = grad
	g.wSqrt = wsq
	g.chB = chB
	g.fitted = true
	return nil
}

// latent returns the predictive latent mean and variance at x (R&W
// Algorithm 3.2).
func (g *GP) latent(x []float64) (mean, variance float64) {
	z := g.std.Transform(x)
	n := g.xf.Rows
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kernel(z, g.xf.Row(i))
	}
	mean = mat.Dot(ks, g.grad)
	// v = L \ (W^{1/2} k*); Var = k** − vᵀv.
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = g.wSqrt[i] * ks[i]
	}
	v := g.chB.SolveLower(rhs)
	variance = g.cfg.SignalVar + g.cfg.Jitter - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// PredictProba returns the class probability using the probit
// approximation to the logistic-Gaussian integral:
// σ(μ/√(1+πσ²/8)).
func (g *GP) PredictProba(x []float64) float64 {
	p, _ := g.PredictWithVariance(x)
	return p
}

// PredictWithVariance returns the class probability and the latent
// predictive variance — the model-intrinsic uncertainty used by GPB-iW.
func (g *GP) PredictWithVariance(x []float64) (float64, float64) {
	if !g.fitted {
		panic(ml.ErrNotFitted)
	}
	mean, variance := g.latent(x)
	p := stats.Logistic(mean / math.Sqrt(1+math.Pi*variance/8))
	return correctOdds(p, g.oddsInflation), variance
}

// PredictProbaBatch returns the class probability for every row of X.
func (g *GP) PredictProbaBatch(X [][]float64) []float64 {
	p, _ := g.PredictWithVarianceBatch(X)
	return p
}

// PredictWithVarianceBatch is the [][]float64 compatibility wrapper around
// PredictWithVarianceFlat: rows are copied into a flat matrix (a storage
// change only) and scored on the columnar path.
func (g *GP) PredictWithVarianceBatch(X [][]float64) ([]float64, []float64) {
	return g.PredictWithVarianceFlat(ml.MatrixFromRows(X))
}

// PredictProbaFlat returns the class probability for every row of a flat
// matrix.
func (g *GP) PredictProbaFlat(X ml.Matrix) []float64 {
	p, _ := g.PredictWithVarianceFlat(X)
	return p
}

// PredictWithVarianceFlat scores a whole flat matrix at once — the columnar
// hot path of the repo. The kernel vectors of all query points are assembled
// into one backing buffer (which then becomes the W^{1/2}-weighted RHS block
// in place), and a single batched forward substitution
// (mat.Cholesky.SolveLowerFlat) resolves every predictive variance in one
// unrolled pass over L — instead of re-walking the factor per point as the
// pointwise path does. One standardization scratch vector serves every row.
// The arithmetic per point is identical, so the returned floats match
// PredictWithVariance bit for bit.
func (g *GP) PredictWithVarianceFlat(X ml.Matrix) ([]float64, []float64) {
	if !g.fitted {
		panic(ml.ErrNotFitted)
	}
	m := X.Rows
	n := g.xf.Rows
	// One pooled scratch block serves the RHS matrix, the latent means and
	// the standardization buffer: map sweeps call this method thousands of
	// times per second, and pooling keeps those calls allocation-free. Every
	// scratch entry is overwritten before it is read, so reuse cannot change
	// results.
	buf := getScratch(m*n + m + X.Cols)
	defer putScratch(buf)
	rhs := buf[: m*n : m*n]
	means := buf[m*n : m*n+m : m*n+m]
	z := buf[m*n+m:]
	// The kernel loop is inlined against the flat training matrix: same
	// expressions as kernel() (difference loop, then SignalVar·exp(−d²/denom)
	// with denom computed identically), walking g.xf.Data linearly.
	sv := g.cfg.SignalVar
	denom := 2 * g.ls * g.ls
	xd := g.xf.Data
	k := g.xf.Cols
	for r := 0; r < m; r++ {
		g.std.TransformInto(X.Row(r), z)
		ks := rhs[r*n : (r+1)*n]
		base := 0
		for i := 0; i < n; i++ {
			xi := xd[base : base+k]
			base += k
			var d2 float64
			for j, zj := range z {
				d := zj - xi[j]
				d2 += d * d
			}
			ks[i] = sv * math.Exp(-d2/denom)
		}
		means[r] = mat.Dot(ks, g.grad)
		// Scale in place: ks is only needed as the W^{1/2}-weighted RHS now.
		for i := 0; i < n; i++ {
			ks[i] *= g.wSqrt[i]
		}
	}
	// v_r = L \ (W^{1/2} k*_r), solved in place for all rows at once.
	g.chB.SolveLowerFlat(rhs, m)
	ps := make([]float64, m)
	vs := make([]float64, m)
	for r := 0; r < m; r++ {
		v := rhs[r*n : (r+1)*n]
		variance := g.cfg.SignalVar + g.cfg.Jitter - mat.Dot(v, v)
		if variance < 0 {
			variance = 0
		}
		p := stats.Logistic(means[r] / math.Sqrt(1+math.Pi*variance/8))
		ps[r] = correctOdds(p, g.oddsInflation)
		vs[r] = variance
	}
	return ps, vs
}

// scratchPool recycles the flat batch path's scratch blocks. Buffers are
// handed out with stale contents; callers must overwrite before reading.
var scratchPool sync.Pool

func getScratch(n int) []float64 {
	if v := scratchPool.Get(); v != nil {
		s := *(v.(*[]float64))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putScratch(s []float64) { scratchPool.Put(&s) }

// oddsInflation measures how the subsample shifted class odds versus the
// full set: (π_sub/(1−π_sub)) / (π_full/(1−π_full)). 1 when either set is
// single-class (no meaningful correction).
func oddsInflation(full, sub []int) float64 {
	fn, fp := ml.ClassCounts(full)
	sn, sp := ml.ClassCounts(sub)
	if fn == 0 || fp == 0 || sn == 0 || sp == 0 {
		return 1
	}
	return (float64(sp) / float64(sn)) / (float64(fp) / float64(fn))
}

// correctOdds divides the inflation back out of a predicted probability.
func correctOdds(p, inflation float64) float64 {
	if inflation == 1 || inflation <= 0 {
		return p
	}
	odds := p / (1 - p + 1e-12) / inflation
	return odds / (1 + odds)
}

// LatentAt exposes the latent mean/variance for diagnostics and tests.
func (g *GP) LatentAt(x []float64) (mean, variance float64) {
	if !g.fitted {
		panic(ml.ErrNotFitted)
	}
	return g.latent(x)
}

// TrainSize returns the size of the training subsample actually used.
func (g *GP) TrainSize() int { return g.xf.Rows }

// LengthScale returns the resolved RBF length scale.
func (g *GP) LengthScale() float64 { return g.ls }

// subsample selects at most maxN indices. Positives are kept whole when they
// fit in half the budget; when they are abundant, the subsample is balanced
// half/half so no class ever disappears (an all-positive GP would be
// degenerate). Remaining budget is filled with random negatives.
func subsample(y []int, maxN int, r *rng.RNG) []int {
	n := len(y)
	if n <= maxN {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var pos, neg []int
	for i, v := range y {
		if v == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		// Single-class data: plain subsample.
		return r.SampleWithoutReplacement(n, maxN)
	}
	posTake := len(pos)
	if posTake > maxN/2 {
		posTake = maxN / 2
	}
	negTake := maxN - posTake
	if negTake > len(neg) {
		negTake = len(neg)
		posTake = maxN - negTake
		if posTake > len(pos) {
			posTake = len(pos)
		}
	}
	idx := make([]int, 0, posTake+negTake)
	for _, j := range r.SampleWithoutReplacement(len(pos), posTake) {
		idx = append(idx, pos[j])
	}
	for _, j := range r.SampleWithoutReplacement(len(neg), negTake) {
		idx = append(idx, neg[j])
	}
	return idx
}

// medianHeuristic returns the median pairwise Euclidean distance over a
// capped number of point pairs (a standard kernel-bandwidth heuristic).
func medianHeuristic(X [][]float64) float64 {
	n := len(X)
	if n < 2 {
		return 1
	}
	var dists []float64
	stride := 1
	// Cap at ~2e5 pairs.
	for n*(n-1)/2/stride > 200000 {
		stride++
	}
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j += stride {
			var d2 float64
			for k := range X[i] {
				d := X[i][k] - X[j][k]
				d2 += d * d
			}
			dists = append(dists, math.Sqrt(d2))
			count++
		}
	}
	if len(dists) == 0 {
		return 1
	}
	m := stats.Percentile(dists, 50)
	if m <= 1e-9 {
		return 1
	}
	return m
}
