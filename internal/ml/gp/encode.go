package gp

import (
	"bytes"
	"encoding/gob"
	"errors"

	"paws/internal/mat"
	"paws/internal/ml"
)

func init() {
	// Stable name for encoding *GP behind the ml.Classifier interface.
	gob.RegisterName("paws/internal/ml/gp.GP", &GP{})
}

// gpState is the exported gob image of a fitted GP. The Laplace state is
// stored verbatim (posterior mode, gradient, W^{1/2} and the lower Cholesky
// factor of B), so a decoded model runs the exact same prediction arithmetic
// as the original — no refactorization, no refit.
type gpState struct {
	Cfg           Config
	Std           *ml.Standardizer
	X             [][]float64
	LS            float64
	Fhat          []float64
	Grad          []float64
	WSqrt         []float64
	L             *mat.Dense // lower Cholesky factor of B
	OddsInflation float64
	Fitted        bool
}

// GobEncode implements gob.GobEncoder.
func (g *GP) GobEncode() ([]byte, error) {
	st := gpState{
		Cfg: g.cfg, Std: g.std, X: g.xf.ToRows(), LS: g.ls,
		Fhat: g.fhat, Grad: g.grad, WSqrt: g.wSqrt,
		OddsInflation: g.oddsInflation, Fitted: g.fitted,
	}
	if g.chB != nil {
		st.L = g.chB.L()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (g *GP) GobDecode(b []byte) error {
	var st gpState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	g.cfg, g.std, g.ls = st.Cfg, st.Std, st.LS
	g.xf = ml.MatrixFromRows(st.X)
	g.fhat, g.grad, g.wSqrt = st.Fhat, st.Grad, st.WSqrt
	g.oddsInflation, g.fitted = st.OddsInflation, st.Fitted
	g.chB = nil
	if st.Fitted {
		if st.L == nil || st.Std == nil || len(st.X) != len(st.Grad) {
			return errors.New("gp: corrupt encoding: fitted model missing Laplace state")
		}
		ch, err := mat.CholeskyFromFactor(st.L)
		if err != nil {
			return err
		}
		g.chB = ch
	}
	return nil
}
