package gp

import (
	"math"
	"testing"

	"paws/internal/rng"
)

func TestOddsInflation(t *testing.T) {
	full := make([]int, 100)
	for i := 0; i < 10; i++ {
		full[i] = 1 // 10% positive: odds 1/9
	}
	sub := []int{1, 1, 1, 0, 0, 0} // 50%: odds 1
	if got := oddsInflation(full, sub); math.Abs(got-9) > 1e-9 {
		t.Fatalf("inflation = %v want 9", got)
	}
	// No inflation when distributions match.
	if got := oddsInflation(full, full); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identity inflation = %v", got)
	}
	// Single-class edge cases fall back to 1.
	if oddsInflation([]int{0, 0}, sub) != 1 || oddsInflation(full, []int{1, 1}) != 1 {
		t.Fatal("single-class should give inflation 1")
	}
}

func TestCorrectOdds(t *testing.T) {
	// Inflation 9 with p=0.5 → true p = (0.5/0.5)/9 odds = 1/9 → p = 0.1.
	if got := correctOdds(0.5, 9); math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("corrected = %v want 0.1", got)
	}
	// Identity cases.
	if correctOdds(0.3, 1) != 0.3 {
		t.Fatal("inflation 1 must be identity")
	}
	if correctOdds(0.3, 0) != 0.3 {
		t.Fatal("non-positive inflation must be identity")
	}
	// Monotone: correction must preserve ranking.
	prev := -1.0
	for p := 0.05; p < 1; p += 0.05 {
		c := correctOdds(p, 5)
		if c <= prev {
			t.Fatal("correction not monotone")
		}
		prev = c
	}
}

// TestGPCalibrationUnderImbalance checks that predictions on imbalanced data
// track the base rate rather than hovering near 0.5 — the property that
// restores meaningful planner utilities.
func TestGPCalibrationUnderImbalance(t *testing.T) {
	r := rng.New(1)
	var X [][]float64
	var y []int
	// 900 background negatives and 45 positives in a cluster: ~5% base rate.
	for i := 0; i < 900; i++ {
		X = append(X, []float64{r.Normal(0, 1), r.Normal(0, 1)})
		y = append(y, 0)
	}
	for i := 0; i < 45; i++ {
		X = append(X, []float64{r.Normal(4, 0.5), r.Normal(4, 0.5)})
		y = append(y, 1)
	}
	g := New(Config{MaxTrain: 120, Seed: 2})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Deep in the negative background, probability should be near the base
	// rate (below 15%), not near 0.5 as an uncorrected balanced GP gives.
	pNeg := g.PredictProba([]float64{0, 0})
	if pNeg > 0.15 {
		t.Fatalf("background probability %v too high (calibration failed)", pNeg)
	}
	// In the positive cluster the probability must stay well above the base
	// rate. (The global prior correction is deliberately conservative, so it
	// under-shoots in pure-positive regions; ranking is what matters.)
	pPos := g.PredictProba([]float64{4, 4})
	if pPos < 0.3 {
		t.Fatalf("cluster probability %v too low", pPos)
	}
	if pPos <= pNeg {
		t.Fatal("ranking destroyed by calibration")
	}
}
