package svm

import (
	"math"
	"testing"

	"paws/internal/rng"
	"paws/internal/stats"
)

func linearData(n int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := r.Normal(0, 2), r.Normal(0, 2)
		X[i] = []float64{a, b}
		// True boundary: a + 2b > 1, with 5% label noise.
		if a+2*b > 1 {
			y[i] = 1
		}
		if r.Bernoulli(0.05) {
			y[i] = 1 - y[i]
		}
	}
	return X, y
}

func TestSVMLearnsLinearBoundary(t *testing.T) {
	X, y := linearData(600, 1)
	s := New(Config{Epochs: 30, Seed: 2})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearData(300, 3)
	scores := make([]float64, len(Xt))
	for i, x := range Xt {
		scores[i] = s.PredictProba(x)
	}
	if auc := stats.AUC(yt, scores); auc < 0.9 {
		t.Fatalf("linear AUC = %v want > 0.9", auc)
	}
}

func TestSVMProbabilitiesCalibratedDirection(t *testing.T) {
	X, y := linearData(600, 4)
	s := New(Config{Epochs: 30, Seed: 5})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pHigh := s.PredictProba([]float64{3, 3})  // deep positive side
	pLow := s.PredictProba([]float64{-3, -3}) // deep negative side
	if pHigh <= pLow {
		t.Fatalf("calibration direction wrong: %v <= %v", pHigh, pLow)
	}
	if pHigh < 0.7 || pLow > 0.3 {
		t.Fatalf("calibration too flat: %v / %v", pHigh, pLow)
	}
}

func TestSVMProbaInUnitInterval(t *testing.T) {
	X, y := linearData(200, 6)
	s := New(Config{Seed: 7})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 100; i++ {
		p := s.PredictProba([]float64{r.Normal(0, 5), r.Normal(0, 5)})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v", p)
		}
	}
}

func TestSVMClassWeightedImbalance(t *testing.T) {
	// 1:40 imbalance; class weighting should keep positive-side scores higher.
	r := rng.New(9)
	var X [][]float64
	var y []int
	for i := 0; i < 800; i++ {
		X = append(X, []float64{r.Normal(0, 1), r.Normal(0, 1)})
		y = append(y, 0)
	}
	for i := 0; i < 20; i++ {
		X = append(X, []float64{r.Normal(2.5, 0.8), r.Normal(2.5, 0.8)})
		y = append(y, 1)
	}
	s := New(Config{Epochs: 40, Seed: 10, ClassWeighted: true})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if s.Decision([]float64{2.5, 2.5}) <= s.Decision([]float64{0, 0}) {
		t.Fatal("decision should rank positive cluster above negative")
	}
}

func TestSVMDeterministic(t *testing.T) {
	X, y := linearData(200, 11)
	s1 := New(Config{Seed: 12})
	s2 := New(Config{Seed: 12})
	if err := s1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := s2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if s1.PredictProba(X[i]) != s2.PredictProba(X[i]) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestSVMErrors(t *testing.T) {
	s := New(Config{})
	if err := s.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfitted predict")
		}
	}()
	s.PredictProba([]float64{1})
}

func TestSVMWeightsExposed(t *testing.T) {
	X, y := linearData(300, 13)
	s := New(Config{Seed: 14})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w := s.Weights()
	if len(w) != 2 {
		t.Fatalf("weights = %v", w)
	}
	// Both features push positive (boundary a + 2b > 1).
	if w[0] <= 0 || w[1] <= 0 {
		t.Fatalf("expected positive weights, got %v", w)
	}
	if w[1] < w[0] {
		t.Fatalf("feature 2 should dominate: %v", w)
	}
}
