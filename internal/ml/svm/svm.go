// Package svm implements a linear support-vector machine trained with the
// Pegasos primal subgradient method, calibrated to probabilities with Platt
// scaling. Bagged ensembles of these models reproduce the paper's SVB weak
// learner (Table II).
package svm

import (
	"math"

	"paws/internal/mat"
	"paws/internal/ml"
	"paws/internal/rng"
	"paws/internal/stats"
)

// Config controls training.
type Config struct {
	// Lambda is the L2 regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed drives sampling order.
	Seed int64
	// ClassWeighted scales the hinge loss of the minority class up by the
	// imbalance ratio, which keeps the SVM from collapsing to the majority
	// class under heavy imbalance.
	ClassWeighted bool
}

// SVM is a linear classifier with Platt-calibrated probabilities.
type SVM struct {
	cfg    Config
	std    *ml.Standardizer
	w      []float64
	b      float64
	plattA float64
	plattB float64
	fitted bool
}

// New creates an untrained SVM.
func New(cfg Config) *SVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	return &SVM{cfg: cfg}
}

// Fit trains with Pegasos and then fits the Platt sigmoid on the training
// margins.
func (s *SVM) Fit(X [][]float64, y []int) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	std, err := ml.FitStandardizer(X)
	if err != nil {
		return err
	}
	s.std = std
	Z := std.TransformAll(X)
	k := len(Z[0])
	s.w = make([]float64, k)
	s.b = 0

	neg, pos := ml.ClassCounts(y)
	wPos, wNeg := 1.0, 1.0
	if s.cfg.ClassWeighted && pos > 0 && neg > 0 {
		wPos = float64(neg+pos) / (2 * float64(pos))
		wNeg = float64(neg+pos) / (2 * float64(neg))
	}

	r := rng.New(s.cfg.Seed)
	t := 0
	lam := s.cfg.Lambda
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		for _, i := range r.Perm(len(Z)) {
			t++
			eta := 1 / (lam * float64(t))
			yi := 2*float64(y[i]) - 1
			cw := wNeg
			if y[i] == 1 {
				cw = wPos
			}
			margin := yi * (mat.Dot(s.w, Z[i]) + s.b)
			// Regularization shrink.
			scale := 1 - eta*lam
			if scale < 0 {
				scale = 0
			}
			for j := range s.w {
				s.w[j] *= scale
			}
			if margin < 1 {
				step := eta * cw * yi
				for j := range s.w {
					s.w[j] += step * Z[i][j]
				}
				s.b += step
			}
		}
	}
	s.fitPlatt(Z, y)
	s.fitted = true
	return nil
}

// decision returns the raw margin for standardized input z.
func (s *SVM) decision(z []float64) float64 { return mat.Dot(s.w, z) + s.b }

// fitPlatt fits P(y=1|m) = σ(A·m + B) by Newton iterations on the
// regularized log loss (Platt 1999, with the Lin-Weng target smoothing).
func (s *SVM) fitPlatt(Z [][]float64, y []int) {
	n := len(Z)
	margins := make([]float64, n)
	for i, z := range Z {
		margins[i] = s.decision(z)
	}
	neg, pos := ml.ClassCounts(y)
	tPos := (float64(pos) + 1) / (float64(pos) + 2)
	tNeg := 1 / (float64(neg) + 2)
	targets := make([]float64, n)
	for i, v := range y {
		if v == 1 {
			targets[i] = tPos
		} else {
			targets[i] = tNeg
		}
	}
	a, b := 1.0, 0.0
	for iter := 0; iter < 50; iter++ {
		var g1, g2, h11, h12, h22 float64
		for i := 0; i < n; i++ {
			p := stats.Logistic(a*margins[i] + b)
			d := p - targets[i]
			w := p * (1 - p)
			g1 += d * margins[i]
			g2 += d
			h11 += w * margins[i] * margins[i]
			h12 += w * margins[i]
			h22 += w
		}
		h11 += 1e-9
		h22 += 1e-9
		det := h11*h22 - h12*h12
		if math.Abs(det) < 1e-18 {
			break
		}
		da := (h22*g1 - h12*g2) / det
		db := (h11*g2 - h12*g1) / det
		a -= da
		b -= db
		if math.Abs(da)+math.Abs(db) < 1e-10 {
			break
		}
	}
	s.plattA, s.plattB = a, b
}

// PredictProba returns the Platt-calibrated positive probability.
func (s *SVM) PredictProba(x []float64) float64 {
	if !s.fitted {
		panic(ml.ErrNotFitted)
	}
	z := s.std.Transform(x)
	return stats.Logistic(s.plattA*s.decision(z) + s.plattB)
}

// PredictProbaBatch scores every row of X, reusing one standardization
// buffer across the batch instead of allocating per point.
func (s *SVM) PredictProbaBatch(X [][]float64) []float64 {
	if !s.fitted {
		panic(ml.ErrNotFitted)
	}
	out := make([]float64, len(X))
	if len(X) == 0 {
		return out
	}
	z := make([]float64, len(X[0]))
	for i, x := range X {
		s.std.TransformInto(x, z)
		out[i] = stats.Logistic(s.plattA*s.decision(z) + s.plattB)
	}
	return out
}

// PredictProbaFlat scores every row of a flat matrix with
// PredictProbaBatch's one-buffer standardization — the columnar fast path.
func (s *SVM) PredictProbaFlat(X ml.Matrix) []float64 {
	if !s.fitted {
		panic(ml.ErrNotFitted)
	}
	out := make([]float64, X.Rows)
	if X.Rows == 0 {
		return out
	}
	z := make([]float64, X.Cols)
	for i := 0; i < X.Rows; i++ {
		s.std.TransformInto(X.Row(i), z)
		out[i] = stats.Logistic(s.plattA*s.decision(z) + s.plattB)
	}
	return out
}

// Decision returns the raw (uncalibrated) margin for x.
func (s *SVM) Decision(x []float64) float64 {
	if !s.fitted {
		panic(ml.ErrNotFitted)
	}
	return s.decision(s.std.Transform(x))
}

// Weights returns the learned weight vector (standardized space).
func (s *SVM) Weights() []float64 { return s.w }
