package svm

import (
	"bytes"
	"encoding/gob"
	"errors"

	"paws/internal/ml"
)

func init() {
	// Stable name for encoding *SVM behind the ml.Classifier interface.
	gob.RegisterName("paws/internal/ml/svm.SVM", &SVM{})
}

// svmState is the exported gob image of a fitted SVM.
type svmState struct {
	Cfg    Config
	Std    *ml.Standardizer
	W      []float64
	B      float64
	PlattA float64
	PlattB float64
	Fitted bool
}

// GobEncode implements gob.GobEncoder over the model's fitted state.
func (s *SVM) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(svmState{
		Cfg: s.cfg, Std: s.std, W: s.w, B: s.b,
		PlattA: s.plattA, PlattB: s.plattB, Fitted: s.fitted,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *SVM) GobDecode(b []byte) error {
	var st svmState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if st.Fitted && (st.Std == nil || len(st.W) == 0) {
		return errors.New("svm: corrupt encoding: fitted model without weights")
	}
	s.cfg, s.std, s.w, s.b = st.Cfg, st.Std, st.W, st.B
	s.plattA, s.plattB, s.fitted = st.PlattA, st.PlattB, st.Fitted
	return nil
}
