package logreg

import (
	"math"
	"testing"

	"paws/internal/rng"
	"paws/internal/stats"
)

func linearData(n int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := r.Normal(0, 2), r.Normal(0, 2)
		X[i] = []float64{a, b}
		if stats.Logistic(1.5*a-b+0.5) > r.Float64() {
			y[i] = 1
		}
	}
	return X, y
}

func TestLogRegLearnsLinearBoundary(t *testing.T) {
	X, y := linearData(800, 1)
	m := New(Config{})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearData(400, 2)
	scores := make([]float64, len(Xt))
	for i, x := range Xt {
		scores[i] = m.PredictProba(x)
	}
	if auc := stats.AUC(yt, scores); auc < 0.85 {
		t.Fatalf("AUC = %v", auc)
	}
	// Recovered weight signs must match the generator (w1 > 0 > w2).
	w := m.Weights()
	if w[0] <= 0 || w[1] >= 0 {
		t.Fatalf("weights %v have wrong signs", w)
	}
}

func TestLogRegProbabilitiesCalibrated(t *testing.T) {
	X, y := linearData(2000, 3)
	m := New(Config{})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Bin predictions and compare with empirical frequency.
	Xt, yt := linearData(2000, 4)
	var sumP, sumY float64
	for i, x := range Xt {
		sumP += m.PredictProba(x)
		sumY += float64(yt[i])
	}
	if math.Abs(sumP-sumY)/float64(len(Xt)) > 0.05 {
		t.Fatalf("mean prediction %v vs empirical rate %v", sumP/2000, sumY/2000)
	}
}

func TestLogRegErrors(t *testing.T) {
	m := New(Config{})
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unfitted predict")
		}
	}()
	m.PredictProba([]float64{1})
}

func TestLogRegDeterministic(t *testing.T) {
	X, y := linearData(300, 5)
	m1 := New(Config{})
	m2 := New(Config{})
	if err := m1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if m1.PredictProba(X[i]) != m2.PredictProba(X[i]) {
			t.Fatal("training is not deterministic")
		}
	}
}

// puData builds a positive-unlabeled dataset: true positives are labeled
// only with probability c; everything else is "negative" (unlabeled).
func puData(n int, c float64, seed int64) (X [][]float64, observed, trueLabels []int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		a, b := r.Normal(0, 2), r.Normal(0, 2)
		X = append(X, []float64{a, b})
		yt := 0
		if stats.Logistic(2*a-1.5*b) > r.Float64() {
			yt = 1
		}
		trueLabels = append(trueLabels, yt)
		if yt == 1 && r.Bernoulli(c) {
			observed = append(observed, 1)
		} else {
			observed = append(observed, 0)
		}
	}
	return
}

func TestPUWeightedBeatsNaiveOnTrueLabels(t *testing.T) {
	const c = 0.3 // only 30% of positives are labeled
	X, obs, _ := puData(1500, c, 6)
	Xt, _, ytTrue := puData(800, c, 7)

	naive := New(Config{})
	if err := naive.Fit(X, obs); err != nil {
		t.Fatal(err)
	}
	pu := New(Config{PosWeight: 3, NegWeight: 0.8})
	if err := pu.Fit(X, obs); err != nil {
		t.Fatal(err)
	}
	aucOf := func(m *LogReg) float64 {
		scores := make([]float64, len(Xt))
		for i, x := range Xt {
			scores[i] = m.PredictProba(x)
		}
		return stats.AUC(ytTrue, scores)
	}
	aucNaive, aucPU := aucOf(naive), aucOf(pu)
	// Ranking is largely preserved under one-sided noise (both should be
	// good); the weighted variant must not be worse.
	if aucPU < aucNaive-0.02 {
		t.Fatalf("PU-weighted AUC %v below naive %v", aucPU, aucNaive)
	}
	if aucPU < 0.8 {
		t.Fatalf("PU AUC = %v", aucPU)
	}
}

func TestElkanNotoCorrection(t *testing.T) {
	const c = 0.4
	X, obs, _ := puData(2000, c, 8)
	m := New(Config{})
	if err := m.Fit(X, obs); err != nil {
		t.Fatal(err)
	}
	// Validation positives: labeled examples held out from another draw.
	Xv, obsV, _ := puData(800, c, 9)
	var valPos [][]float64
	for i, o := range obsV {
		if o == 1 {
			valPos = append(valPos, Xv[i])
		}
	}
	cHat := m.EstimateLabelingRate(valPos)
	if cHat <= 0.1 || cHat > 1 {
		t.Fatalf("estimated labeling rate %v out of range", cHat)
	}
	// The estimate should be in the right ballpark of the true c.
	if math.Abs(cHat-c) > 0.25 {
		t.Fatalf("estimated c = %v, true %v", cHat, c)
	}
	// Applying the correction must raise probabilities (divide by c < 1).
	m.SetLabelingRate(cHat)
	x := Xv[0]
	pc := m.PredictProba(x)
	m.SetLabelingRate(1)
	pu := m.PredictProba(x)
	if pc < pu {
		t.Fatal("correction should not lower probabilities")
	}
}

func TestSetLabelingRateValidation(t *testing.T) {
	m := New(Config{})
	m.SetLabelingRate(-1)
	if m.labelingRate != 1 {
		t.Fatal("invalid rate should reset to 1")
	}
	m.SetLabelingRate(2)
	if m.labelingRate != 1 {
		t.Fatal("rate > 1 should reset to 1")
	}
	m.SetLabelingRate(0.5)
	if m.labelingRate != 0.5 {
		t.Fatal("valid rate rejected")
	}
}

func TestEstimateLabelingRateEdgeCases(t *testing.T) {
	m := New(Config{})
	if m.EstimateLabelingRate(nil) != 1 {
		t.Fatal("unfitted estimate should be 1")
	}
	X, y := linearData(200, 10)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.EstimateLabelingRate(nil) != 1 {
		t.Fatal("empty positives should give 1")
	}
}
