// Package logreg implements L2-regularized logistic regression trained by
// iteratively reweighted least squares (Newton's method), with the
// class-weighting and positive-unlabeled (PU) learning extensions of Lee &
// Liu (2003) and Elkan & Noto (2008).
//
// PU learning is the formal framing of the paper's label-noise problem
// (Section II-c): positive labels are reliable, negative labels are really
// just *unlabeled* — a cell without a detected snare may still be attacked.
// This package provides the classical PU baseline that iWare-E is an
// alternative to: treat unlabeled examples as weighted negatives, then
// correct the output probability by the estimated labeling rate
// c = P(labeled | positive).
package logreg

import (
	"errors"
	"math"

	"paws/internal/mat"
	"paws/internal/ml"
	"paws/internal/stats"
)

// Config controls training.
type Config struct {
	// L2 is the ridge penalty (default 1e-3).
	L2 float64
	// MaxIter caps Newton iterations (default 50).
	MaxIter int
	// PosWeight and NegWeight scale the per-class log-likelihood terms
	// (defaults 1). Lee & Liu's PU scheme puts a high weight on positives
	// and a low weight on the unlabeled-as-negatives.
	PosWeight, NegWeight float64
}

// LogReg is a fitted logistic-regression classifier.
type LogReg struct {
	cfg    Config
	std    *ml.Standardizer
	w      []float64 // weights over standardized features
	b      float64
	fitted bool
	// labelingRate is the Elkan-Noto c = P(labeled|positive); 1 when unset.
	labelingRate float64
}

// New creates an untrained model.
func New(cfg Config) *LogReg {
	if cfg.L2 <= 0 {
		cfg.L2 = 1e-3
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.PosWeight <= 0 {
		cfg.PosWeight = 1
	}
	if cfg.NegWeight <= 0 {
		cfg.NegWeight = 1
	}
	return &LogReg{cfg: cfg, labelingRate: 1}
}

// Fit trains by Newton-Raphson on the weighted penalized log-likelihood.
func (l *LogReg) Fit(X [][]float64, y []int) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	std, err := ml.FitStandardizer(X)
	if err != nil {
		return err
	}
	l.std = std
	Z := std.TransformAll(X)
	n := len(Z)
	k := len(Z[0])
	// Augment with intercept: dimension k+1, index k is the intercept.
	l.w = make([]float64, k)
	l.b = 0
	for iter := 0; iter < l.cfg.MaxIter; iter++ {
		// Gradient and Hessian of the penalized weighted log-likelihood.
		g := make([]float64, k+1)
		h := mat.NewDense(k+1, k+1)
		for i := 0; i < n; i++ {
			zi := Z[i]
			p := stats.Logistic(mat.Dot(l.w, zi) + l.b)
			cw := l.cfg.NegWeight
			if y[i] == 1 {
				cw = l.cfg.PosWeight
			}
			d := cw * (float64(y[i]) - p)
			wgt := cw * math.Max(p*(1-p), 1e-10)
			for a := 0; a < k; a++ {
				g[a] += d * zi[a]
				for bIdx := a; bIdx < k; bIdx++ {
					h.Set(a, bIdx, h.At(a, bIdx)+wgt*zi[a]*zi[bIdx])
				}
				h.Set(a, k, h.At(a, k)+wgt*zi[a])
			}
			g[k] += d
			h.Set(k, k, h.At(k, k)+wgt)
		}
		// Symmetrize and regularize (no penalty on the intercept).
		for a := 0; a < k; a++ {
			g[a] -= l.cfg.L2 * l.w[a]
			h.Set(a, a, h.At(a, a)+l.cfg.L2)
			for bIdx := 0; bIdx < a; bIdx++ {
				h.Set(a, bIdx, h.At(bIdx, a))
			}
		}
		for bIdx := 0; bIdx < k; bIdx++ {
			h.Set(k, bIdx, h.At(bIdx, k))
		}
		h.Set(k, k, h.At(k, k)+1e-9)
		ch, err := mat.NewCholeskyJitter(h, 1e-9, 10)
		if err != nil {
			return errors.New("logreg: singular Hessian")
		}
		step := ch.SolveVec(g)
		var norm float64
		for a := 0; a < k; a++ {
			l.w[a] += step[a]
			norm += math.Abs(step[a])
		}
		l.b += step[k]
		norm += math.Abs(step[k])
		if norm < 1e-10 {
			break
		}
	}
	l.fitted = true
	return nil
}

// PredictProba returns P(y=1 | x), corrected by the labeling rate when one
// has been set via SetLabelingRate/EstimateLabelingRate.
func (l *LogReg) PredictProba(x []float64) float64 {
	if !l.fitted {
		panic(ml.ErrNotFitted)
	}
	p := stats.Logistic(mat.Dot(l.w, l.std.Transform(x)) + l.b)
	if l.labelingRate < 1 {
		p = math.Min(1, p/l.labelingRate)
	}
	return p
}

// Weights returns the learned weights over standardized features.
func (l *LogReg) Weights() []float64 { return l.w }

// SetLabelingRate fixes the Elkan-Noto constant c = P(labeled | positive).
// Probabilities are divided by c, mapping "probability of being labeled" to
// "probability of being positive".
func (l *LogReg) SetLabelingRate(c float64) {
	if c <= 0 || c > 1 {
		c = 1
	}
	l.labelingRate = c
}

// EstimateLabelingRate implements Elkan & Noto's estimator e1: the mean
// predicted probability over a held-out set of KNOWN positives. Call after
// Fit with validation positives not used in training.
func (l *LogReg) EstimateLabelingRate(positives [][]float64) float64 {
	if !l.fitted || len(positives) == 0 {
		return 1
	}
	save := l.labelingRate
	l.labelingRate = 1
	var s float64
	for _, x := range positives {
		s += l.PredictProba(x)
	}
	l.labelingRate = save
	c := s / float64(len(positives))
	if c <= 0 || c > 1 {
		return 1
	}
	return c
}
