package ml

import (
	"math"
	"testing"

	"paws/internal/rng"
)

func TestCheckXY(t *testing.T) {
	if err := CheckXY(nil, nil); err != ErrNoData {
		t.Fatal("expected ErrNoData")
	}
	if err := CheckXY([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := CheckXY([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
		t.Fatal("expected ragged row error")
	}
	if err := CheckXY([][]float64{{1}}, []int{2}); err == nil {
		t.Fatal("expected non-binary label error")
	}
	if err := CheckXY([][]float64{{1}, {2}}, []int{0, 1}); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 20, 5}, {5, 30, 5}}
	s, err := FitStandardizer(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.TransformAll(X)
	// Column means ≈ 0, variance ≈ 1 for non-constant columns.
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for i := range Z {
			mean += Z[i][j]
		}
		mean /= 3
		for i := range Z {
			d := Z[i][j] - mean
			varr += d * d
		}
		varr /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(varr-1) > 1e-9 {
			t.Fatalf("column %d: mean %v var %v", j, mean, varr)
		}
	}
	// Constant column: centered, not NaN.
	for i := range Z {
		if Z[i][2] != 0 {
			t.Fatalf("constant column should map to 0, got %v", Z[i][2])
		}
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestKFold(t *testing.T) {
	r := rng.New(1)
	folds := KFold(10, 3, r)
	if len(folds) != 3 {
		t.Fatalf("folds = %d want 3", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("folds must cover all indices, got %d", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
	// k > n clamps.
	folds = KFold(2, 5, r)
	if len(folds) != 2 {
		t.Fatalf("k>n should clamp to n, got %d folds", len(folds))
	}
	// k <= 0 clamps to 1.
	folds = KFold(4, 0, r)
	if len(folds) != 1 {
		t.Fatal("k<=0 should clamp to 1")
	}
}

func TestTrainIndices(t *testing.T) {
	tr := TrainIndices(5, []int{1, 3})
	want := []int{0, 2, 4}
	if len(tr) != 3 {
		t.Fatalf("TrainIndices = %v", tr)
	}
	for i, v := range want {
		if tr[i] != v {
			t.Fatalf("TrainIndices = %v want %v", tr, want)
		}
	}
}

func TestSubset(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{0, 1, 0}
	sx, sy := Subset(X, y, []int{2, 0})
	if sx[0][0] != 3 || sx[1][0] != 1 || sy[0] != 0 || sy[1] != 0 {
		t.Fatal("Subset wrong")
	}
}

func TestClassCounts(t *testing.T) {
	neg, pos := ClassCounts([]int{0, 1, 1, 0, 1})
	if neg != 2 || pos != 3 {
		t.Fatalf("counts = %d,%d", neg, pos)
	}
}

func TestConstantClassifier(t *testing.T) {
	c := &ConstantClassifier{}
	if err := c.Fit([][]float64{{1}, {2}, {3}, {4}}, []int{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.PredictProba(nil) != 0.25 {
		t.Fatalf("P = %v want 0.25", c.P)
	}
	p, v := c.PredictWithVariance(nil)
	if p != 0.25 || v != 0 {
		t.Fatal("PredictWithVariance wrong")
	}
	if err := c.Fit(nil, nil); err != ErrNoData {
		t.Fatal("expected ErrNoData")
	}
}

func TestPredictAll(t *testing.T) {
	c := &ConstantClassifier{P: 0.7}
	out := PredictAll(c, [][]float64{{1}, {2}})
	if len(out) != 2 || out[0] != 0.7 || out[1] != 0.7 {
		t.Fatalf("PredictAll = %v", out)
	}
}
