package ml

import "encoding/gob"

func init() {
	// ConstantClassifier appears behind the Classifier interface inside
	// persisted ensembles (the degenerate-bag fallback); its fields are
	// exported, so registration alone makes it gob-encodable.
	gob.RegisterName("paws/internal/ml.ConstantClassifier", &ConstantClassifier{})
}
