package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v want 0", got)
	}
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view into the matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v want [6 15]", y)
	}
}

func TestTMulVec(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := m.TMulVec([]float64{1, 2})
	want := []float64{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("TMulVec = %v want %v", y, want)
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("Mul = %v want %v", c.Data(), want)
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestTranspose(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := Transpose(a)
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("Transpose dims = %d,%d want 3,2", r, c)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		a := NewDense(rows, cols)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		b := Transpose(Transpose(a))
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Fatalf("AddScaled = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 10.5 || dst[1] != 21 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		a := NewDense(n, m)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		x := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		xm := NewDenseData(m, 1, append([]float64(nil), x...))
		y1 := a.MulVec(x)
		y2 := Mul(a, xm)
		for i := 0; i < n; i++ {
			if !almostEq(y1[i], y2.At(i, 0), 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
