package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite matrix A = BᵀB + nI.
func randomSPD(r *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := range b.Data() {
		b.Data()[i] = r.NormFloat64()
	}
	a := Mul(Transpose(b), b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		rec := ch.Reconstruct()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-8*(1+math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(10)
		a := randomSPD(r, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := a.MulVec(xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("factorization failed: %v", err)
		}
		x := ch.SolveVec(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7 {
				t.Fatalf("solve error: got %v want %v", x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Singular (rank-1) matrix: plain Cholesky fails, jitter succeeds.
	a := NewDenseData(2, 2, []float64{1, 1, 1, 1})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected plain Cholesky to fail on singular matrix")
	}
	ch, err := NewCholeskyJitter(a, 1e-8, 12)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	if ch.Size() != 2 {
		t.Fatal("wrong size")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9): det = 36, logdet = log 36.
	a := NewDenseData(2, 2, []float64{4, 0, 0, 9})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.LogDet()-math.Log(36)) > 1e-12 {
		t.Fatalf("LogDet = %v want %v", ch.LogDet(), math.Log(36))
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 5
	a := randomSPD(r, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	prod := Mul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-8 {
				t.Fatalf("A·A⁻¹ (%d,%d) = %v want %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestSolveLowerForwardBackward(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 2, 2, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2}
	y := ch.SolveLower(b)
	x := ch.SolveLowerT(y)
	// Verify A·x = b.
	r := a.MulVec(x)
	for i := range b {
		if math.Abs(r[i]-b[i]) > 1e-10 {
			t.Fatalf("residual %v", r)
		}
	}
}
