// Package mat provides the small dense linear-algebra substrate used by the
// Gaussian-process classifier and the LP solver: column-major-free dense
// matrices, Cholesky factorization, and triangular solves.
//
// It is deliberately minimal — only the operations the PAWS pipeline needs —
// and uses float64 throughout. All operations are deterministic.
package mat

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (len r*c, row-major) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing slice (row-major).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes y = M·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d · %d", m.rows, m.cols, len(x)))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Mᵀ·x.
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: TMulVec dimension mismatch %d×%d ᵀ· %d", m.rows, m.cols, len(x)))
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul computes C = A·B.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	t := NewDense(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			t.Set(j, i, v)
		}
	}
	return t
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddScaled computes dst += alpha*src in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}
