package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization encounters a
// non-positive pivot. Callers typically retry with added jitter.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Dense // lower triangular, upper part zero
}

// NewCholesky factorizes the symmetric matrix a (only the lower triangle is
// read). It returns ErrNotPositiveDefinite if a pivot is ≤ 0.
func NewCholesky(a *Dense) (*Cholesky, error) {
	r, c := a.Dims()
	if r != c {
		panic(fmt.Sprintf("mat: Cholesky of non-square %d×%d", r, c))
	}
	l := NewDense(r, r)
	for j := 0; j < r; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < r; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return &Cholesky{n: r, l: l}, nil
}

// NewCholeskyJitter factorizes a, adding progressively larger diagonal jitter
// (starting at jitter0, growing ×10) until the factorization succeeds or
// maxTries is exhausted. The matrix a is not modified.
func NewCholeskyJitter(a *Dense, jitter0 float64, maxTries int) (*Cholesky, error) {
	work := a.Clone()
	jit := 0.0
	next := jitter0
	for try := 0; try < maxTries; try++ {
		if jit > 0 {
			for i := 0; i < work.rows; i++ {
				work.Set(i, i, a.At(i, i)+jit)
			}
		}
		ch, err := NewCholesky(work)
		if err == nil {
			return ch, nil
		}
		jit = next
		next *= 10
	}
	return nil, ErrNotPositiveDefinite
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor (shared storage; do not modify).
func (c *Cholesky) L() *Dense { return c.l }

// SolveVec solves A·x = b given A = L·Lᵀ. b is not modified.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.SolveLower(b)
	return c.SolveLowerT(y)
}

// SolveLower solves L·y = b by forward substitution.
func (c *Cholesky) SolveLower(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: SolveLower length %d want %d", len(b), c.n))
	}
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		row := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	return y
}

// SolveLowerBatch solves L·Y = B for many right-hand sides in a single
// forward pass over L: each row of L is read once and applied to every RHS,
// instead of once per RHS as repeated SolveLower calls would. B holds one
// right-hand side per row and is not modified; the result uses the same
// layout. Per-RHS arithmetic matches SolveLower exactly (same operations in
// the same order), so results are bit-identical to the one-at-a-time path.
func (c *Cholesky) SolveLowerBatch(B [][]float64) [][]float64 {
	m := len(B)
	Y := make([][]float64, m)
	for r, b := range B {
		if len(b) != c.n {
			panic(fmt.Sprintf("mat: SolveLowerBatch rhs %d length %d want %d", r, len(b), c.n))
		}
		Y[r] = make([]float64, c.n)
	}
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		for r := 0; r < m; r++ {
			s := B[r][i]
			yr := Y[r]
			for k := 0; k < i; k++ {
				s -= row[k] * yr[k]
			}
			yr[i] = s / row[i]
		}
	}
	return Y
}

// SolveLowerFlat solves L·Y = B in place for nrhs right-hand sides stored
// contiguously in B (row-major, one RHS per stride-n row). It is the
// allocation-free columnar counterpart of SolveLowerBatch: one forward pass
// over L serves every RHS, and the RHS loop is unrolled four ways so each
// loaded L row element feeds four independent accumulators. Per-RHS
// arithmetic still runs in SolveLower's exact order (k ascending, one
// subtraction per step), so results are bit-identical to the one-at-a-time
// path — the unroll only interleaves independent RHS streams.
func (c *Cholesky) SolveLowerFlat(B []float64, nrhs int) {
	n := c.n
	if len(B) != nrhs*n {
		panic(fmt.Sprintf("mat: SolveLowerFlat buffer length %d want %d×%d", len(B), nrhs, n))
	}
	r := 0
	for ; r+4 <= nrhs; r += 4 {
		y0 := B[(r+0)*n : (r+1)*n]
		y1 := B[(r+1)*n : (r+2)*n]
		y2 := B[(r+2)*n : (r+3)*n]
		y3 := B[(r+3)*n : (r+4)*n]
		for i := 0; i < n; i++ {
			lrow := c.l.Row(i)
			d := lrow[i]
			s0, s1, s2, s3 := y0[i], y1[i], y2[i], y3[i]
			a0, a1, a2, a3 := y0[:i], y1[:i], y2[:i], y3[:i]
			for k, lk := range lrow[:i] {
				s0 -= lk * a0[k]
				s1 -= lk * a1[k]
				s2 -= lk * a2[k]
				s3 -= lk * a3[k]
			}
			y0[i] = s0 / d
			y1[i] = s1 / d
			y2[i] = s2 / d
			y3[i] = s3 / d
		}
	}
	for ; r < nrhs; r++ {
		y := B[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			lrow := c.l.Row(i)
			d := lrow[i]
			s := y[i]
			a := y[:i]
			for k, lk := range lrow[:i] {
				s -= lk * a[k]
			}
			y[i] = s / d
		}
	}
}

// SolveLowerT solves Lᵀ·x = y by backward substitution.
func (c *Cholesky) SolveLowerT(y []float64) []float64 {
	if len(y) != c.n {
		panic(fmt.Sprintf("mat: SolveLowerT length %d want %d", len(y), c.n))
	}
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// LogDet returns log det(A) = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// Reconstruct recomputes A = L·Lᵀ (for testing).
func (c *Cholesky) Reconstruct() *Dense {
	return Mul(c.l, Transpose(c.l))
}

// Inverse solves for A⁻¹ column by column. Intended for small matrices only.
func (c *Cholesky) Inverse() *Dense {
	inv := NewDense(c.n, c.n)
	e := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		e[j] = 1
		col := c.SolveVec(e)
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, col[i])
		}
		e[j] = 0
	}
	return inv
}
