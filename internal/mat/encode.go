package mat

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// denseState is the exported gob image of a Dense matrix.
type denseState struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder. Float64 bit patterns round-trip
// exactly, so a decoded matrix is numerically identical to the original.
func (m *Dense) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(denseState{Rows: m.rows, Cols: m.cols, Data: m.data})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Dense) GobDecode(b []byte) error {
	var st denseState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if st.Rows < 0 || st.Cols < 0 || len(st.Data) != st.Rows*st.Cols {
		return fmt.Errorf("mat: corrupt Dense encoding: %d×%d with %d values", st.Rows, st.Cols, len(st.Data))
	}
	m.rows, m.cols = st.Rows, st.Cols
	m.data = st.Data
	if m.data == nil {
		m.data = []float64{}
	}
	return nil
}

// CholeskyFromFactor rebuilds a Cholesky from a previously computed lower-
// triangular factor L (as returned by Cholesky.L) — the persistence path for
// models that store a factorization. The factor is used as-is, so solves on
// the rebuilt value reproduce the original's floats exactly.
func CholeskyFromFactor(l *Dense) (*Cholesky, error) {
	r, c := l.Dims()
	if r != c {
		return nil, fmt.Errorf("mat: Cholesky factor must be square, got %d×%d", r, c)
	}
	for i := 0; i < r; i++ {
		if l.At(i, i) == 0 {
			return nil, fmt.Errorf("mat: Cholesky factor has zero pivot at %d", i)
		}
	}
	return &Cholesky{n: r, l: l}, nil
}
