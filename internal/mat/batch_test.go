package mat

import (
	"testing"

	"paws/internal/rng"
)

// TestSolveLowerBatchMatchesSolveLower asserts the batched forward
// substitution is bit-identical to the one-RHS-at-a-time path.
func TestSolveLowerBatchMatchesSolveLower(t *testing.T) {
	r := rng.New(3)
	n := 17
	// Random SPD matrix A = MᵀM + n·I.
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	a := Mul(Transpose(m), m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	B := make([][]float64, 9)
	for k := range B {
		B[k] = make([]float64, n)
		for i := range B[k] {
			B[k][i] = r.NormFloat64()
		}
	}
	got := ch.SolveLowerBatch(B)
	for k, b := range B {
		want := ch.SolveLower(b)
		for i := range want {
			if got[k][i] != want[i] {
				t.Fatalf("rhs %d component %d: batch %v != pointwise %v", k, i, got[k][i], want[i])
			}
		}
	}
}

func TestSolveLowerBatchEmpty(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if out := ch.SolveLowerBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d rows", len(out))
	}
}
