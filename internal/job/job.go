// Package job is the asynchronous execution layer of the PAWS serving
// stack: a Manager runs long-lived work — multi-season simulations, model
// training, experiment sweeps — as first-class jobs instead of holding an
// HTTP connection open for minutes. Callers submit a function, get an ID
// back immediately, and then observe the job through its lifecycle:
//
//	queued → running → done | failed | canceled
//
// A job function receives a context (canceled by Manager.Cancel and by
// shutdown) and a publish callback for typed Progress events; everything
// the function reports is retained with the job, so a client that
// disconnects mid-run can reconnect and replay the event stream from any
// sequence number (Manager.EventsSince). Results of terminal jobs are
// retained under a TTL and an LRU bound, so a caller can come back for an
// answer later without the Manager growing without bound.
//
// Concurrency is bounded: at most Config.Workers jobs run at once
// (par.Workers semantics, matching every other Workers knob in the repo);
// excess submissions queue in FIFO order. Canceling a queued job removes it
// from the queue without running it. Shutdown stops new submissions and
// drains accepted work — running (and already-queued) jobs finish unless
// the drain context expires, at which point they are canceled and the
// cancellation itself is awaited, so no job goroutine outlives Shutdown.
//
// The Manager is deliberately agnostic about what a job computes: results
// are opaque `any` values chosen by the submitter. The HTTP layer
// (internal/serve) stores exactly the response struct its synchronous
// counterpart would have written, which is what makes async job results
// byte-identical to the blocking endpoints.
package job

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"paws/internal/par"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one typed progress event of a job. Events are retained with the
// job and numbered by Seq (0-based, dense), so streams can resume from any
// position. The Manager itself publishes lifecycle events with Stage
// "state" (Item = the new state); compute layers publish domain stages
// ("season", "train", "cell", "map", …) through the publish callback.
type Event struct {
	Seq     int    `json:"seq"`
	Stage   string `json:"stage"`
	Item    string `json:"item,omitempty"`
	Current int    `json:"current,omitempty"`
	Total   int    `json:"total,omitempty"`
}

// Fn is the work a job performs. ctx is canceled by Manager.Cancel and by
// expired-drain shutdown; publish appends a progress event to the job (it
// is safe to call from multiple goroutines and becomes a no-op once the
// job leaves the running state). The returned value is the job's result.
type Fn func(ctx context.Context, publish func(Event)) (any, error)

// Sentinel errors of the Manager API.
var (
	// ErrUnknownJob is returned for IDs that never existed or were evicted.
	ErrUnknownJob = errors.New("job: unknown job")
	// ErrNotFinished is returned by Result while the job is queued/running.
	ErrNotFinished = errors.New("job: not finished")
	// ErrShuttingDown is returned by Submit after Shutdown began.
	ErrShuttingDown = errors.New("job: manager is shutting down")
	// ErrCanceled wraps context.Canceled in the Result of a canceled job.
	ErrCanceled = fmt.Errorf("job: canceled: %w", context.Canceled)
)

// Config tunes a Manager.
type Config struct {
	// Workers bounds concurrently running jobs (par.Workers semantics:
	// 1 runs jobs strictly one at a time, 0 or negative means one slot per
	// available CPU). Queued jobs start in submission order.
	Workers int
	// ResultTTL bounds how long a terminal job (and its result and events)
	// is retained; 0 selects the 15-minute default, negative disables TTL
	// eviction. Eviction happens lazily on Manager calls.
	ResultTTL time.Duration
	// MaxRetained bounds how many terminal jobs are retained; beyond it the
	// oldest-finished are evicted first. 0 selects the default of 64.
	MaxRetained int
	// IDPrefix namespaces job IDs ("j-<prefix>-000001" instead of
	// "j-000001"). In a fleet every replica sets a distinct prefix so a
	// routing proxy can tell whose job an ID names; empty keeps the
	// single-process format.
	IDPrefix string
	// now is a test hook for TTL eviction; nil means time.Now.
	now func() time.Time
}

// Stats is a point-in-time load summary of a Manager — the signal behind
// pawsd's /statusz (replica load for pawsgate's least-loaded routing) and
// the backlog estimate behind admission control.
type Stats struct {
	// Queued and Running are the jobs currently waiting and executing.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Completed counts jobs that reached a terminal state over the
	// Manager's lifetime (evictions included).
	Completed int64 `json:"completed"`
	// MeanJobSeconds is an exponentially-weighted moving average of
	// wall-clock job runtime (α = 0.3; 0 until the first job finishes) —
	// the per-job cost estimate admission control multiplies queue depth
	// by.
	MeanJobSeconds float64 `json:"mean_job_seconds"`
}

// Snapshot is a point-in-time view of a job, safe to serialize.
type Snapshot struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Events is the number of events published so far (replay with
	// GET …/events?from=N or Manager.EventsSince).
	Events int    `json:"events"`
	Error  string `json:"error,omitempty"`
}

// rec is the Manager's mutable record of one job. All fields are guarded by
// the Manager mutex; the job function runs outside the lock.
type rec struct {
	id                         string
	kind                       string
	fn                         Fn
	state                      State
	created, started, finished time.Time
	events                     []Event
	result                     any
	err                        error
	cancel                     context.CancelFunc
	// canceled records that cancellation was requested while running; the
	// terminal state becomes canceled only if the function actually gave up
	// (a job that completes despite a racing cancel keeps its result).
	canceled bool
	// pinned exempts the job from retention eviction — set for one-shot
	// jobs (Run) so a result can never be evicted between the job turning
	// terminal and its owner collecting it. Pinned jobs are removed
	// explicitly by their owner.
	pinned bool
	// change is closed and replaced on every observable mutation of THIS
	// job; per-job waiters (Wait, event streams) block on it so one job's
	// progress never wakes another job's observers.
	change chan struct{}
}

// notifyLocked wakes this job's waiters; callers hold the Manager lock.
func (r *rec) notifyLocked() {
	close(r.change)
	r.change = make(chan struct{})
}

// Manager runs jobs with bounded concurrency and retains terminal results.
// All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	workers int

	mu      sync.Mutex
	jobs    map[string]*rec
	queue   []*rec
	running int
	nextID  int
	closed  bool
	// completed / meanRunSeconds feed Stats; updated as jobs turn terminal.
	completed      int64
	meanRunSeconds float64
	// change is closed and replaced when the set of active jobs shrinks;
	// Shutdown blocks on it to detect quiescence. Per-job observers use the
	// rec's own change channel instead.
	change chan struct{}
}

// NewManager builds a Manager.
func NewManager(cfg Config) *Manager {
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = 15 * time.Minute
	}
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Manager{
		cfg:     cfg,
		workers: par.Workers(cfg.Workers),
		jobs:    map[string]*rec{},
		change:  make(chan struct{}),
	}
}

// broadcastLocked wakes the manager-level (quiescence) waiters; callers
// hold the lock.
func (m *Manager) broadcastLocked() {
	close(m.change)
	m.change = make(chan struct{})
}

// publishLocked appends an event with the next sequence number and wakes
// the job's own observers.
func (m *Manager) publishLocked(r *rec, e Event) {
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	r.notifyLocked()
}

// submitLocked creates and enqueues a job record; callers hold the lock.
func (m *Manager) submitLocked(kind string, fn Fn, pinned bool) (*rec, error) {
	if fn == nil {
		return nil, errors.New("job: nil job function")
	}
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.evictLocked()
	m.nextID++
	id := fmt.Sprintf("j-%06d", m.nextID)
	if m.cfg.IDPrefix != "" {
		id = fmt.Sprintf("j-%s-%06d", m.cfg.IDPrefix, m.nextID)
	}
	r := &rec{
		id:      id,
		kind:    kind,
		fn:      fn,
		state:   StateQueued,
		created: m.cfg.now(),
		pinned:  pinned,
		change:  make(chan struct{}),
	}
	m.jobs[r.id] = r
	m.queue = append(m.queue, r)
	m.startLocked()
	return r, nil
}

// Submit queues fn as a new job of the given kind and returns its ID. The
// job starts immediately if a worker slot is free.
func (m *Manager) Submit(kind string, fn Fn) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.submitLocked(kind, fn, false)
	if err != nil {
		return "", err
	}
	return r.id, nil
}

// SubmitSnapshot is Submit returning the job's initial snapshot
// atomically, so the caller's view cannot race with retention eviction of
// a job that finished immediately.
func (m *Manager) SubmitSnapshot(kind string, fn Fn) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.submitLocked(kind, fn, false)
	if err != nil {
		return Snapshot{}, err
	}
	return r.snapshotLocked(), nil
}

// startLocked launches queued jobs while worker slots are free.
func (m *Manager) startLocked() {
	for m.running < m.workers && len(m.queue) > 0 {
		r := m.queue[0]
		m.queue = m.queue[1:]
		ctx, cancel := context.WithCancel(context.Background())
		r.state = StateRunning
		r.started = m.cfg.now()
		r.cancel = cancel
		m.running++
		m.publishLocked(r, Event{Stage: "state", Item: string(StateRunning)})
		go m.run(r, ctx)
	}
}

// run executes one job function and records its terminal state.
func (m *Manager) run(r *rec, ctx context.Context) {
	publish := func(e Event) {
		m.mu.Lock()
		if r.state == StateRunning {
			m.publishLocked(r, e)
		}
		m.mu.Unlock()
	}
	result, err := runSafely(r.fn, ctx, publish)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	r.cancel = nil
	r.finished = m.cfg.now()
	m.noteFinishedLocked(r.finished.Sub(r.started).Seconds())
	switch {
	case err == nil:
		// A job that completed despite a racing cancel keeps its result.
		r.state = StateDone
		r.result = result
	case r.canceled:
		r.state = StateCanceled
		r.err = err
	default:
		r.state = StateFailed
		r.err = err
	}
	m.publishLocked(r, Event{Stage: "state", Item: string(r.state)})
	m.startLocked()
	m.evictLocked()
	m.broadcastLocked() // active count shrank: wake Shutdown
}

// runSafely calls fn, converting a panic into an error so one bad job
// cannot take the serving process down.
func runSafely(fn Fn, ctx context.Context, publish func(Event)) (result any, err error) {
	defer func() {
		if p := recover(); p != nil {
			result, err = nil, fmt.Errorf("job: panic: %v", p)
		}
	}()
	return fn(ctx, publish)
}

// lookupLocked resolves a job ID; callers hold the lock. A miss while the
// Manager is draining reports ErrShuttingDown, not ErrUnknownJob: during
// shutdown, terminal jobs are being evicted while clients (e.g. an NDJSON
// event stream reconnecting after a disconnect) may still hold valid IDs,
// and telling such a client its job "never existed" is wrong — the honest
// answer is that the server is going away.
func (m *Manager) lookupLocked(id string) (*rec, error) {
	if r, ok := m.jobs[id]; ok {
		return r, nil
	}
	if m.closed {
		return nil, fmt.Errorf("%w (job %q unknown or already drained)", ErrShuttingDown, id)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
}

// snapshotLocked builds a Snapshot; callers hold the lock.
func (r *rec) snapshotLocked() Snapshot {
	s := Snapshot{
		ID:       r.id,
		Kind:     r.kind,
		State:    r.state,
		Created:  r.created,
		Started:  r.started,
		Finished: r.finished,
		Events:   len(r.events),
	}
	if r.err != nil {
		s.Error = r.err.Error()
	}
	return s
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	r, err := m.lookupLocked(id)
	if err != nil {
		return Snapshot{}, err
	}
	return r.snapshotLocked(), nil
}

// List returns snapshots of every retained job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, r := range m.jobs {
		out = append(out, r.snapshotLocked())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Cancel requests cancellation: a queued job is removed from the queue and
// becomes canceled immediately; a running job has its context canceled and
// becomes canceled when its function returns. Canceling a terminal job is
// a no-op. The returned snapshot reflects the state after the call.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookupLocked(id)
	if err != nil {
		return Snapshot{}, err
	}
	switch r.state {
	case StateQueued:
		for i, q := range m.queue {
			if q == r {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		r.state = StateCanceled
		r.finished = m.cfg.now()
		r.err = ErrCanceled
		m.noteFinishedLocked(0) // never ran: counts, contributes no runtime
		m.publishLocked(r, Event{Stage: "state", Item: string(StateCanceled)})
		m.broadcastLocked() // active count shrank: wake Shutdown
	case StateRunning:
		r.canceled = true
		r.cancel()
	}
	return r.snapshotLocked(), nil
}

// Result returns a terminal job's result. A queued or running job returns
// ErrNotFinished; a failed job returns its error; a canceled job returns
// an error wrapping context.Canceled.
func (m *Manager) Result(id string) (any, Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	r, err := m.lookupLocked(id)
	if err != nil {
		return nil, Snapshot{}, err
	}
	snap := r.snapshotLocked()
	switch r.state {
	case StateDone:
		return r.result, snap, nil
	case StateFailed:
		return nil, snap, r.err
	case StateCanceled:
		err := r.err
		if err == nil {
			err = ErrCanceled
		}
		return nil, snap, err
	default:
		return nil, snap, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, r.state)
	}
}

// EventsSince returns a copy of the job's events from sequence number
// `from`, its current state, and a channel that closes on the next
// observable change — the building block for replayable streams:
//
//	for {
//		evs, state, ch, err := m.EventsSince(id, from)
//		… emit evs; from += len(evs) …
//		if state.Terminal() && len(evs) == 0 { break }
//		select { case <-ctx.Done(): return; case <-ch: }
//	}
func (m *Manager) EventsSince(id string, from int) ([]Event, State, <-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookupLocked(id)
	if err != nil {
		return nil, "", nil, err
	}
	var evs []Event
	if from < 0 {
		from = 0
	}
	if from < len(r.events) {
		evs = append(evs, r.events[from:]...)
	}
	return evs, r.state, r.change, nil
}

// Wait blocks until the job is terminal (returning its snapshot) or ctx is
// done (returning ctx.Err()).
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	for {
		m.mu.Lock()
		r, err := m.lookupLocked(id)
		var snap Snapshot
		var ch <-chan struct{}
		if err == nil {
			snap = r.snapshotLocked()
			ch = r.change
		}
		m.mu.Unlock()
		if err != nil {
			return Snapshot{}, err
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-ch:
		}
	}
}

// Run is the one-shot synchronous wrapper the blocking endpoints are built
// on: submit fn, wait for it, return its result, and retain nothing. The
// job is pinned against retention eviction for the duration of the call,
// so a finished result cannot be TTL/LRU-evicted before Run collects it.
// If ctx is done first the job is canceled and awaited (so fn never
// outlives the call's cancellation semantics) and ctx's error is returned.
func (m *Manager) Run(ctx context.Context, kind string, fn Fn) (any, error) {
	m.mu.Lock()
	r, err := m.submitLocked(kind, fn, true)
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	id := r.id
	defer m.Remove(id)
	if _, err := m.Wait(ctx, id); err != nil {
		m.Cancel(id)
		// Await the terminal state so in-flight work has fully drained
		// before we report the context error; cancellation propagates
		// through internal/par, so this is prompt.
		m.Wait(context.Background(), id)
		return nil, err
	}
	result, _, err := m.Result(id)
	return result, err
}

// Remove drops a terminal job from retention (ErrNotFinished otherwise).
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.lookupLocked(id)
	if err != nil {
		return err
	}
	if !r.state.Terminal() {
		return fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, r.state)
	}
	delete(m.jobs, id)
	m.broadcastLocked()
	return nil
}

// noteFinishedLocked folds one terminal job into the load statistics;
// callers hold the lock. Only jobs that actually ran contribute a runtime
// sample (a queued job canceled before starting has no runtime).
func (m *Manager) noteFinishedLocked(runSeconds float64) {
	m.completed++
	if runSeconds <= 0 {
		return
	}
	if m.meanRunSeconds == 0 {
		m.meanRunSeconds = runSeconds
		return
	}
	const alpha = 0.3
	m.meanRunSeconds = alpha*runSeconds + (1-alpha)*m.meanRunSeconds
}

// Active returns how many jobs are queued or running.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.activeLocked()
}

// Stats returns the Manager's current load summary.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Queued:         len(m.queue),
		Running:        m.running,
		Completed:      m.completed,
		MeanJobSeconds: m.meanRunSeconds,
	}
}

func (m *Manager) activeLocked() int { return m.running + len(m.queue) }

// Shutdown stops new submissions and drains accepted work: queued and
// running jobs finish normally. If ctx expires first, every remaining job
// is canceled and the cancellations are awaited (without a deadline —
// cancellation drains promptly through internal/par), then ctx's error is
// returned. After Shutdown returns no job goroutine is left.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		active := m.activeLocked()
		ch := m.change
		m.mu.Unlock()
		if active == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			m.cancelAll()
			m.awaitQuiescent()
			return ctx.Err()
		case <-ch:
		}
	}
}

// cancelAll requests cancellation of every non-terminal job, in ID
// order so shutdown behavior never depends on map iteration order.
func (m *Manager) cancelAll() {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id, r := range m.jobs {
		if !r.state.Terminal() {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		m.Cancel(id)
	}
}

// awaitQuiescent blocks until no job is queued or running.
func (m *Manager) awaitQuiescent() {
	for {
		m.mu.Lock()
		active := m.activeLocked()
		ch := m.change
		m.mu.Unlock()
		if active == 0 {
			return
		}
		<-ch
	}
}

// evictLocked applies result retention: terminal jobs past the TTL go
// first, then the oldest-finished beyond MaxRetained. Callers hold the
// lock. Queued, running and pinned (one-shot) jobs are never evicted.
func (m *Manager) evictLocked() {
	now := m.cfg.now()
	var terminal []*rec
	for id, r := range m.jobs {
		if !r.state.Terminal() || r.pinned {
			continue
		}
		if m.cfg.ResultTTL > 0 && now.Sub(r.finished) > m.cfg.ResultTTL {
			delete(m.jobs, id)
			continue
		}
		terminal = append(terminal, r)
	}
	if len(terminal) <= m.cfg.MaxRetained {
		return
	}
	sort.Slice(terminal, func(a, b int) bool {
		if !terminal[a].finished.Equal(terminal[b].finished) {
			return terminal[a].finished.Before(terminal[b].finished)
		}
		return terminal[a].id < terminal[b].id
	})
	for _, r := range terminal[:len(terminal)-m.cfg.MaxRetained] {
		delete(m.jobs, r.id)
	}
}
