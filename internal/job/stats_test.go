package job

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestIDPrefixNamespacesJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, IDPrefix: "r1"})
	id, err := m.Submit("noop", doneFn(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if id != "j-r1-000001" {
		t.Fatalf("prefixed id %q, want j-r1-000001", id)
	}
	if _, err := m.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	// Default format is unchanged.
	m2 := NewManager(Config{Workers: 1})
	id2, err := m2.Submit("noop", doneFn(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "j-000001" {
		t.Fatalf("unprefixed id %q, want j-000001", id2)
	}
}

func TestStatsTracksLoadAndMeanCost(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("fresh manager stats %+v, want zero", s)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := func(ctx context.Context, publish func(Event)) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	id1, err := m.Submit("block", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit("queued", doneFn(0, 1)); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Running != 1 || s.Queued != 1 || s.Completed != 0 {
		t.Fatalf("mid-run stats %+v, want running=1 queued=1 completed=0", s)
	}
	close(release)
	if _, err := m.Wait(context.Background(), id1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := m.Stats()
		if s.Completed == 2 && s.Running == 0 && s.Queued == 0 {
			if s.MeanJobSeconds <= 0 {
				t.Fatalf("mean job cost %v after two completions, want > 0", s.MeanJobSeconds)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// A queued job canceled before running counts as completed but cannot
	// poison the runtime average.
	m2 := NewManager(Config{Workers: 1})
	rel2 := make(chan struct{})
	defer close(rel2)
	if _, err := m2.Submit("block", func(ctx context.Context, publish func(Event)) (any, error) {
		<-rel2
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	qid, err := m2.Submit("queued", doneFn(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Cancel(qid); err != nil {
		t.Fatal(err)
	}
	if s := m2.Stats(); s.Completed != 1 || s.MeanJobSeconds != 0 {
		t.Fatalf("after queued-cancel: %+v, want completed=1 mean=0", s)
	}
}

// TestDrainReportsShuttingDownNotUnknown is the regression test for the
// reconnect-during-drain bug: once Shutdown begins, an event stream (or
// any lookup) naming a job that has already been drained away must see
// ErrShuttingDown — previously it saw ErrUnknownJob, telling a client with
// a perfectly valid job ID that its job never existed.
func TestDrainReportsShuttingDownNotUnknown(t *testing.T) {
	var clockMu sync.Mutex
	offset := time.Duration(0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return time.Now().Add(offset)
	}
	m := NewManager(Config{Workers: 1, ResultTTL: time.Minute, now: clock})
	id, err := m.Submit("quick", doneFn(0, "r"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	// Before shutdown an evicted ID is honestly unknown. (Get applies lazy
	// TTL eviction before the lookup.)
	clockMu.Lock()
	offset = 2 * time.Minute // jump past the TTL
	clockMu.Unlock()
	if _, err := m.Get(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("pre-shutdown evicted lookup: %v, want ErrUnknownJob", err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After shutdown the same lookup reports the drain, consistently with
	// what Submit would say.
	if _, _, _, err := m.EventsSince(id, 0); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("EventsSince during drain: %v, want ErrShuttingDown", err)
	}
	if _, err := m.Get(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Get during drain: %v, want ErrShuttingDown", err)
	}
	if _, _, err := m.Result(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Result during drain: %v, want ErrShuttingDown", err)
	}
	if _, err := m.Cancel(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Cancel during drain: %v, want ErrShuttingDown", err)
	}
	if _, err := m.Wait(context.Background(), id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Wait during drain: %v, want ErrShuttingDown", err)
	}
	if err := m.Remove(id); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Remove during drain: %v, want ErrShuttingDown", err)
	}
	if _, _, _, err := m.EventsSince("j-999999", 0); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("never-existed lookup during drain: %v, want ErrShuttingDown", err)
	}
}
