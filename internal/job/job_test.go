package job

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// doneFn returns a job function that publishes n events and returns v.
func doneFn(n int, v any) Fn {
	return func(ctx context.Context, publish func(Event)) (any, error) {
		for i := 0; i < n; i++ {
			publish(Event{Stage: "step", Current: i + 1, Total: n})
		}
		return v, nil
	}
}

// blockingFn returns a job function that signals readiness on started and
// then blocks until release closes or its context is canceled.
func blockingFn(started chan<- string, release <-chan struct{}) Fn {
	return func(ctx context.Context, publish func(Event)) (any, error) {
		if started != nil {
			started <- "running"
		}
		select {
		case <-release:
			return "released", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s)", id, err, snap.State)
	}
	return snap
}

func TestLifecycleDone(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	id, err := m.Submit("demo", doneFn(3, 42))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, m, id)
	if snap.State != StateDone {
		t.Fatalf("state %s, want done", snap.State)
	}
	if snap.Started.IsZero() || snap.Finished.IsZero() || snap.Created.IsZero() {
		t.Fatalf("missing timestamps: %+v", snap)
	}
	res, _, err := m.Result(id)
	if err != nil || res != 42 {
		t.Fatalf("result %v, %v; want 42, nil", res, err)
	}
	// 3 published events plus the running and done state events.
	evs, state, _, err := m.EventsSince(id, 0)
	if err != nil || state != StateDone {
		t.Fatalf("events: %v, state %s", err, state)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[0].Stage != "state" || evs[0].Item != "running" {
		t.Fatalf("first event %+v, want running state event", evs[0])
	}
	if last := evs[len(evs)-1]; last.Stage != "state" || last.Item != "done" {
		t.Fatalf("last event %+v, want done state event", last)
	}
	// Replay from the middle.
	evs, _, _, _ = m.EventsSince(id, 3)
	if len(evs) != 2 || evs[0].Seq != 3 {
		t.Fatalf("replay from 3: %+v", evs)
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	boom := errors.New("boom")
	id, _ := m.Submit("demo", func(ctx context.Context, publish func(Event)) (any, error) {
		return nil, boom
	})
	snap := waitTerminal(t, m, id)
	if snap.State != StateFailed || snap.Error != "boom" {
		t.Fatalf("snapshot %+v, want failed/boom", snap)
	}
	if _, _, err := m.Result(id); !errors.Is(err, boom) {
		t.Fatalf("result err %v, want boom", err)
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	id, _ := m.Submit("demo", func(ctx context.Context, publish func(Event)) (any, error) {
		panic("kaboom")
	})
	snap := waitTerminal(t, m, id)
	if snap.State != StateFailed {
		t.Fatalf("state %s, want failed", snap.State)
	}
	if _, _, err := m.Result(id); err == nil || snap.Error == "" {
		t.Fatalf("panic not surfaced: %+v", snap)
	}
}

func TestBoundedConcurrencyFIFO(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	first, _ := m.Submit("demo", blockingFn(started, release))
	<-started
	second, _ := m.Submit("demo", doneFn(0, "second"))
	// The second job must stay queued while the first occupies the slot.
	time.Sleep(20 * time.Millisecond)
	snap, err := m.Get(second)
	if err != nil || snap.State != StateQueued {
		t.Fatalf("second job state %s (%v), want queued", snap.State, err)
	}
	close(release)
	if s := waitTerminal(t, m, first); s.State != StateDone {
		t.Fatalf("first ended %s", s.State)
	}
	if s := waitTerminal(t, m, second); s.State != StateDone {
		t.Fatalf("second ended %s", s.State)
	}
}

func TestCancelQueued(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Submit("demo", blockingFn(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _ := m.Submit("demo", doneFn(0, nil))
	snap, err := m.Cancel(queued)
	if err != nil || snap.State != StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", snap, err)
	}
	if _, _, err := m.Result(queued); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled result err %v, want context.Canceled", err)
	}
}

func TestCancelRunningLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 2})
	started := make(chan string, 1)
	id, _ := m.Submit("demo", blockingFn(started, nil))
	<-started
	snap, err := m.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateRunning && snap.State != StateCanceled {
		t.Fatalf("state %s right after cancel", snap.State)
	}
	final := waitTerminal(t, m, id)
	if final.State != StateCanceled {
		t.Fatalf("final state %s, want canceled", final.State)
	}
	if _, _, err := m.Result(id); !errors.Is(err, context.Canceled) {
		t.Fatalf("result err %v, want context.Canceled", err)
	}
	// The job goroutine must have exited; allow the runtime a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestCancelRacingCompletionKeepsResult(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	// The function ignores its context and completes; a cancel that loses
	// the race must not discard the finished result.
	started := make(chan string, 1)
	release := make(chan struct{})
	id, _ := m.Submit("demo", func(ctx context.Context, publish func(Event)) (any, error) {
		started <- "running"
		<-release
		return "finished", nil
	})
	<-started
	if _, err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(release)
	snap := waitTerminal(t, m, id)
	if snap.State != StateDone {
		t.Fatalf("state %s, want done (completion beat the cancel)", snap.State)
	}
	if res, _, err := m.Result(id); err != nil || res != "finished" {
		t.Fatalf("result %v, %v", res, err)
	}
}

func TestResultTTLEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	m := NewManager(Config{Workers: 1, ResultTTL: time.Minute, now: now})
	id, _ := m.Submit("demo", doneFn(0, "v"))
	waitTerminal(t, m, id)
	if _, err := m.Get(id); err != nil {
		t.Fatalf("fresh job evicted: %v", err)
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := m.Get(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job still present: %v", err)
	}
}

func TestLRURetentionBound(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		clock = clock.Add(time.Second)
		return clock
	}
	m := NewManager(Config{Workers: 1, MaxRetained: 2, ResultTTL: -1, now: now})
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit("demo", doneFn(0, i))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, id)
		ids = append(ids, id)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job survived past the retention bound: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("recent job %s evicted: %v", id, err)
		}
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("List holds %d jobs, want 2", got)
	}
}

func TestShutdownDrainsRunningJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	id, _ := m.Submit("demo", blockingFn(started, release))
	<-started
	queued, _ := m.Submit("demo", doneFn(0, "q"))
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Both the running and the already-queued job drained to done.
	for _, jid := range []string{id, queued} {
		if snap, err := m.Get(jid); err != nil || snap.State != StateDone {
			t.Fatalf("job %s after drain: %+v, %v", jid, snap, err)
		}
	}
	if _, err := m.Submit("demo", doneFn(0, nil)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestShutdownExpiredDrainCancels(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	id, _ := m.Submit("demo", blockingFn(started, nil)) // never releases
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err %v, want deadline", err)
	}
	if snap, err := m.Get(id); err != nil || snap.State != StateCanceled {
		t.Fatalf("job after expired drain: %+v, %v", snap, err)
	}
	if m.Active() != 0 {
		t.Fatalf("%d jobs still active after shutdown", m.Active())
	}
}

func TestRunMatchesDirectCall(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	got, err := m.Run(context.Background(), "demo", doneFn(2, "hello"))
	if err != nil || got != "hello" {
		t.Fatalf("run: %v, %v", got, err)
	}
	// One-shot jobs are not retained.
	if jobs := m.List(); len(jobs) != 0 {
		t.Fatalf("one-shot job retained: %+v", jobs)
	}
}

func TestRunHonorsCallerContext(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.Run(ctx, "demo", blockingFn(nil, nil))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("run err %v, want deadline", err)
	}
	if m.Active() != 0 {
		t.Fatal("canceled one-shot job still active")
	}
}

func TestEventsStreamReplayAcrossSubscribers(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	id, _ := m.Submit("demo", func(ctx context.Context, publish func(Event)) (any, error) {
		started <- "running"
		publish(Event{Stage: "step", Current: 1, Total: 2})
		<-release
		publish(Event{Stage: "step", Current: 2, Total: 2})
		return nil, nil
	})
	<-started
	// First subscriber drains what exists so far.
	var from int
	deadline := time.Now().Add(5 * time.Second)
	for from < 2 { // running state event + step 1
		evs, _, ch, err := m.EventsSince(id, from)
		if err != nil {
			t.Fatal(err)
		}
		from += len(evs)
		if from >= 2 {
			break
		}
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			t.Fatal("timed out waiting for early events")
		}
	}
	close(release)
	waitTerminal(t, m, id)
	// A later subscriber replays everything from scratch.
	evs, state, _, err := m.EventsSince(id, 0)
	if err != nil || !state.Terminal() {
		t.Fatalf("late subscribe: %v, %s", err, state)
	}
	if len(evs) != 4 { // running, step1, step2, done
		t.Fatalf("late replay got %d events: %+v", len(evs), evs)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	const n = 32
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := m.Submit("demo", doneFn(1, i))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		snap := waitTerminal(t, m, id)
		if snap.State != StateDone {
			t.Fatalf("job %d (%s): %s", i, id, snap.State)
		}
		if res, _, err := m.Result(id); err != nil || res != i {
			t.Fatalf("job %d result %v, %v", i, res, err)
		}
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty id %q", id)
		}
		seen[id] = true
	}
}

func TestUnknownJobErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	if _, err := m.Get("j-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("get: %v", err)
	}
	if _, err := m.Cancel("j-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel: %v", err)
	}
	if _, _, err := m.Result("j-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("result: %v", err)
	}
	if _, _, _, err := m.EventsSince("j-nope", 0); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("events: %v", err)
	}
	id, _ := m.Submit("demo", doneFn(0, nil))
	waitTerminal(t, m, id)
	if _, _, err := m.Result(id); err != nil {
		t.Fatalf("result: %v", err)
	}
	if err := m.Remove(id); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := m.Get(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("removed job still present: %v", err)
	}
}

func TestResultNotFinished(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	id, _ := m.Submit("demo", blockingFn(started, release))
	<-started
	if _, _, err := m.Result(id); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("running result err %v, want ErrNotFinished", err)
	}
	if err := m.Remove(id); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("remove running err %v, want ErrNotFinished", err)
	}
	close(release)
	waitTerminal(t, m, id)
}

func TestSnapshotJSONShape(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	id, _ := m.Submit("simulate", doneFn(0, nil))
	snap := waitTerminal(t, m, id)
	if snap.ID != id || snap.Kind != "simulate" {
		t.Fatalf("snapshot identity: %+v", snap)
	}
	if snap.Events != 2 {
		t.Fatalf("events count %d, want 2 (running + done)", snap.Events)
	}
	if fmt.Sprint(snap.State) != "done" {
		t.Fatalf("state renders as %q", snap.State)
	}
}
