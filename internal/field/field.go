// Package field implements the field-test protocol of Section VII: selecting
// candidate blocks from a risk map, classifying them into hidden high/
// medium/low risk groups, simulating ranger patrols over the recommended
// areas against the true poaching process, and reporting the Table III
// statistics with Pearson chi-squared significance tests.
package field

import (
	"errors"
	"fmt"
	"sort"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/rng"
	"paws/internal/stats"
)

// RiskGroup labels the paper's three experiment arms.
type RiskGroup int

const (
	// High is the 80–100th percentile of predicted risk.
	High RiskGroup = iota
	// Medium is the 40–60th percentile.
	Medium
	// Low is the 0–20th percentile.
	Low
)

func (g RiskGroup) String() string {
	switch g {
	case High:
		return "High"
	case Medium:
		return "Medium"
	case Low:
		return "Low"
	}
	return fmt.Sprintf("RiskGroup(%d)", int(g))
}

// Block is a candidate b×b km test region.
type Block struct {
	Cells []int // park cell ids
	Risk  float64
	// History is the total past patrol effort over the block (for the
	// low-history filter).
	History float64
	Group   RiskGroup
}

// Protocol configures a field test.
type Protocol struct {
	// BlockSize is the block edge length in cells (2 for MFNP, 3 for SWS).
	BlockSize int
	// PerGroup is the number of blocks selected per risk group.
	PerGroup int
	// HistoryPercentileCap filters out blocks whose historical patrol effort
	// is above this percentile (the paper uses 50 to test predictive power
	// in sparsely patrolled areas).
	HistoryPercentileCap float64
	// Months is the duration of the trial.
	Months int
	// StartMonth indexes the simulated month the trial begins at.
	StartMonth int
	// EffortPerCellMonth scales how much patrol effort rangers spend per
	// cell per month in recommended blocks.
	EffortPerCellMonth float64
	// IntuitionBias ∈ [0,1] adds ranger intuition: effort mildly correlated
	// with the true attractiveness, mirroring the paper's observation that
	// rangers allocated more effort to high-risk areas without being told.
	IntuitionBias float64
	Seed          int64
}

// GroupResult is one row of Table III.
type GroupResult struct {
	Group        RiskGroup
	Observations int     // # cells where poaching was detected
	CellsVisited int     // # distinct 1×1 km cells patrolled
	EffortKM     float64 // total patrol effort
	ObsPerCell   float64 // Observations / CellsVisited
}

// Result is a full field-test trial.
type Result struct {
	Groups []GroupResult // ordered High, Medium, Low
	ChiSq  stats.ChiSquared
	Blocks []Block
}

// SelectBlocks tiles the park into non-overlapping BlockSize×BlockSize
// blocks, filters by history, and classifies blocks into risk groups by the
// percentile bands of the paper (80–100 high, 40–60 medium, 0–20 low).
func SelectBlocks(park *geo.Park, risk []float64, history []float64, proto Protocol, r *rng.RNG) ([]Block, error) {
	if proto.BlockSize < 1 {
		return nil, errors.New("field: block size must be ≥ 1")
	}
	if len(risk) != park.Grid.NumCells() || len(history) != park.Grid.NumCells() {
		return nil, errors.New("field: risk/history length mismatch")
	}
	g := park.Grid
	var blocks []Block
	for y := 0; y+proto.BlockSize <= g.H; y += proto.BlockSize {
		for x := 0; x+proto.BlockSize <= g.W; x += proto.BlockSize {
			var cells []int
			var riskSum, histSum float64
			for dy := 0; dy < proto.BlockSize; dy++ {
				for dx := 0; dx < proto.BlockSize; dx++ {
					id := g.CellID(x+dx, y+dy)
					if id < 0 {
						continue
					}
					cells = append(cells, id)
					riskSum += risk[id]
					histSum += history[id]
				}
			}
			// Require fully in-park blocks so areas are comparable.
			if len(cells) != proto.BlockSize*proto.BlockSize {
				continue
			}
			blocks = append(blocks, Block{
				Cells:   cells,
				Risk:    riskSum / float64(len(cells)),
				History: histSum,
			})
		}
	}
	if len(blocks) == 0 {
		return nil, errors.New("field: no complete blocks in park")
	}
	// Low-history filter.
	if proto.HistoryPercentileCap > 0 && proto.HistoryPercentileCap < 100 {
		hist := make([]float64, len(blocks))
		for i, b := range blocks {
			hist[i] = b.History
		}
		cap := stats.Percentile(hist, proto.HistoryPercentileCap)
		var kept []Block
		for _, b := range blocks {
			if b.History <= cap {
				kept = append(kept, b)
			}
		}
		blocks = kept
	}
	if len(blocks) < 3*proto.PerGroup {
		return nil, fmt.Errorf("field: only %d candidate blocks for %d needed", len(blocks), 3*proto.PerGroup)
	}
	// Risk percentile bands.
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Risk < blocks[b].Risk })
	n := len(blocks)
	band := func(loP, hiP float64) []int {
		lo := int(loP / 100 * float64(n))
		hi := int(hiP / 100 * float64(n))
		if hi > n {
			hi = n
		}
		var idx []int
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		return idx
	}
	pick := func(idx []int, grp RiskGroup, out *[]Block) error {
		if len(idx) < proto.PerGroup {
			return fmt.Errorf("field: band for %v has only %d blocks", grp, len(idx))
		}
		for _, k := range r.SampleWithoutReplacement(len(idx), proto.PerGroup) {
			b := blocks[idx[k]]
			b.Group = grp
			*out = append(*out, b)
		}
		return nil
	}
	var selected []Block
	if err := pick(band(80, 100), High, &selected); err != nil {
		return nil, err
	}
	if err := pick(band(40, 60), Medium, &selected); err != nil {
		return nil, err
	}
	if err := pick(band(0, 20), Low, &selected); err != nil {
		return nil, err
	}
	return selected, nil
}

// Run simulates the trial: rangers patrol the selected blocks (risk group
// hidden from them) and the true poaching process generates attacks and
// detections.
func Run(park *geo.Park, truth *poach.GroundTruth, risk, history []float64, proto Protocol) (*Result, error) {
	if proto.Months < 1 {
		return nil, errors.New("field: months must be ≥ 1")
	}
	root := rng.New(proto.Seed)
	blocks, err := SelectBlocks(park, risk, history, proto, root.Split("select"))
	if err != nil {
		return nil, err
	}
	attract := park.FeatureByName("animal_density")

	effRNG := root.Split("effort")
	atkRNG := root.Split("attacks")

	type tally struct {
		obsCells map[int]bool
		cells    map[int]bool
		effort   float64
	}
	tallies := map[RiskGroup]*tally{
		High:   {obsCells: map[int]bool{}, cells: map[int]bool{}},
		Medium: {obsCells: map[int]bool{}, cells: map[int]bool{}},
		Low:    {obsCells: map[int]bool{}, cells: map[int]bool{}},
	}
	for _, b := range blocks {
		ta := tallies[b.Group]
		for m := 0; m < proto.Months; m++ {
			month := proto.StartMonth + m
			for _, cell := range b.Cells {
				// Ranger effort: lognormal-ish base plus intuition term.
				e := proto.EffortPerCellMonth * (0.4 + effRNG.Float64())
				if attract != nil {
					e *= 1 + proto.IntuitionBias*attract.V[cell]
				}
				// Some cells are skipped (limited resources).
				if effRNG.Bernoulli(0.25) {
					continue
				}
				ta.cells[cell] = true
				ta.effort += e
				if atkRNG.Bernoulli(truth.AttackProb(cell, month, 0)) &&
					atkRNG.Bernoulli(truth.DetectProb(e)) {
					ta.obsCells[cell] = true
				}
			}
		}
	}
	res := &Result{Blocks: blocks}
	for _, grp := range []RiskGroup{High, Medium, Low} {
		ta := tallies[grp]
		gr := GroupResult{
			Group:        grp,
			Observations: len(ta.obsCells),
			CellsVisited: len(ta.cells),
			EffortKM:     ta.effort,
		}
		if gr.CellsVisited > 0 {
			gr.ObsPerCell = float64(gr.Observations) / float64(gr.CellsVisited)
		}
		res.Groups = append(res.Groups, gr)
	}
	// Chi-squared on (risk group) × (cell had observation / not).
	table := make([][]float64, 0, 3)
	for _, gr := range res.Groups {
		if gr.CellsVisited == 0 {
			continue
		}
		table = append(table, []float64{
			float64(gr.Observations),
			float64(gr.CellsVisited - gr.Observations),
		})
	}
	if len(table) >= 2 {
		if cs, err := stats.ChiSquaredTest(table); err == nil {
			res.ChiSq = cs
		} else {
			res.ChiSq = stats.ChiSquared{PValue: 1}
		}
	} else {
		res.ChiSq = stats.ChiSquared{PValue: 1}
	}
	return res, nil
}
