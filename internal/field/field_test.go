package field

import (
	"testing"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/rng"
)

func fieldPark(t *testing.T) *geo.Park {
	t.Helper()
	cfg := geo.ParkConfig{
		Name: "FIELD", Seed: 61, W: 30, H: 30, TargetCells: 700,
		Shape: geo.ShapeRound, NumRivers: 2, NumRoads: 3, NumVillages: 3,
		NumPosts: 3, ExtraFeatures: 2,
	}
	p, err := geo.GeneratePark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// trueRisk builds a risk map from the ground truth itself (a perfect
// predictor), which the field test should validate decisively.
func trueRisk(park *geo.Park, truth *poach.GroundTruth) []float64 {
	risk := make([]float64, park.Grid.NumCells())
	for id := range risk {
		risk[id] = truth.AttackProb(id, 0, 0)
	}
	return risk
}

func defaultProto(seed int64) Protocol {
	return Protocol{
		BlockSize:            2,
		PerGroup:             5,
		HistoryPercentileCap: 60,
		Months:               4,
		EffortPerCellMonth:   2.0,
		IntuitionBias:        0.3,
		Seed:                 seed,
	}
}

func TestSelectBlocksGroupsAndFilter(t *testing.T) {
	park := fieldPark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	truth.Bias = -1
	risk := trueRisk(park, truth)
	history := make([]float64, park.Grid.NumCells())
	// Heavy history in the west half.
	for id := range history {
		x, _ := park.Grid.CellXY(id)
		if x < park.Grid.W/2 {
			history[id] = 10
		}
	}
	proto := defaultProto(1)
	blocks, err := SelectBlocks(park, risk, history, proto, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3*proto.PerGroup {
		t.Fatalf("blocks = %d want %d", len(blocks), 3*proto.PerGroup)
	}
	counts := map[RiskGroup]int{}
	var hiMin, loMax float64
	hiMin, loMax = 2, -1
	for _, b := range blocks {
		counts[b.Group]++
		switch b.Group {
		case High:
			if b.Risk < hiMin {
				hiMin = b.Risk
			}
		case Low:
			if b.Risk > loMax {
				loMax = b.Risk
			}
		}
		if len(b.Cells) != proto.BlockSize*proto.BlockSize {
			t.Fatal("incomplete block selected")
		}
	}
	for _, grp := range []RiskGroup{High, Medium, Low} {
		if counts[grp] != proto.PerGroup {
			t.Fatalf("group %v has %d blocks", grp, counts[grp])
		}
	}
	// High-risk blocks must carry more predicted risk than low-risk blocks.
	if hiMin <= loMax {
		t.Fatalf("risk bands overlap: high min %v ≤ low max %v", hiMin, loMax)
	}
}

func TestSelectBlocksErrors(t *testing.T) {
	park := fieldPark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	risk := trueRisk(park, truth)
	history := make([]float64, park.Grid.NumCells())
	proto := defaultProto(1)
	proto.BlockSize = 0
	if _, err := SelectBlocks(park, risk, history, proto, rng.New(1)); err == nil {
		t.Fatal("expected block-size error")
	}
	proto = defaultProto(1)
	if _, err := SelectBlocks(park, risk[:5], history, proto, rng.New(1)); err == nil {
		t.Fatal("expected length error")
	}
	proto = defaultProto(1)
	proto.PerGroup = 10000
	if _, err := SelectBlocks(park, risk, history, proto, rng.New(1)); err == nil {
		t.Fatal("expected not-enough-blocks error")
	}
}

func TestRunFieldTestDiscriminates(t *testing.T) {
	park := fieldPark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	truth.Bias = -0.5 // common attacks so the trial has power
	risk := trueRisk(park, truth)
	history := make([]float64, park.Grid.NumCells())
	res, err := Run(park, truth, risk, history, defaultProto(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	high, low := res.Groups[0], res.Groups[2]
	if high.Group != High || low.Group != Low {
		t.Fatal("group order must be High, Medium, Low")
	}
	if high.CellsVisited == 0 || low.CellsVisited == 0 {
		t.Fatal("no patrolling happened")
	}
	// With a perfect predictor, high-risk areas must yield more obs/cell.
	if high.ObsPerCell <= low.ObsPerCell {
		t.Fatalf("high %v ≤ low %v obs/cell", high.ObsPerCell, low.ObsPerCell)
	}
	if res.ChiSq.PValue < 0 || res.ChiSq.PValue > 1 {
		t.Fatalf("p-value %v", res.ChiSq.PValue)
	}
}

func TestRunDeterministic(t *testing.T) {
	park := fieldPark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	truth.Bias = -1
	risk := trueRisk(park, truth)
	history := make([]float64, park.Grid.NumCells())
	r1, err := Run(park, truth, risk, history, defaultProto(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(park, truth, risk, history, defaultProto(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Groups {
		if r1.Groups[i] != r2.Groups[i] {
			t.Fatal("field test not deterministic")
		}
	}
}

func TestRunValidation(t *testing.T) {
	park := fieldPark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	risk := trueRisk(park, truth)
	history := make([]float64, park.Grid.NumCells())
	proto := defaultProto(1)
	proto.Months = 0
	if _, err := Run(park, truth, risk, history, proto); err == nil {
		t.Fatal("expected months error")
	}
}

func TestRiskGroupString(t *testing.T) {
	if High.String() != "High" || Medium.String() != "Medium" || Low.String() != "Low" {
		t.Fatal("group names wrong")
	}
	if RiskGroup(9).String() == "" {
		t.Fatal("unknown group should still print")
	}
}
