package plan

import (
	"testing"
	"time"
)

// steppingClock is a fake clock advancing one second per reading, so a
// Runtime stamped from it counts now() calls instead of wall time.
type steppingClock struct {
	t time.Time
	n int
}

func (c *steppingClock) now() time.Time {
	c.t = c.t.Add(time.Second)
	c.n++
	return c.t
}

// TestSolveRuntimeDeterministic pins Plan.Runtime under the injected
// clock: the Frank-Wolfe path reads the clock exactly twice (start and
// stamp), so Runtime is exactly one fake second — byte-identical across
// runs, never a function of host load.
func TestSolveRuntimeDeterministic(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for _, runs := range []int{1, 2} {
		clk := &steppingClock{t: time.Unix(1_700_000_000, 0)}
		cfg := Config{T: 6, K: 2, Segments: 6, Solver: SolverFrankWolfe, now: clk.now}
		p, err := Solve(region, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Runtime != time.Second {
			t.Fatalf("run %d: Runtime = %v from injected clock, want exactly 1s", runs, p.Runtime)
		}
		if clk.n != 2 {
			t.Fatalf("run %d: Solve read the clock %d times, want 2 (start + stamp)", runs, clk.n)
		}
	}
}

// TestSolveHierarchicalRuntimeDeterministic verifies the now hook
// propagates through the hierarchical path: the returned fine plan's
// Runtime is a whole number of fake seconds (every reading came from the
// injected clock) and identical across repeated solves.
func TestSolveHierarchicalRuntimeDeterministic(t *testing.T) {
	park := planPark(t)
	model := hierModel(park)
	h := HierOptions{FineMaxCells: 20}
	var ref time.Duration
	for run := 1; run <= 2; run++ {
		clk := &steppingClock{t: time.Unix(1_700_000_000, 0)}
		cfg := Config{T: 6, K: 2, Segments: 6, Beta: 0.3, Solver: SolverFrankWolfe, now: clk.now}
		p, _, err := SolveHierarchical(park, park.Posts[0], model, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if p.Runtime <= 0 || p.Runtime%time.Second != 0 {
			t.Fatalf("run %d: Runtime = %v, want a positive whole number of fake seconds", run, p.Runtime)
		}
		if run == 1 {
			ref = p.Runtime
		} else if p.Runtime != ref {
			t.Fatalf("Runtime not reproducible: run 1 = %v, run 2 = %v", ref, p.Runtime)
		}
	}
}
