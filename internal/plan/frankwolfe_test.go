package plan

import (
	"math"
	"testing"
	"testing/quick"

	"paws/internal/rng"
)

func TestConcaveHullOfConcaveIsIdentity(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 2, 3, 3.5} // decreasing slopes: already concave
	h := newConcaveHull(xs, ys)
	if len(h.xs) != 4 {
		t.Fatalf("concave input should keep all breakpoints, got %d", len(h.xs))
	}
	for _, x := range []float64{0, 0.5, 1.7, 3} {
		want := interpolate(xs, ys, x)
		if math.Abs(h.eval(x)-want) > 1e-12 {
			t.Fatalf("hull(%v) = %v want %v", x, h.eval(x), want)
		}
	}
}

func TestConcaveHullDominatesStaircase(t *testing.T) {
	// Staircase (non-concave): hull must be ≥ everywhere and equal at the
	// retained breakpoints.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 0, 1, 1, 2}
	h := newConcaveHull(xs, ys)
	for x := 0.0; x <= 4; x += 0.1 {
		if h.eval(x) < interpolate(xs, ys, x)-1e-12 {
			t.Fatalf("hull below function at %v", x)
		}
	}
	// Hull of this staircase is the chord from (0,0) to (4,2).
	if math.Abs(h.eval(2)-1) > 1e-12 {
		t.Fatalf("hull(2) = %v want 1", h.eval(2))
	}
	// Slopes must be non-increasing.
	prev := math.Inf(1)
	for i := 1; i < len(h.xs); i++ {
		s := (h.ys[i] - h.ys[i-1]) / (h.xs[i] - h.xs[i-1])
		if s > prev+1e-12 {
			t.Fatalf("hull slopes increase: %v after %v", s, prev)
		}
		prev = s
	}
}

func TestConcaveHullProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.2 + r.Float64()
			xs[i] = x
			ys[i] = r.Float64() * 3
		}
		h := newConcaveHull(xs, ys)
		// Hull dominates and touches the endpoints.
		if math.Abs(h.eval(xs[0])-ys[0]) > 1e-9 {
			return false
		}
		for i := range xs {
			if h.eval(xs[i]) < ys[i]-1e-9 {
				return false
			}
		}
		// Concavity of slopes.
		prev := math.Inf(1)
		for i := 1; i < len(h.xs); i++ {
			s := (h.ys[i] - h.ys[i-1]) / (h.xs[i] - h.xs[i-1])
			if s > prev+1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConcaveHullSlope(t *testing.T) {
	h := newConcaveHull([]float64{0, 2, 4}, []float64{0, 2, 3})
	if got := h.slope(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("slope(1) = %v want 1", got)
	}
	if got := h.slope(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("slope(3) = %v want 0.5", got)
	}
	if got := h.slope(10); got != 0 {
		t.Fatalf("slope beyond domain = %v want 0", got)
	}
}

func interpolate(xs, ys []float64, x float64) float64 {
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			t := (x - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1]*(1-t) + ys[i]*t
		}
	}
	return ys[len(ys)-1]
}

func TestFrankWolfeMatchesMILPOnConcaveModel(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for i, c := range region.Cells {
		model.rate[c] = 0.1 + 0.15*float64(i%5)
	}
	cfgFW := Config{T: 6, K: 2, Segments: 6, Solver: SolverFrankWolfe}
	fw, err := Solve(region, model, cfgFW)
	if err != nil {
		t.Fatal(err)
	}
	cfgMILP := Config{T: 6, K: 2, Segments: 6, Solver: SolverMILP}
	milpPlan, err := Solve(region, model, cfgMILP)
	if err != nil {
		t.Fatal(err)
	}
	// Concave utilities: both should find (nearly) the same optimum.
	if fw.Objective < milpPlan.Objective-0.02*math.Abs(milpPlan.Objective)-1e-9 {
		t.Fatalf("FW %v far below MILP %v on concave instance", fw.Objective, milpPlan.Objective)
	}
}

func TestFrankWolfeFlowBudget(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	p, err := Solve(region, model, Config{T: 8, K: 3, Segments: 5, Solver: SolverFrankWolfe})
	if err != nil {
		t.Fatal(err)
	}
	// Every FW iterate is a convex combination of unit paths with T visits,
	// so total effort must be exactly K·T.
	if math.Abs(p.TotalEffort()-24) > 1e-6 {
		t.Fatalf("total effort %v want 24", p.TotalEffort())
	}
	for _, e := range p.Effort {
		if e < -1e-9 {
			t.Fatalf("negative effort %v", e)
		}
	}
	if p.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
}

func TestFrankWolfeBestPathPrefersReward(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &fwProblem{region: region, T: 6, K: 1}
	w := make([]float64, region.NumCells())
	// Reward only one adjacent cell; the path should visit it repeatedly.
	w[1] = 5
	visits := f.bestPath(w)
	if visits[1] < 2 {
		t.Fatalf("path should dwell on rewarded cell, visits = %v", visits[1])
	}
	var total float64
	for _, v := range visits {
		total += v
	}
	if math.Abs(total-6) > 1e-9 {
		t.Fatalf("path visits %v want T=6", total)
	}
}

func TestSolverAutoAtLeastFrankWolfe(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	auto, err := Solve(region, model, Config{T: 6, K: 2, Segments: 6})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := Solve(region, model, Config{T: 6, K: 2, Segments: 6, Solver: SolverFrankWolfe})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Objective < fw.Objective-1e-9 {
		t.Fatalf("auto (%v) must never be worse than FW alone (%v)", auto.Objective, fw.Objective)
	}
}

// nonConcaveModel has a staircase detection function, forcing SOS2 binaries
// in the MILP path.
type nonConcaveModel struct{}

func (nonConcaveModel) Detect(cell int, effort float64) float64 {
	// Flat, then a jump past 3 km: sampled at breakpoints {0,2,4,…} this
	// gives increasing slopes, which is non-concave.
	if effort < 3 {
		return 0.01 * float64(cell%3+1)
	}
	if effort < 6 {
		return 0.3
	}
	return 0.35
}

func (nonConcaveModel) Uncertainty(cell int, effort float64) float64 { return 0 }

func TestSolverMILPRefinesNonConcave(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Solve(region, nonConcaveModel{}, Config{T: 4, K: 2, Segments: 4, Solver: SolverMILP})
	if err != nil {
		t.Fatal(err)
	}
	if p.Binaries == 0 {
		t.Fatal("staircase utilities must produce binaries")
	}
	if p.Objective <= 0 {
		t.Fatalf("objective %v", p.Objective)
	}
}
