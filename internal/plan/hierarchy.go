package plan

import (
	"context"
	"fmt"
	"math"

	"paws/internal/geo"
	"paws/internal/obs"
	"paws/internal/par"
)

// This file implements hierarchical planning for very large parks. A flat
// breadth-first region around a patrol post (NewRegion) sees only the cells
// nearest the post — at 10^6 cells that is an arbitrary sliver of the park,
// chosen with no regard for where the model actually predicts poaching. The
// hierarchical planner fixes the targeting without giving up the per-post
// solver:
//
//  1. Coarsen the park into f×f super-cells and solve the same patrol
//     problem over the coarse lattice with Frank-Wolfe (the coarse instance
//     is a few hundred cells regardless of park size, so this is
//     milliseconds). The coarse cell model averages the predictive model
//     over a deterministic sample of member cells.
//  2. Grow the post's fine region toward the super-cells the coarse plan
//     actually patrols: a best-first expansion from the post whose frontier
//     is ordered by coarse effort (ties broken by cell id), capped at the
//     usual region size.
//  3. Solve the fine region with the existing per-post machinery (Solve +
//     ExtractRoutes) — every downstream artifact (effort map, routes,
//     objective) keeps its exact semantics.
//
// SolveHierarchicalAll shares one coarsening across posts and refines each
// post's region in parallel under the par determinism contract: regions and
// plans depend only on the post, never on scheduling, so results are
// byte-identical for any worker count.

// HierOptions tunes hierarchical planning. The zero value derives everything
// from the park and the fine Config.
type HierOptions struct {
	// Factor is the super-cell edge length in fine cells. 0 derives the
	// smallest factor that keeps the whole park within MaxCoarseCells
	// super-cells, so the coarse solve always sees the full park.
	Factor int
	// MaxCoarseCells caps the coarse region size (default 256).
	MaxCoarseCells int
	// SamplePerSuper is the number of member cells sampled per super-cell
	// for the coarse model (default 4). Members are sampled by deterministic
	// stride, so the coarse model is a pure function of the park and model.
	SamplePerSuper int
	// CoarseT overrides the coarse horizon (default: the fine Config.T).
	// One coarse step spans f fine cells, so even the default horizon
	// explores far beyond the fine region.
	CoarseT int
	// FineMaxCells caps the refined per-post region (default 40, matching
	// the flat planner's default region size).
	FineMaxCells int
	// Workers bounds the goroutines SolveHierarchicalAll uses to refine
	// posts concurrently (par.Workers semantics). The model must be safe
	// for concurrent lookups when Workers ≠ 1.
	Workers int
}

// withDefaults resolves zero fields against the park and fine config.
func (h HierOptions) withDefaults(park *geo.Park, cfg Config) HierOptions {
	if h.MaxCoarseCells <= 0 {
		h.MaxCoarseCells = 256
	}
	if h.Factor <= 0 {
		n := park.Grid.NumCells()
		h.Factor = int(math.Ceil(math.Sqrt(float64(n) / float64(h.MaxCoarseCells))))
		if h.Factor < 1 {
			h.Factor = 1
		}
	}
	if h.SamplePerSuper <= 0 {
		h.SamplePerSuper = 4
	}
	if h.CoarseT <= 0 {
		h.CoarseT = cfg.T
	}
	if h.FineMaxCells <= 0 {
		h.FineMaxCells = 40
	}
	return h
}

// coarsening aggregates a park into f×f super-cells. Super-cells are indexed
// in first-seen order over ascending fine cell ids, so the numbering — and
// everything built on it — is deterministic.
type coarsening struct {
	f      int
	sw, sh int
	// super[id] is the super-cell index of fine cell id.
	super []int32
	// members[s] lists the fine cell ids of super-cell s, ascending.
	members [][]int
	// lx, ly are the coarse lattice coordinates of each super-cell.
	lx, ly []int32
	// lattice maps a coarse lattice index (ly*sw + lx) to its super-cell
	// index, or -1 where no park cell falls.
	lattice []int32
}

// newCoarsening buckets every park cell into its super-cell.
func newCoarsening(park *geo.Park, f int) *coarsening {
	g := park.Grid
	co := &coarsening{
		f:  f,
		sw: (g.W + f - 1) / f,
		sh: (g.H + f - 1) / f,
	}
	co.lattice = make([]int32, co.sw*co.sh)
	for i := range co.lattice {
		co.lattice[i] = -1
	}
	n := g.NumCells()
	co.super = make([]int32, n)
	for id := 0; id < n; id++ {
		x, y := g.CellXY(id)
		li := (y/f)*co.sw + x/f
		s := co.lattice[li]
		if s < 0 {
			s = int32(len(co.members))
			co.lattice[li] = s
			co.members = append(co.members, nil)
			co.lx = append(co.lx, int32(x/f))
			co.ly = append(co.ly, int32(y/f))
		}
		co.super[id] = s
		co.members[s] = append(co.members[s], id)
	}
	return co
}

// sampleMembers picks ≤ k member cells of each super-cell by deterministic
// stride over the ascending member list.
func (co *coarsening) sampleMembers(k int) [][]int {
	out := make([][]int, len(co.members))
	for s, ms := range co.members {
		if len(ms) <= k {
			out[s] = ms
			continue
		}
		picks := make([]int, k)
		for i := 0; i < k; i++ {
			picks[i] = ms[i*len(ms)/k]
		}
		out[s] = picks
	}
	return out
}

// coarseRegion builds the planning region over super-cells reachable from
// the post's super-cell (breadth-first over coarse 4-adjacency, capped at
// maxCells). Region.Cells hold super-cell indices, which is what the coarse
// model interprets.
func (co *coarsening) coarseRegion(park *geo.Park, post, maxCells int) *Region {
	start := int(co.super[post])
	r := &Region{Park: park, Post: start, index: map[int]int{}}
	queue := []int{start}
	seen := map[int]bool{start: true}
	for len(queue) > 0 && len(r.Cells) < maxCells {
		cur := queue[0]
		queue = queue[1:]
		r.index[cur] = len(r.Cells)
		r.Cells = append(r.Cells, cur)
		for _, nb := range co.coarseNeighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	r.Neighbors = make([][]int, len(r.Cells))
	for li, s := range r.Cells {
		for _, nb := range co.coarseNeighbors(s) {
			if lj, ok := r.index[nb]; ok {
				r.Neighbors[li] = append(r.Neighbors[li], lj)
			}
		}
	}
	return r
}

// coarseNeighbors returns the super-cell indices 4-adjacent to s on the
// coarse lattice, in fixed (+x, −x, +y, −y) order.
func (co *coarsening) coarseNeighbors(s int) []int {
	x, y := int(co.lx[s]), int(co.ly[s])
	var out []int
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nx, ny := x+d[0], y+d[1]
		if nx < 0 || nx >= co.sw || ny < 0 || ny >= co.sh {
			continue
		}
		if nb := co.lattice[ny*co.sw+nx]; nb >= 0 {
			out = append(out, int(nb))
		}
	}
	return out
}

// coarseModel averages the fine cell model over each super-cell's sampled
// members. Effort is interpreted as patrol intensity: a patrol spending c km
// in the super-cell patrols the sampled cells at that intensity. The
// averaged values stay in [0,1], so the coarse instance is a well-formed
// planning problem; it is only used to target refinement, never reported.
type coarseModel struct {
	base    CellModel
	samples [][]int
}

func (cm *coarseModel) Detect(sc int, effort float64) float64 {
	s := cm.samples[sc]
	var sum float64
	for _, cell := range s {
		sum += cm.base.Detect(cell, effort)
	}
	return sum / float64(len(s))
}

func (cm *coarseModel) Uncertainty(sc int, effort float64) float64 {
	s := cm.samples[sc]
	var sum float64
	for _, cell := range s {
		sum += cm.base.Uncertainty(cell, effort)
	}
	return sum / float64(len(s))
}

// growFineRegion expands a connected region from the post, always absorbing
// the frontier cell whose super-cell carries the most coarse effort (ties by
// smaller cell id). The result is the post's neighborhood bent toward where
// the coarse plan wants patrols, with the same structure NewRegion produces:
// Cells[0] is the post and Neighbors is the in-region 4-adjacency.
func growFineRegion(park *geo.Park, post, maxCells int, co *coarsening, superEffort []float64) *Region {
	g := park.Grid
	r := &Region{Park: park, Post: post, index: map[int]int{}}
	// Frontier max-heap ordered by (coarse effort desc, cell id asc) — a
	// total order, so pops are deterministic.
	better := func(a, b int) bool {
		ea, eb := superEffort[co.super[a]], superEffort[co.super[b]]
		if ea != eb {
			return ea > eb
		}
		return a < b
	}
	var heap []int
	push := func(id int) {
		heap = append(heap, id)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !better(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, rr, s := 2*i+1, 2*i+2, i
			if l < last && better(heap[l], heap[s]) {
				s = l
			}
			if rr < last && better(heap[rr], heap[s]) {
				s = rr
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	seen := map[int]bool{post: true}
	nbr := make([]int, 0, 8)
	absorb := func(id int) {
		r.index[id] = len(r.Cells)
		r.Cells = append(r.Cells, id)
		nbr = g.Neighbors8(id, nbr[:0])
		for _, n := range nbr {
			if !seen[n] {
				seen[n] = true
				push(n)
			}
		}
	}
	absorb(post)
	for len(heap) > 0 && len(r.Cells) < maxCells {
		absorb(pop())
	}
	r.Neighbors = make([][]int, len(r.Cells))
	for li, cell := range r.Cells {
		nbr = g.Neighbors4(cell, nbr[:0])
		for _, n := range nbr {
			if lj, ok := r.index[n]; ok {
				r.Neighbors[li] = append(r.Neighbors[li], lj)
			}
		}
	}
	return r
}

// SolveHierarchical computes a hierarchically-targeted plan for one post:
// coarse Frank-Wolfe over super-cells, effort-guided region refinement, then
// the standard Solve on the refined region. It returns the fine plan and its
// region (for route extraction and reporting).
func SolveHierarchical(park *geo.Park, post int, model CellModel, cfg Config, h HierOptions) (*Plan, *Region, error) {
	return SolveHierarchicalCtx(context.Background(), park, post, model, cfg, h)
}

// SolveHierarchicalCtx is SolveHierarchical with a context for
// observability: when ctx carries a trace (internal/obs), the coarse
// Frank-Wolfe pass and the fine refinement record one span per post.
// The plan itself is byte-identical with or without a trace.
func SolveHierarchicalCtx(ctx context.Context, park *geo.Park, post int, model CellModel, cfg Config, h HierOptions) (*Plan, *Region, error) {
	plans, regions, err := SolveHierarchicalAllCtx(ctx, park, []int{post}, model, cfg, h)
	if err != nil {
		return nil, nil, err
	}
	return plans[0], regions[0], nil
}

// SolveHierarchicalAll plans for many posts against one shared coarsening:
// the park is aggregated once, then each post runs its coarse solve and fine
// refinement on its own worker (par.MapErr), reusing the existing per-post
// solver for the refined regions. Results are index-ordered by post and
// byte-identical for any worker count.
func SolveHierarchicalAll(park *geo.Park, posts []int, model CellModel, cfg Config, h HierOptions) ([]*Plan, []*Region, error) {
	return SolveHierarchicalAllCtx(context.Background(), park, posts, model, cfg, h)
}

// SolveHierarchicalAllCtx is SolveHierarchicalAll with a context for
// observability (see SolveHierarchicalCtx).
func SolveHierarchicalAllCtx(ctx context.Context, park *geo.Park, posts []int, model CellModel, cfg Config, h HierOptions) ([]*Plan, []*Region, error) {
	n := park.Grid.NumCells()
	for _, p := range posts {
		if p < 0 || p >= n {
			return nil, nil, fmt.Errorf("plan: post cell %d out of range", p)
		}
	}
	h = h.withDefaults(park, cfg)
	co := newCoarsening(park, h.Factor)
	cm := &coarseModel{base: model, samples: co.sampleMembers(h.SamplePerSuper)}

	ccfg := cfg
	ccfg.T = h.CoarseT
	ccfg.Solver = SolverFrankWolfe // coarse stage only targets; skip the MILP
	ccfg.MaxEffort = 0             // re-derive for the coarse horizon

	type out struct {
		plan   *Plan
		region *Region
	}
	res, err := par.MapErr(h.Workers, len(posts), func(i int) (out, error) {
		post := posts[i]
		item := fmt.Sprintf("post %d", post)
		creg := co.coarseRegion(park, post, h.MaxCoarseCells)
		endCoarse := obs.StartSpan(ctx, "coarse", item)
		cplan, err := Solve(creg, cm, ccfg)
		endCoarse()
		if err != nil {
			return out{}, fmt.Errorf("plan: coarse solve for post %d: %w", post, err)
		}
		superEffort := make([]float64, len(co.members))
		for li, s := range creg.Cells {
			superEffort[s] = cplan.Effort[li]
		}
		fine := growFineRegion(park, post, h.FineMaxCells, co, superEffort)
		endRefine := obs.StartSpan(ctx, "refine", item)
		fplan, err := Solve(fine, model, cfg)
		endRefine()
		if err != nil {
			return out{}, fmt.Errorf("plan: fine solve for post %d: %w", post, err)
		}
		return out{fplan, fine}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	plans := make([]*Plan, len(posts))
	regions := make([]*Region, len(posts))
	for i, o := range res {
		plans[i] = o.plan
		regions[i] = o.region
	}
	return plans, regions, nil
}

// CoarseCells reports how many super-cells a hierarchical solve over this
// park would use at the given options — a sizing aid for callers deciding
// between flat and hierarchical planning.
func CoarseCells(park *geo.Park, cfg Config, h HierOptions) int {
	h = h.withDefaults(park, cfg)
	co := newCoarsening(park, h.Factor)
	return len(co.members)
}
