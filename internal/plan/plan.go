// Package plan implements the prescriptive stage of PAWS (Section VI):
// computing patrol routes that maximize expected detection of poaching,
// optionally penalized by predictive uncertainty.
//
// A patrol plan for one patrol post is a mixed strategy over paths on a
// time-unrolled graph: layers t = 0..T of the post's neighborhood cells,
// edges between 8-adjacent cells (and self-loops for waiting) in consecutive
// layers, one unit of flow from (post, 0) to (post, T). Patrol effort at a
// cell is K times the total flow entering that cell across layers 1..T,
// where K is the number of patrols conducted, so Σ_v c_v = K·T.
//
// The machine-learning model enters as a black box: per cell, the functions
// g_v(c) (probability a patrol with effort c detects an attack) and ν_v(c)
// (squashed predictive uncertainty). The planner samples the robust utility
//
//	U_v(c) = g_v(c) − β·g_v(c)·ν_v(c)
//
// at PWL breakpoints (both factors depend on the same scalar c, so the
// product is still univariate — see DESIGN.md) and maximizes Σ_v U_v(c_v)
// subject to the flow polytope, as a MILP when any sampled U_v is
// non-concave.
//
// For parks far larger than a patrol's reach, SolveHierarchical first runs
// a coarse Frank-Wolfe pass over f×f super-cell aggregates to decide where
// the effort mass belongs, grows the post's fine region toward that mass,
// and then solves the ordinary problem inside it (see hierarchy.go). This
// keeps planning interactive at 10^6 cells.
package plan

import (
	"errors"
	"fmt"
	"math"
	"time"

	"paws/internal/geo"
	"paws/internal/lp"
	"paws/internal/milp"
)

// CellModel is the black-box predictive interface the planner optimizes.
// Detect must return a value in [0,1]; Uncertainty must return the squashed
// uncertainty score in [0,1].
type CellModel interface {
	Detect(cell int, effort float64) float64
	Uncertainty(cell int, effort float64) float64
}

// Region is the planning neighborhood of one patrol post.
type Region struct {
	Park *geo.Park
	Post int
	// Cells are park cell ids in the region; Cells[0] == Post.
	Cells []int
	// index maps park cell id -> region-local index.
	index map[int]int
	// Neighbors lists region-local neighbor indices (4-adjacency, within the
	// region) for each region cell. One planner time step is the minimum
	// time to cross one cell, so moves are rook steps; waiting is modelled
	// by the planner's self-loops.
	Neighbors [][]int
}

// NewRegion builds the planning region of all cells within graph radius
// `radius` of the post (breadth-first over 8-neighbors), capped at maxCells.
func NewRegion(park *geo.Park, post, radius, maxCells int) (*Region, error) {
	if post < 0 || post >= park.Grid.NumCells() {
		return nil, fmt.Errorf("plan: post cell %d out of range", post)
	}
	if radius < 1 {
		return nil, errors.New("plan: radius must be ≥ 1")
	}
	if maxCells <= 0 {
		maxCells = 1 << 30
	}
	r := &Region{Park: park, Post: post, index: map[int]int{}}
	type qi struct{ cell, depth int }
	queue := []qi{{post, 0}}
	seen := map[int]bool{post: true}
	nbr := make([]int, 0, 8)
	for len(queue) > 0 && len(r.Cells) < maxCells {
		cur := queue[0]
		queue = queue[1:]
		r.index[cur.cell] = len(r.Cells)
		r.Cells = append(r.Cells, cur.cell)
		if cur.depth >= radius {
			continue
		}
		nbr = park.Grid.Neighbors8(cur.cell, nbr[:0])
		for _, n := range nbr {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, qi{n, cur.depth + 1})
			}
		}
	}
	// Local adjacency (self-loops are added by the planner, not here).
	r.Neighbors = make([][]int, len(r.Cells))
	for li, cell := range r.Cells {
		nbr = park.Grid.Neighbors4(cell, nbr[:0])
		for _, n := range nbr {
			if lj, ok := r.index[n]; ok {
				r.Neighbors[li] = append(r.Neighbors[li], lj)
			}
		}
	}
	return r, nil
}

// NumCells returns the number of cells in the region.
func (r *Region) NumCells() int { return len(r.Cells) }

// Config controls one planning solve.
type Config struct {
	// T is the number of time steps in a patrol (path length).
	T int
	// K is the number of patrols conducted over the planning horizon; the
	// effort at a cell is K × (flow into the cell).
	K float64
	// Segments is the number of PWL segments per cell utility.
	Segments int
	// Beta is the robustness weight β ∈ [0,1] on the uncertainty penalty.
	Beta float64
	// MaxEffort caps the per-cell effort used as the PWL domain. 0 derives
	// it as min(K·T, K·4): a cell cannot absorb more than the full flow.
	MaxEffort float64
	// Solver selects the optimization strategy (see SolverKind).
	Solver SolverKind
	// FWIters caps Frank-Wolfe iterations (default 250).
	FWIters int
	// MILP tunes the branch-and-bound search.
	MILP milp.Options
	// Workers bounds the goroutines sweep drivers (package game) use to run
	// independent solves concurrently (par.Workers semantics: 1 is
	// sequential, ≤ 0 means GOMAXPROCS). Solve itself is sequential; the
	// CellModel must be safe for concurrent lookups when Workers ≠ 1, which
	// the paws.PlannerModel adapter guarantees.
	Workers int
	// now is a test hook (the env.ManagerConfig.now convention): Solve
	// stamps Plan.Runtime from it, so tests can pin Runtime
	// deterministically. nil means time.Now.
	now func() time.Time
}

// SolverKind selects how the planning problem is optimized.
type SolverKind int

const (
	// SolverAuto runs the Frank-Wolfe relaxation, then refines with the
	// budgeted MILP when the instance is small enough, keeping the better
	// plan. This is the default.
	SolverAuto SolverKind = iota
	// SolverFrankWolfe runs only the conditional-gradient relaxation over
	// the flow polytope — fast and scalable, exact for concave utilities.
	SolverFrankWolfe
	// SolverMILP runs only the simplex relaxation plus branch-and-bound —
	// the formulation of the paper, exact (within its budget) but slow on
	// large regions. Used by the Fig. 9 runtime study.
	SolverMILP
)

// Plan is a computed patrol strategy.
type Plan struct {
	Region *Region
	// Effort[i] is the planned patrol effort for region cell i.
	Effort []float64
	// Objective is Σ U_v(c_v) of the returned plan, evaluated exactly on the
	// sampled PWL utilities (never the LP's possibly-overestimated bound).
	Objective float64
	// Runtime is the wall time of the solve.
	Runtime time.Duration
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Binaries is the number of SOS2 binaries the MILP needed (0 when every
	// sampled utility was concave).
	Binaries int
	// Relaxed reports that the returned plan came from the LP relaxation
	// (the MILP refinement found nothing better within its budget). The LP
	// relaxation only loosens the objective linearization — its flow and
	// effort values are always feasible patrol strategies.
	Relaxed bool
}

// Solve computes the optimal plan for the region under the model.
func Solve(region *Region, model CellModel, cfg Config) (*Plan, error) {
	if cfg.T < 2 {
		return nil, errors.New("plan: T must be ≥ 2")
	}
	if cfg.K <= 0 {
		return nil, errors.New("plan: K must be positive")
	}
	if cfg.Segments < 1 {
		return nil, errors.New("plan: need ≥ 1 PWL segment")
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("plan: β = %v out of [0,1]", cfg.Beta)
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	start := now()

	n := region.NumCells()
	maxEffort := cfg.MaxEffort
	if maxEffort <= 0 {
		maxEffort = math.Min(cfg.K*float64(cfg.T), cfg.K*4)
	}

	// Sample the robust utility U_v(c) = g_v(c)·(1 − β·ν_v(c)) at the PWL
	// breakpoints — both factors depend on the same scalar c, so the product
	// is univariate (DESIGN.md).
	pwls := make([]milp.PWL, n)
	for i := 0; i < n; i++ {
		cell := region.Cells[i]
		xs := make([]float64, cfg.Segments+1)
		ys := make([]float64, cfg.Segments+1)
		for k := 0; k <= cfg.Segments; k++ {
			c := maxEffort * float64(k) / float64(cfg.Segments)
			xs[k] = c
			g := model.Detect(cell, c)
			nu := model.Uncertainty(cell, c)
			ys[k] = g - cfg.Beta*g*nu
		}
		f, err := milp.NewPWL(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("plan: cell %d PWL: %w", cell, err)
		}
		pwls[i] = f
	}
	exactObj := func(effort []float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += pwls[i].Eval(effort[i])
		}
		return s
	}

	out := &Plan{Region: region}

	// Frank-Wolfe relaxation: fast, feasible, exact for concave hulls.
	if cfg.Solver != SolverMILP {
		iters := cfg.FWIters
		if iters <= 0 {
			iters = 250
		}
		fw := buildFW(region, model, cfg, maxEffort, pwls)
		effort := fw.solveFrankWolfe(iters)
		out.Effort = effort
		out.Objective = exactObj(effort)
		out.Relaxed = true
	}
	if cfg.Solver == SolverFrankWolfe {
		out.Runtime = now().Sub(start)
		return out, nil
	}

	// MILP path (problem P of the paper): build the flow LP with
	// lambda-encoded PWL utilities.
	milpPlan, err := solveMILPPath(region, cfg, pwls, maxEffort, exactObj)
	if err != nil {
		if cfg.Solver == SolverMILP {
			return nil, err
		}
		// Auto mode: keep the Frank-Wolfe plan when the MILP path fails.
		out.Runtime = now().Sub(start)
		return out, nil
	}
	if milpPlan != nil {
		out.Binaries = milpPlan.Binaries
		out.Nodes = milpPlan.Nodes
		if out.Effort == nil || milpPlan.Objective > out.Objective {
			out.Effort = milpPlan.Effort
			out.Objective = milpPlan.Objective
			out.Relaxed = milpPlan.Relaxed
		}
	}
	out.Runtime = now().Sub(start)
	return out, nil
}

// solveMILPPath assembles and solves the paper's MILP formulation. In Auto
// mode it is skipped for instances too large for the budgeted search to make
// progress (returns nil, nil).
func solveMILPPath(region *Region, cfg Config, pwls []milp.PWL, maxEffort float64, exactObj func([]float64) float64) (*Plan, error) {
	n := region.NumCells()
	// Size guard for Auto mode: edge variables ≈ T·n·5.
	edgeVars := cfg.T * n * 5
	if cfg.Solver == SolverAuto && edgeVars > 2600 {
		return nil, nil
	}

	p := lp.NewProblem()
	// Node layers t = 0..T. nodeIn[t][i] accumulates edge variables entering
	// node (i, t).
	type edgeList struct{ idx []int }
	inEdges := make([][]edgeList, cfg.T+1)
	outEdges := make([][]edgeList, cfg.T+1)
	for t := 0; t <= cfg.T; t++ {
		inEdges[t] = make([]edgeList, n)
		outEdges[t] = make([]edgeList, n)
	}
	postLocal := 0 // region.Cells[0] is the post

	// Edge variables between consecutive layers. Layer 0 only has the post
	// occupied, so only its outgoing edges exist.
	for t := 0; t < cfg.T; t++ {
		for i := 0; i < n; i++ {
			if t == 0 && i != postLocal {
				continue
			}
			targets := append([]int{i}, region.Neighbors[i]...) // self-loop + moves
			for _, j := range targets {
				v := p.AddVariable(0, 0, 1)
				outEdges[t][i].idx = append(outEdges[t][i].idx, v)
				inEdges[t+1][j].idx = append(inEdges[t+1][j].idx, v)
			}
		}
	}
	// Flow conservation: for t = 1..T−1, inflow(i,t) = outflow(i,t).
	ones := func(k int) []float64 {
		o := make([]float64, k)
		for i := range o {
			o[i] = 1
		}
		return o
	}
	for t := 1; t < cfg.T; t++ {
		for i := 0; i < n; i++ {
			in := inEdges[t][i].idx
			out := outEdges[t][i].idx
			if len(in) == 0 && len(out) == 0 {
				continue
			}
			idx := append(append([]int{}, in...), out...)
			coef := append(ones(len(in)), negOnes(len(out))...)
			if err := p.AddConstraint(idx, coef, lp.EQ, 0); err != nil {
				return nil, err
			}
		}
	}
	// Source: outflow(post, 0) = 1. Sink: inflow(post, T) = 1.
	if err := p.AddConstraint(outEdges[0][postLocal].idx, ones(len(outEdges[0][postLocal].idx)), lp.EQ, 1); err != nil {
		return nil, err
	}
	if err := p.AddConstraint(inEdges[cfg.T][postLocal].idx, ones(len(inEdges[cfg.T][postLocal].idx)), lp.EQ, 1); err != nil {
		return nil, err
	}

	// Effort variables: c_i = K · Σ_{t=1..T} inflow(i, t).
	cVars := make([]int, n)
	for i := 0; i < n; i++ {
		cVars[i] = p.AddVariable(0, 0, maxEffort)
		var idx []int
		for t := 1; t <= cfg.T; t++ {
			idx = append(idx, inEdges[t][i].idx...)
		}
		coef := make([]float64, 0, len(idx)+1)
		all := append([]int{cVars[i]}, idx...)
		coef = append(coef, 1)
		for range idx {
			coef = append(coef, -cfg.K)
		}
		if err := p.AddConstraint(all, coef, lp.EQ, 0); err != nil {
			return nil, err
		}
	}

	// PWL utility per cell via the lambda encoding.
	var allBinaries []int
	for i := 0; i < n; i++ {
		_, bins, err := pwls[i].AddToProblem(p, cVars[i], 1, false)
		if err != nil {
			return nil, err
		}
		allBinaries = append(allBinaries, bins...)
	}
	if cfg.Solver == SolverAuto && len(allBinaries) > 220 {
		// A budgeted dive cannot reach a leaf; leave it to Frank-Wolfe.
		return nil, nil
	}

	extract := func(X []float64) []float64 {
		eff := make([]float64, n)
		for i := 0; i < n; i++ {
			eff[i] = X[cVars[i]]
		}
		return eff
	}

	// Stage 1: simplex relaxation — feasible, and exact when every sampled
	// utility is concave.
	relax, err := lp.Solve(p, lp.Options{MaxIter: cfg.MILP.LPMaxIter})
	if err != nil {
		return nil, fmt.Errorf("plan: relaxation: %w", err)
	}
	if relax.Status != lp.Optimal {
		return nil, fmt.Errorf("plan: relaxation status %v", relax.Status)
	}
	out := &Plan{
		Region:    region,
		Effort:    extract(relax.X),
		Objective: exactObj(extract(relax.X)),
		Binaries:  len(allBinaries),
		Relaxed:   true,
	}

	// Stage 2: budgeted branch-and-bound refinement when the utilities are
	// non-concave. The search dives to an incumbent first, so even a small
	// node budget yields an adjacency-feasible solution.
	if len(allBinaries) > 0 {
		opts := cfg.MILP
		if opts.MaxNodes <= 0 {
			opts.MaxNodes = 150
		}
		if opts.TimeLimit <= 0 {
			opts.TimeLimit = 10 * time.Second
		}
		res, err := milp.Solve(p, allBinaries, opts)
		if err == nil && (res.Status == lp.Optimal || res.Status == lp.IterLimit) && res.X != nil {
			eff := extract(res.X)
			if obj := exactObj(eff); obj > out.Objective {
				out.Effort = eff
				out.Objective = obj
				out.Relaxed = false
			}
			out.Nodes = res.Nodes
		} else if err != nil && !errors.Is(err, milp.ErrNoIncumbent) {
			return nil, fmt.Errorf("plan: MILP refinement: %w", err)
		}
	}
	return out, nil
}

func negOnes(k int) []float64 {
	o := make([]float64, k)
	for i := range o {
		o[i] = -1
	}
	return o
}

// Evaluate computes the exact (non-PWL) robust utility of an effort
// allocation under the model: Σ_v g_v(c_v)·(1 − β·ν_v(c_v)).
func Evaluate(region *Region, model CellModel, effort []float64, beta float64) float64 {
	var u float64
	for i, cell := range region.Cells {
		c := effort[i]
		g := model.Detect(cell, c)
		nu := model.Uncertainty(cell, c)
		u += g - beta*g*nu
	}
	return u
}

// TotalEffort sums the planned effort (should equal K·T within tolerance).
func (p *Plan) TotalEffort() float64 {
	var s float64
	for _, e := range p.Effort {
		s += e
	}
	return s
}
