package plan

import (
	"math"

	"paws/internal/milp"
)

// This file implements the scalable relaxation solver for the patrol
// planning problem: Frank-Wolfe (conditional gradient) over the path
// polytope of the time-unrolled graph.
//
// The LP relaxation of problem (P) with lambda-encoded PWL utilities is
// exactly the maximization of the upper concave envelope (hull) of each
// cell's sampled utility over the flow polytope. Frank-Wolfe exploits the
// structure directly: the linear maximization oracle over unit s→t flows on
// a layered DAG is a longest-path dynamic program, O(T·E) per iteration, so
// instances that choke a general simplex solve in milliseconds. The
// resulting mixed strategy (a convex combination of timed patrol paths) is
// feasible by construction.
type fwProblem struct {
	region *Region
	T      int
	K      float64
	// hull[i] is the concave envelope of cell i's sampled utility.
	hull []concaveHull
	// maxEffort caps the PWL domain; beyond it marginal utility is zero.
	maxEffort float64
}

// concaveHull is an upper concave envelope of PWL breakpoints, stored as
// breakpoints with decreasing slopes.
type concaveHull struct {
	xs, ys []float64
}

// newConcaveHull computes the upper concave envelope of (xs, ys) with xs
// strictly increasing, via a monotone-chain scan.
func newConcaveHull(xs, ys []float64) concaveHull {
	n := len(xs)
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		for len(keep) >= 2 {
			a, b := keep[len(keep)-2], keep[len(keep)-1]
			// Remove b if it lies on or below chord a→i.
			t := (xs[b] - xs[a]) / (xs[i] - xs[a])
			chord := ys[a] + t*(ys[i]-ys[a])
			if ys[b] <= chord+1e-15 {
				keep = keep[:len(keep)-1]
			} else {
				break
			}
		}
		keep = append(keep, i)
	}
	h := concaveHull{}
	for _, i := range keep {
		h.xs = append(h.xs, xs[i])
		h.ys = append(h.ys, ys[i])
	}
	return h
}

// eval interpolates the hull at x, extending flat beyond the last breakpoint
// and returning the first value below the first breakpoint.
func (h concaveHull) eval(x float64) float64 {
	if x <= h.xs[0] {
		return h.ys[0]
	}
	last := len(h.xs) - 1
	if x >= h.xs[last] {
		return h.ys[last]
	}
	for i := 1; i <= last; i++ {
		if x <= h.xs[i] {
			t := (x - h.xs[i-1]) / (h.xs[i] - h.xs[i-1])
			return h.ys[i-1] + t*(h.ys[i]-h.ys[i-1])
		}
	}
	return h.ys[last]
}

// slope returns the right derivative of the hull at x (0 beyond the domain).
func (h concaveHull) slope(x float64) float64 {
	last := len(h.xs) - 1
	if x >= h.xs[last] {
		return 0
	}
	if x < h.xs[0] {
		x = h.xs[0]
	}
	for i := 1; i <= last; i++ {
		if x < h.xs[i] {
			return (h.ys[i] - h.ys[i-1]) / (h.xs[i] - h.xs[i-1])
		}
	}
	return 0
}

// bestPath runs the longest-path DP over the time-unrolled DAG with node
// weights w (reward collected on every visit at layers 1..T), returning the
// per-cell visit counts of the optimal path.
func (f *fwProblem) bestPath(w []float64) []float64 {
	n := f.region.NumCells()
	T := f.T
	negInf := math.Inf(-1)
	// score[v] at current layer; parent pointers per layer for backtrack.
	score := make([]float64, n)
	next := make([]float64, n)
	parents := make([][]int32, T+1)
	for t := range parents {
		parents[t] = make([]int32, n)
	}
	for v := range score {
		score[v] = negInf
	}
	score[0] = 0 // post at layer 0
	for t := 1; t <= T; t++ {
		for v := 0; v < n; v++ {
			next[v] = negInf
			parents[t][v] = -1
		}
		for u := 0; u < n; u++ {
			if score[u] == negInf {
				continue
			}
			// Self-loop.
			if s := score[u] + w[u]; s > next[u] {
				next[u] = s
				parents[t][u] = int32(u)
			}
			for _, v := range f.region.Neighbors[u] {
				if s := score[u] + w[v]; s > next[v] {
					next[v] = s
					parents[t][v] = int32(u)
				}
			}
		}
		score, next = next, score
	}
	// Backtrack from the post at layer T.
	visits := make([]float64, n)
	cur := 0
	if score[0] == negInf {
		return visits // unreachable (degenerate regions); zero plan
	}
	for t := T; t >= 1; t-- {
		visits[cur]++
		cur = int(parents[t][cur])
		if cur < 0 {
			break
		}
	}
	return visits
}

// solveFrankWolfe maximizes Σ hull_i(c_i) over the flow polytope with
// c_i = K·visits_i. Returns the effort vector. iters controls convergence
// (the objective is concave; classic 2/(k+2) steps give O(1/k) gap).
func (f *fwProblem) solveFrankWolfe(iters int) []float64 {
	n := f.region.NumCells()
	c := make([]float64, n)
	// Initialize from the zero-gradient-agnostic greedy path (all weights
	// equal), i.e. any feasible patrol.
	w := make([]float64, n)
	for i := range w {
		w[i] = f.hull[i].slope(0)
	}
	visits := f.bestPath(w)
	for i := range c {
		c[i] = f.K * visits[i]
	}
	d := make([]float64, n)
	for k := 1; k < iters; k++ {
		for i := range w {
			w[i] = f.K * f.hull[i].slope(c[i])
		}
		visits = f.bestPath(w)
		for i := range d {
			d[i] = f.K * visits[i]
		}
		gamma := f.lineSearch(c, d)
		if gamma <= 1e-12 {
			break // the oracle direction no longer improves: converged
		}
		for i := range c {
			c[i] = (1-gamma)*c[i] + gamma*d[i]
		}
	}
	return c
}

// lineSearch maximizes the concave objective along the segment c→d by
// ternary search (the objective is piecewise-linear concave in γ, so 60
// halvings localize the maximizer to machine precision).
func (f *fwProblem) lineSearch(c, d []float64) float64 {
	obj := func(gamma float64) float64 {
		var s float64
		for i := range c {
			s += f.hull[i].eval((1-gamma)*c[i] + gamma*d[i])
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for it := 0; it < 60; it++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if obj(m1) < obj(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	gamma := (lo + hi) / 2
	if obj(gamma) <= obj(0)+1e-12 {
		return 0
	}
	return gamma
}

// buildFW samples the utilities and constructs the Frank-Wolfe problem.
func buildFW(region *Region, model CellModel, cfg Config, maxEffort float64, pwls []milp.PWL) *fwProblem {
	f := &fwProblem{region: region, T: cfg.T, K: cfg.K, maxEffort: maxEffort}
	f.hull = make([]concaveHull, len(pwls))
	for i, p := range pwls {
		f.hull[i] = newConcaveHull(p.Xs, p.Ys)
	}
	return f
}
