package plan

import (
	"math"
	"testing"
)

func TestExtractRoutesValidAndCovering(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for i, c := range region.Cells {
		model.rate[c] = 0.1 + 0.1*float64(i%4)
	}
	p, err := Solve(region, model, Config{T: 8, K: 3, Segments: 6, Solver: SolverFrankWolfe})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := ExtractRoutes(region, p.Effort, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("routes = %d want 3", len(routes))
	}
	for i, r := range routes {
		if err := ValidateRoute(region, r); err != nil {
			t.Fatalf("route %d invalid: %v", i, err)
		}
		if len(r.Cells) != 9 {
			t.Fatalf("route %d has %d entries want 9", i, len(r.Cells))
		}
	}
	// Coverage should overlap the planned effort: the visited mass must land
	// mostly on cells with planned effort.
	cov := RouteCoverage(region, routes)
	var onPlan, total float64
	for i, c := range cov {
		total += c
		if p.Effort[i] > 1e-9 {
			onPlan += c
		}
	}
	if total == 0 {
		t.Fatal("routes visited nothing")
	}
	if onPlan/total < 0.6 {
		t.Fatalf("only %.0f%% of route visits land on planned cells", 100*onPlan/total)
	}
}

func TestExtractRoutesErrors(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractRoutes(region, []float64{1}, 4, 1); err == nil {
		t.Fatal("expected length error")
	}
	eff := make([]float64, region.NumCells())
	if _, err := ExtractRoutes(region, eff, 1, 1); err == nil {
		t.Fatal("expected T error")
	}
	if _, err := ExtractRoutes(region, eff, 4, 0); err == nil {
		t.Fatal("expected K error")
	}
}

func TestExtractRoutesConcentratedEffort(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All effort on one adjacent cell: the single route should dwell there.
	eff := make([]float64, region.NumCells())
	target := region.Neighbors[0][0]
	eff[target] = 6
	routes, err := ExtractRoutes(region, eff, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	visits := 0
	for _, c := range routes[0].Cells[1:] {
		if c == target {
			visits++
		}
	}
	if visits < 4 {
		t.Fatalf("route should dwell on the hot cell, visits = %d", visits)
	}
}

func TestValidateRoute(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb := region.Neighbors[0][0]
	good := Route{Cells: []int{0, nb, 0}}
	if err := ValidateRoute(region, good); err != nil {
		t.Fatalf("valid route rejected: %v", err)
	}
	wait := Route{Cells: []int{0, 0, 0}}
	if err := ValidateRoute(region, wait); err != nil {
		t.Fatalf("waiting route rejected: %v", err)
	}
	if err := ValidateRoute(region, Route{Cells: []int{0}}); err == nil {
		t.Fatal("too-short route accepted")
	}
	if err := ValidateRoute(region, Route{Cells: []int{nb, 0, nb}}); err == nil {
		t.Fatal("route not anchored at post accepted")
	}
	// Find two non-adjacent cells for an illegal move.
	far := -1
	for i := 1; i < region.NumCells(); i++ {
		if park.Grid.EuclidKM(region.Cells[0], region.Cells[i]) > 2.5 {
			far = i
			break
		}
	}
	if far >= 0 {
		if err := ValidateRoute(region, Route{Cells: []int{0, far, 0}}); err == nil {
			t.Fatal("teleporting route accepted")
		}
	}
}

func TestRouteParkCells(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := Route{Cells: []int{0, region.Neighbors[0][0], 0}}
	pc := r.ParkCells(region)
	if pc[0] != region.Cells[0] || len(pc) != 3 {
		t.Fatalf("ParkCells = %v", pc)
	}
}

func TestRouteCoverageMatchesVisits(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb := region.Neighbors[0][0]
	routes := []Route{{Cells: []int{0, nb, 0}}, {Cells: []int{0, nb, nb}}}
	cov := RouteCoverage(region, routes)
	if math.Abs(cov[nb]-3) > 1e-12 {
		t.Fatalf("coverage of nb = %v want 3", cov[nb])
	}
	// Route 1 returns to the post once; route 2 ends away from it. Starts
	// are not counted.
	if math.Abs(cov[0]-1) > 1e-12 {
		t.Fatalf("coverage of post = %v want 1 (excludes starts)", cov[0])
	}
}
