package plan

import (
	"math"
	"reflect"
	"testing"

	"paws/internal/geo"
)

// hierModel gives every cell a spatially-varying detection rate so the
// coarse pass has a real gradient to follow: cells in the park's east half
// are much more attractive than the west.
func hierModel(park *geo.Park) saturatingModel {
	m := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for id := 0; id < park.Grid.NumCells(); id++ {
		x, _ := park.Grid.CellXY(id)
		m.rate[id] = 0.1 + 0.8*float64(x)/float64(park.Grid.W)
		m.unc[id] = 0.2
	}
	return m
}

func TestCoarseningPartition(t *testing.T) {
	park := planPark(t)
	co := newCoarsening(park, 3)
	n := park.Grid.NumCells()
	seen := make([]int, n)
	for s, ms := range co.members {
		prev := -1
		for _, id := range ms {
			if id <= prev {
				t.Fatalf("super %d members not ascending: %v", s, ms)
			}
			prev = id
			seen[id]++
			if int(co.super[id]) != s {
				t.Fatalf("cell %d: super[%d]=%d, listed under %d", id, id, co.super[id], s)
			}
			x, y := park.Grid.CellXY(id)
			if int(co.lx[s]) != x/3 || int(co.ly[s]) != y/3 {
				t.Fatalf("cell %d in super %d with wrong lattice coords", id, s)
			}
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d appears in %d super-cells", id, c)
		}
	}
}

func TestSampleMembersDeterministicSubset(t *testing.T) {
	park := planPark(t)
	co := newCoarsening(park, 4)
	samples := co.sampleMembers(3)
	for s, picks := range samples {
		if len(picks) == 0 || len(picks) > 3 {
			t.Fatalf("super %d: %d samples", s, len(picks))
		}
		for _, id := range picks {
			if int(co.super[id]) != s {
				t.Fatalf("super %d sampled foreign cell %d", s, id)
			}
		}
	}
	again := co.sampleMembers(3)
	if !reflect.DeepEqual(samples, again) {
		t.Fatal("sampleMembers is not deterministic")
	}
}

func TestGrowFineRegionFollowsCoarseEffort(t *testing.T) {
	park := planPark(t)
	post := park.Posts[0]
	co := newCoarsening(park, 3)
	// All coarse effort sits in the easternmost super-cells.
	effort := make([]float64, len(co.members))
	var maxLX int32
	for _, lx := range co.lx {
		if lx > maxLX {
			maxLX = lx
		}
	}
	for s := range effort {
		effort[s] = float64(co.lx[s])
	}
	r := growFineRegion(park, post, 25, co, effort)
	if r.Cells[0] != post {
		t.Fatal("fine region must start at the post")
	}
	if len(r.Cells) != 25 {
		t.Fatalf("fine region size %d, want 25", len(r.Cells))
	}
	// Connectivity: every cell after the first must be 8-adjacent to an
	// earlier cell (the frontier only holds neighbors of absorbed cells).
	for i := 1; i < len(r.Cells); i++ {
		ok := false
		for j := 0; j < i; j++ {
			if park.Grid.EuclidKM(r.Cells[i], r.Cells[j]) <= math.Sqrt2+1e-9 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("cell %d (%d) not adjacent to any earlier region cell", i, r.Cells[i])
		}
	}
	// Determinism.
	r2 := growFineRegion(park, post, 25, co, effort)
	if !reflect.DeepEqual(r.Cells, r2.Cells) || !reflect.DeepEqual(r.Neighbors, r2.Neighbors) {
		t.Fatal("growFineRegion is not deterministic")
	}
	// Pull: the mean x of the region should exceed the mean x of a plain
	// BFS region of the same size, because effort increases eastward.
	flat, err := NewRegion(park, post, 1<<20, 25)
	if err != nil {
		t.Fatal(err)
	}
	meanX := func(cells []int) float64 {
		var s float64
		for _, id := range cells {
			x, _ := park.Grid.CellXY(id)
			s += float64(x)
		}
		return s / float64(len(cells))
	}
	if meanX(r.Cells) < meanX(flat.Cells) {
		t.Fatalf("effort-guided region did not move east: guided %.2f, flat %.2f",
			meanX(r.Cells), meanX(flat.Cells))
	}
}

func TestSolveHierarchical(t *testing.T) {
	park := planPark(t)
	model := hierModel(park)
	cfg := Config{T: 6, K: 2, Segments: 6, Beta: 0.3, Solver: SolverFrankWolfe}
	h := HierOptions{FineMaxCells: 20}
	p, region, err := SolveHierarchical(park, park.Posts[0], model, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if region.Cells[0] != park.Posts[0] {
		t.Fatal("region must start at the post")
	}
	if len(p.Effort) != region.NumCells() {
		t.Fatalf("effort length %d, region %d", len(p.Effort), region.NumCells())
	}
	if p.TotalEffort() > cfg.K*float64(cfg.T)+1e-6 {
		t.Fatalf("total effort %v exceeds budget %v", p.TotalEffort(), cfg.K*float64(cfg.T))
	}
	routes, err := ExtractRoutes(region, p.Effort, cfg.T, int(cfg.K))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routes {
		if err := ValidateRoute(region, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveHierarchicalAllWorkerInvariance(t *testing.T) {
	park := planPark(t)
	model := hierModel(park)
	cfg := Config{T: 6, K: 2, Segments: 6, Beta: 0.3, Solver: SolverFrankWolfe}
	posts := park.Posts
	var ref []*Plan
	var refRegions []*Region
	for _, workers := range []int{1, 4} {
		h := HierOptions{FineMaxCells: 20, Workers: workers}
		plans, regions, err := SolveHierarchicalAll(park, posts, model, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refRegions = plans, regions
			continue
		}
		for i := range plans {
			if !reflect.DeepEqual(plans[i].Effort, ref[i].Effort) {
				t.Fatalf("workers=%d: post %d effort differs", workers, i)
			}
			if !reflect.DeepEqual(regions[i].Cells, refRegions[i].Cells) {
				t.Fatalf("workers=%d: post %d region differs", workers, i)
			}
		}
	}
}

func TestCoarseCells(t *testing.T) {
	park := planPark(t)
	cfg := Config{T: 6, K: 2, Segments: 6}
	n := CoarseCells(park, cfg, HierOptions{})
	if n < 1 || n > 256 {
		t.Fatalf("coarse cells %d out of (0, 256]", n)
	}
	if nf := CoarseCells(park, cfg, HierOptions{Factor: 1}); nf != park.Grid.NumCells() {
		t.Fatalf("factor 1 must be the identity coarsening: %d != %d", nf, park.Grid.NumCells())
	}
}
