package plan

import (
	"math"
	"testing"

	"paws/internal/geo"
)

func planPark(t *testing.T) *geo.Park {
	t.Helper()
	cfg := geo.ParkConfig{
		Name: "PLAN", Seed: 41, W: 20, H: 20, TargetCells: 300,
		Shape: geo.ShapeRound, NumRivers: 1, NumRoads: 2, NumVillages: 2,
		NumPosts: 2, ExtraFeatures: 1,
	}
	p, err := geo.GeneratePark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// saturatingModel is a synthetic concave detection model: g = 1−exp(−r·c),
// ν decreasing in historical familiarity (here: a per-cell constant).
type saturatingModel struct {
	rate map[int]float64
	unc  map[int]float64
}

func (m saturatingModel) Detect(cell int, effort float64) float64 {
	r := m.rate[cell]
	if r == 0 {
		r = 0.3
	}
	return 1 - math.Exp(-r*effort)
}

func (m saturatingModel) Uncertainty(cell int, effort float64) float64 {
	return m.unc[cell]
}

func TestNewRegion(t *testing.T) {
	park := planPark(t)
	post := park.Posts[0]
	r, err := NewRegion(park, post, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells[0] != post {
		t.Fatal("region must start at the post")
	}
	if r.NumCells() < 5 {
		t.Fatalf("region too small: %d", r.NumCells())
	}
	// All neighbor indices must be valid and mutual adjacency must hold in
	// the park grid.
	for i, nbrs := range r.Neighbors {
		for _, j := range nbrs {
			if j < 0 || j >= r.NumCells() {
				t.Fatalf("bad neighbor index %d", j)
			}
			if d := park.Grid.EuclidKM(r.Cells[i], r.Cells[j]); d > math.Sqrt2+1e-9 {
				t.Fatalf("non-adjacent neighbor at distance %v", d)
			}
		}
	}
}

func TestNewRegionErrors(t *testing.T) {
	park := planPark(t)
	if _, err := NewRegion(park, -1, 3, 0); err == nil {
		t.Fatal("expected post range error")
	}
	if _, err := NewRegion(park, 0, 0, 0); err == nil {
		t.Fatal("expected radius error")
	}
}

func TestNewRegionMaxCells(t *testing.T) {
	park := planPark(t)
	r, err := NewRegion(park, park.Posts[0], 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCells() != 7 {
		t.Fatalf("maxCells not respected: %d", r.NumCells())
	}
}

func TestSolveBasicPlan(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	p, err := Solve(region, model, Config{T: 6, K: 2, Segments: 5, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Total effort must equal K·T (all flow is somewhere).
	if math.Abs(p.TotalEffort()-12) > 1e-4 {
		t.Fatalf("total effort %v want 12", p.TotalEffort())
	}
	if p.Objective <= 0 {
		t.Fatalf("objective %v", p.Objective)
	}
	for i, e := range p.Effort {
		if e < -1e-9 {
			t.Fatalf("negative effort %v at cell %d", e, i)
		}
	}
	// Concave model: no binaries needed.
	if p.Binaries != 0 {
		t.Fatalf("concave utilities should need no binaries, got %d", p.Binaries)
	}
}

func TestSolvePrefersHighRateCells(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One adjacent cell has a much higher detection rate.
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	target := region.Cells[1]
	for _, c := range region.Cells {
		model.rate[c] = 0.05
	}
	model.rate[target] = 2.0
	p, err := Solve(region, model, Config{T: 6, K: 2, Segments: 6, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The high-rate cell should receive above-average effort.
	avg := p.TotalEffort() / float64(region.NumCells())
	if p.Effort[1] <= avg {
		t.Fatalf("high-value cell got %v, average %v", p.Effort[1], avg)
	}
}

func TestRobustPlanAvoidsUncertainCells(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for _, c := range region.Cells {
		model.rate[c] = 0.5
		model.unc[c] = 0
	}
	// Two equally attractive cells; one is maximally uncertain.
	sure, unsure := region.Cells[1], region.Cells[2]
	model.unc[unsure] = 0.95
	p0, err := Solve(region, model, Config{T: 6, K: 2, Segments: 6, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Solve(region, model, Config{T: 6, K: 2, Segments: 6, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = sure
	// β=1 plan must shift effort away from the uncertain cell relative to β=0.
	if p1.Effort[2] > p0.Effort[2]+1e-6 {
		t.Fatalf("robust plan increased effort on uncertain cell: %v vs %v", p1.Effort[2], p0.Effort[2])
	}
	// And robust utility of the robust plan must be at least that of the
	// blind plan (it optimizes that objective).
	u1 := Evaluate(region, model, p1.Effort, 1)
	u0 := Evaluate(region, model, p0.Effort, 1)
	if u1 < u0-1e-6 {
		t.Fatalf("Uβ(Cβ)=%v < Uβ(C0)=%v", u1, u0)
	}
}

func TestSolveValidation(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	cases := []Config{
		{T: 1, K: 1, Segments: 3},
		{T: 4, K: 0, Segments: 3},
		{T: 4, K: 1, Segments: 0},
		{T: 4, K: 1, Segments: 3, Beta: 2},
	}
	for i, cfg := range cases {
		if _, err := Solve(region, model, cfg); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestEvaluateMatchesHandComputation(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	for _, c := range region.Cells {
		model.rate[c] = 1
		model.unc[c] = 0.5
	}
	effort := make([]float64, region.NumCells())
	effort[0] = 2
	got := Evaluate(region, model, effort, 1)
	g := 1 - math.Exp(-2.0)
	want := g - g*0.5 + 0 // remaining cells contribute 0 at zero effort
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Evaluate = %v want %v", got, want)
	}
}

func TestPlanEffortLocalizedToRegion(t *testing.T) {
	park := planPark(t)
	region, err := NewRegion(park, park.Posts[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := saturatingModel{rate: map[int]float64{}, unc: map[int]float64{}}
	p, err := Solve(region, model, Config{T: 4, K: 1, Segments: 4, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Effort) != region.NumCells() {
		t.Fatal("effort vector must match region size")
	}
	if p.Runtime <= 0 {
		t.Fatal("runtime must be recorded")
	}
}
