package plan

import (
	"errors"
	"fmt"
)

// Route is one executable patrol: a sequence of region-local cell indices,
// starting and ending at the post, with exactly T+1 entries (T moves).
type Route struct {
	// Cells are region-local indices; Cells[0] == Cells[len-1] == 0 (post).
	Cells []int
}

// ParkCells translates the route to park cell ids.
func (r Route) ParkCells(region *Region) []int {
	out := make([]int, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = region.Cells[c]
	}
	return out
}

// ExtractRoutes decomposes a planned effort allocation into K executable
// patrol routes of T steps each. Rangers execute routes, not effort maps, so
// this is the deployment artifact (the paper hands rangers GPS coordinates
// of target areas).
//
// The decomposition is greedy: each route is the T-step closed walk from the
// post that collects the most remaining effort mass, where a cell's mass is
// consumed as routes visit it. For plans produced by Frank-Wolfe or the
// MILP, K routes reproduce the planned effort closely (exactly, when the
// plan is a single pure path).
func ExtractRoutes(region *Region, effort []float64, T int, K int) ([]Route, error) {
	if len(effort) != region.NumCells() {
		return nil, fmt.Errorf("plan: effort length %d want %d", len(effort), region.NumCells())
	}
	if T < 2 || K < 1 {
		return nil, errors.New("plan: need T ≥ 2 and K ≥ 1")
	}
	remaining := append([]float64(nil), effort...)
	var routes []Route
	for k := 0; k < K; k++ {
		route := bestEffortWalk(region, remaining, T)
		routes = append(routes, route)
		// Consume mass: every visit eats up to one unit of remaining effort
		// (efforts are in km ≈ one visit per km of planned presence).
		for _, c := range route.Cells[1:] {
			if remaining[c] > 1 {
				remaining[c] -= 1
			} else {
				remaining[c] = 0
			}
		}
	}
	return routes, nil
}

// bestEffortWalk finds a T-step closed walk from the post maximizing
// collected remaining effort by dynamic programming over the time-unrolled
// graph. Each visit to a cell collects min(remaining, 1) on first visit
// within the DP approximation (revisits collect the same score, a small
// overcount the consumption step corrects across routes).
func bestEffortWalk(region *Region, remaining []float64, T int) Route {
	n := region.NumCells()
	reward := make([]float64, n)
	for i, r := range remaining {
		if r > 1 {
			reward[i] = 1
		} else {
			reward[i] = r
		}
	}
	// DP identical to the Frank-Wolfe oracle.
	f := &fwProblem{region: region, T: T, K: 1}
	// bestPath maximizes Σ visits·w, so w = reward.
	_ = f
	score := make([]float64, n)
	next := make([]float64, n)
	parents := make([][]int32, T+1)
	for t := range parents {
		parents[t] = make([]int32, n)
	}
	negInf := -1e300
	for v := range score {
		score[v] = negInf
	}
	score[0] = 0
	for t := 1; t <= T; t++ {
		for v := 0; v < n; v++ {
			next[v] = negInf
			parents[t][v] = -1
		}
		for u := 0; u < n; u++ {
			if score[u] == negInf {
				continue
			}
			if s := score[u] + reward[u]; s > next[u] {
				next[u] = s
				parents[t][u] = int32(u)
			}
			for _, v := range region.Neighbors[u] {
				if s := score[u] + reward[v]; s > next[v] {
					next[v] = s
					parents[t][v] = int32(u)
				}
			}
		}
		score, next = next, score
	}
	cells := make([]int, T+1)
	cur := 0
	for t := T; t >= 1; t-- {
		cells[t] = cur
		p := parents[t][cur]
		if p < 0 {
			// Degenerate region: stay at the post.
			for i := 0; i <= T; i++ {
				cells[i] = 0
			}
			return Route{Cells: cells}
		}
		cur = int(p)
	}
	cells[0] = cur
	return Route{Cells: cells}
}

// RouteCoverage sums, per region cell, the number of visits across routes —
// the executed analogue of the planned effort (in visit units; multiply by
// the per-visit kilometreage to compare with effort).
func RouteCoverage(region *Region, routes []Route) []float64 {
	cov := make([]float64, region.NumCells())
	for _, r := range routes {
		for _, c := range r.Cells[1:] {
			cov[c]++
		}
	}
	return cov
}

// ValidateRoute checks that a route is executable: starts and ends at the
// post and every move is a self-loop or region adjacency.
func ValidateRoute(region *Region, r Route) error {
	if len(r.Cells) < 2 {
		return errors.New("plan: route too short")
	}
	if r.Cells[0] != 0 || r.Cells[len(r.Cells)-1] != 0 {
		return errors.New("plan: route must start and end at the post")
	}
	for i := 1; i < len(r.Cells); i++ {
		u, v := r.Cells[i-1], r.Cells[i]
		if u == v {
			continue // waiting in place
		}
		ok := false
		for _, nb := range region.Neighbors[u] {
			if nb == v {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("plan: illegal move %d→%d at step %d", u, v, i)
		}
	}
	return nil
}
