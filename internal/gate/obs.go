package gate

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"paws/internal/obs"
)

// This file is the gate's observability wiring: per-endpoint HTTP
// metrics and routing-decision counters (GET /metricsz on the gate
// itself, not proxied), plus edge tracing — the gate mints the fleet's
// X-Paws-Trace ID, records its own trace per proxied request (with one
// span per backend attempt), and propagates the ID to the replica so
// the same ID names the request in both /tracez flight recorders.

// gateMetrics bundles the pawsgate instruments.
type gateMetrics struct {
	registry     *obs.Registry
	httpReqs     obs.CounterVec   // endpoint, method, code
	httpSeconds  obs.HistogramVec // endpoint
	routeTotal   obs.CounterVec   // strategy
	replicaPicks obs.CounterVec   // replica
	healthEvict  obs.Counter
}

func newGateMetrics(g *Gate) *gateMetrics {
	r := obs.NewRegistry()
	m := &gateMetrics{
		registry: r,
		httpReqs: r.CounterVec("pawsgate_http_requests_total",
			"Requests through the gate by endpoint, method and status code.",
			"endpoint", "method", "code"),
		httpSeconds: r.HistogramVec("pawsgate_http_request_seconds",
			"Gate-side request latency in seconds by endpoint (includes the proxied backend time).",
			nil, "endpoint"),
		routeTotal: r.CounterVec("pawsgate_route_total",
			"Routing decisions by strategy: affinity (cache-key rendezvous), round_robin, least_loaded (job submission), owner (job detail), fanout (job list merge).",
			"strategy"),
		replicaPicks: r.CounterVec("pawsgate_replica_picks_total",
			"Outbound proxy requests by chosen replica (retries count each attempt).",
			"replica"),
		healthEvict: r.Counter("pawsgate_health_evictions_total",
			"healthy-to-unhealthy transitions (failed poll or failed proxied request)."),
	}
	r.CounterFunc("pawsgate_retries_total",
		"Idempotent GETs retried on another replica after a transport failure.",
		func() float64 { return float64(g.retries.Load()) })
	r.GaugeFunc("pawsgate_backends_healthy",
		"Replicas currently in rotation.",
		func() float64 { return float64(len(g.healthy())) })
	r.GaugeFunc("pawsgate_backends_total",
		"Configured replicas.",
		func() float64 { return float64(len(g.backends)) })
	return m
}

// label names a backend for metric labels: the replica ID once a poll
// has learned it, the URL before that.
func (b *backend) label() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.name != "" {
		return b.name
	}
	return b.url
}

// markDown records a backend failure: out of rotation, and a
// health-eviction count when this was the transition.
func (g *Gate) markDown(b *backend) {
	if b.setHealthy(false) {
		g.metrics.healthEvict.Inc()
	}
}

// gateEndpoint classifies a path into a bounded label set (concrete
// job IDs collapse into {id} patterns).
func gateEndpoint(path string) string {
	switch path {
	case "/gatez", "/healthz", "/statusz", "/metricsz", "/tracez",
		"/v1/models", "/v1/predict", "/v1/riskmap", "/v1/plan", "/v1/simulate", "/v1/jobs":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i:] {
			case "/events":
				return "/v1/jobs/{id}/events"
			case "/result":
				return "/v1/jobs/{id}/result"
			}
			return "other"
		}
		return "/v1/jobs/{id}"
	}
	return "other"
}

// gateOpsEndpoints are scraped/polled; they get metrics and the trace
// header but no /tracez ring entries.
var gateOpsEndpoints = map[string]bool{
	"/gatez":    true,
	"/healthz":  true,
	"/statusz":  true,
	"/metricsz": true,
	"/tracez":   true,
}

// ServeHTTP implements http.Handler: the edge observability middleware
// around the router. The gate is where a fleet trace begins — absent an
// inbound X-Paws-Trace the gate mints the ID, and either way it is set
// on the inbound request header so send() carries it to the replica,
// which adopts it into its own flight recorder.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	endpoint := gateEndpoint(r.URL.Path)
	sw := &obs.StatusWriter{ResponseWriter: w}
	id := r.Header.Get(obs.TraceHeader)
	if id == "" {
		id = obs.MintID()
		r.Header.Set(obs.TraceHeader, id)
	}
	sw.Header().Set(obs.TraceHeader, id)
	var tr *obs.Trace
	if !gateOpsEndpoints[endpoint] {
		tr = g.tracer.Start(id, r.Method+" "+endpoint)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
	}
	start := time.Now()
	g.route(sw, r)
	code := sw.StatusCode()
	g.metrics.httpReqs.With(endpoint, r.Method, strconv.Itoa(code)).Inc()
	g.metrics.httpSeconds.With(endpoint).Observe(time.Since(start).Seconds())
	tr.Finish(strconv.Itoa(code))
}
