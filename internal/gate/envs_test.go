package gate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"paws"
	"paws/internal/serve"
)

// newEnvStub is a fake replica for env-session routing tests: /statusz
// reports the given live-session count, POST /v1/envs answers 201 with a
// replica-prefixed session ID, and everything else echoes ok.
func newEnvStub(t *testing.T, name string, envActive int) *stub {
	s := &stub{name: name, hits: map[string]int{}}
	var created atomic.Int64
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/statusz" {
			fmt.Fprintf(w, `{"replica":%q,"jobs":{"queued":0,"running":0,"mean_job_seconds":1},"envs":{"active":%d,"sessions":%d}}`,
				s.name, envActive, envActive)
			return
		}
		s.mu.Lock()
		s.hits[r.URL.Path]++
		s.mu.Unlock()
		if r.Method == http.MethodPost && r.URL.Path == "/v1/envs" {
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"session":{"id":"e-%s-%06d"}}`, s.name, created.Add(1))
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// TestEnvCreateLeastLoaded: session creates go to the replica with the
// fewest live sessions, counting the gate's own since-poll creates — and
// the job least-loaded scorer is unaffected by env load (a replica heavy
// with sessions still takes job submissions if its job queue is empty).
func TestEnvCreateLeastLoaded(t *testing.T) {
	busy, idle := newEnvStub(t, "busy", 3), newEnvStub(t, "idle", 0)
	g := newGate(t, true, busy, idle)
	// idle's env score runs 0→1→2 while busy sits at 3: the first three
	// creates all go to idle with no poll in between.
	for i := 0; i < 3; i++ {
		if rec := roundTrip(t, g, http.MethodPost, "/v1/envs", map[string]any{"park": "MFNP"}); rec.Code != http.StatusCreated {
			t.Fatalf("create %d: status %d, body %s", i, rec.Code, rec.Body)
		}
	}
	if busy.count("/v1/envs") != 0 || idle.count("/v1/envs") != 3 {
		t.Fatalf("creates split busy=%d idle=%d, want 0/3", busy.count("/v1/envs"), idle.count("/v1/envs"))
	}
	// Env sessions must not distort JOB routing: both job queues are empty,
	// so submissions round between the replicas by the job scorer's own
	// config-order tie — the first one lands on busy despite its sessions.
	if rec := roundTrip(t, g, http.MethodPost, "/v1/jobs", map[string]any{"kind": "riskmap"}); rec.Code != http.StatusOK {
		t.Fatalf("job submit: status %d", rec.Code)
	}
	if busy.count("/v1/jobs") != 1 {
		t.Fatalf("job submission avoided the env-heavy replica (busy=%d idle=%d): env load leaked into the job scorer",
			busy.count("/v1/jobs"), idle.count("/v1/jobs"))
	}
}

// TestEnvDetailSticksToOwner: prefixed session IDs route to the replica
// named inside the ID; un-prefixed IDs fall back to the owner recorded at
// create time.
func TestEnvDetailSticksToOwner(t *testing.T) {
	a, b := newEnvStub(t, "a", 0), newEnvStub(t, "b", 5)
	g := newGate(t, true, a, b)
	for i := 0; i < 3; i++ {
		if rec := roundTrip(t, g, http.MethodPost, "/v1/envs/e-b-000007/step", map[string]any{"effort": []float64{1}}); rec.Code != http.StatusOK {
			t.Fatalf("step: status %d", rec.Code)
		}
	}
	if b.count("/v1/envs/e-b-000007/step") != 3 || a.count("/v1/envs/e-b-000007/step") != 0 {
		t.Fatalf("prefixed session ID not owner-routed (a=%d, b=%d)",
			a.count("/v1/envs/e-b-000007/step"), b.count("/v1/envs/e-b-000007/step"))
	}
	// Un-prefixed flows: the create (least-loaded → a) records the owner
	// from the response ID, and follow-ups go back to a.
	rec := roundTrip(t, g, http.MethodPost, "/v1/envs", map[string]any{"park": "MFNP"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil || created.Session.ID == "" {
		t.Fatalf("create response %s: %v", rec.Body, err)
	}
	if a.count("/v1/envs") != 1 {
		t.Fatal("create did not go to the least-session replica")
	}
	path := "/v1/envs/" + created.Session.ID
	roundTrip(t, g, http.MethodPost, path+"/step", map[string]any{"effort": []float64{1}})
	roundTrip(t, g, http.MethodGet, path, nil)
	roundTrip(t, g, http.MethodDelete, path, nil)
	if a.count(path+"/step") != 1 || a.count(path) != 2 {
		t.Fatalf("recorded owner not used for follow-ups (step=%d, get+delete=%d)",
			a.count(path+"/step"), a.count(path))
	}
	if got := b.count(path) + b.count(path+"/step"); got != 0 {
		t.Fatalf("replica b saw %d requests for a's session", got)
	}
}

// TestEnvFleetOwnerRoutingReal runs the owner-routing contract over REAL
// replicas: a session created through the gate steps on its owner, a
// non-owner asked directly answers with the authoritative structured
// unknown_env, and after the owner dies the gate's re-route surfaces that
// same structured answer instead of a transport error.
func TestEnvFleetOwnerRoutingReal(t *testing.T) {
	mk := func(id string) *httptest.Server {
		svc := paws.NewService(paws.WithWorkers(2), paws.WithSeed(7))
		ts := httptest.NewServer(serve.New(svc, serve.Config{ReplicaID: id, JobWorkers: 1}))
		t.Cleanup(ts.Close)
		return ts
	}
	tsA, tsB := mk("a"), mk("b")
	g, err := New(Config{Backends: []string{tsA.URL, tsB.URL}, Affinity: true})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(g)
	t.Cleanup(gts.Close)

	body := strings.NewReader(`{"park":"MFNP","seed":7,"seasons":1,"season_months":1,"bootstrap_months":6}`)
	resp, err := http.Post(gts.URL+"/v1/envs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
		Obs struct {
			Effort [][]float64 `json:"effort"`
		} `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Session.ID == "" {
		t.Fatalf("create via gate: status %d, id %q", resp.StatusCode, created.Session.ID)
	}
	var owner, other *httptest.Server
	switch {
	case strings.HasPrefix(created.Session.ID, "e-a-"):
		owner, other = tsA, tsB
	case strings.HasPrefix(created.Session.ID, "e-b-"):
		owner, other = tsB, tsA
	default:
		t.Fatalf("session ID %q does not name a replica", created.Session.ID)
	}

	// Stepping through the gate reaches the owner and completes the season.
	eff, _ := json.Marshal(map[string]any{"effort": created.Obs.Effort[0]})
	resp, err = http.Post(gts.URL+"/v1/envs/"+created.Session.ID+"/step", "application/json", strings.NewReader(string(eff)))
	if err != nil {
		t.Fatal(err)
	}
	var step struct {
		Done bool `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&step); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !step.Done {
		t.Fatalf("step via gate: status %d done=%v", resp.StatusCode, step.Done)
	}

	// The non-owner, asked directly, answers with the authoritative
	// structured unknown_env for its own namespace.
	resp, err = http.Get(other.URL + "/v1/envs/" + created.Session.ID)
	if err != nil {
		t.Fatal(err)
	}
	var envelope errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || envelope.Error.Code != "unknown_env" {
		t.Fatalf("non-owner get: status %d code %q, want 404 unknown_env", resp.StatusCode, envelope.Error.Code)
	}

	// Kill the owner: the gate re-routes to the survivor, whose structured
	// 404 is the honest fleet-level answer (the session died with its owner).
	owner.Close()
	g.PollOnce()
	resp, err = http.Get(gts.URL + "/v1/envs/" + created.Session.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("poll after owner death: undecodable body: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound || envelope.Error.Code != "unknown_env" {
		t.Fatalf("poll after owner death: status %d code %q, want 404 unknown_env", resp.StatusCode, envelope.Error.Code)
	}
}
