package gate

import (
	"bytes"
	"net/http"
	"testing"
)

// TestGatezRenderByteStable pins /gatez as byte-identical across
// repeated renders of an idle gate: backend rows come from the
// configuration-ordered slice, not map iteration, so operators diffing
// gate status across polls see real changes only.
func TestGatezRenderByteStable(t *testing.T) {
	a := newStub(t, "a", 0)
	b := newStub(t, "b", 0)
	g := newGate(t, false, a, b)
	first := roundTrip(t, g, http.MethodGet, "/gatez", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("gatez: status %d", first.Code)
	}
	for i := 0; i < 5; i++ {
		rec := roundTrip(t, g, http.MethodGet, "/gatez", nil)
		if !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, rec.Body, first.Body)
		}
	}
}
