package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"paws"
	"paws/internal/serve"
)

// stub is a fake replica: it answers /statusz like pawsd and records every
// other request it receives.
type stub struct {
	name   string
	queued int

	mu   sync.Mutex
	hits map[string]int

	ts *httptest.Server
}

func newStub(t *testing.T, name string, queued int) *stub {
	s := &stub{name: name, queued: queued, hits: map[string]int{}}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/statusz" {
			fmt.Fprintf(w, `{"replica":%q,"jobs":{"queued":%d,"running":0,"mean_job_seconds":1}}`, s.name, s.queued)
			return
		}
		s.mu.Lock()
		s.hits[r.URL.Path]++
		s.mu.Unlock()
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"j-000042","kind":"riskmap","state":"queued"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stub) count(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[path]
}

func (s *stub) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.hits {
		n += c
	}
	return n
}

func newGate(t *testing.T, affinity bool, stubs ...*stub) *Gate {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.ts.URL
	}
	g, err := New(Config{Backends: urls, Affinity: affinity})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// roundTrip drives one request through the gate handler.
func roundTrip(t *testing.T, g *Gate, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

// TestAffinityPinsRepeatKeys: with affinity on, one riskmap key always
// lands on the same replica (so its LRU accumulates hits), while distinct
// keys spread across the fleet; with affinity off the same repeats
// round-robin.
func TestAffinityPinsRepeatKeys(t *testing.T) {
	a, b := newStub(t, "a", 0), newStub(t, "b", 0)
	g := newGate(t, true, a, b)
	for i := 0; i < 8; i++ {
		if rec := roundTrip(t, g, http.MethodGet, "/v1/riskmap?effort=1.5", nil); rec.Code != http.StatusOK {
			t.Fatalf("riskmap via gate: status %d", rec.Code)
		}
	}
	ca, cb := a.count("/v1/riskmap"), b.count("/v1/riskmap")
	if (ca != 8 || cb != 0) && (ca != 0 || cb != 8) {
		t.Fatalf("one key split %d/%d across replicas, want 8/0", ca, cb)
	}
	// Distinct keys spread: with 64 keys both replicas see some.
	for i := 0; i < 64; i++ {
		roundTrip(t, g, http.MethodGet, fmt.Sprintf("/v1/riskmap?effort=%d.25", i+1), nil)
	}
	if a.count("/v1/riskmap") == 0 || b.count("/v1/riskmap") == 0 {
		t.Fatalf("64 distinct keys all on one replica (a=%d, b=%d)",
			a.count("/v1/riskmap"), b.count("/v1/riskmap"))
	}
	// POST bodies hash to the same key space as GET queries: one more GET
	// and one POST for the same key move exactly one replica's count by 2.
	aBefore, bBefore := a.count("/v1/riskmap"), b.count("/v1/riskmap")
	roundTrip(t, g, http.MethodPost, "/v1/riskmap", map[string]any{"effort": 1.5})
	roundTrip(t, g, http.MethodGet, "/v1/riskmap?effort=1.5", nil)
	aAfter, bAfter := a.count("/v1/riskmap"), b.count("/v1/riskmap")
	if !(aAfter == aBefore+2 && bAfter == bBefore) && !(bAfter == bBefore+2 && aAfter == aBefore) {
		t.Fatalf("GET and POST for one key landed on different replicas (a %d->%d, b %d->%d)",
			aBefore, aAfter, bBefore, bAfter)
	}

	// Affinity off: the same repeated key round-robins.
	a2, b2 := newStub(t, "a2", 0), newStub(t, "b2", 0)
	g2 := newGate(t, false, a2, b2)
	for i := 0; i < 8; i++ {
		roundTrip(t, g2, http.MethodGet, "/v1/riskmap?effort=1.5", nil)
	}
	if a2.count("/v1/riskmap") != 4 || b2.count("/v1/riskmap") != 4 {
		t.Fatalf("affinity off: split %d/%d, want 4/4", a2.count("/v1/riskmap"), b2.count("/v1/riskmap"))
	}
}

// TestPlanAffinity routes plan requests by (model, post, beta).
func TestPlanAffinity(t *testing.T) {
	a, b := newStub(t, "a", 0), newStub(t, "b", 0)
	g := newGate(t, true, a, b)
	for i := 0; i < 6; i++ {
		roundTrip(t, g, http.MethodPost, "/v1/plan", map[string]any{"post": 1, "beta": 0.9})
	}
	ca, cb := a.count("/v1/plan"), b.count("/v1/plan")
	if (ca != 6 || cb != 0) && (ca != 0 || cb != 6) {
		t.Fatalf("one plan key split %d/%d, want 6/0", ca, cb)
	}
}

func TestPredictRoundRobins(t *testing.T) {
	a, b := newStub(t, "a", 0), newStub(t, "b", 0)
	g := newGate(t, true, a, b)
	for i := 0; i < 8; i++ {
		roundTrip(t, g, http.MethodPost, "/v1/predict", map[string]any{"cells": []int{1}, "effort": 1})
	}
	if a.count("/v1/predict") != 4 || b.count("/v1/predict") != 4 {
		t.Fatalf("predict split %d/%d, want 4/4", a.count("/v1/predict"), b.count("/v1/predict"))
	}
}

// TestLeastLoadedSubmission routes job submissions to the replica with
// the smallest committed load, counting the gate's own recent routing.
func TestLeastLoadedSubmission(t *testing.T) {
	busy, idle := newStub(t, "busy", 3), newStub(t, "idle", 0)
	g := newGate(t, true, busy, idle)
	// idle's load runs 0→1→2 while busy sits at 3: first three submissions
	// all go to idle even though no poll happens in between.
	for i := 0; i < 3; i++ {
		if rec := roundTrip(t, g, http.MethodPost, "/v1/jobs", map[string]any{"kind": "riskmap"}); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, rec.Code)
		}
	}
	if busy.count("/v1/jobs") != 0 || idle.count("/v1/jobs") != 3 {
		t.Fatalf("submissions split busy=%d idle=%d, want 0/3", busy.count("/v1/jobs"), idle.count("/v1/jobs"))
	}
	// The synchronous simulate endpoint follows the same routing.
	roundTrip(t, g, http.MethodPost, "/v1/simulate", map[string]any{"park": "rand:16"})
	if busy.count("/v1/simulate")+idle.count("/v1/simulate") != 1 {
		t.Fatal("simulate not proxied")
	}
}

// TestJobObservationSticksToOwner: prefixed IDs route by the replica name
// embedded in the ID; un-prefixed IDs route by the owner recorded at
// submit time.
func TestJobObservationSticksToOwner(t *testing.T) {
	a, b := newStub(t, "a", 0), newStub(t, "b", 5)
	g := newGate(t, true, a, b)
	for i := 0; i < 3; i++ {
		if rec := roundTrip(t, g, http.MethodGet, "/v1/jobs/j-b-000007", nil); rec.Code != http.StatusOK {
			t.Fatalf("job get: status %d", rec.Code)
		}
	}
	if b.count("/v1/jobs/j-b-000007") != 3 || a.count("/v1/jobs/j-b-000007") != 0 {
		t.Fatalf("prefixed job ID not owner-routed (a=%d, b=%d)",
			a.count("/v1/jobs/j-b-000007"), b.count("/v1/jobs/j-b-000007"))
	}
	// Un-prefixed: the submit (least-loaded → a) records the owner, and the
	// follow-up GET and DELETE go back to a.
	if rec := roundTrip(t, g, http.MethodPost, "/v1/jobs", map[string]any{"kind": "riskmap"}); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d", rec.Code)
	}
	if a.count("/v1/jobs") != 1 {
		t.Fatal("submission did not go to the least-loaded replica")
	}
	roundTrip(t, g, http.MethodGet, "/v1/jobs/j-000042/events", nil)
	roundTrip(t, g, http.MethodDelete, "/v1/jobs/j-000042", nil)
	if a.count("/v1/jobs/j-000042/events") != 1 || a.count("/v1/jobs/j-000042") != 1 {
		t.Fatal("recorded owner not used for follow-up job requests")
	}
	if b.total() != 3 {
		t.Fatalf("replica b saw %d requests, want only the 3 owner-routed gets", b.total())
	}
}

// TestRetryOnDeadReplica: a GET that hits a dead replica is retried once
// on a live one, so a crash costs clients nothing.
func TestRetryOnDeadReplica(t *testing.T) {
	a, b := newStub(t, "a", 0), newStub(t, "b", 0)
	g := newGate(t, true, a, b)
	a.ts.Close() // dies after the initial health poll marked it healthy
	for i := 0; i < 4; i++ {
		if rec := roundTrip(t, g, http.MethodGet, "/v1/models", nil); rec.Code != http.StatusOK {
			t.Fatalf("GET %d via gate with one dead replica: status %d, body %s", i, rec.Code, rec.Body)
		}
	}
	if b.count("/v1/models") != 4 {
		t.Fatalf("live replica served %d of 4 requests", b.count("/v1/models"))
	}
	st := g.Status()
	if st.Routing.Retries < 1 {
		t.Fatalf("no retry recorded: %+v", st.Routing)
	}
	healthyCount := 0
	for _, bs := range st.Backends {
		if bs.Healthy {
			healthyCount++
		}
	}
	if healthyCount != 1 {
		t.Fatalf("%d healthy backends after a death, want 1", healthyCount)
	}
}

func TestGatezAndNoBackends(t *testing.T) {
	a := newStub(t, "a", 0)
	g := newGate(t, true, a)
	rec := roundTrip(t, g, http.MethodGet, "/gatez", nil)
	var st GatezResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("gatez: %v (%s)", err, rec.Body)
	}
	if len(st.Backends) != 1 || st.Backends[0].Name != "a" || !st.Backends[0].Healthy {
		t.Fatalf("gatez backends: %+v", st.Backends)
	}
	a.ts.Close()
	g.PollOnce()
	rec = roundTrip(t, g, http.MethodGet, "/v1/models", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no healthy backend: status %d, want 503", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "no_backend" {
		t.Fatalf("no-backend envelope %s (err %v)", rec.Body, err)
	}
}

// TestKillReplicaMidCampaign is the satellite fleet test over REAL
// replicas: two pawsd serving stacks behind a gate, a campaign job
// submitted through the gate, the owning replica killed, and the next
// poll must reach a live replica and answer with the structured envelope
// (the job died with its owner — the client learns that cleanly, not via
// a transport error or bare 502).
func TestKillReplicaMidCampaign(t *testing.T) {
	mk := func(id string) (*serve.Server, *httptest.Server) {
		svc := paws.NewService(paws.WithWorkers(2), paws.WithSeed(7))
		srv := serve.New(svc, serve.Config{ReplicaID: id, JobWorkers: 1})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return srv, ts
	}
	_, tsA := mk("a")
	_, tsB := mk("b")
	g, err := New(Config{Backends: []string{tsA.URL, tsB.URL}, Affinity: true})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(g)
	t.Cleanup(gts.Close)

	// A campaign needs no trained model with non-learning policies, so the
	// empty replicas can run it.
	submit := map[string]any{"kind": "campaign", "campaign": map[string]any{
		"parks": []string{"rand:16"}, "policies": []string{"uniform", "historical"},
		"seeds": []int64{1}, "season_counts": []int{2},
	}}
	body, _ := json.Marshal(submit)
	resp, err := http.Post(gts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || snap.ID == "" {
		t.Fatalf("submit via gate: status %d, id %q", resp.StatusCode, snap.ID)
	}

	// The ID names its owner; kill that replica.
	var owner, live *httptest.Server
	switch {
	case strings.HasPrefix(snap.ID, "j-a-"):
		owner, live = tsA, tsB
	case strings.HasPrefix(snap.ID, "j-b-"):
		owner, live = tsB, tsA
	default:
		t.Fatalf("job ID %q does not name a replica", snap.ID)
	}
	_ = live
	owner.Close()
	g.PollOnce() // the health loop notices the death

	// The next poll through the gate reaches a live replica and gets the
	// authoritative structured answer: this job is unknown there (it died
	// with its owner) — not a transport error, not a 502.
	resp, err = http.Get(gts.URL + "/v1/jobs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("poll after owner death: undecodable body: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "unknown_job" {
		t.Fatalf("poll after owner death: status %d, code %q; want 404 unknown_job",
			resp.StatusCode, env.Error.Code)
	}
	// The fleet keeps serving: a fresh submission lands on the survivor.
	resp, err = http.Post(gts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after death: status %d", resp.StatusCode)
	}
}
