// Package gate is the fleet routing proxy in front of N pawsd replicas
// (the pawsgate binary). The replicas share one model store (internal/
// store), so any replica can answer any request — the gate's job is to
// pick the replica that answers it best:
//
//   - Cacheable map/plan work (/v1/riskmap, /v1/plan) routes by rendezvous
//     hashing of the response cache key (model + the query's exact effort
//     bits), so repeat queries for the same key land on the same replica
//     and its riskmap LRU actually accumulates hits. With affinity off the
//     gate falls back to round-robin — the switch pawsload uses to measure
//     how much affinity is worth.
//   - Stateless scoring (/v1/predict) and discovery (/v1/models, /healthz)
//     round-robin across healthy replicas.
//   - Job submission (POST /v1/jobs, and the synchronous /v1/simulate,
//     which runs a one-shot job server-side) routes to the least-loaded
//     replica: queue depth and mean job cost from each replica's /statusz
//     poll, plus the submissions the gate itself routed there since the
//     last poll, so a burst between polls does not dogpile one replica.
//   - Job observation (GET /v1/jobs/{id}…, DELETE) is owner-sticky: job
//     state lives only on the replica that runs the job, so the gate
//     parses the replica ID out of the job ID ("j-<replica>-000042"),
//     falling back to the owner it recorded at submit time.
//
// Replicas are health-checked (GET /statusz) on a fixed interval; a
// failed poll or a failed proxied request takes a replica out of rotation
// until a poll succeeds again. Idempotent GETs that die on a transport
// error are retried once on a different healthy replica, so a replica
// crash mid-request costs clients one error at most. GET /v1/jobs fans
// out to every healthy replica and merges the lists, so operators see the
// whole fleet's jobs in one place. The gate reports itself under GET
// /gatez.
package gate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paws/internal/obs"
)

// Config tunes a Gate.
type Config struct {
	// Backends are the pawsd replica base URLs (e.g. http://127.0.0.1:8080).
	// At least one is required.
	Backends []string
	// HealthInterval is the /statusz poll cadence (default 250ms).
	HealthInterval time.Duration
	// Affinity enables cache-key routing for /v1/riskmap and /v1/plan;
	// disabled they round-robin like stateless traffic.
	Affinity bool
	// Client overrides the outbound HTTP client (nil uses a default with
	// no overall timeout — event streams are long-lived; per-request
	// contexts bound everything else).
	Client *http.Client
	// TraceCapacity bounds the gate's /tracez flight recorder (default 64).
	TraceCapacity int
}

// backend is one replica behind the gate.
type backend struct {
	url string

	mu sync.Mutex
	// name is the replica ID from /statusz ("" until the first successful
	// poll of a replica that has one).
	name    string
	healthy bool
	// queued/running/meanJob/completed mirror the last /statusz poll.
	// completed distinguishes a cold replica (no jobs finished yet, so
	// meanJob 0 is "unknown") from a warm one whose jobs are genuinely
	// fast.
	queued, running int
	meanJob         float64
	completed       int64

	// envActive mirrors the replica's /statusz envs.active — live env
	// sessions, the least-loaded signal for session creates.
	envActive int

	// submits counts job submissions routed here since the last poll —
	// the between-polls correction for least-loaded routing.
	submits atomic.Int64
	// envCreates counts env session creates routed here since the last
	// poll — the same between-polls correction for session routing.
	envCreates atomic.Int64
	// proxied counts requests proxied here over the gate's lifetime.
	proxied atomic.Int64
}

// load is the backend's current least-loaded score.
func (b *backend) load() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.queued+b.running) + b.submits.Load()
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// setHealthy updates the flag and reports a healthy→unhealthy
// transition (the event pawsgate_health_evictions_total counts).
func (b *backend) setHealthy(ok bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	evicted := b.healthy && !ok
	b.healthy = ok
	return evicted
}

// Gate is the routing proxy. It is an http.Handler.
type Gate struct {
	cfg      Config
	client   *http.Client
	backends []*backend

	rr atomic.Int64 // round-robin cursor

	ownerMu sync.Mutex
	// owners maps un-prefixed job IDs to the backend they were submitted
	// to — the fallback when the ID itself does not name its replica.
	owners map[string]*backend

	// routing counters, reported by /gatez.
	affinityRouted, rrRouted, leastLoadedRouted, retries atomic.Int64

	metrics *gateMetrics
	tracer  *obs.Recorder
}

// maxBodyBytes bounds a buffered request body; the largest legitimate
// bodies (predict batches) stay well under it.
const maxBodyBytes = 16 << 20

// New builds a Gate and synchronously polls every backend once, so a
// freshly started gate routes correctly from its first request.
func New(cfg Config) (*Gate, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gate: at least one backend is required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	g := &Gate{cfg: cfg, client: client, owners: map[string]*backend{}, tracer: obs.NewRecorder(cfg.TraceCapacity)}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gate: invalid backend URL %q", raw)
		}
		g.backends = append(g.backends, &backend{url: strings.TrimRight(raw, "/")})
	}
	g.metrics = newGateMetrics(g)
	g.PollOnce()
	return g, nil
}

// PollOnce health-checks every backend synchronously.
func (g *Gate) PollOnce() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.pollBackend(b)
		}(b)
	}
	wg.Wait()
}

// Run polls backend health until ctx is done.
func (g *Gate) Run(ctx interface{ Done() <-chan struct{} }) {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.PollOnce()
		}
	}
}

// statuszProbe is the slice of a replica's /statusz the gate consumes.
type statuszProbe struct {
	Replica string `json:"replica"`
	Jobs    struct {
		Queued         int     `json:"queued"`
		Running        int     `json:"running"`
		Completed      int64   `json:"completed"`
		MeanJobSeconds float64 `json:"mean_job_seconds"`
	} `json:"jobs"`
	Envs struct {
		Active int `json:"active"`
	} `json:"envs"`
}

// pollBackend refreshes one backend's health and load.
func (g *Gate) pollBackend(b *backend) {
	req, err := http.NewRequest(http.MethodGet, b.url+"/statusz", nil)
	if err != nil {
		g.markDown(b)
		return
	}
	client := *g.client
	client.Timeout = 2 * time.Second
	resp, err := client.Do(req)
	if err != nil {
		g.markDown(b)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		g.markDown(b)
		return
	}
	var probe statuszProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		g.markDown(b)
		return
	}
	b.mu.Lock()
	b.healthy = true
	if probe.Replica != "" {
		b.name = probe.Replica
	}
	b.queued = probe.Jobs.Queued
	b.running = probe.Jobs.Running
	b.completed = probe.Jobs.Completed
	b.meanJob = probe.Jobs.MeanJobSeconds
	b.envActive = probe.Envs.Active
	b.mu.Unlock()
	// The poll re-based queued+running and envs.active, so the
	// between-polls corrections restart from zero.
	b.submits.Store(0)
	b.envCreates.Store(0)
}

// healthy returns the healthy backends, in configuration order.
func (g *Gate) healthy() []*backend {
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.isHealthy() {
			out = append(out, b)
		}
	}
	return out
}

// pickRoundRobin cycles through the healthy backends.
func (g *Gate) pickRoundRobin(healthy []*backend) *backend {
	n := g.rr.Add(1)
	return healthy[int((n-1)%int64(len(healthy)))]
}

// pickAffinity rendezvous-hashes the cache key over the healthy backends:
// each (key, backend) pair gets a deterministic weight and the maximum
// wins, so a key keeps its replica while that replica is alive, and only
// 1/n of keys move when a replica joins or dies.
func (g *Gate) pickAffinity(healthy []*backend, key string) *backend {
	var best *backend
	var bestW uint64
	for _, b := range healthy {
		h := fnv.New64a()
		io.WriteString(h, key)
		io.WriteString(h, "|")
		io.WriteString(h, b.url)
		if w := h.Sum64(); best == nil || w > bestW {
			best, bestW = b, w
		}
	}
	return best
}

// pickLeastLoaded takes the backend with the fewest committed jobs
// (statusz queued+running, plus submissions the gate routed there since
// the last poll). Ties break on expected per-job cost: a replica that
// has completed jobs ranks by its reported EWMA, while a cold replica
// (completed == 0, so its meanJob of 0 means "unknown", not "fast") is
// ranked pessimistically behind every warm candidate. Remaining ties
// keep configuration order.
func (g *Gate) pickLeastLoaded(healthy []*backend) *backend {
	type score struct {
		load    int64
		cold    bool
		meanJob float64
	}
	scoreOf := func(b *backend) score {
		b.mu.Lock()
		defer b.mu.Unlock()
		return score{
			load:    int64(b.queued+b.running) + b.submits.Load(),
			cold:    b.completed == 0,
			meanJob: b.meanJob,
		}
	}
	better := func(a, b score) bool {
		if a.load != b.load {
			return a.load < b.load
		}
		if a.cold != b.cold {
			return !a.cold
		}
		return a.meanJob < b.meanJob
	}
	best, bestScore := healthy[0], scoreOf(healthy[0])
	for _, b := range healthy[1:] {
		if s := scoreOf(b); better(s, bestScore) {
			best, bestScore = b, s
		}
	}
	return best
}

// pickLeastEnvLoaded takes the backend with the fewest live env sessions
// (statusz envs.active, plus the creates the gate routed there since the
// last poll). Ties keep configuration order — env steps are uniform enough
// that no cost tiebreak is needed.
func (g *Gate) pickLeastEnvLoaded(healthy []*backend) *backend {
	scoreOf := func(b *backend) int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return int64(b.envActive) + b.envCreates.Load()
	}
	best, bestScore := healthy[0], scoreOf(healthy[0])
	for _, b := range healthy[1:] {
		if s := scoreOf(b); s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// ID patterns extract the replica name a prefixed resource ID carries —
// jobs are "j-<replica>-000042", env sessions "e-<replica>-000007". The
// two namespaces share one owner-resolution mechanism.
var (
	jobIDPattern = regexp.MustCompile(`^j-(.+)-[0-9]{6}$`)
	envIDPattern = regexp.MustCompile(`^e-(.+)-[0-9]{6}$`)
)

// ownerOf resolves which backend owns a resource ID: the replica named
// inside the ID (per the namespace's pattern) if the fleet runs with
// replica IDs, else the owner recorded at submit/create time.
func (g *Gate) ownerOf(id string, pattern *regexp.Regexp) *backend {
	if m := pattern.FindStringSubmatch(id); m != nil {
		for _, b := range g.backends {
			b.mu.Lock()
			name := b.name
			b.mu.Unlock()
			if name == m[1] {
				return b
			}
		}
	}
	g.ownerMu.Lock()
	defer g.ownerMu.Unlock()
	return g.owners[id]
}

// recordOwner remembers which backend a submitted job went to (bounded;
// the ID-prefix path makes this a fallback, not a requirement).
func (g *Gate) recordOwner(id string, b *backend) {
	g.ownerMu.Lock()
	defer g.ownerMu.Unlock()
	if len(g.owners) >= 4096 {
		g.owners = map[string]*backend{}
	}
	g.owners[id] = b
}

// errorEnvelope mirrors serve's structured error body.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		TraceID string `json:"trace_id,omitempty"`
	} `json:"error"`
}

// writeGateErr renders a gate-originated error in serve's envelope shape
// (including the trace_id correlation field, read from the response's
// already-set X-Paws-Trace header), so clients parse one error format
// whether it came from a replica or from the gate itself.
func writeGateErr(w http.ResponseWriter, status int, code, msg string) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	env.Error.TraceID = w.Header().Get(obs.TraceHeader)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// route classifies the request, picks a backend and proxies (ServeHTTP,
// in obs.go, wraps it with tracing and metrics).
func (g *Gate) route(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/gatez":
		g.handleGatez(w, r)
		return
	case "/metricsz":
		// The gate answers for itself; replica metrics are scraped from
		// the replicas directly.
		g.metrics.registry.Handler().ServeHTTP(w, r)
		return
	case "/tracez":
		g.tracer.Handler().ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeGateErr(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		return
	}
	if len(body) > maxBodyBytes {
		writeGateErr(w, http.StatusRequestEntityTooLarge, "bad_request",
			fmt.Sprintf("request body exceeds the gate's %d-byte limit", maxBodyBytes))
		return
	}
	healthy := g.healthy()
	if len(healthy) == 0 {
		writeGateErr(w, http.StatusServiceUnavailable, "no_backend", "no healthy replica available")
		return
	}

	path := r.URL.Path
	switch {
	case r.Method == http.MethodGet && path == "/v1/jobs":
		g.metrics.routeTotal.With("fanout").Inc()
		g.handleJobListFanout(w, r, healthy)
		return
	case strings.HasPrefix(path, "/v1/jobs/"):
		g.metrics.routeTotal.With("owner").Inc()
		g.routeJobDetail(w, r, body, healthy)
		return
	case r.Method == http.MethodPost && (path == "/v1/jobs" || path == "/v1/simulate"):
		b := g.pickLeastLoaded(healthy)
		g.leastLoadedRouted.Add(1)
		g.metrics.routeTotal.With("least_loaded").Inc()
		b.submits.Add(1)
		g.proxySubmit(w, r, body, b, path == "/v1/jobs")
		return
	case r.Method == http.MethodPost && path == "/v1/envs":
		// Session creates route to the replica holding the fewest live env
		// sessions (statusz envs.active plus creates routed since the last
		// poll) — session state is replica-local, so balancing creates is
		// what balances step load.
		b := g.pickLeastEnvLoaded(healthy)
		g.leastLoadedRouted.Add(1)
		g.metrics.routeTotal.With("least_loaded").Inc()
		b.envCreates.Add(1)
		g.proxyEnvCreate(w, r, body, b)
		return
	case strings.HasPrefix(path, "/v1/envs/"):
		// Step/get/delete are owner-sticky: the session lives only on the
		// replica that created it, named inside the ID ("e-<replica>-000007").
		g.metrics.routeTotal.With("owner").Inc()
		g.routeEnvDetail(w, r, body, healthy)
		return
	case g.cfg.Affinity && path == "/v1/riskmap":
		if key, ok := riskmapKey(r, body); ok {
			g.affinityRouted.Add(1)
			g.metrics.routeTotal.With("affinity").Inc()
			g.proxyWithRetry(w, r, body, g.pickAffinity(healthy, key), healthy)
			return
		}
	case g.cfg.Affinity && r.Method == http.MethodPost && path == "/v1/plan":
		if key, ok := planKey(body); ok {
			g.affinityRouted.Add(1)
			g.metrics.routeTotal.With("affinity").Inc()
			g.proxyWithRetry(w, r, body, g.pickAffinity(healthy, key), healthy)
			return
		}
	}
	// Everything else — predict, models, healthz, statusz, unparseable
	// affinity requests — round-robins.
	g.rrRouted.Add(1)
	g.metrics.routeTotal.With("round_robin").Inc()
	g.proxyWithRetry(w, r, body, g.pickRoundRobin(healthy), healthy)
}

// riskmapKey derives the riskmap response-cache affinity key (model +
// exact effort bits — the same identity serve's LRU keys on, minus the
// per-replica generation, which the shared store keeps aligned anyway).
func riskmapKey(r *http.Request, body []byte) (string, bool) {
	model := "default"
	var effort float64
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if m := q.Get("model"); m != "" {
			model = m
		}
		e, err := strconv.ParseFloat(q.Get("effort"), 64)
		if err != nil {
			return "", false
		}
		effort = e
	} else {
		var req struct {
			Model  string  `json:"model"`
			Effort float64 `json:"effort"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return "", false
		}
		if req.Model != "" {
			model = req.Model
		}
		effort = req.Effort
	}
	return fmt.Sprintf("riskmap|%s|%016x", model, math.Float64bits(effort)), true
}

// planKey derives the plan affinity key (model + post + beta bits).
func planKey(body []byte) (string, bool) {
	var req struct {
		Model string  `json:"model"`
		Post  int     `json:"post"`
		Beta  float64 `json:"beta"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", false
	}
	model := req.Model
	if model == "" {
		model = "default"
	}
	return fmt.Sprintf("plan|%s|%d|%016x", model, req.Post, math.Float64bits(req.Beta)), true
}

// routeJobDetail proxies /v1/jobs/{id}… to the replica that owns the job.
// When the owner is unknown (un-prefixed ID submitted around the gate),
// every healthy replica is probed and the first non-404 answer wins.
func (g *Gate) routeJobDetail(w http.ResponseWriter, r *http.Request, body []byte, healthy []*backend) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id = rest[:i]
	}
	if b := g.ownerOf(id, jobIDPattern); b != nil {
		if b.isHealthy() {
			g.proxy(w, r, body, b)
			return
		}
		// The owner is down: its jobs are gone with its process. A live
		// replica answers authoritatively (404 unknown_job after a restart,
		// 503 shutting_down during its drain) — proxy there instead of
		// failing with a bare 502, so clients keep getting the structured
		// envelope.
		g.retries.Add(1)
		g.proxy(w, r, body, g.pickRoundRobin(healthy))
		return
	}
	// Unknown owner: probe. Buffer each answer; forward the first that is
	// not unknown_job, else the last 404.
	for i, b := range healthy {
		resp, raw, err := g.fetch(r, body, b)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusNotFound || i == len(healthy)-1 {
			copyHeader(w.Header(), resp.Header)
			w.WriteHeader(resp.StatusCode)
			w.Write(raw)
			return
		}
	}
	writeGateErr(w, http.StatusNotFound, "unknown_job", fmt.Sprintf("job %q not found on any replica", id))
}

// routeEnvDetail proxies /v1/envs/{id}… (step, get, delete) to the replica
// that owns the session. When the owner is unknown (un-prefixed ID created
// around the gate), every healthy replica is probed and the first non-404
// answer wins — a non-owner replica's 404 unknown_env is authoritative for
// its own namespace but says nothing about the fleet.
func (g *Gate) routeEnvDetail(w http.ResponseWriter, r *http.Request, body []byte, healthy []*backend) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/envs/")
	id := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id = rest[:i]
	}
	if b := g.ownerOf(id, envIDPattern); b != nil {
		if b.isHealthy() {
			g.proxy(w, r, body, b)
			return
		}
		// The owner is down: its sessions are gone with its process. A live
		// replica answers authoritatively (404 unknown_env after a restart,
		// 503 shutting_down during its drain).
		g.retries.Add(1)
		g.proxy(w, r, body, g.pickRoundRobin(healthy))
		return
	}
	for i, b := range healthy {
		resp, raw, err := g.fetch(r, body, b)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusNotFound || i == len(healthy)-1 {
			copyHeader(w.Header(), resp.Header)
			w.WriteHeader(resp.StatusCode)
			w.Write(raw)
			return
		}
	}
	writeGateErr(w, http.StatusNotFound, "unknown_env", fmt.Sprintf("env session %q not found on any replica", id))
}

// proxyEnvCreate proxies a session create, recording the assigned session
// ID so later step/get/delete requests can find their replica even without
// ID prefixes.
func (g *Gate) proxyEnvCreate(w http.ResponseWriter, r *http.Request, body []byte, b *backend) {
	resp, raw, err := g.fetch(r, body, b)
	if err != nil {
		writeGateErr(w, http.StatusBadGateway, "backend_down", fmt.Sprintf("replica %s: %v", b.url, err))
		return
	}
	if resp.StatusCode == http.StatusCreated {
		var created struct {
			Session struct {
				ID string `json:"id"`
			} `json:"session"`
		}
		if json.Unmarshal(raw, &created) == nil && created.Session.ID != "" {
			g.recordOwner(created.Session.ID, b)
		}
	}
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	w.Write(raw)
}

// handleJobListFanout merges GET /v1/jobs across the fleet.
func (g *Gate) handleJobListFanout(w http.ResponseWriter, r *http.Request, healthy []*backend) {
	type listResp struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	merged := listResp{Jobs: []json.RawMessage{}}
	type keyed struct {
		id  string
		raw json.RawMessage
	}
	var all []keyed
	for _, b := range healthy {
		resp, raw, err := g.fetch(r, nil, b)
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var one listResp
		if json.Unmarshal(raw, &one) != nil {
			continue
		}
		for _, j := range one.Jobs {
			var idOnly struct {
				ID string `json:"id"`
			}
			_ = json.Unmarshal(j, &idOnly)
			all = append(all, keyed{id: idOnly.ID, raw: j})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	for _, k := range all {
		merged.Jobs = append(merged.Jobs, k.raw)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(merged)
}

// proxySubmit proxies a job submission, recording the assigned job ID so
// later observation requests can find their replica even without ID
// prefixes.
func (g *Gate) proxySubmit(w http.ResponseWriter, r *http.Request, body []byte, b *backend, record bool) {
	resp, raw, err := g.fetch(r, body, b)
	if err != nil {
		writeGateErr(w, http.StatusBadGateway, "backend_down", fmt.Sprintf("replica %s: %v", b.url, err))
		return
	}
	if record && resp.StatusCode == http.StatusAccepted {
		var snap struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(raw, &snap) == nil && snap.ID != "" {
			g.recordOwner(snap.ID, b)
		}
	}
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	w.Write(raw)
}

// proxyWithRetry proxies to b; when the transport itself fails (replica
// died mid-request) and the request is an idempotent GET, it retries once
// on a different healthy replica.
func (g *Gate) proxyWithRetry(w http.ResponseWriter, r *http.Request, body []byte, b *backend, healthy []*backend) {
	err := g.proxy(w, r, body, b)
	if err == nil || r.Method != http.MethodGet {
		if err != nil {
			writeGateErr(w, http.StatusBadGateway, "backend_down", fmt.Sprintf("replica %s: %v", b.url, err))
		}
		return
	}
	for _, alt := range healthy {
		if alt == b || !alt.isHealthy() {
			continue
		}
		g.retries.Add(1)
		if err := g.proxy(w, r, body, alt); err == nil {
			return
		}
		break // one retry
	}
	writeGateErr(w, http.StatusBadGateway, "backend_down", fmt.Sprintf("replica %s: %v", b.url, err))
}

// proxy forwards the request to one backend and streams the response. A
// transport-level failure marks the backend unhealthy and returns the
// error with nothing written, so the caller may retry elsewhere; once any
// response byte arrives the response is committed to this backend.
func (g *Gate) proxy(w http.ResponseWriter, r *http.Request, body []byte, b *backend) error {
	endSpan := obs.StartSpan(r.Context(), "proxy", b.label())
	defer endSpan()
	resp, err := g.send(r, body, b)
	if err != nil {
		g.markDown(b)
		return err
	}
	defer resp.Body.Close()
	b.proxied.Add(1)
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return nil // client gone; the backend is fine
			}
			// Flush every chunk: NDJSON event streams must reach the
			// client as the replica emits them, not when a buffer fills.
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return nil
		}
	}
}

// fetch forwards the request to one backend and buffers the full response
// — for routes that must inspect the answer (submissions, probes, list
// fan-out). Transport failures mark the backend unhealthy.
func (g *Gate) fetch(r *http.Request, body []byte, b *backend) (*http.Response, []byte, error) {
	endSpan := obs.StartSpan(r.Context(), "proxy", b.label())
	defer endSpan()
	resp, err := g.send(r, body, b)
	if err != nil {
		g.markDown(b)
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		g.markDown(b)
		return nil, nil, err
	}
	b.proxied.Add(1)
	return resp, raw, nil
}

// send builds and performs the outbound request. The inbound headers
// include X-Paws-Trace (set by ServeHTTP when the client sent none), so
// the replica adopts the gate's trace ID.
func (g *Gate) send(r *http.Request, body []byte, b *backend) (*http.Response, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeader(out.Header, r.Header)
	out.Header.Del("Connection")
	g.metrics.replicaPicks.With(b.label()).Inc()
	return g.client.Do(out)
}

// copyHeader copies headers, skipping hop-by-hop fields. X-Paws-Trace
// is skipped when the destination already carries it: the gate sets the
// ID on its response up front, and the replica echoes the same ID back
// — copying would duplicate the header.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade":
			continue
		case obs.TraceHeader:
			if dst.Get(obs.TraceHeader) != "" {
				continue
			}
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// BackendStatus is one replica's row in the /gatez report.
type BackendStatus struct {
	Name    string `json:"name,omitempty"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	// MeanJobSeconds is the replica's reported mean job runtime; it is
	// meaningful only when Completed > 0 (a cold replica reports 0).
	MeanJobSeconds float64 `json:"mean_job_seconds"`
	// Completed is the replica's lifetime finished-job count.
	Completed int64 `json:"completed"`
	// Proxied counts requests the gate sent here over its lifetime.
	Proxied int64 `json:"proxied"`
	// SubmitsSincePoll counts job submissions routed here since the last
	// health poll.
	SubmitsSincePoll int64 `json:"submits_since_poll"`
	// EnvActive is the replica's reported live env session count.
	EnvActive int `json:"env_active"`
	// EnvCreatesSincePoll counts env session creates routed here since the
	// last health poll.
	EnvCreatesSincePoll int64 `json:"env_creates_since_poll"`
}

// GatezResponse is the gate's own status report.
type GatezResponse struct {
	Affinity bool            `json:"affinity"`
	Backends []BackendStatus `json:"backends"`
	Routing  struct {
		Affinity    int64 `json:"affinity"`
		RoundRobin  int64 `json:"round_robin"`
		LeastLoaded int64 `json:"least_loaded"`
		Retries     int64 `json:"retries"`
	} `json:"routing"`
}

// Status builds the current /gatez report.
func (g *Gate) Status() GatezResponse {
	resp := GatezResponse{Affinity: g.cfg.Affinity}
	for _, b := range g.backends {
		b.mu.Lock()
		resp.Backends = append(resp.Backends, BackendStatus{
			Name:                b.name,
			URL:                 b.url,
			Healthy:             b.healthy,
			Queued:              b.queued,
			Running:             b.running,
			MeanJobSeconds:      b.meanJob,
			Completed:           b.completed,
			Proxied:             b.proxied.Load(),
			SubmitsSincePoll:    b.submits.Load(),
			EnvActive:           b.envActive,
			EnvCreatesSincePoll: b.envCreates.Load(),
		})
		b.mu.Unlock()
	}
	resp.Routing.Affinity = g.affinityRouted.Load()
	resp.Routing.RoundRobin = g.rrRouted.Load()
	resp.Routing.LeastLoaded = g.leastLoadedRouted.Load()
	resp.Routing.Retries = g.retries.Load()
	return resp
}

func (g *Gate) handleGatez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeGateErr(w, http.StatusMethodNotAllowed, "bad_request", "gatez is GET-only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(g.Status())
}
