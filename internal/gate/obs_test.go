package gate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"paws/internal/obs"
)

// statStub is a fake replica with a controllable /statusz load report —
// the harness for least-loaded scoring tests — that also records the
// X-Paws-Trace header of every proxied request.
type statStub struct {
	name      string
	queued    int
	running   int
	completed int64
	meanJob   float64

	mu     sync.Mutex
	traces []string

	ts *httptest.Server
}

func newStatStub(t *testing.T, name string, queued int, completed int64, meanJob float64) *statStub {
	s := &statStub{name: name, queued: queued, completed: completed, meanJob: meanJob}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/statusz" {
			fmt.Fprintf(w, `{"replica":%q,"jobs":{"queued":%d,"running":%d,"completed":%d,"mean_job_seconds":%g}}`,
				s.name, s.queued, s.running, s.completed, s.meanJob)
			return
		}
		s.mu.Lock()
		s.traces = append(s.traces, r.Header.Get(obs.TraceHeader))
		s.mu.Unlock()
		w.Header().Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *statStub) lastTrace() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.traces) == 0 {
		return ""
	}
	return s.traces[len(s.traces)-1]
}

func statGate(t *testing.T, stubs ...*statStub) *Gate {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.ts.URL
	}
	g, err := New(Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestColdReplicaScoring pins the least-loaded tie-breaks: at equal
// committed load a warm replica (completed > 0) beats a cold one whose
// meanJob of 0 is unknown rather than fast; among warm replicas the
// lower EWMA wins; and committed load still dominates everything — a
// cold idle replica beats a warm backlogged one.
func TestColdReplicaScoring(t *testing.T) {
	t.Run("warm beats cold at equal load", func(t *testing.T) {
		cold := newStatStub(t, "cold", 0, 0, 0)
		warm := newStatStub(t, "warm", 0, 5, 0.001)
		g := statGate(t, cold, warm) // cold listed first: order must not win
		if got := g.pickLeastLoaded(g.healthy()).label(); got != "warm" {
			t.Fatalf("picked %q, want the warm replica", got)
		}
	})
	t.Run("lower mean wins among warm", func(t *testing.T) {
		slow := newStatStub(t, "slow", 0, 9, 5.0)
		fast := newStatStub(t, "fast", 0, 9, 0.5)
		g := statGate(t, slow, fast)
		if got := g.pickLeastLoaded(g.healthy()).label(); got != "fast" {
			t.Fatalf("picked %q, want the fast replica", got)
		}
	})
	t.Run("load dominates warmth", func(t *testing.T) {
		warmBusy := newStatStub(t, "warm-busy", 2, 5, 0.001)
		coldIdle := newStatStub(t, "cold-idle", 0, 0, 0)
		g := statGate(t, warmBusy, coldIdle)
		if got := g.pickLeastLoaded(g.healthy()).label(); got != "cold-idle" {
			t.Fatalf("picked %q, want the idle replica despite its cold EWMA", got)
		}
	})
	t.Run("all cold keeps config order", func(t *testing.T) {
		a := newStatStub(t, "a", 0, 0, 0)
		b := newStatStub(t, "b", 0, 0, 0)
		g := statGate(t, a, b)
		if got := g.pickLeastLoaded(g.healthy()).label(); got != "a" {
			t.Fatalf("picked %q, want config order when nothing distinguishes", got)
		}
	})
}

// TestGateTracePropagation pins the edge-tracing contract: the gate
// mints an X-Paws-Trace when the client sent none, the replica receives
// exactly that ID, the response echoes it exactly once, the gate's
// /tracez records the request with a per-backend proxy span, and an
// inbound client ID is adopted rather than replaced.
func TestGateTracePropagation(t *testing.T) {
	a := newStatStub(t, "a", 0, 1, 0.1)
	g := statGate(t, a)

	rec := roundTrip(t, g, http.MethodPost, "/v1/predict", map[string]any{"effort": 1.0})
	if rec.Code != http.StatusOK {
		t.Fatalf("predict via gate: status %d", rec.Code)
	}
	vals := rec.Header().Values(obs.TraceHeader)
	if len(vals) != 1 || vals[0] == "" {
		t.Fatalf("response trace header %q, want exactly one minted ID", vals)
	}
	minted := vals[0]
	if got := a.lastTrace(); got != minted {
		t.Fatalf("replica saw trace %q, gate minted %q", got, minted)
	}

	var found bool
	for _, tr := range g.tracer.Recent() {
		if tr.TraceID != minted {
			continue
		}
		found = true
		if tr.Op != "POST /v1/predict" {
			t.Fatalf("trace op %q", tr.Op)
		}
		if len(tr.Spans) == 0 || tr.Spans[0].Name != "proxy" || tr.Spans[0].Item != "a" {
			t.Fatalf("trace spans %+v, want a proxy span naming the replica", tr.Spans)
		}
	}
	if !found {
		t.Fatalf("minted trace %q not in the gate flight recorder", minted)
	}

	// Inbound IDs are adopted, not replaced.
	req := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	req.Header.Set(obs.TraceHeader, "cafe0000cafe0000")
	rec2 := httptest.NewRecorder()
	g.ServeHTTP(rec2, req)
	if vals := rec2.Header().Values(obs.TraceHeader); len(vals) != 1 || vals[0] != "cafe0000cafe0000" {
		t.Fatalf("inbound trace echoed as %q, want the client's ID exactly once", vals)
	}
	if got := a.lastTrace(); got != "cafe0000cafe0000" {
		t.Fatalf("replica saw %q, want the client's ID", got)
	}
}

// TestGateMetricsAndErrorEnvelope scrapes the gate's own /metricsz and
// checks a gate-originated error carries trace_id in the envelope.
func TestGateMetricsAndErrorEnvelope(t *testing.T) {
	a := newStatStub(t, "a", 0, 1, 0.1)
	g := statGate(t, a)
	for i := 0; i < 3; i++ {
		roundTrip(t, g, http.MethodPost, "/v1/predict", map[string]any{"effort": 1.0})
	}
	rec := roundTrip(t, g, http.MethodGet, "/metricsz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metricsz: status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`pawsgate_http_requests_total{endpoint="/v1/predict",method="POST",code="200"} 3`,
		`pawsgate_route_total{strategy="round_robin"} 3`,
		`pawsgate_replica_picks_total{replica="a"} 3`,
		`pawsgate_http_request_seconds_count{endpoint="/v1/predict"} 3`,
		"pawsgate_backends_healthy 1",
		"pawsgate_health_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("gate metricsz missing %q:\n%s", want, text)
		}
	}

	// Kill the backend: the next poll evicts it, and a gate-originated
	// error envelope carries the trace ID.
	a.ts.Close()
	g.PollOnce()
	rec = roundTrip(t, g, http.MethodGet, "/v1/models", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-backend status %d", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "no_backend" || env.Error.TraceID == "" {
		t.Fatalf("gate error envelope %+v, want no_backend with a trace_id", env.Error)
	}
	if env.Error.TraceID != rec.Header().Get(obs.TraceHeader) {
		t.Fatalf("envelope trace_id %q != header %q", env.Error.TraceID, rec.Header().Get(obs.TraceHeader))
	}
	rec = roundTrip(t, g, http.MethodGet, "/metricsz", nil)
	if !strings.Contains(rec.Body.String(), "pawsgate_health_evictions_total 1") {
		t.Fatal("health eviction not counted after backend death")
	}
}
