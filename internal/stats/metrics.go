// Package stats provides the statistical substrate for the PAWS pipeline:
// classifier metrics (AUC, log loss, Brier), descriptive statistics,
// percentiles, Pearson correlation, and the chi-squared independence test
// used to evaluate field-test results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// AUC computes the area under the ROC curve for binary labels (0/1) and
// real-valued scores. Ties in score are handled by the midrank convention.
// It returns 0.5 when either class is empty (an undefined AUC), matching the
// convention used when reporting degenerate folds.
func AUC(labels []int, scores []float64) float64 {
	if len(labels) != len(scores) {
		panic(fmt.Sprintf("stats: AUC length mismatch %d vs %d", len(labels), len(scores)))
	}
	n := len(labels)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks with tie handling.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		r := float64(i+j)/2 + 1 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = r
		}
		i = j + 1
	}
	var nPos, nNeg int
	var rankSum float64
	for i, y := range labels {
		if y == 1 {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// LogLoss computes the mean negative log-likelihood of binary labels under
// predicted probabilities, clipping probabilities to [eps, 1-eps].
func LogLoss(labels []int, probs []float64) float64 {
	if len(labels) != len(probs) {
		panic(fmt.Sprintf("stats: LogLoss length mismatch %d vs %d", len(labels), len(probs)))
	}
	if len(labels) == 0 {
		return 0
	}
	const eps = 1e-12
	var s float64
	for i, y := range labels {
		p := math.Min(1-eps, math.Max(eps, probs[i]))
		if y == 1 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(labels))
}

// Brier computes the mean squared error between binary labels and predicted
// probabilities.
func Brier(labels []int, probs []float64) float64 {
	if len(labels) != len(probs) {
		panic(fmt.Sprintf("stats: Brier length mismatch %d vs %d", len(labels), len(probs)))
	}
	if len(labels) == 0 {
		return 0
	}
	var s float64
	for i, y := range labels {
		d := probs[i] - float64(y)
		s += d * d
	}
	return s / float64(len(labels))
}

// Pearson computes the Pearson correlation coefficient between x and y.
// It returns 0 if either series has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (0 for fewer than 2 points).
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Percentile returns the p-th percentile (p in [0,100]) of v using linear
// interpolation between closest ranks. v is not modified.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := make([]float64, len(v))
	copy(sorted, v)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileRank returns the fraction of values in sorted that are ≤ x.
func PercentileRank(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(sorted))
}

// Logistic is the standard logistic function 1/(1+exp(-x)).
func Logistic(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Logit is the inverse of Logistic, with clipping away from {0,1}.
func Logit(p float64) float64 {
	const eps = 1e-12
	p = math.Min(1-eps, math.Max(eps, p))
	return math.Log(p / (1 - p))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
