package stats

import (
	"math"
	"sort"

	"paws/internal/rng"
)

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for the
// mean of x: resamples means of n-out-of-n draws with replacement, sorted,
// cut at the (1−conf)/2 and 1−(1−conf)/2 quantiles. The draws come from r
// only, so the interval is a pure function of (x, resamples, conf, r's
// stream) — deterministic and independent of any worker count.
//
// Degenerate inputs follow the conventions of the campaign layer that calls
// this: an empty x returns (NaN, NaN); a single observation returns
// (x[0], x[0]) — one paired replicate carries no resampling uncertainty to
// estimate, and collapsing the interval keeps it honest about that.
func BootstrapMeanCI(x []float64, resamples int, conf float64, r *rng.RNG) (lo, hi float64) {
	n := len(x)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n == 1 {
		return x[0], x[0]
	}
	if resamples < 1 {
		resamples = 1
	}
	means := make([]float64, resamples)
	for b := range means {
		var s float64
		for i := 0; i < n; i++ {
			s += x[r.Intn(n)]
		}
		means[b] = s / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return PercentileSorted(means, 100*alpha), PercentileSorted(means, 100*(1-alpha))
}
