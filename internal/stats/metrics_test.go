package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfectRanking(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := AUC(labels, scores); got != 1 {
		t.Fatalf("AUC = %v want 1", got)
	}
}

func TestAUCWorstRanking(t *testing.T) {
	labels := []int{1, 1, 0, 0}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := AUC(labels, scores); got != 0 {
		t.Fatalf("AUC = %v want 0", got)
	}
}

func TestAUCTiesGiveHalf(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUC(labels, scores); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC = %v want 0.5", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if got := AUC([]int{1, 1}, []float64{0.1, 0.9}); got != 0.5 {
		t.Fatalf("AUC with no negatives = %v want 0.5", got)
	}
	if got := AUC([]int{0, 0}, []float64{0.1, 0.9}); got != 0.5 {
		t.Fatalf("AUC with no positives = %v want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// 1 positive ranked above 1 of 2 negatives: AUC = 0.5*(1 + 0)? Compute by
	// hand: pairs (pos, neg): (0.6 vs 0.4)=win, (0.6 vs 0.8)=loss → 0.5.
	labels := []int{0, 1, 0}
	scores := []float64{0.4, 0.6, 0.8}
	if got := AUC(labels, scores); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC = %v want 0.5", got)
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		labels := make([]int, n)
		scores := make([]float64, n)
		for i := range labels {
			labels[i] = r.Intn(2)
			scores[i] = r.Float64()
		}
		a1 := AUC(labels, scores)
		// Strictly monotone transform must not change AUC.
		tr := make([]float64, n)
		for i, s := range scores {
			tr[i] = math.Exp(3*s) + 2
		}
		a2 := AUC(labels, tr)
		return math.Abs(a1-a2) < 1e-12 && a1 >= 0 && a1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions → near 0; wrong confident → large.
	ll := LogLoss([]int{1, 0}, []float64{0.9, 0.1})
	want := -(math.Log(0.9) + math.Log(0.9)) / 2
	if math.Abs(ll-want) > 1e-12 {
		t.Fatalf("LogLoss = %v want %v", ll, want)
	}
	if LogLoss(nil, nil) != 0 {
		t.Fatal("empty LogLoss should be 0")
	}
	bad := LogLoss([]int{1}, []float64{0})
	if math.IsInf(bad, 0) || math.IsNaN(bad) {
		t.Fatal("LogLoss must clip probabilities")
	}
}

func TestBrier(t *testing.T) {
	b := Brier([]int{1, 0}, []float64{0.8, 0.3})
	want := (0.04 + 0.09) / 2
	if math.Abs(b-want) > 1e-12 {
		t.Fatalf("Brier = %v want %v", b, want)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v want 1", got)
	}
	yNeg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v want -1", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Pearson with constant = %v want 0", got)
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		p := Pearson(x, y)
		return p >= -1-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Variance(v) != 4 {
		t.Fatalf("Variance = %v", Variance(v))
	}
	if StdDev(v) != 2 {
		t.Fatalf("StdDev = %v", StdDev(v))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{3, 1, 2, 4}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(v, 100); got != 4 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(v, 50); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("P50 = %v want 2.5", got)
	}
	// Input must not be modified.
	if v[0] != 3 {
		t.Fatal("Percentile modified its input")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			q := Percentile(v, p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := PercentileRank(sorted, 2.5); got != 0.5 {
		t.Fatalf("rank = %v want 0.5", got)
	}
	if got := PercentileRank(sorted, 0); got != 0 {
		t.Fatalf("rank = %v want 0", got)
	}
	if got := PercentileRank(sorted, 4); got != 1 {
		t.Fatalf("rank = %v want 1", got)
	}
}

func TestLogisticLogitRoundTrip(t *testing.T) {
	for _, x := range []float64{-5, -1, 0, 0.3, 2, 8} {
		p := Logistic(x)
		if p <= 0 || p >= 1 {
			t.Fatalf("Logistic(%v) = %v out of (0,1)", x, p)
		}
		if math.Abs(Logit(p)-x) > 1e-9 {
			t.Fatalf("Logit(Logistic(%v)) = %v", x, Logit(p))
		}
	}
	if Logistic(0) != 0.5 {
		t.Fatal("Logistic(0) != 0.5")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}
