package stats

import (
	"math"
	"testing"

	"paws/internal/rng"
)

func TestBootstrapMeanCIDeterministic(t *testing.T) {
	x := []float64{3, 7, 1, 9, 4, 6}
	lo1, hi1 := BootstrapMeanCI(x, 500, 0.95, rng.New(11))
	lo2, hi2 := BootstrapMeanCI(x, 500, 0.95, rng.New(11))
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("same stream gave [%v,%v] then [%v,%v]", lo1, hi1, lo2, hi2)
	}
}

func TestBootstrapMeanCIBracketsMean(t *testing.T) {
	x := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	mean := Mean(x)
	lo, hi := BootstrapMeanCI(x, 2000, 0.95, rng.New(3))
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("CI [%v, %v] does not bracket the mean %v", lo, hi, mean)
	}
	if lo < 2 || hi > 16 {
		t.Fatalf("CI [%v, %v] escapes the sample range", lo, hi)
	}
	if lo == hi {
		t.Fatal("CI degenerate on a spread sample")
	}
	// All-positive samples must keep a positive lower bound — the property
	// the campaign acceptance criterion leans on.
	if lo <= 0 {
		t.Fatalf("CI lower bound %v not positive for an all-positive sample", lo)
	}
}

func TestBootstrapMeanCIDegenerate(t *testing.T) {
	if lo, hi := BootstrapMeanCI(nil, 100, 0.95, rng.New(1)); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("empty input: [%v, %v], want NaNs", lo, hi)
	}
	if lo, hi := BootstrapMeanCI([]float64{5}, 100, 0.95, rng.New(1)); lo != 5 || hi != 5 {
		t.Fatalf("single observation: [%v, %v], want [5, 5]", lo, hi)
	}
	// Constant samples collapse to the constant.
	if lo, hi := BootstrapMeanCI([]float64{4, 4, 4}, 100, 0.95, rng.New(1)); lo != 4 || hi != 4 {
		t.Fatalf("constant sample: [%v, %v], want [4, 4]", lo, hi)
	}
}
