package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquaredIndependentTable(t *testing.T) {
	// Perfectly proportional table → X² = 0, p = 1.
	table := [][]float64{{10, 20}, {20, 40}}
	res, err := ChiSquaredTest(table)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Statistic) > 1e-10 {
		t.Fatalf("X² = %v want 0", res.Statistic)
	}
	if math.Abs(res.PValue-1) > 1e-10 {
		t.Fatalf("p = %v want 1", res.PValue)
	}
	if res.DF != 1 {
		t.Fatalf("df = %d want 1", res.DF)
	}
}

func TestChiSquaredKnownValue(t *testing.T) {
	// Classic 2×2: [[10, 20], [30, 5]].
	// Row sums 30, 35; col sums 40, 25; total 65.
	table := [][]float64{{10, 20}, {30, 5}}
	res, err := ChiSquaredTest(table)
	if err != nil {
		t.Fatal(err)
	}
	// Expected counts: 18.4615, 11.5385, 21.5385, 13.4615.
	want := math.Pow(10-18.461538, 2)/18.461538 +
		math.Pow(20-11.538462, 2)/11.538462 +
		math.Pow(30-21.538462, 2)/21.538462 +
		math.Pow(5-13.461538, 2)/13.461538
	if math.Abs(res.Statistic-want) > 1e-4 {
		t.Fatalf("X² = %v want %v", res.Statistic, want)
	}
	if res.PValue > 1e-3 {
		t.Fatalf("p = %v, expected highly significant", res.PValue)
	}
}

func TestChiSquaredDegenerate(t *testing.T) {
	if _, err := ChiSquaredTest([][]float64{{0, 0}, {1, 2}}); err == nil {
		t.Fatal("expected error on zero row")
	}
	if _, err := ChiSquaredTest([][]float64{{0, 1}, {0, 2}}); err == nil {
		t.Fatal("expected error on zero column")
	}
	if _, err := ChiSquaredTest(nil); err == nil {
		t.Fatal("expected error on empty table")
	}
	if _, err := ChiSquaredTest([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged table")
	}
}

func TestChiSquaredSFKnownValues(t *testing.T) {
	// Chi-squared with 1 df: P(X > 3.841) ≈ 0.05.
	if p := ChiSquaredSF(3.841, 1); math.Abs(p-0.05) > 1e-3 {
		t.Fatalf("SF(3.841, 1) = %v want ~0.05", p)
	}
	// 2 df: SF(x) = exp(-x/2) exactly.
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := math.Exp(-x / 2)
		if p := ChiSquaredSF(x, 2); math.Abs(p-want) > 1e-10 {
			t.Fatalf("SF(%v, 2) = %v want %v", x, p, want)
		}
	}
	if ChiSquaredSF(-1, 3) != 1 {
		t.Fatal("SF of negative x should be 1")
	}
}

func TestGammaPQComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.5 + math.Mod(math.Abs(a), 10)
		x = math.Mod(math.Abs(x), 20)
		p := GammaP(a, x)
		q := GammaQ(a, x)
		return math.Abs(p+q-1) < 1e-10 && p >= -1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPKnown(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("GammaP(1,%v) = %v want %v", x, got, want)
		}
	}
	if GammaP(1, 0) != 0 {
		t.Fatal("GammaP(a, 0) should be 0")
	}
	if !math.IsNaN(GammaP(-1, 1)) {
		t.Fatal("GammaP with a<=0 should be NaN")
	}
}

func TestNormalCDF(t *testing.T) {
	if math.Abs(NormalCDF(0)-0.5) > 1e-12 {
		t.Fatal("Φ(0) != 0.5")
	}
	if math.Abs(NormalCDF(1.959964)-0.975) > 1e-5 {
		t.Fatalf("Φ(1.96) = %v", NormalCDF(1.959964))
	}
	// Symmetry.
	for _, x := range []float64{0.3, 1.1, 2.7} {
		if math.Abs(NormalCDF(x)+NormalCDF(-x)-1) > 1e-12 {
			t.Fatal("CDF not symmetric")
		}
	}
}

func TestNormalPDF(t *testing.T) {
	if math.Abs(NormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("pdf(0) wrong")
	}
}

func TestChiSquaredPValueInUnitInterval(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		table := [][]float64{{float64(a%50) + 1, float64(b%50) + 1}, {float64(c%50) + 1, float64(d%50) + 1}}
		res, err := ChiSquaredTest(table)
		if err != nil {
			return false
		}
		return res.PValue >= 0 && res.PValue <= 1 && res.Statistic >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
