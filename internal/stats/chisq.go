package stats

import (
	"errors"
	"math"
)

// ErrDegenerateTable is returned by ChiSquaredTest when a contingency table
// has a zero row or column sum, making the test undefined.
var ErrDegenerateTable = errors.New("stats: contingency table has zero marginal")

// ChiSquared holds the result of a Pearson chi-squared independence test.
type ChiSquared struct {
	Statistic float64 // Pearson X² statistic
	DF        int     // degrees of freedom (r-1)(c-1)
	PValue    float64 // upper-tail probability
}

// ChiSquaredTest runs Pearson's chi-squared test of independence on an r×c
// contingency table of observed counts.
func ChiSquaredTest(table [][]float64) (ChiSquared, error) {
	r := len(table)
	if r == 0 {
		return ChiSquared{}, ErrDegenerateTable
	}
	c := len(table[0])
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	var total float64
	for i, row := range table {
		if len(row) != c {
			return ChiSquared{}, errors.New("stats: ragged contingency table")
		}
		for j, v := range row {
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return ChiSquared{}, ErrDegenerateTable
	}
	for _, v := range rowSum {
		if v == 0 {
			return ChiSquared{}, ErrDegenerateTable
		}
	}
	for _, v := range colSum {
		if v == 0 {
			return ChiSquared{}, ErrDegenerateTable
		}
	}
	var x2 float64
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			exp := rowSum[i] * colSum[j] / total
			d := table[i][j] - exp
			x2 += d * d / exp
		}
	}
	df := (r - 1) * (c - 1)
	return ChiSquared{Statistic: x2, DF: df, PValue: ChiSquaredSF(x2, float64(df))}, nil
}

// ChiSquaredSF returns the survival function P(X² > x) for a chi-squared
// distribution with k degrees of freedom, via the regularized upper
// incomplete gamma function Q(k/2, x/2).
func ChiSquaredSF(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return GammaQ(k/2, x/2)
}

// GammaP returns the regularized lower incomplete gamma function P(a, x).
func GammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinued(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function Q(a, x).
func GammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series (valid for x < a+1).
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a,x) by Lentz's continued fraction (x ≥ a+1).
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}
