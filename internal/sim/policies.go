package sim

import (
	"context"
	"fmt"

	"paws/internal/env"
	"paws/internal/rng"
)

// This file hosts the ML-free baseline policies. The PAWS policy — retrain,
// Frank-Wolfe plan, extract routes — lives in the root package (it needs the
// training and planning layers) and is injected through the Policy interface.

// Uniform returns the uniform-effort baseline: the budget spread evenly over
// every park cell.
func Uniform() Policy { return uniformPolicy{} }

type uniformPolicy struct{}

func (uniformPolicy) Name() string { return "uniform" }

func (uniformPolicy) PlanSeason(_ context.Context, obs *Obs, _ int, _ *rng.RNG) (*SeasonPlan, error) {
	eff := make([]float64, obs.Park.Grid.NumCells())
	for i := range eff {
		eff[i] = 1
	}
	return &SeasonPlan{Effort: eff}, nil
}

// Historical returns the status-quo baseline: effort allocated proportional
// to the cumulative observed patrol record — keep patrolling where rangers
// have always patrolled.
func Historical() Policy { return historicalPolicy{} }

type historicalPolicy struct{}

func (historicalPolicy) Name() string { return "historical" }

func (historicalPolicy) PlanSeason(_ context.Context, obs *Obs, _ int, _ *rng.RNG) (*SeasonPlan, error) {
	eff := make([]float64, obs.Park.Grid.NumCells())
	for m := 0; m < obs.Months; m++ {
		for id, e := range obs.Effort[m] {
			eff[id] += e
		}
	}
	return &SeasonPlan{Effort: eff}, nil
}

// randomCellFraction is the share of park cells the random baseline patrols
// each season.
const randomCellFraction = 0.25

// Random returns the random baseline: each season, the budget spread evenly
// over a fresh random quarter of the park.
func Random() Policy { return randomPolicy{} }

type randomPolicy struct{}

func (randomPolicy) Name() string { return "random" }

func (randomPolicy) PlanSeason(_ context.Context, obs *Obs, _ int, r *rng.RNG) (*SeasonPlan, error) {
	n := obs.Park.Grid.NumCells()
	k := int(float64(n) * randomCellFraction)
	if k < 1 {
		k = 1
	}
	eff := make([]float64, n)
	for _, id := range r.SampleWithoutReplacement(n, k) {
		eff[id] = 1
	}
	return &SeasonPlan{Effort: eff}, nil
}

// ByName resolves a built-in policy name: the ML-free baselines above plus
// the learned sequential policies internal/env hosts ("thompson",
// "softmax"). The "paws" policy is constructed by the root package.
func ByName(name string) (Policy, error) {
	switch name {
	case "uniform":
		return Uniform(), nil
	case "historical":
		return Historical(), nil
	case "random":
		return Random(), nil
	case "thompson":
		return env.Thompson(), nil
	case "softmax":
		return env.Softmax(), nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q (built-ins: uniform, historical, random, thompson, softmax)", name)
}
