package sim

import (
	"context"
	"math"
	"testing"

	"paws/internal/geo"
	"paws/internal/poach"
)

// testConfig builds a small, fast simulation configuration.
func testConfig(t *testing.T, attacker string) Config {
	t.Helper()
	parkCfg := geo.RandomConfig(16) // 359 cells
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Park:            park,
		Sim:             poach.RandomSim(parkCfg, 21),
		Attacker:        poach.AttackerConfig{Kind: attacker},
		Seasons:         2,
		BootstrapMonths: 12,
	}
}

func allPolicies() []Policy { return []Policy{Uniform(), Historical(), Random()} }

// TestRunDeterministicAcrossWorkers is the engine half of the determinism
// acceptance: the same seed must produce a byte-identical season report for
// any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, 8} {
		cfg := testConfig(t, poach.AttackerAdaptive)
		cfg.Workers = workers
		rep, err := Run(context.Background(), cfg, allPolicies())
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Format()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("report differs at workers=%d:\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}

// TestRunBudgetRespected: every season's executed effort must total the
// monthly budget times the season length, for every policy.
func TestRunBudgetRespected(t *testing.T) {
	cfg := testConfig(t, poach.AttackerStatic)
	cfg.BudgetKM = 100
	rep, err := Run(context.Background(), cfg, allPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Policies {
		if len(p.Seasons) != cfg.Seasons {
			t.Fatalf("%s: %d seasons, want %d", p.Policy, len(p.Seasons), cfg.Seasons)
		}
		for _, s := range p.Seasons {
			want := cfg.BudgetKM * 3 // default SeasonMonths
			if math.Abs(s.EffortKM-want) > 1e-6*want {
				t.Errorf("%s season %d: effort %v km, want %v", p.Policy, s.Season, s.EffortKM, want)
			}
		}
	}
}

// TestStaticAttackerNeverDisplaces: displacement is an adaptive-only effect.
func TestStaticAttackerNeverDisplaces(t *testing.T) {
	rep, err := Run(context.Background(), testConfig(t, poach.AttackerStatic), allPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attacker != poach.AttackerStatic {
		t.Fatalf("report attacker %q", rep.Attacker)
	}
	for _, p := range rep.Policies {
		if p.Displaced != 0 {
			t.Errorf("%s: %d displaced attacks under the static attacker", p.Policy, p.Displaced)
		}
		if p.Snares == 0 {
			t.Errorf("%s: no attacks at all", p.Policy)
		}
	}
}

// TestCommonRandomNumbers: under the static attacker, two policies with the
// SAME executed effort see identical outcomes — the draws are shared, so
// differences can only come from effort.
func TestCommonRandomNumbers(t *testing.T) {
	cfg := testConfig(t, poach.AttackerStatic)
	// uniformTwin plans exactly like Uniform under a different name.
	rep, err := Run(context.Background(), cfg, []Policy{Uniform(), named{Policy: Uniform(), name: "uniform-twin"}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Policies[0], rep.Policies[1]
	if a.Snares != b.Snares || a.Detections != b.Detections {
		t.Fatalf("identical effort, different outcomes: %+v vs %+v", a, b)
	}
}

// named renames a policy (policy names key the per-season RNG streams, which
// the twin must not use — Uniform ignores its stream, so outcomes match).
type named struct {
	Policy
	name string
}

func (n named) Name() string { return n.name }

// TestRunValidation covers config and policy errors.
func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}, allPolicies()); err == nil {
		t.Error("nil park accepted")
	}
	cfg := testConfig(t, poach.AttackerStatic)
	if _, err := Run(ctx, cfg, nil); err == nil {
		t.Error("no policies accepted")
	}
	if _, err := Run(ctx, cfg, []Policy{Uniform(), Uniform()}); err == nil {
		t.Error("duplicate policy names accepted")
	}
	bad := cfg
	bad.Attacker.Kind = "quantum"
	if _, err := Run(ctx, bad, allPolicies()); err == nil {
		t.Error("unknown attacker accepted")
	}
	zero := cfg
	zero.Seasons = 0
	if _, err := Run(ctx, zero, allPolicies()); err == nil {
		t.Error("zero seasons accepted")
	}
}

// TestRunEdgeValidation: degenerate configurations — zero-post parks,
// negative budgets, months and season counts — are rejected with an error
// instead of silently simulating defaults, panicking or looping.
func TestRunEdgeValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-post park", func(c *Config) {
			park := *c.Park
			park.Posts = nil
			c.Park = &park
		}},
		{"negative seasons", func(c *Config) { c.Seasons = -1 }},
		{"negative season months", func(c *Config) { c.SeasonMonths = -2 }},
		{"negative bootstrap months", func(c *Config) { c.BootstrapMonths = -6 }},
		{"negative budget", func(c *Config) { c.BudgetKM = -40 }},
		{"NaN budget", func(c *Config) { c.BudgetKM = math.NaN() }},
		{"infinite budget", func(c *Config) { c.BudgetKM = math.Inf(1) }},
		{"no derivable budget", func(c *Config) { c.BudgetKM = 0; c.Sim.Patrol = poach.PatrolConfig{} }},
	}
	for _, tc := range cases {
		cfg := testConfig(t, poach.AttackerStatic)
		tc.mutate(&cfg)
		if _, err := Run(ctx, cfg, allPolicies()); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Zero values still select the documented defaults.
	ok := testConfig(t, poach.AttackerStatic)
	ok.SeasonMonths, ok.BootstrapMonths, ok.BudgetKM = 0, 0, 0
	ok.Seasons = 1
	rep, err := Run(ctx, ok, []Policy{Uniform()})
	if err != nil {
		t.Fatalf("zero-value defaults rejected: %v", err)
	}
	if rep.SeasonMonths != 3 || rep.BudgetKM <= 0 {
		t.Fatalf("defaults not applied: months=%d budget=%v", rep.SeasonMonths, rep.BudgetKM)
	}
}

// TestRunCanceledContext: a dead context aborts instead of running seasons.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testConfig(t, poach.AttackerStatic), allPolicies()); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "historical", "random", "thompson", "softmax"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("paws"); err == nil {
		t.Fatal("ByName must not resolve the root-package paws policy")
	}
}
