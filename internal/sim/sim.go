// Package sim is the closed-loop patrol simulation harness: the missing half
// of the paper's field-test story. The repo's other packages generate ONE
// fixed history and score predictions against it; this package runs the full
// plan → patrol → poacher-reaction → retrain loop so patrol *policies* can be
// compared head-to-head over multiple seasons.
//
// The season loop itself lives in internal/env as a stepped environment
// (Reset/Step semantics); sim.Run is the comparison driver over it: one
// shared bootstrap history, one env.Env per policy, all episodes played
// through env.Drive under common random numbers, results merged into a
// Report. See internal/env's package documentation for the loop and its
// determinism contract.
//
// Per-season detections, snares placed and displaced attacks are reported
// per policy, so "PAWS vs uniform vs historical vs random" is one call — and
// because every policy's episode runs against common random numbers, two
// policies' outcomes differ only where their patrol effort actually changes
// an attack or detection probability. The whole report is byte-identical for
// any worker count (policies fan out over internal/par).
package sim

import (
	"context"
	"fmt"

	"paws/internal/env"
	"paws/internal/geo"
	"paws/internal/par"
	"paws/internal/poach"
)

// Obs is the policy-visible state of a simulation; see env.Obs.
type Obs = env.Obs

// SeasonPlan is a policy's allocation for one season; see env.SeasonPlan.
type SeasonPlan = env.SeasonPlan

// Policy plans one season of patrol effort from the observed record; see
// env.Policy.
type Policy = env.Policy

// SeasonStats is one season's outcome for one policy; see env.SeasonStats.
type SeasonStats = env.SeasonStats

// PolicyResult is one policy's full season log plus totals; see
// env.PolicyResult.
type PolicyResult = env.PolicyResult

// Config drives one closed-loop simulation.
type Config struct {
	// Park is the generated park the loop runs on.
	Park *geo.Park
	// Sim supplies the generative-process parameters (ground truth shape,
	// detection rate, patrol character for the bootstrap, temporal noise).
	// Sim.Months is ignored; BootstrapMonths is used instead.
	Sim poach.SimConfig
	// Attacker selects the poacher response behaviour (default: static, the
	// historical process).
	Attacker poach.AttackerConfig
	// Seasons is the number of planning seasons to run.
	Seasons int
	// SeasonMonths is the number of months per season (default 3 — one
	// quarterly planning cycle, matching the dataset discretization).
	SeasonMonths int
	// BootstrapMonths is the historical record simulated before the loop
	// starts (default 24). It must cover at least one dataset step.
	BootstrapMonths int
	// BudgetKM is the per-month patrol budget; 0 derives the park's ranger
	// capacity from Sim.Patrol (posts × patrols × length).
	BudgetKM float64
	// Workers bounds the goroutines policies fan out over (par.Workers
	// semantics). The report is byte-identical for any worker count.
	Workers int
	// Progress, when non-nil, is invoked after each policy finishes a
	// season with (policy name, seasons finished, total seasons). Policies
	// run concurrently, so the callback must be safe for concurrent use; it
	// is observational only and never affects the report.
	Progress func(policy string, season, seasons int)
}

// envConfig lowers the driver config to the environment's slice of it.
func (cfg Config) envConfig() env.Config {
	return env.Config{
		Park:            cfg.Park,
		Sim:             cfg.Sim,
		Attacker:        cfg.Attacker,
		Seasons:         cfg.Seasons,
		SeasonMonths:    cfg.SeasonMonths,
		BootstrapMonths: cfg.BootstrapMonths,
		BudgetKM:        cfg.BudgetKM,
	}
}

// Report is the head-to-head outcome of one simulation run.
type Report struct {
	Park         string         `json:"park"`
	Seed         int64          `json:"seed"`
	Attacker     string         `json:"attacker"`
	Seasons      int            `json:"seasons"`
	SeasonMonths int            `json:"season_months"`
	BudgetKM     float64        `json:"budget_km"`
	Policies     []PolicyResult `json:"policies"`
}

// Run executes the closed loop for every policy and returns the comparison
// report. Policies are independent given the shared bootstrap history and
// common random numbers, so they fan out over cfg.Workers goroutines with
// results in policy order — the report is byte-identical for any count.
func Run(ctx context.Context, cfg Config, policies []Policy) (*Report, error) {
	ecfg, err := cfg.envConfig().WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sim: no policies")
	}
	seen := map[string]bool{}
	for _, p := range policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("sim: duplicate policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	boot, err := env.Bootstrap(ecfg)
	if err != nil {
		return nil, err
	}
	// Validate the attacker config once, before fan-out.
	if _, err := poach.NewAttacker(boot.Truth, ecfg.Attacker); err != nil {
		return nil, err
	}
	results, err := par.MapErrCtx(ctx, cfg.Workers, len(policies), func(i int) (PolicyResult, error) {
		e, err := env.NewWithHistory(ecfg, boot)
		if err != nil {
			return PolicyResult{}, err
		}
		return env.Drive(ctx, e, policies[i], env.DriveConfig{
			Seed:     ecfg.Sim.Seed,
			Seasons:  ecfg.Seasons,
			Progress: cfg.Progress,
		})
	})
	if err != nil {
		return nil, err
	}
	attacker := ecfg.Attacker.Kind
	if attacker == "" {
		attacker = poach.AttackerStatic
	}
	return &Report{
		Park:         ecfg.Park.Name,
		Seed:         ecfg.Sim.Seed,
		Attacker:     attacker,
		Seasons:      ecfg.Seasons,
		SeasonMonths: ecfg.SeasonMonths,
		BudgetKM:     ecfg.BudgetKM,
		Policies:     results,
	}, nil
}
