// Package sim is the closed-loop patrol simulation engine: the missing half
// of the paper's field-test story. The repo's other packages generate ONE
// fixed history and score predictions against it; this package runs the full
// plan → patrol → poacher-reaction → retrain loop so patrol *policies* can be
// compared head-to-head over multiple seasons.
//
// # The season loop
//
// A simulation starts from a bootstrap history (poach.Simulate under the
// park's historical ranger behaviour) and then, for each season:
//
//  1. The policy under test sees the observed record so far — realized
//     patrol effort and detections, never the hidden attacks — and plans a
//     per-cell effort allocation for the season (the PAWS policy in the root
//     package retrains its model and runs the Frank-Wolfe planner here).
//  2. The engine rescales the allocation to the park's monthly patrol
//     budget and executes it for each month of the season.
//  3. The attacker (poach.Attacker) responds: the static behaviour
//     reproduces the historical process, while the adaptive behaviour
//     remembers patrol pressure (deterrence) and shifts attacks into
//     less-patrolled neighbouring cells (displacement).
//  4. Realized attacks are detected with the effort-dependent probability of
//     the ground truth; detections (and non-poaching observations) append to
//     the observed record the policy trains on next season.
//
// Per-season detections, snares placed and displaced attacks are reported
// per policy, so "PAWS vs uniform vs historical vs random" is one call.
//
// # Determinism
//
// Every policy's loop runs against common random numbers: the per-cell
// attack-opportunism noise and the attack/detection/observation uniforms for
// month m are derived from (seed, m) only, never from the policy. Two
// policies' outcomes therefore differ only where their patrol effort
// actually changes an attack or detection probability — the tightest
// possible head-to-head comparison — and the whole report is byte-identical
// for any worker count (policies fan out over internal/par).
package sim

import (
	"context"
	"fmt"
	"math"

	"paws/internal/geo"
	"paws/internal/obs"
	"paws/internal/par"
	"paws/internal/poach"
	"paws/internal/rng"
	"paws/internal/stats"
)

// Obs is the policy-visible state of a simulation: the park and the observed
// patrol record. Hidden ground truth (where attacks actually happened) is
// deliberately absent — policies know exactly what real park managers know.
// All slices are owned by the engine and must be treated as read-only.
type Obs struct {
	Park *geo.Park
	// Months is the number of observed months; Effort and Detections have
	// one entry per month.
	Months int
	// Effort[m][cell] is the realized patrol effort (km).
	Effort [][]float64
	// Detections[m][cell] reports a detected poaching sign.
	Detections [][]bool
	// Observations is the SMART-style observation log (poaching and
	// non-poaching).
	Observations []poach.Observation
	// BudgetKM is the per-month patrol budget the plan will be scaled to.
	BudgetKM float64
}

// SeasonPlan is a policy's allocation for one season: desired per-cell
// patrol effort (rescaled by the engine to the budget) and, optionally, the
// executable routes behind it (reported, not re-derived).
type SeasonPlan struct {
	// Effort[cell] is the desired patrol effort; only its relative
	// distribution matters (the engine normalizes the total to the budget).
	Effort []float64
	// Routes are optional executable patrols in park cell ids.
	Routes [][]int
}

// Policy plans one season of patrol effort from the observed record. r is a
// deterministic stream derived from the simulation seed, the policy name and
// the season — the only randomness a policy may use.
type Policy interface {
	Name() string
	PlanSeason(ctx context.Context, obs *Obs, season int, r *rng.RNG) (*SeasonPlan, error)
}

// Config drives one closed-loop simulation.
type Config struct {
	// Park is the generated park the loop runs on.
	Park *geo.Park
	// Sim supplies the generative-process parameters (ground truth shape,
	// detection rate, patrol character for the bootstrap, temporal noise).
	// Sim.Months is ignored; BootstrapMonths is used instead.
	Sim poach.SimConfig
	// Attacker selects the poacher response behaviour (default: static, the
	// historical process).
	Attacker poach.AttackerConfig
	// Seasons is the number of planning seasons to run.
	Seasons int
	// SeasonMonths is the number of months per season (default 3 — one
	// quarterly planning cycle, matching the dataset discretization).
	SeasonMonths int
	// BootstrapMonths is the historical record simulated before the loop
	// starts (default 24). It must cover at least one dataset step.
	BootstrapMonths int
	// BudgetKM is the per-month patrol budget; 0 derives the park's ranger
	// capacity from Sim.Patrol (posts × patrols × length).
	BudgetKM float64
	// Workers bounds the goroutines policies fan out over (par.Workers
	// semantics). The report is byte-identical for any worker count.
	Workers int
	// Progress, when non-nil, is invoked after each policy finishes a
	// season with (policy name, seasons finished, total seasons). Policies
	// run concurrently, so the callback must be safe for concurrent use; it
	// is observational only and never affects the report.
	Progress func(policy string, season, seasons int)
}

// withDefaults validates and fills cfg. Zero values select defaults;
// negative values (and degenerate parks) are rejected rather than silently
// replaced, so a caller's typo surfaces as a structured error instead of a
// simulation of the wrong thing.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Park == nil {
		return cfg, fmt.Errorf("sim: nil park")
	}
	if len(cfg.Park.Posts) == 0 {
		return cfg, fmt.Errorf("sim: park %s has no patrol posts", cfg.Park.Name)
	}
	if cfg.Seasons < 1 {
		return cfg, fmt.Errorf("sim: seasons must be ≥ 1, got %d", cfg.Seasons)
	}
	if cfg.SeasonMonths < 0 {
		return cfg, fmt.Errorf("sim: season months must be ≥ 1, got %d", cfg.SeasonMonths)
	}
	if cfg.SeasonMonths == 0 {
		cfg.SeasonMonths = 3
	}
	if cfg.BootstrapMonths < 0 {
		return cfg, fmt.Errorf("sim: bootstrap months must be ≥ 1, got %d", cfg.BootstrapMonths)
	}
	if cfg.BootstrapMonths == 0 {
		cfg.BootstrapMonths = 24
	}
	if cfg.BudgetKM < 0 || math.IsNaN(cfg.BudgetKM) || math.IsInf(cfg.BudgetKM, 0) {
		return cfg, fmt.Errorf("sim: budget %v km/month must be a non-negative finite number", cfg.BudgetKM)
	}
	if cfg.BudgetKM == 0 {
		p := cfg.Sim.Patrol
		cfg.BudgetKM = float64(len(cfg.Park.Posts) * p.PatrolsPerPostMonth * p.LengthKM)
	}
	if cfg.BudgetKM <= 0 {
		return cfg, fmt.Errorf("sim: no patrol budget (set BudgetKM or Sim.Patrol)")
	}
	return cfg, nil
}

// SeasonStats is one season's outcome for one policy.
type SeasonStats struct {
	Season     int     `json:"season"`
	StartMonth int     `json:"start_month"`
	Snares     int     `json:"snares"`
	Detections int     `json:"detections"`
	Displaced  int     `json:"displaced"`
	Routes     int     `json:"routes"`
	EffortKM   float64 `json:"effort_km"`
}

// PolicyResult is one policy's full season log plus totals.
type PolicyResult struct {
	Policy     string        `json:"policy"`
	Seasons    []SeasonStats `json:"seasons"`
	Snares     int           `json:"snares"`
	Detections int           `json:"detections"`
	Displaced  int           `json:"displaced"`
}

// Report is the head-to-head outcome of one simulation run.
type Report struct {
	Park         string         `json:"park"`
	Seed         int64          `json:"seed"`
	Attacker     string         `json:"attacker"`
	Seasons      int            `json:"seasons"`
	SeasonMonths int            `json:"season_months"`
	BudgetKM     float64        `json:"budget_km"`
	Policies     []PolicyResult `json:"policies"`
}

// Run executes the closed loop for every policy and returns the comparison
// report. Policies are independent given the shared bootstrap history and
// common random numbers, so they fan out over cfg.Workers goroutines with
// results in policy order — the report is byte-identical for any count.
func Run(ctx context.Context, cfg Config, policies []Policy) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sim: no policies")
	}
	seen := map[string]bool{}
	for _, p := range policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("sim: duplicate policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	bootCfg := cfg.Sim
	bootCfg.Months = cfg.BootstrapMonths
	boot, err := poach.Simulate(cfg.Park, bootCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: bootstrap history: %w", err)
	}
	// Validate the attacker config once, before fan-out.
	if _, err := poach.NewAttacker(boot.Truth, cfg.Attacker); err != nil {
		return nil, err
	}
	results, err := par.MapErrCtx(ctx, cfg.Workers, len(policies), func(i int) (PolicyResult, error) {
		return runPolicy(ctx, cfg, boot, policies[i])
	})
	if err != nil {
		return nil, err
	}
	attacker := cfg.Attacker.Kind
	if attacker == "" {
		attacker = poach.AttackerStatic
	}
	return &Report{
		Park:         cfg.Park.Name,
		Seed:         cfg.Sim.Seed,
		Attacker:     attacker,
		Seasons:      cfg.Seasons,
		SeasonMonths: cfg.SeasonMonths,
		BudgetKM:     cfg.BudgetKM,
		Policies:     results,
	}, nil
}

// runPolicy plays one policy through every season against its own attacker
// instance and its own extendable copy of the bootstrap history.
func runPolicy(ctx context.Context, cfg Config, boot *poach.History, p Policy) (PolicyResult, error) {
	park := cfg.Park
	n := park.Grid.NumCells()
	gt := boot.Truth
	att, err := poach.NewAttacker(gt, cfg.Attacker)
	if err != nil {
		return PolicyResult{}, err
	}
	h := extendableCopy(boot)
	// Warm the attacker's memory on the bootstrap record.
	for m := 0; m < h.Months; m++ {
		att.BeginMonth(m, prevEffort(h, m))
	}
	res := PolicyResult{Policy: p.Name()}
	root := rng.New(cfg.Sim.Seed)
	for s := 0; s < cfg.Seasons; s++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		o := &Obs{
			Park:         park,
			Months:       h.Months,
			Effort:       h.Effort,
			Detections:   h.Detected,
			Observations: h.Observations,
			BudgetKM:     cfg.BudgetKM,
		}
		item := fmt.Sprintf("%s season %d", p.Name(), s)
		stream := root.Split(fmt.Sprintf("policy:%s:season:%d", p.Name(), s))
		endPlan := obs.StartSpan(ctx, "plan", item)
		plan, err := p.PlanSeason(ctx, o, s, stream)
		endPlan()
		if err != nil {
			return res, fmt.Errorf("sim: policy %s season %d: %w", p.Name(), s, err)
		}
		eff, err := scaleToBudget(plan.Effort, cfg.BudgetKM, n)
		if err != nil {
			return res, fmt.Errorf("sim: policy %s season %d: %w", p.Name(), s, err)
		}
		st := SeasonStats{Season: s, StartMonth: h.Months, Routes: len(plan.Routes)}
		endPatrol := obs.StartSpan(ctx, "patrol", item)
		for k := 0; k < cfg.SeasonMonths; k++ {
			m := h.Months
			att.BeginMonth(m, prevEffort(h, m))
			noise, attackU, detectU, obsU := monthDraws(cfg.Sim.Seed, m, n)
			attacked := make([]bool, n)
			detected := make([]bool, n)
			for id := 0; id < n; id++ {
				logit := att.AttackLogit(id) + cfg.Sim.TemporalNoise*noise[id]
				if attackU[id] >= stats.Logistic(logit) {
					continue
				}
				attacked[id] = true
				st.Snares++
				if att.Displaced(id) {
					st.Displaced++
				}
				if detectU[id] < gt.DetectProb(eff[id]) {
					detected[id] = true
					st.Detections++
					h.Observations = append(h.Observations, poach.Observation{Month: m, CellID: id, Poaching: true})
				}
			}
			for id := 0; id < n; id++ {
				if eff[id] > 0 && obsU[id] < cfg.Sim.NonPoachingRate {
					h.Observations = append(h.Observations, poach.Observation{Month: m, CellID: id, Poaching: false})
				}
			}
			h.Effort = append(h.Effort, eff)
			h.Attacked = append(h.Attacked, attacked)
			h.Detected = append(h.Detected, detected)
			h.Months++
			for _, e := range eff {
				st.EffortKM += e
			}
		}
		endPatrol()
		res.Seasons = append(res.Seasons, st)
		res.Snares += st.Snares
		res.Detections += st.Detections
		res.Displaced += st.Displaced
		if cfg.Progress != nil {
			cfg.Progress(p.Name(), s+1, cfg.Seasons)
		}
	}
	return res, nil
}

// monthDraws returns the per-cell random draws for one simulated month,
// derived from the root seed and the month only — every policy sees the same
// draws (common random numbers), so two policies' outcomes differ only where
// their patrol effort actually changes a probability. Exactly four draws per
// cell are consumed in a fixed order, so the streams stay aligned across
// policies regardless of outcomes.
func monthDraws(seed int64, month, n int) (noise, attackU, detectU, obsU []float64) {
	r := rng.New(seed).Split(fmt.Sprintf("sim-month:%d", month))
	noise = make([]float64, n)
	attackU = make([]float64, n)
	detectU = make([]float64, n)
	obsU = make([]float64, n)
	for id := 0; id < n; id++ {
		noise[id] = r.NormFloat64()
		attackU[id] = r.Float64()
		detectU[id] = r.Float64()
		obsU[id] = r.Float64()
	}
	return noise, attackU, detectU, obsU
}

// prevEffort returns month m−1's realized effort, or nil for the first month.
func prevEffort(h *poach.History, m int) []float64 {
	if m <= 0 {
		return nil
	}
	return h.Effort[m-1]
}

// extendableCopy clones the outer slices of a history so each policy can
// append months without touching the shared bootstrap. Inner per-month
// slices are shared read-only.
func extendableCopy(boot *poach.History) *poach.History {
	h := *boot
	h.Effort = append(make([][]float64, 0, len(boot.Effort)+8), boot.Effort...)
	h.Attacked = append(make([][]bool, 0, len(boot.Attacked)+8), boot.Attacked...)
	h.Detected = append(make([][]bool, 0, len(boot.Detected)+8), boot.Detected...)
	h.Observations = append(make([]poach.Observation, 0, len(boot.Observations)+64), boot.Observations...)
	return &h
}

// scaleToBudget clamps negatives and rescales the allocation so the total
// equals the monthly budget. An all-zero allocation falls back to uniform.
func scaleToBudget(effort []float64, budget float64, n int) ([]float64, error) {
	if len(effort) != n {
		return nil, fmt.Errorf("sim: plan has %d cells, park has %d", len(effort), n)
	}
	out := make([]float64, n)
	var total float64
	for i, e := range effort {
		if e > 0 {
			out[i] = e
			total += e
		}
	}
	if total <= 0 {
		u := budget / float64(n)
		for i := range out {
			out[i] = u
		}
		return out, nil
	}
	scale := budget / total
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}
