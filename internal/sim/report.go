package sim

import (
	"fmt"
	"strings"
)

// Format renders the report as a fixed-width text table. The output is a
// pure function of the report values — byte-identical for any worker count —
// which the determinism tests and the pawssim smoke script rely on.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "park %s seed %d: %d seasons × %d months, budget %.1f km/month, attacker %s\n",
		r.Park, r.Seed, r.Seasons, r.SeasonMonths, r.BudgetKM, r.Attacker)
	fmt.Fprintf(&b, "%-12s %6s %9s %7s %9s %10s %7s %10s\n",
		"policy", "season", "months", "snares", "detected", "displaced", "routes", "effort-km")
	for _, p := range r.Policies {
		for _, s := range p.Seasons {
			months := fmt.Sprintf("%d-%d", s.StartMonth, s.StartMonth+r.SeasonMonths-1)
			fmt.Fprintf(&b, "%-12s %6d %9s %7d %9d %10d %7d %10.1f\n",
				p.Policy, s.Season+1, months, s.Snares, s.Detections, s.Displaced, s.Routes, s.EffortKM)
		}
	}
	for _, p := range r.Policies {
		rate := 0.0
		if p.Snares > 0 {
			rate = 100 * float64(p.Detections) / float64(p.Snares)
		}
		fmt.Fprintf(&b, "total %-12s snares %5d  detected %5d (%.1f%%)  displaced %5d\n",
			p.Policy, p.Snares, p.Detections, rate, p.Displaced)
	}
	return b.String()
}
