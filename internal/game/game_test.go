package game

import (
	"math"
	"testing"

	"paws/internal/geo"
	"paws/internal/plan"
	"paws/internal/poach"
)

func gamePark(t *testing.T) *geo.Park {
	t.Helper()
	cfg := geo.ParkConfig{
		Name: "GAME", Seed: 51, W: 18, H: 18, TargetCells: 240,
		Shape: geo.ShapeRound, NumRivers: 1, NumRoads: 2, NumVillages: 2,
		NumPosts: 3, ExtraFeatures: 1,
	}
	p, err := geo.GeneratePark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// varyModel has saturating detection and cell-dependent uncertainty.
type varyModel struct {
	park *geo.Park
}

func (m varyModel) Detect(cell int, effort float64) float64 {
	r := 0.2 + 0.6*m.park.FeatureByName("animal_density").V[cell]
	return 1 - math.Exp(-r*effort)
}

func (m varyModel) Uncertainty(cell int, effort float64) float64 {
	// Uncertainty grows with distance from patrol posts (less data there).
	d := m.park.FeatureByName("dist_patrol_post").V[cell]
	return math.Min(0.9, d/15)
}

func regions(t *testing.T, park *geo.Park, k int) []*plan.Region {
	t.Helper()
	var out []*plan.Region
	for i, post := range park.Posts {
		if i >= k {
			break
		}
		r, err := plan.NewRegion(park, post, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestBetaSweepRatiosAtLeastOne(t *testing.T) {
	park := gamePark(t)
	regs := regions(t, park, 2)
	model := varyModel{park}
	cfg := plan.Config{T: 5, K: 2, Segments: 5}
	pts, err := BetaSweep(regs, model, cfg, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		// Cβ optimizes Uβ, so the ratio must be ≥ 1 up to PWL error.
		if pt.Avg < 0.98 {
			t.Fatalf("β=%v avg ratio %v < 1", pt.Beta, pt.Avg)
		}
		if pt.Max < pt.Avg-1e-9 {
			t.Fatalf("max %v < avg %v", pt.Max, pt.Avg)
		}
	}
}

func TestBetaSweepRequiresRegions(t *testing.T) {
	if _, err := BetaSweep(nil, varyModel{}, plan.Config{T: 4, K: 1, Segments: 4}, []float64{1}); err == nil {
		t.Fatal("expected error with no regions")
	}
}

func TestSegmentSweepRuntimeGrowsAndUtilityConverges(t *testing.T) {
	park := gamePark(t)
	regs := regions(t, park, 1)
	model := varyModel{park}
	cfg := plan.Config{T: 5, K: 2}
	pts, err := SegmentSweep(regs[0], model, cfg, []int{3, 8, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Utility should not degrade much as segments increase (convergence).
	if pts[2].Utility < pts[0].Utility-0.05*math.Abs(pts[0].Utility) {
		t.Fatalf("utility degraded with segments: %v → %v", pts[0].Utility, pts[2].Utility)
	}
	for _, p := range pts {
		if p.Runtime <= 0 {
			t.Fatal("runtime not recorded")
		}
	}
}

func TestSegmentRatioSweep(t *testing.T) {
	park := gamePark(t)
	regs := regions(t, park, 1)
	model := varyModel{park}
	cfg := plan.Config{T: 5, K: 2}
	pts, err := SegmentRatioSweep(regs, model, cfg, 1.0, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Avg < 0.98 {
			t.Fatalf("segments=%d ratio %v < 1", pt.Segments, pt.Avg)
		}
		if pt.Segments == 0 {
			t.Fatal("segments not recorded")
		}
	}
}

func TestSimulateDetections(t *testing.T) {
	park := gamePark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	truth.Bias = -1 // moderately common attacks
	regs := regions(t, park, 1)
	region := regs[0]
	n := region.NumCells()
	// Robust plan concentrates effort; blind plan spreads it thin.
	robust := make([]float64, n)
	blind := make([]float64, n)
	for i := 0; i < n; i++ {
		blind[i] = 0.3
	}
	for i := 0; i < 3 && i < n; i++ {
		robust[i] = float64(n) * 0.3 / 3
	}
	res := SimulateDetections(region, truth, robust, blind, 12, 99)
	if res.RobustDetections < 0 || res.BlindDetections < 0 {
		t.Fatal("negative detections")
	}
	if res.Factor <= 0 {
		t.Fatalf("factor = %v", res.Factor)
	}
	// Deterministic under the same seed.
	res2 := SimulateDetections(region, truth, robust, blind, 12, 99)
	if res.RobustDetections != res2.RobustDetections || res.BlindDetections != res2.BlindDetections {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimulateDetectionsZeroEffort(t *testing.T) {
	park := gamePark(t)
	truth := poach.NewGroundTruth(park, 0.3, 0, 0.5, 0)
	regs := regions(t, park, 1)
	region := regs[0]
	zero := make([]float64, region.NumCells())
	res := SimulateDetections(region, truth, zero, zero, 6, 1)
	if res.RobustDetections != 0 || res.BlindDetections != 0 {
		t.Fatal("zero effort must detect nothing")
	}
	if res.Factor != 1 {
		t.Fatalf("0/0 factor should be 1, got %v", res.Factor)
	}
}
