// Package game hosts the Green Security Game experiments of Section VI:
// the robustness (β) sweep and the PWL-segment sweep behind Fig. 8, the
// runtime/utility convergence study behind Fig. 9, and the simulated
// "snares detected" comparison that backs the paper's headline claim that
// uncertainty-aware patrols increase detections (~30% on average).
//
// The game itself — N boundedly-rational adversaries choosing whether to
// attack their cells, a defender allocating patrol flow — is embedded in the
// planner objective: the learned g_v(c) is exactly the joint probability
// Pr[a=1, o=1 | c] of Eq. (3), so maximizing Σ g_v is maximizing defender
// expected utility against the learned attacker response.
package game

import (
	"context"
	"fmt"
	"time"

	"paws/internal/par"
	"paws/internal/plan"
	"paws/internal/poach"
	"paws/internal/rng"
)

// RatioPoint is one β (or segment-count) sample of the solution-quality
// ratio U_β(C_β) / U_β(C_{β=0}) of Fig. 8.
type RatioPoint struct {
	Beta     float64
	Segments int
	Avg      float64 // average ratio over patrol posts
	Max      float64 // maximum ratio over patrol posts
}

// BetaSweep computes plans at each β for every region and evaluates the
// robust-utility ratio against the β=0 plan. cfg.Beta is overridden. Every
// (β, region) solve is independent, so the whole grid — baselines included —
// fans out over cfg.Workers goroutines; aggregation runs in (β, region)
// order afterwards, so the series is identical for any worker count.
func BetaSweep(regions []*plan.Region, model plan.CellModel, cfg plan.Config, betas []float64) ([]RatioPoint, error) {
	return BetaSweepCtx(context.Background(), regions, model, cfg, betas)
}

// BetaSweepCtx is BetaSweep under a context, observed between solves: a
// canceled or expired context stops launching new (β, region) solves,
// drains the ones in flight, and returns the context's error.
func BetaSweepCtx(ctx context.Context, regions []*plan.Region, model plan.CellModel, cfg plan.Config, betas []float64) ([]RatioPoint, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("game: no regions")
	}
	// Baseline β=0 plan per region.
	base, err := par.MapErrCtx(ctx, cfg.Workers, len(regions), func(i int) (*plan.Plan, error) {
		c := cfg
		c.Beta = 0
		p, err := plan.Solve(regions[i], model, c)
		if err != nil {
			return nil, fmt.Errorf("game: baseline plan for region %d: %w", i, err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	// Robust plans for the full β × region grid.
	plans, err := par.MapErrCtx(ctx, cfg.Workers, len(betas)*len(regions), func(j int) (*plan.Plan, error) {
		beta, i := betas[j/len(regions)], j%len(regions)
		c := cfg
		c.Beta = beta
		p, err := plan.Solve(regions[i], model, c)
		if err != nil {
			return nil, fmt.Errorf("game: β=%v plan for region %d: %w", beta, i, err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	var out []RatioPoint
	for bi, beta := range betas {
		pt := RatioPoint{Beta: beta, Segments: cfg.Segments, Avg: 0, Max: 0}
		var sum float64
		for i, r := range regions {
			uRobust := plan.Evaluate(r, model, plans[bi*len(regions)+i].Effort, beta)
			uBase := plan.Evaluate(r, model, base[i].Effort, beta)
			ratio := 1.0
			if uBase > 1e-12 {
				ratio = uRobust / uBase
			}
			sum += ratio
			if ratio > pt.Max {
				pt.Max = ratio
			}
		}
		pt.Avg = sum / float64(len(regions))
		out = append(out, pt)
	}
	return out, nil
}

// SegmentPoint is one sample of the Fig. 9 runtime/convergence study.
type SegmentPoint struct {
	Segments int
	Runtime  time.Duration
	Utility  float64 // U_{β=1}(C_{β=1}) evaluated exactly
	Nodes    int
}

// SegmentSweep solves the fully robust plan (β=1) for one region at each
// segment count, recording runtime and exact utility (Fig. 9a/9b), and the
// ratio study of Fig. 8(d–f) reuses the same plans via the returned efforts.
func SegmentSweep(region *plan.Region, model plan.CellModel, cfg plan.Config, segments []int) ([]SegmentPoint, error) {
	return SegmentSweepCtx(context.Background(), region, model, cfg, segments)
}

// SegmentSweepCtx is SegmentSweep under a context, observed between solves.
// Solves run sequentially because the study measures per-solve runtime.
func SegmentSweepCtx(ctx context.Context, region *plan.Region, model plan.CellModel, cfg plan.Config, segments []int) ([]SegmentPoint, error) {
	var out []SegmentPoint
	for _, s := range segments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := cfg
		c.Segments = s
		c.Beta = 1
		p, err := plan.Solve(region, model, c)
		if err != nil {
			return nil, fmt.Errorf("game: segments=%d: %w", s, err)
		}
		out = append(out, SegmentPoint{
			Segments: s,
			Runtime:  p.Runtime,
			Utility:  plan.Evaluate(region, model, p.Effort, 1),
			Nodes:    p.Nodes,
		})
	}
	return out, nil
}

// SegmentRatioSweep computes the Fig. 8(d–f) series: the solution-quality
// ratio at fixed β as the PWL segment count varies.
func SegmentRatioSweep(regions []*plan.Region, model plan.CellModel, cfg plan.Config, beta float64, segments []int) ([]RatioPoint, error) {
	return SegmentRatioSweepCtx(context.Background(), regions, model, cfg, beta, segments)
}

// SegmentRatioSweepCtx is SegmentRatioSweep under a context, observed
// between solves via BetaSweepCtx.
func SegmentRatioSweepCtx(ctx context.Context, regions []*plan.Region, model plan.CellModel, cfg plan.Config, beta float64, segments []int) ([]RatioPoint, error) {
	var out []RatioPoint
	for _, s := range segments {
		c := cfg
		c.Segments = s
		pts, err := BetaSweepCtx(ctx, regions, model, c, []float64{beta})
		if err != nil {
			return nil, err
		}
		pt := pts[0]
		pt.Segments = s
		out = append(out, pt)
	}
	return out, nil
}

// DetectionResult compares simulated snare detections under the robust plan
// versus the uncertainty-blind plan, executed against the TRUE poaching
// process — the experiment behind the paper's "30% more snares" claim.
type DetectionResult struct {
	RobustDetections int
	BlindDetections  int
	// Factor is robust/blind (1.0 when blind is zero and robust is zero too).
	Factor float64
}

// SimulateDetections plays both plans for `months` months against the
// ground truth: each month, attacks are sampled per cell and detected with
// the effort-dependent probability.
func SimulateDetections(region *plan.Region, truth *poach.GroundTruth, robust, blind []float64, months int, seed int64) DetectionResult {
	r := rng.New(seed)
	count := func(effort []float64, stream *rng.RNG) int {
		found := 0
		for m := 0; m < months; m++ {
			for i, cell := range region.Cells {
				if !stream.Bernoulli(truth.AttackProb(cell, m, 0)) {
					continue
				}
				if stream.Bernoulli(truth.DetectProb(effort[i])) {
					found++
				}
			}
		}
		return found
	}
	res := DetectionResult{
		RobustDetections: count(robust, r.Split("robust")),
		BlindDetections:  count(blind, r.Split("blind")),
	}
	switch {
	case res.BlindDetections > 0:
		res.Factor = float64(res.RobustDetections) / float64(res.BlindDetections)
	case res.RobustDetections > 0:
		res.Factor = float64(res.RobustDetections)
	default:
		res.Factor = 1
	}
	return res
}
