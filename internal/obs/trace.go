package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID between
// pawsgate and pawsd, and back to the client on every response.
const TraceHeader = "X-Paws-Trace"

// maxSpans bounds per-trace memory: a campaign sweep can emit
// thousands of cell spans; beyond the cap we count drops instead.
const maxSpans = 512

// Span is one named stage inside a trace, with offsets relative to
// the trace start.
type Span struct {
	Name       string  `json:"name"`
	Item       string  `json:"item,omitempty"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// TraceRecord is a completed trace as exposed by /tracez.
type TraceRecord struct {
	TraceID      string    `json:"trace_id"`
	Op           string    `json:"op"`
	Status       string    `json:"status"`
	Start        time.Time `json:"start"`
	DurationMS   float64   `json:"duration_ms"`
	Spans        []Span    `json:"spans,omitempty"`
	SpansDropped int       `json:"spans_dropped,omitempty"`
}

// Recorder is a flight recorder: a fixed-size ring buffer of the
// most recently completed traces.
type Recorder struct {
	mu       sync.Mutex
	ring     []TraceRecord
	next     int
	filled   bool
	started  atomic.Int64
	finished atomic.Int64
}

// NewRecorder returns a recorder keeping the last n completed traces
// (n <= 0 defaults to 64).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{ring: make([]TraceRecord, n)}
}

// Trace is one in-flight request or job. Safe for concurrent span
// recording from worker goroutines.
type Trace struct {
	rec   *Recorder
	id    string
	op    string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
	done    bool
}

// MintID returns a fresh 16-hex-char trace ID.
func MintID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back
		// to a fixed marker rather than panicking in a serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Start begins a trace. An empty id mints a new one (the pawsd /
// pawsgate middleware passes any inbound X-Paws-Trace value through,
// so gate-minted IDs survive into replica traces).
func (r *Recorder) Start(id, op string) *Trace {
	if id == "" {
		id = MintID()
	}
	r.started.Add(1)
	return &Trace{rec: r, id: id, op: op, start: time.Now()}
}

// ID returns the trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named stage and returns its closer. Nil-safe:
// on a nil trace both the call and the closer are no-ops, so compute
// code can span unconditionally.
func (t *Trace) StartSpan(name, item string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.done {
			return
		}
		if len(t.spans) >= maxSpans {
			t.dropped++
			return
		}
		t.spans = append(t.spans, Span{
			Name:       name,
			Item:       item,
			StartMS:    float64(begin.Sub(t.start)) / float64(time.Millisecond),
			DurationMS: float64(end.Sub(begin)) / float64(time.Millisecond),
		})
	}
}

// Finish completes the trace and records it into the ring buffer.
// Idempotent; spans closed after Finish are discarded.
func (t *Trace) Finish(status string) {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	spans := t.spans
	dropped := t.dropped
	t.mu.Unlock()

	// Workers may close spans out of order; sort for stable display.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartMS < spans[j].StartMS })
	rec := TraceRecord{
		TraceID:      t.id,
		Op:           t.op,
		Status:       status,
		Start:        t.start.UTC(),
		DurationMS:   float64(end.Sub(t.start)) / float64(time.Millisecond),
		Spans:        spans,
		SpansDropped: dropped,
	}
	r := t.rec
	r.finished.Add(1)
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.next == 0 {
		r.filled = true
	}
	r.mu.Unlock()
}

// Recent returns completed traces, newest first.
func (r *Recorder) Recent() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.ring)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(r.next-1-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// TracezResponse is the GET /tracez body.
type TracezResponse struct {
	Capacity int           `json:"capacity"`
	Started  int64         `json:"started"`
	Finished int64         `json:"finished"`
	Traces   []TraceRecord `json:"traces"`
}

// Handler serves the flight recorder as GET /tracez.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp := TracezResponse{
			Capacity: len(r.ring),
			Started:  r.started.Load(),
			Finished: r.finished.Load(),
			Traces:   r.Recent(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

type traceCtxKey struct{}

// WithTrace attaches a trace to ctx so compute layers can record
// spans without any API change beyond carrying ctx (the same way
// WithProgress events flow).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// StartSpan opens a stage on the trace in ctx; the returned closer
// is a no-op when no trace is attached. This is the one-liner used
// at compute sites:
//
//	defer obs.StartSpan(ctx, "train", item)()
func StartSpan(ctx context.Context, name, item string) func() {
	return TraceFrom(ctx).StartSpan(name, item)
}
