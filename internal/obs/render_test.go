package obs

import (
	"strings"
	"testing"
)

// TestWriteTextByteStable pins the exposition renderer's ordering
// guarantee: series live in maps, so repeated renders — and renders of
// registries populated in opposite insertion orders — must still be
// byte-identical. This is the regression test behind pawsvet's maporder
// discipline for /metricsz.
func TestWriteTextByteStable(t *testing.T) {
	build := func(reversed bool) *Registry {
		r := NewRegistry()
		labels := []string{"plan", "predict", "riskmap", "campaign", "env_step"}
		if reversed {
			for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
		for _, l := range labels {
			r.CounterVec("paws_requests_total", "requests by route", "route").With(l).Add(float64(len(l)))
			r.GaugeVec("paws_inflight", "inflight by route", "route").With(l).Set(float64(len(l) * 2))
		}
		r.Gauge("paws_up", "liveness").Set(1)
		return r
	}

	render := func(r *Registry) string {
		var b strings.Builder
		r.WriteText(&b)
		return b.String()
	}

	r := build(false)
	first := render(r)
	for i := 0; i < 5; i++ {
		if got := render(r); got != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, got, first)
		}
	}
	if got := render(build(true)); got != first {
		t.Fatalf("reversed insertion order changes output:\n%s\nvs\n%s", got, first)
	}
}
