package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentStorm hammers every instrument kind from many
// goroutines; run under -race this pins the registry's thread
// safety, and the totals pin that no increments are lost.
func TestConcurrentStorm(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("storm_requests_total", "req", "endpoint")
	gv := r.GaugeVec("storm_inflight", "gauge", "endpoint")
	hv := r.HistogramVec("storm_seconds", "hist", []float64{0.01, 0.1, 1}, "endpoint")

	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := fmt.Sprintf("ep%d", w%4)
			for i := 0; i < perWorker; i++ {
				cv.With(ep).Inc()
				gv.With(ep).Add(1)
				gv.With(ep).Add(-1)
				hv.With(ep).Observe(float64(i%3) * 0.05)
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for i := 0; i < 4; i++ {
		total += cv.With(fmt.Sprintf("ep%d", i)).Value()
	}
	if want := float64(workers * perWorker); total != want {
		t.Fatalf("lost increments: got %v want %v", total, want)
	}
	for i := 0; i < 4; i++ {
		if v := gv.With(fmt.Sprintf("ep%d", i)).Value(); v != 0 {
			t.Fatalf("gauge ep%d = %v, want 0", i, v)
		}
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `storm_seconds_count{endpoint="ep0"} 2000`) {
		t.Fatalf("histogram count missing from exposition:\n%s", b.String())
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an
// observation exactly on a bound lands in that bound's bucket
// (le is inclusive), and overflow goes to +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bound_seconds", "boundary pinning", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.1, 0.5, 1.0, 2.0, 0.05} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`bound_seconds_bucket{le="0.1"} 2`,  // 0.05 and the exact 0.1
		`bound_seconds_bucket{le="0.5"} 3`,  // + exact 0.5
		`bound_seconds_bucket{le="1"} 4`,    // + exact 1.0
		`bound_seconds_bucket{le="+Inf"} 5`, // + the 2.0 overflow
		`bound_seconds_sum 3.65`,
		`bound_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionFormat pins deterministic ordering, HELP/TYPE lines,
// label escaping, and func collectors.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("zz_total", "last family", "k").With(`a"b\c`).Add(3)
	r.Gauge("aa_depth", "first family").Set(7)
	r.GaugeFunc("mm_live", "func gauge", func() float64 { return 42 }, "replica", "a")

	var b strings.Builder
	r.WriteText(&b)
	got := b.String()
	want := "# HELP aa_depth first family\n# TYPE aa_depth gauge\naa_depth 7\n" +
		"# HELP mm_live func gauge\n# TYPE mm_live gauge\nmm_live{replica=\"a\"} 42\n" +
		"# HELP zz_total last family\n# TYPE zz_total counter\nzz_total{k=\"a\\\"b\\\\c\"} 3\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Re-registering the same family must return the same series.
	r.Gauge("aa_depth", "first family").Add(1)
	if v := r.Gauge("aa_depth", "first family").Value(); v != 8 {
		t.Fatalf("re-registered gauge = %v, want 8", v)
	}
}

// TestRecorderRing pins ring-buffer eviction order and span capture.
func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		tr := rec.Start(fmt.Sprintf("id%d", i), "op")
		end := tr.StartSpan("stage", fmt.Sprintf("item%d", i))
		end()
		tr.Finish("ok")
	}
	got := rec.Recent()
	if len(got) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(got))
	}
	for i, want := range []string{"id4", "id3", "id2"} {
		if got[i].TraceID != want {
			t.Fatalf("trace %d = %s, want %s (newest first)", i, got[i].TraceID, want)
		}
	}
	if len(got[0].Spans) != 1 || got[0].Spans[0].Name != "stage" || got[0].Spans[0].Item != "item4" {
		t.Fatalf("span not captured: %+v", got[0].Spans)
	}

	// Handler round-trips as JSON.
	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/tracez", nil))
	var resp TracezResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Capacity != 3 || resp.Started != 5 || resp.Finished != 5 || len(resp.Traces) != 3 {
		t.Fatalf("tracez response: %+v", resp)
	}
}

// TestTraceContext pins the nil-safety contract: spans without a
// trace in ctx are no-ops, spans with one are recorded, and minted
// IDs are well-formed.
func TestTraceContext(t *testing.T) {
	StartSpan(context.Background(), "noop", "")() // must not panic

	rec := NewRecorder(4)
	tr := rec.Start("", "job:plan")
	if len(tr.ID()) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", tr.ID())
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			StartSpan(ctx, "cell", fmt.Sprintf("seed=%d", i))()
		}(i)
	}
	wg.Wait()
	tr.Finish("ok")
	tr.StartSpan("late", "")() // after Finish: dropped, no panic
	tr.Finish("again")         // idempotent

	recs := rec.Recent()
	if len(recs) != 1 || len(recs[0].Spans) != 8 || recs[0].Status != "ok" {
		t.Fatalf("recorded %+v", recs)
	}
	var nilTrace *Trace
	nilTrace.StartSpan("x", "")() // nil-safe
	nilTrace.Finish("x")
	if nilTrace.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
}
