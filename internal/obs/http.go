package obs

import "net/http"

// StatusWriter wraps a ResponseWriter to capture the response status
// for metric labels and trace outcomes. It implements http.Flusher
// unconditionally (delegating when the underlying writer supports it)
// so streaming handlers — the NDJSON job-event stream, the gate's
// chunk-flushing proxy — keep flushing through the wrapper.
type StatusWriter struct {
	http.ResponseWriter
	Status int
}

func (w *StatusWriter) WriteHeader(code int) {
	if w.Status == 0 {
		w.Status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *StatusWriter) Write(b []byte) (int, error) {
	if w.Status == 0 {
		w.Status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *StatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// StatusCode returns the captured status, defaulting to 200 for
// handlers that never called WriteHeader explicitly.
func (w *StatusWriter) StatusCode() int {
	if w.Status == 0 {
		return http.StatusOK
	}
	return w.Status
}
