// Package obs is the fleet observability layer: a dependency-free,
// race-safe metrics registry with Prometheus text exposition
// (GET /metricsz) and a request-scoped trace recorder with per-stage
// compute spans (GET /tracez).
//
// Everything in this package is strictly observational. Like
// paws.WithProgress, attaching a trace to a context or registering
// metrics must never change computed bytes: instruments only read or
// accumulate, and the compute layers consult them for nothing.
//
// Metrics: a Registry holds named families — counters, gauges,
// callback collectors, and fixed-bucket histograms — each with an
// optional label dimension. All instruments are safe for concurrent
// use; hot-path updates are single atomic ops. WriteText renders the
// registry in deterministic (sorted) Prometheus text format.
//
// Tracing: a Recorder is a fixed-size ring buffer of completed
// traces. A Trace is minted per HTTP request (adopting an inbound
// X-Paws-Trace ID when present) or per background job, carried by
// context.Context, and accumulates named spans — build, train,
// riskmap sweep, coarse/refine plan passes, per-season plan/patrol —
// via StartSpan. Finish records the trace into the ring for /tracez.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond cache hits to multi-minute planning jobs.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Registry is a set of named metric families. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one metric name: its metadata plus all labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label keys, fixed at registration

	mu     sync.RWMutex
	series map[string]*series // key: joined label values
	fns    []collectFn        // callback series (gauge/counter funcs)
}

type collectFn struct {
	labelValues []string
	fn          func() float64
}

// series is one (name, label values) instrument.
type series struct {
	labelValues []string

	bits atomic.Uint64 // float64 bits for counters/gauges

	// histogram state
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labels: labels, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
	}
	return f
}

func seriesKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string, init func(*series)) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if init != nil {
		init(s)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0 for Prometheus semantics; not enforced).
func (c Counter) Add(v float64) { addFloat(&c.s.bits, v) }

// Value returns the current total.
func (c Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// With returns the counter for the given label values.
func (v CounterVec) With(values ...string) Counter { return Counter{v.f.get(values, nil)} }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge { return Gauge{v.f.get(values, nil)} }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	s := v.f.get(values, func(s *series) {
		s.bounds = v.bounds
		s.buckets = make([]atomic.Uint64, len(v.bounds)+1)
	})
	return Histogram{s}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.family(name, help, kindCounter, nil).get(nil, nil)}
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, labels)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.family(name, help, kindGauge, nil).get(nil, nil)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, labels)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the idiom for exposing live state (queue depth, cache size)
// without a second copy of it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, kindGauge, fn, labelPairs)
}

// CounterFunc registers a counter read from fn at scrape time; fn
// must be monotonic (e.g. a total maintained elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, kindCounter, fn, labelPairs)
}

func (r *Registry) funcSeries(name, help string, kind metricKind, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic("obs: labelPairs must be key,value,...")
	}
	keys := make([]string, 0, len(labelPairs)/2)
	vals := make([]string, 0, len(labelPairs)/2)
	for i := 0; i+1 < len(labelPairs); i += 2 {
		keys = append(keys, labelPairs[i])
		vals = append(vals, labelPairs[i+1])
	}
	f := r.family(name, help, kind, keys)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fns = append(f.fns, collectFn{labelValues: vals, fn: fn})
}

// Histogram observes values into fixed cumulative buckets.
type Histogram struct{ s *series }

// Observe records v.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.s.bounds, v) // first bound >= v: le buckets are inclusive
	h.s.buckets[i].Add(1)
	h.s.count.Add(1)
	addFloat(&h.s.sumBits, v)
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given upper bounds (ascending; +Inf is implicit). Nil bounds use
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	v := r.HistogramVec(name, help, bounds)
	return v.With()
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	return HistogramVec{f: r.family(name, help, kindHistogram, labels), bounds: bounds}
}

// WriteText renders every family in Prometheus text exposition
// format, families sorted by name and series by label values, so
// output is deterministic for a given state.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.write(w)
	}
}

type seriesSnap struct {
	labelValues []string
	value       float64
	hist        *series // non-nil for histogram series
}

func (f *family) write(w *strings.Builder) {
	typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)

	f.mu.RLock()
	snaps := make([]seriesSnap, 0, len(f.series)+len(f.fns))
	for _, s := range f.series {
		sn := seriesSnap{labelValues: s.labelValues}
		if f.kind == kindHistogram {
			sn.hist = s
		} else {
			sn.value = math.Float64frombits(s.bits.Load())
		}
		snaps = append(snaps, sn)
	}
	for _, c := range f.fns {
		snaps = append(snaps, seriesSnap{labelValues: c.labelValues, value: c.fn()})
	}
	f.mu.RUnlock()

	sort.Slice(snaps, func(i, j int) bool {
		return seriesKey(snaps[i].labelValues) < seriesKey(snaps[j].labelValues)
	})
	for _, sn := range snaps {
		if sn.hist != nil {
			writeHistogram(w, f, sn.hist)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, sn.labelValues, "", ""), formatFloat(sn.value))
	}
}

func writeHistogram(w *strings.Builder, f *family, s *series) {
	cum := uint64(0)
	for i, b := range s.bounds {
		cum += s.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", formatFloat(b)), cum)
	}
	cum += s.buckets[len(s.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(math.Float64frombits(s.sumBits.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), s.count.Load())
}

func labelString(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as GET /metricsz.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}
