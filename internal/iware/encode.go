package iware

import (
	"bytes"
	"encoding/gob"
	"errors"

	"paws/internal/ml"
)

// configState is Config without the WeakLearner factory, which is a function
// and cannot be encoded. A decoded model is predict-only, which is all the
// serving path needs; Workers is preserved so batch prediction keeps its
// fan-out.
type configState struct {
	Thresholds  []float64
	CVFolds     int
	WeightIters int
	Seed        int64
	Workers     int
}

// modelState is the exported gob image of a fitted iWare-E ensemble.
type modelState struct {
	Cfg         configState
	Thresholds  []float64
	Classifiers []ml.Classifier
	Weights     []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Model) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelState{
		Cfg: configState{
			Thresholds:  m.cfg.Thresholds,
			CVFolds:     m.cfg.CVFolds,
			WeightIters: m.cfg.WeightIters,
			Seed:        m.cfg.Seed,
			Workers:     m.cfg.Workers,
		},
		Thresholds:  m.thresholds,
		Classifiers: m.classifiers,
		Weights:     m.weights,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(b []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Thresholds) == 0 || len(st.Classifiers) != len(st.Thresholds) || len(st.Weights) != len(st.Thresholds) {
		return errors.New("iware: corrupt encoding: ladder size mismatch")
	}
	for _, c := range st.Classifiers {
		if c == nil {
			return errors.New("iware: corrupt encoding: nil classifier")
		}
	}
	m.cfg = Config{
		Thresholds:  st.Cfg.Thresholds,
		CVFolds:     st.Cfg.CVFolds,
		WeightIters: st.Cfg.WeightIters,
		Seed:        st.Cfg.Seed,
		Workers:     st.Cfg.Workers,
	}
	m.thresholds = st.Thresholds
	m.classifiers = st.Classifiers
	m.weights = st.Weights
	return nil
}
