package iware

import (
	"testing"
)

// fitWithWorkers trains one iWare-E model on the synthetic poaching data
// with the given worker count, CV weight optimization included so the
// staged (fold × threshold) fan-out is exercised.
func fitWithWorkers(t *testing.T, workers int) (*Model, [][]float64, []float64) {
	t.Helper()
	X, y, efforts := synthPoaching(320, 17)
	m, err := Fit(X, y, efforts, Config{
		Thresholds:  []float64{0, 1, 2, 3},
		WeakLearner: treeBagFactory(4),
		CVFolds:     3,
		Seed:        23,
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, X, efforts
}

// TestFitParallelMatchesSequential asserts weights, per-effort predictions
// and variances are identical for Workers=1 and Workers=4.
func TestFitParallelMatchesSequential(t *testing.T) {
	seq, X, efforts := fitWithWorkers(t, 1)
	par4, _, _ := fitWithWorkers(t, 4)
	for i, w := range seq.Weights() {
		if par4.Weights()[i] != w {
			t.Fatalf("weight %d: sequential %v != parallel %v", i, w, par4.Weights()[i])
		}
	}
	for i := 0; i < 80; i++ {
		for _, c := range []float64{0, 0.7, 1.8, 3.5} {
			if a, b := seq.PredictForEffort(X[i], c), par4.PredictForEffort(X[i], c); a != b {
				t.Fatalf("point %d effort %v: %v != %v", i, c, a, b)
			}
			ap, av := seq.PredictWithVarianceForEffort(X[i], c)
			bp, bv := par4.PredictWithVarianceForEffort(X[i], c)
			if ap != bp || av != bv {
				t.Fatalf("point %d effort %v: variance path diverged", i, c)
			}
		}
	}
	_ = efforts
}

// TestVectorizedPredictionsMatchPointwise asserts the batch/vectorized
// prediction paths reproduce the pointwise floats bit for bit.
func TestVectorizedPredictionsMatchPointwise(t *testing.T) {
	m, X, efforts := fitWithWorkers(t, 2)
	Q := X[:100]
	// PredictPoints at recorded efforts.
	got := m.PredictPoints(Q, efforts[:100])
	for i := range Q {
		if want := m.PredictForEffort(Q[i], efforts[i]); got[i] != want {
			t.Fatalf("PredictPoints[%d] = %v, pointwise %v", i, got[i], want)
		}
	}
	// Uniform-effort batch paths.
	for _, c := range []float64{0, 1.2, 2.9} {
		probs := m.PredictForEffortBatch(Q, c)
		ps, vs := m.PredictWithVarianceForEffortBatch(Q, c)
		for i := range Q {
			if want := m.PredictForEffort(Q[i], c); probs[i] != want {
				t.Fatalf("effort %v point %d: batch %v != pointwise %v", c, i, probs[i], want)
			}
			wp, wv := m.PredictWithVarianceForEffort(Q[i], c)
			if ps[i] != wp || vs[i] != wv {
				t.Fatalf("effort %v point %d: variance batch diverged", c, i)
			}
		}
	}
}
