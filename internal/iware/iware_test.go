package iware

import (
	"math"
	"testing"

	"paws/internal/ml"
	"paws/internal/ml/bagging"
	"paws/internal/ml/tree"
	"paws/internal/rng"
	"paws/internal/stats"
)

func treeBagFactory(members int) ml.Factory {
	return func(seed int64) ml.Classifier {
		return bagging.New(func(s int64) ml.Classifier {
			return tree.New(tree.Config{MaxDepth: 5, MinLeaf: 2, MaxFeatures: 0, Seed: s})
		}, bagging.Config{Members: members, Seed: seed})
	}
}

// synthPoaching builds data mimicking the poaching structure: the true
// attack depends on two features; detection (label=1) requires an attack AND
// sufficient effort, so low-effort negatives are unreliable.
func synthPoaching(n int, seed int64) (X [][]float64, y []int, efforts []float64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		x := []float64{a, b, r.Float64()}
		attack := r.Bernoulli(stats.Logistic(4*a - 2*b - 1))
		effort := 0.2 + 4*r.Float64()
		label := 0
		if attack && r.Bernoulli(1-math.Exp(-0.8*effort)) {
			label = 1
		}
		X = append(X, x)
		y = append(y, label)
		efforts = append(efforts, effort)
	}
	return X, y, efforts
}

func TestFilterIndicesKeepsAllPositives(t *testing.T) {
	y := []int{1, 0, 1, 0, 0}
	eff := []float64{0.1, 0.1, 5, 5, 2}
	idx := filterIndices(y, eff, 3.0)
	// Positives at 0, 2 always kept; negatives only where effort > 3 → index 3.
	want := map[int]bool{0: true, 2: true, 3: true}
	if len(idx) != 3 {
		t.Fatalf("filter = %v", idx)
	}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("unexpected index %d", i)
		}
	}
	// Threshold 0 keeps every positive and all positive-effort negatives.
	if got := filterIndices(y, eff, 0); len(got) != 5 {
		t.Fatalf("θ=0 should keep all, got %v", got)
	}
}

func TestFitAndPredictBasic(t *testing.T) {
	X, y, eff := synthPoaching(600, 1)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 1, 2, 3},
		WeakLearner: treeBagFactory(8),
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classifiers()) != 4 {
		t.Fatal("one classifier per threshold")
	}
	// Test AUC must beat chance comfortably.
	Xt, yt, efft := synthPoaching(400, 3)
	scores := m.PredictPoints(Xt, efft)
	if auc := stats.AUC(yt, scores); auc < 0.6 {
		t.Fatalf("iWare-E AUC = %v", auc)
	}
}

func TestPredictionMonotoneStepInEffort(t *testing.T) {
	X, y, eff := synthPoaching(500, 4)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 1, 2, 3},
		WeakLearner: treeBagFactory(6),
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// g(c) is a step function: constant between thresholds.
	x := X[0]
	p1 := m.PredictForEffort(x, 1.2)
	p2 := m.PredictForEffort(x, 1.8)
	if p1 != p2 {
		t.Fatal("prediction should be constant between thresholds")
	}
	// On average over many cells, higher effort ⇒ higher predicted detection
	// (more qualified classifiers trained on higher-positive-rate data).
	var lo, hi float64
	for i := 0; i < 200; i++ {
		lo += m.PredictForEffort(X[i], 0.1)
		hi += m.PredictForEffort(X[i], 5)
	}
	if hi <= lo {
		t.Fatalf("mean prediction should increase with effort: lo %v hi %v", lo/200, hi/200)
	}
}

func TestQualificationBoundaries(t *testing.T) {
	X, y, eff := synthPoaching(300, 6)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 1, 2},
		WeakLearner: treeBagFactory(4),
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.qualifiedUpTo(0); n != 1 {
		t.Fatalf("at c=0 only θ=0 qualifies, got %d", n)
	}
	if n := m.qualifiedUpTo(1); n != 2 {
		t.Fatalf("at c=1, θ∈{0,1} qualify, got %d", n)
	}
	if n := m.qualifiedUpTo(0.99); n != 1 {
		t.Fatalf("at c=0.99 only θ=0 qualifies, got %d", n)
	}
	if n := m.qualifiedUpTo(100); n != 3 {
		t.Fatalf("large effort qualifies all, got %d", n)
	}
	// Negative effort still has one qualified classifier (defined behavior).
	if n := m.qualifiedUpTo(-1); n != 1 {
		t.Fatalf("negative effort should clamp to 1, got %d", n)
	}
}

func TestWeightOptimizationImprovesLogLoss(t *testing.T) {
	X, y, eff := synthPoaching(700, 8)
	Xt, yt, efft := synthPoaching(500, 9)

	base, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 0.8, 1.6, 2.4, 3.2},
		WeakLearner: treeBagFactory(6),
		Seed:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 0.8, 1.6, 2.4, 3.2},
		WeakLearner: treeBagFactory(6),
		CVFolds:     3,
		Seed:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	llBase := stats.LogLoss(yt, base.PredictPoints(Xt, efft))
	llOpt := stats.LogLoss(yt, opt.PredictPoints(Xt, efft))
	// Optimized weights should not be much worse; usually better.
	if llOpt > llBase*1.15 {
		t.Fatalf("optimized weights hurt log loss: %v vs %v", llOpt, llBase)
	}
	// Weights must remain a simplex point.
	var sum float64
	for _, w := range opt.Weights() {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestUniformWeightsWithoutCV(t *testing.T) {
	X, y, eff := synthPoaching(200, 11)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 1},
		WeakLearner: treeBagFactory(3),
		Seed:        12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Weights() {
		if w != 0.5 {
			t.Fatalf("expected uniform weights, got %v", m.Weights())
		}
	}
}

func TestPredictWithVarianceAggregation(t *testing.T) {
	X, y, eff := synthPoaching(400, 13)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{0, 1, 2},
		WeakLearner: treeBagFactory(6),
		Seed:        14,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, v := m.PredictWithVarianceForEffort(X[0], 1.5)
	if p < 0 || p > 1 {
		t.Fatalf("p = %v", p)
	}
	if v < 0 {
		t.Fatalf("variance = %v", v)
	}
	// Probability must agree with PredictForEffort.
	if math.Abs(p-m.PredictForEffort(X[0], 1.5)) > 1e-12 {
		t.Fatal("variance path changed the probability")
	}
}

func TestFitErrors(t *testing.T) {
	X, y, eff := synthPoaching(50, 15)
	if _, err := Fit(X, y, eff, Config{WeakLearner: treeBagFactory(2)}); err != ErrNoThresholds {
		t.Fatalf("expected ErrNoThresholds, got %v", err)
	}
	if _, err := Fit(X, y, eff, Config{Thresholds: []float64{0}}); err == nil {
		t.Fatal("expected nil-factory error")
	}
	if _, err := Fit(X, y, eff[:10], Config{Thresholds: []float64{0}, WeakLearner: treeBagFactory(2)}); err == nil {
		t.Fatal("expected effort-length error")
	}
	if _, err := Fit(nil, nil, nil, Config{Thresholds: []float64{0}, WeakLearner: treeBagFactory(2)}); err == nil {
		t.Fatal("expected empty-data error")
	}
}

func TestThresholdsSortedInternally(t *testing.T) {
	X, y, eff := synthPoaching(200, 16)
	m, err := Fit(X, y, eff, Config{
		Thresholds:  []float64{2, 0, 1},
		WeakLearner: treeBagFactory(3),
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := m.Thresholds()
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatalf("thresholds not sorted: %v", th)
		}
	}
}

func TestSquashVariance(t *testing.T) {
	if SquashVariance(0, 1) != 0 {
		t.Fatal("squash(0) must be 0")
	}
	if SquashVariance(-1, 1) != 0 {
		t.Fatal("squash of negative variance must be 0")
	}
	prev := 0.0
	for v := 0.1; v < 10; v += 0.1 {
		s := SquashVariance(v, 1)
		if s <= prev || s >= 1 {
			t.Fatalf("squash not monotone into (0,1): squash(%v)=%v", v, s)
		}
		prev = s
	}
	// Zero scale falls back to 1.
	if SquashVariance(1, 0) != SquashVariance(1, 1) {
		t.Fatal("scale fallback wrong")
	}
}

// TestIWareEBeatsPlainBaggingOnBiasedNegatives is the package-level analogue
// of Table II's finding that iWare-E lifts AUC: with unreliable low-effort
// negatives, filtering should help the ranking measured against TRUE attack
// labels.
func TestIWareEBeatsPlainBaggingOnBiasedNegatives(t *testing.T) {
	r := rng.New(18)
	var X [][]float64
	var y []int
	var eff []float64
	var trueAttack []int
	n := 900
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		x := []float64{a, b}
		attack := r.Bernoulli(stats.Logistic(5*a - 3*b - 0.5))
		effort := 0.2 + 4*r.Float64()
		label := 0
		if attack && r.Bernoulli(1-math.Exp(-0.6*effort)) {
			label = 1
		}
		ta := 0
		if attack {
			ta = 1
		}
		X = append(X, x)
		y = append(y, label)
		eff = append(eff, effort)
		trueAttack = append(trueAttack, ta)
	}
	split := 600
	m, err := Fit(X[:split], y[:split], eff[:split], Config{
		Thresholds:  []float64{0, 1, 2, 3},
		WeakLearner: treeBagFactory(8),
		Seed:        19,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := treeBagFactory(8)(20)
	if err := plain.Fit(X[:split], y[:split]); err != nil {
		t.Fatal(err)
	}
	// Evaluate against the TRUE attack labels at high effort.
	var iwScores, plainScores []float64
	for i := split; i < n; i++ {
		iwScores = append(iwScores, m.PredictForEffort(X[i], 4))
		plainScores = append(plainScores, plain.PredictProba(X[i]))
	}
	iwAUC := stats.AUC(trueAttack[split:], iwScores)
	plainAUC := stats.AUC(trueAttack[split:], plainScores)
	if iwAUC < plainAUC-0.05 {
		t.Fatalf("iWare-E (%v) should not trail plain bagging (%v) by much", iwAUC, plainAUC)
	}
}
