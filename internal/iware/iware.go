// Package iware implements the imperfect-observation-aware ensemble
// (iWare-E) of Gholami et al. with the three enhancements introduced by the
// paper (Section IV):
//
//  1. Thresholds θ_i are chosen by patrol-effort percentile so each weak
//     learner trains on a consistent amount of data (the caller supplies the
//     ladder, typically via dataset.EffortPercentileThresholds).
//  2. Classifier weights are optimized by k-fold cross-validation minimizing
//     the log loss of the qualified-weighted ensemble prediction, instead of
//     equal weighting.
//  3. Weak learners may be Gaussian-process ensembles, in which case the
//     model exposes an effort-conditioned predictive variance ν(x, c) used
//     downstream for robust patrol planning.
//
// Construction: weak learner C_i trains on the subset D_i that keeps every
// positive example but only negatives recorded under patrol effort > θ_i —
// low-effort negatives are unreliable (the snare may simply not have been
// found). At prediction time for a planned effort c, exactly the classifiers
// with θ_i ≤ c are qualified: their filtered training distributions are
// consistent with what patrolling at effort c can observe. The ensemble
// output is the weight-normalized average over qualified classifiers, which
// makes the prediction a monotone step function of effort — the g_v(c)
// consumed by the patrol planner.
package iware

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"paws/internal/ml"
	"paws/internal/par"
	"paws/internal/rng"
	"paws/internal/stats"
)

// ErrNoThresholds is returned when Config.Thresholds is empty.
var ErrNoThresholds = errors.New("iware: no thresholds provided")

// Config controls the ensemble.
type Config struct {
	// Thresholds is the ascending effort ladder θ_1 ≤ … ≤ θ_I. The first
	// threshold should be 0 so at least one classifier is always qualified.
	Thresholds []float64
	// WeakLearner builds one untrained weak learner per threshold.
	WeakLearner ml.Factory
	// CVFolds enables weight optimization with this many folds (0 or 1
	// disables optimization and uses uniform weights — the iWare-E baseline
	// of Gholami et al.).
	CVFolds int
	// WeightIters caps the exponentiated-gradient iterations (default 200).
	WeightIters int
	// Seed drives fold assignment and weak-learner seeds.
	Seed int64
	// Workers bounds the goroutines used to fit ladder slices and CV folds
	// and to fan batch predictions out across classifiers (par.Workers
	// semantics: 1 is sequential, ≤ 0 means GOMAXPROCS). Seeds are derived
	// before fan-out, so results are identical for any worker count.
	Workers int
	// Progress, when non-nil, is invoked after each weak-learner fit of the
	// final ladder refit with (fitted so far, ladder size). It may be
	// called concurrently from worker goroutines and must not affect the
	// computation; it is excluded from the persisted model state.
	Progress func(done, total int)
}

// Model is a fitted iWare-E ensemble.
type Model struct {
	cfg         Config
	thresholds  []float64
	classifiers []ml.Classifier
	weights     []float64
}

// Fit trains the ensemble on features X, labels y and per-point patrol
// efforts (the efforts are used for filtering and qualification only; they
// are never model inputs).
func Fit(X [][]float64, y []int, efforts []float64, cfg Config) (*Model, error) {
	return FitCtx(context.Background(), X, y, efforts, cfg)
}

// FitCtx is Fit under a context. Cancellation is observed between weak-
// learner fits (both the CV weight-optimization tasks and the final ladder
// refit): in-flight fits drain, no new fit starts, and ctx.Err() is
// returned.
func FitCtx(ctx context.Context, X [][]float64, y []int, efforts []float64, cfg Config) (*Model, error) {
	if len(cfg.Thresholds) == 0 {
		return nil, ErrNoThresholds
	}
	if cfg.WeakLearner == nil {
		return nil, errors.New("iware: nil weak learner factory")
	}
	if err := ml.CheckXY(X, y); err != nil {
		return nil, err
	}
	if len(efforts) != len(X) {
		return nil, fmt.Errorf("iware: %d efforts for %d rows", len(efforts), len(X))
	}
	thresholds := append([]float64(nil), cfg.Thresholds...)
	sort.Float64s(thresholds)
	if cfg.WeightIters <= 0 {
		cfg.WeightIters = 200
	}
	m := &Model{cfg: cfg, thresholds: thresholds}

	// Optimize weights by cross-validation before the final refit.
	if cfg.CVFolds > 1 {
		w, err := optimizeWeights(ctx, X, y, efforts, thresholds, cfg)
		if err != nil {
			return nil, err
		}
		m.weights = w
	} else {
		m.weights = uniformWeights(len(thresholds))
	}

	// Final refit of every weak learner on the full (filtered) training
	// data. Ladder slices are independent, so they fit concurrently; seeds
	// are drained from the stream in ladder order first, which keeps the
	// result identical to a sequential run.
	seeds := par.SeedsFrom(rng.New(cfg.Seed), len(thresholds))
	m.classifiers = make([]ml.Classifier, len(thresholds))
	var fitted atomic.Int64
	err := par.ForEachErrCtx(ctx, cfg.Workers, len(thresholds), func(i int) error {
		th := thresholds[i]
		idx := filterIndices(y, efforts, th)
		fx, fy := ml.Subset(X, y, idx)
		c := cfg.WeakLearner(seeds[i])
		if err := fitPossiblyDegenerate(c, fx, fy); err != nil {
			return fmt.Errorf("iware: classifier %d (θ=%.3f): %w", i, th, err)
		}
		m.classifiers[i] = c
		if cfg.Progress != nil {
			cfg.Progress(int(fitted.Add(1)), len(thresholds))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The hook's job is done; drop it so a long-lived fitted model never
	// pins whatever the callback closed over (e.g. an async train job's
	// event stream). It is excluded from persistence anyway.
	m.cfg.Progress = nil
	return m, nil
}

// filterIndices implements the iWare-E data filter: keep all positives, and
// keep negatives only when their patrol effort exceeds the threshold.
// Discarding only negatives is the key imbalance-aware insight of iWare-E.
func filterIndices(y []int, efforts []float64, threshold float64) []int {
	var idx []int
	for i := range y {
		if y[i] == 1 || efforts[i] > threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// fitPossiblyDegenerate trains c, substituting the empirical base rate when
// the filtered subset is empty or single-class and the learner cannot cope.
func fitPossiblyDegenerate(c ml.Classifier, X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("empty filtered training set")
	}
	return c.Fit(X, y)
}

// Thresholds returns the sorted threshold ladder.
func (m *Model) Thresholds() []float64 { return m.thresholds }

// Weights returns the classifier weights (simplex).
func (m *Model) Weights() []float64 { return m.weights }

// Classifiers exposes the fitted weak learners (for diagnostics).
func (m *Model) Classifiers() []ml.Classifier { return m.classifiers }

// qualifiedUpTo returns the number of leading classifiers qualified for a
// planned effort c: those with θ_i ≤ c. At least one classifier is always
// qualified so predictions remain defined at c = 0.
func (m *Model) qualifiedUpTo(c float64) int {
	n := sort.SearchFloat64s(m.thresholds, math.Nextafter(c, math.Inf(1)))
	if n == 0 {
		n = 1
	}
	return n
}

// PredictForEffort returns the ensemble probability that patrolling cell x
// with effort c yields a detected attack: the weight-normalized average of
// the qualified classifiers.
func (m *Model) PredictForEffort(x []float64, c float64) float64 {
	n := m.qualifiedUpTo(c)
	var num, den float64
	for i := 0; i < n; i++ {
		w := m.weights[i]
		if w <= 0 {
			continue
		}
		num += w * m.classifiers[i].PredictProba(x)
		den += w
	}
	if den == 0 {
		// All qualified weights zero: fall back to uniform over qualified.
		for i := 0; i < n; i++ {
			num += m.classifiers[i].PredictProba(x)
		}
		return num / float64(n)
	}
	return num / den
}

// PredictWithVarianceForEffort returns the ensemble probability and the
// aggregated uncertainty: the weight-normalized average of the qualified
// classifiers' variances (intrinsic for GP weak learners, between-member for
// bagged trees). Weak learners without uncertainty contribute zero variance.
func (m *Model) PredictWithVarianceForEffort(x []float64, c float64) (p, variance float64) {
	n := m.qualifiedUpTo(c)
	var num, den, vnum float64
	for i := 0; i < n; i++ {
		w := m.weights[i]
		if w <= 0 {
			continue
		}
		var pi, vi float64
		if uc, ok := m.classifiers[i].(ml.UncertaintyClassifier); ok {
			pi, vi = uc.PredictWithVariance(x)
		} else {
			pi = m.classifiers[i].PredictProba(x)
		}
		num += w * pi
		vnum += w * vi
		den += w
	}
	if den == 0 {
		return m.PredictForEffort(x, c), 0
	}
	return num / den, vnum / den
}

// combineQualified reduces per-classifier predictions for one point exactly
// as PredictForEffort does: weight-normalized average over the first nq
// classifiers, falling back to a uniform average when all qualified weights
// are zero. preds[i] must hold classifier i's PredictProba for the point.
func (m *Model) combineQualified(preds []float64, nq int) float64 {
	var num, den float64
	for i := 0; i < nq; i++ {
		w := m.weights[i]
		if w <= 0 {
			continue
		}
		num += w * preds[i]
		den += w
	}
	if den == 0 {
		num = 0
		for i := 0; i < nq; i++ {
			num += preds[i]
		}
		return num / float64(nq)
	}
	return num / den
}

// PredictForEffortBatch scores every row of X at one planned effort. The
// qualified classifiers each score the whole batch concurrently
// (Config.Workers) through their batch fast path; per-point combination then
// runs in classifier order, matching PredictForEffort bit for bit.
func (m *Model) PredictForEffortBatch(X [][]float64, c float64) []float64 {
	nq := m.qualifiedUpTo(c)
	preds := par.Map(m.cfg.Workers, nq, func(i int) []float64 {
		return ml.PredictAll(m.classifiers[i], X)
	})
	out := make([]float64, len(X))
	perPoint := make([]float64, nq)
	for v := range X {
		for i := 0; i < nq; i++ {
			perPoint[i] = preds[i][v]
		}
		out[v] = m.combineQualified(perPoint, nq)
	}
	return out
}

// PredictWithVarianceForEffortBatch scores every row of X with uncertainty
// at one planned effort, batching across qualified classifiers like
// PredictForEffortBatch.
func (m *Model) PredictWithVarianceForEffortBatch(X [][]float64, c float64) (p, variance []float64) {
	nq := m.qualifiedUpTo(c)
	type clfOut struct{ p, v []float64 }
	outs := par.Map(m.cfg.Workers, nq, func(i int) clfOut {
		if uc, ok := m.classifiers[i].(ml.UncertaintyClassifier); ok {
			pi, vi := ml.PredictWithVarianceAll(uc, X, 1)
			return clfOut{p: pi, v: vi}
		}
		return clfOut{p: ml.PredictAll(m.classifiers[i], X)}
	})
	p = make([]float64, len(X))
	variance = make([]float64, len(X))
	for row := range X {
		var num, den, vnum float64
		for i := 0; i < nq; i++ {
			w := m.weights[i]
			if w <= 0 {
				continue
			}
			num += w * outs[i].p[row]
			if outs[i].v != nil {
				vnum += w * outs[i].v[row]
			}
			den += w
		}
		if den == 0 {
			// Rare all-zero-weight case: defer to the pointwise fallback,
			// which averages PredictProba (not the uncertainty-path mean)
			// uniformly over the qualified classifiers.
			p[row], variance[row] = m.PredictForEffort(X[row], c), 0
			continue
		}
		p[row], variance[row] = num/den, vnum/den
	}
	return p, variance
}

// PredictForEffortFlat is PredictForEffortBatch over a flat matrix: the
// qualified classifiers score the shared backing array directly, and the
// per-point combination still runs in classifier order.
func (m *Model) PredictForEffortFlat(X ml.Matrix, c float64) []float64 {
	nq := m.qualifiedUpTo(c)
	preds := par.Map(m.cfg.Workers, nq, func(i int) []float64 {
		return ml.PredictAllFlat(m.classifiers[i], X)
	})
	out := make([]float64, X.Rows)
	perPoint := make([]float64, nq)
	for v := range out {
		for i := 0; i < nq; i++ {
			perPoint[i] = preds[i][v]
		}
		out[v] = m.combineQualified(perPoint, nq)
	}
	return out
}

// PredictWithVarianceForEffortFlat is PredictWithVarianceForEffortBatch over
// a flat matrix, with the same classifier-order weighted combination.
func (m *Model) PredictWithVarianceForEffortFlat(X ml.Matrix, c float64) (p, variance []float64) {
	nq := m.qualifiedUpTo(c)
	type clfOut struct{ p, v []float64 }
	outs := par.Map(m.cfg.Workers, nq, func(i int) clfOut {
		if uc, ok := m.classifiers[i].(ml.UncertaintyClassifier); ok {
			pi, vi := ml.PredictWithVarianceAllFlat(uc, X)
			return clfOut{p: pi, v: vi}
		}
		return clfOut{p: ml.PredictAllFlat(m.classifiers[i], X)}
	})
	p = make([]float64, X.Rows)
	variance = make([]float64, X.Rows)
	for row := range p {
		var num, den, vnum float64
		for i := 0; i < nq; i++ {
			w := m.weights[i]
			if w <= 0 {
				continue
			}
			num += w * outs[i].p[row]
			if outs[i].v != nil {
				vnum += w * outs[i].v[row]
			}
			den += w
		}
		if den == 0 {
			// Rare all-zero-weight case: defer to the pointwise fallback,
			// which averages PredictProba (not the uncertainty-path mean)
			// uniformly over the qualified classifiers.
			p[row], variance[row] = m.PredictForEffort(X.Row(row), c), 0
			continue
		}
		p[row], variance[row] = num/den, vnum/den
	}
	return p, variance
}

// PredictPoints scores test points at their recorded efforts — the Table II
// evaluation mode. Points are scored in vectorized form: classifier i batch-
// predicts exactly the points whose recorded effort qualifies it, with
// classifiers running concurrently (Config.Workers); the per-point weighted
// combination is unchanged, so results match the pointwise path bit for bit.
func (m *Model) PredictPoints(X [][]float64, efforts []float64) []float64 {
	nq := make([]int, len(X))
	maxQ := 0
	for v := range X {
		nq[v] = m.qualifiedUpTo(efforts[v])
		if nq[v] > maxQ {
			maxQ = nq[v]
		}
	}
	// preds[i][v] is classifier i's probability for point v, filled only
	// where i < nq[v] (qualification is a prefix of the ladder).
	preds := par.Map(m.cfg.Workers, maxQ, func(i int) []float64 {
		var rows [][]float64
		var idx []int
		for v := range X {
			if i < nq[v] {
				rows = append(rows, X[v])
				idx = append(idx, v)
			}
		}
		dense := make([]float64, len(X))
		for k, p := range ml.PredictAll(m.classifiers[i], rows) {
			dense[idx[k]] = p
		}
		return dense
	})
	out := make([]float64, len(X))
	perPoint := make([]float64, maxQ)
	for v := range X {
		for i := 0; i < nq[v]; i++ {
			perPoint[i] = preds[i][v]
		}
		out[v] = m.combineQualified(perPoint, nq[v])
	}
	return out
}

// uniformWeights returns the equal-weight simplex point.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// optimizeWeights runs the paper's enhancement: k-fold CV predictions from
// every weak learner, then exponentiated-gradient descent on the simplex
// minimizing the log loss of the qualified-weighted ensemble output.
func optimizeWeights(ctx context.Context, X [][]float64, y []int, efforts []float64, thresholds []float64, cfg Config) ([]float64, error) {
	n := len(X)
	I := len(thresholds)
	r := rng.New(cfg.Seed)
	folds := ml.KFold(n, cfg.CVFolds, r.Split("folds"))

	// preds[v][i]: classifier i's CV prediction for validation point v.
	preds := make([][]float64, n)
	for v := range preds {
		preds[v] = make([]float64, I)
	}
	// Stage every (fold, threshold) fit sequentially — including the seed
	// draws, which historically happen only for non-empty filtered slices —
	// then run the fits concurrently. Each task owns disjoint (v, i) slots
	// of preds, so the fan-out is race-free and order-independent.
	type cvTask struct {
		fx     [][]float64
		fy     []int
		valIdx []int
		seed   int64
		i      int // classifier (threshold) index
	}
	var tasks []cvTask
	seedRNG := r.Split("cv-seeds")
	for _, valIdx := range folds {
		trIdx := ml.TrainIndices(n, valIdx)
		trX, trY := ml.Subset(X, y, trIdx)
		trEff := make([]float64, len(trIdx))
		for i, j := range trIdx {
			trEff[i] = efforts[j]
		}
		for i, th := range thresholds {
			fIdx := filterLocal(trY, trEff, th)
			if len(fIdx) == 0 {
				for _, v := range valIdx {
					preds[v][i] = 0.5
				}
				continue
			}
			fx, fy := ml.Subset(trX, trY, fIdx)
			tasks = append(tasks, cvTask{fx: fx, fy: fy, valIdx: valIdx, seed: seedRNG.Int63(), i: i})
		}
	}
	err := par.ForEachErrCtx(ctx, cfg.Workers, len(tasks), func(t int) error {
		task := tasks[t]
		c := cfg.WeakLearner(task.seed)
		if err := c.Fit(task.fx, task.fy); err != nil {
			return fmt.Errorf("iware: CV classifier %d: %w", task.i, err)
		}
		valX := make([][]float64, len(task.valIdx))
		for k, v := range task.valIdx {
			valX[k] = X[v]
		}
		for k, p := range ml.PredictAll(c, valX) {
			preds[task.valIdx[k]][task.i] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Qualification mask by each point's recorded effort.
	qual := make([][]bool, n)
	for v := 0; v < n; v++ {
		qual[v] = make([]bool, I)
		nq := sort.SearchFloat64s(thresholds, math.Nextafter(efforts[v], math.Inf(1)))
		if nq == 0 {
			nq = 1
		}
		for i := 0; i < nq; i++ {
			qual[v][i] = true
		}
	}
	return egMinimizeLogLoss(preds, qual, y, cfg.WeightIters), nil
}

func filterLocal(y []int, efforts []float64, threshold float64) []int {
	var idx []int
	for i := range y {
		if y[i] == 1 || efforts[i] > threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// egMinimizeLogLoss runs exponentiated-gradient descent over the simplex.
func egMinimizeLogLoss(preds [][]float64, qual [][]bool, y []int, iters int) []float64 {
	n := len(preds)
	if n == 0 {
		return uniformWeights(1)
	}
	I := len(preds[0])
	w := uniformWeights(I)
	const eta = 0.5
	const eps = 1e-9
	grad := make([]float64, I)
	for it := 0; it < iters; it++ {
		for i := range grad {
			grad[i] = 0
		}
		for v := 0; v < n; v++ {
			var num, den float64
			for i := 0; i < I; i++ {
				if qual[v][i] {
					num += w[i] * preds[v][i]
					den += w[i]
				}
			}
			if den < eps {
				continue
			}
			p := stats.Clamp(num/den, 1e-7, 1-1e-7)
			// d(logloss)/dp = (p − y) / (p(1−p)).
			dldp := (p - float64(y[v])) / (p * (1 - p))
			for i := 0; i < I; i++ {
				if qual[v][i] {
					grad[i] += dldp * (preds[v][i] - p) / den
				}
			}
		}
		// Normalize gradient scale and take the mirror-descent step.
		maxg := 0.0
		for _, g := range grad {
			if a := math.Abs(g); a > maxg {
				maxg = a
			}
		}
		if maxg < 1e-12 {
			break
		}
		var sum float64
		for i := range w {
			w[i] *= math.Exp(-eta * grad[i] / maxg)
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return w
}

// SquashVariance maps a non-negative variance to [0, 1) with the logistic
// squashing the paper applies before weighting uncertainty in the planner
// objective (Section VI-C): squash(v) = 2σ(v/scale) − 1.
func SquashVariance(v, scale float64) float64 {
	if v <= 0 {
		return 0
	}
	if scale <= 0 {
		scale = 1
	}
	return 2*stats.Logistic(v/scale) - 1
}
