package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"paws/internal/geo"
	"paws/internal/poach"
)

func testPark(t *testing.T) *geo.Park {
	t.Helper()
	cfg := geo.ParkConfig{
		Name: "TEST", Seed: 21, W: 24, H: 24, TargetCells: 420,
		Shape: geo.ShapeRound, NumRivers: 2, NumRoads: 2, NumVillages: 3,
		NumPosts: 3, ExtraFeatures: 2,
	}
	p, err := geo.GeneratePark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testHistory(t *testing.T, park *geo.Park, months int) *poach.History {
	t.Helper()
	cfg := poach.SimConfig{
		Seed:   31,
		Months: months,
		Patrol: poach.PatrolConfig{
			PatrolsPerPostMonth: 3, LengthKM: 10, RecordEvery: 1,
			RoadBias: 0.3, AttractBias: 0.5,
		},
		TargetPositiveRate: 0.12,
		Deterrence:         0.3,
		DetectLambda:       0.5,
		NonPoachingRate:    0.05,
	}
	h, err := poach.Simulate(park, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildStepsQuarterly(t *testing.T) {
	steps := buildSteps(24, StandardConfig())
	if len(steps) != 8 {
		t.Fatalf("24 months should give 8 quarters, got %d", len(steps))
	}
	if steps[0].Year != BaseYear || steps[4].Year != BaseYear+1 {
		t.Fatalf("year labels wrong: %v, %v", steps[0].Year, steps[4].Year)
	}
	for _, st := range steps {
		if len(st.Months) != 3 {
			t.Fatalf("quarter with %d months", len(st.Months))
		}
	}
}

func TestBuildStepsDrySeason(t *testing.T) {
	steps := buildSteps(24, DrySeasonConfig())
	// Months 0..23: complete dry blocks are (0,1),(2,3) [season year 0],
	// (10,11),(12,13),(14,15) [season year 1], (22,23) [season year 2].
	if len(steps) != 6 {
		t.Fatalf("expected 6 dry steps, got %d: %+v", len(steps), steps)
	}
	for _, st := range steps {
		if len(st.Months) != 2 {
			t.Fatalf("dry step with %d months", len(st.Months))
		}
		for _, m := range st.Months {
			if !poach.DrySeason(m) {
				t.Fatalf("dry step contains wet month %d", m)
			}
		}
	}
	// A full interior season has exactly 3 steps with the same year.
	count := 0
	for _, st := range steps {
		if st.Year == BaseYear+1 {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("interior season should have 3 steps, got %d", count)
	}
}

func TestRebuildEffortStraightLine(t *testing.T) {
	park := testPark(t)
	// One patrol with two waypoints 5 km apart horizontally, inside the park.
	// Find a row of in-park cells.
	g := park.Grid
	var y0, x0 int
	found := false
	for y := 0; y < g.H && !found; y++ {
		run := 0
		for x := 0; x < g.W; x++ {
			if g.InPark(x, y) {
				run++
				if run >= 6 {
					y0, x0 = y, x-5
					found = true
					break
				}
			} else {
				run = 0
			}
		}
	}
	if !found {
		t.Skip("no 6-cell run found")
	}
	wps := []poach.Waypoint{
		{PatrolID: 1, Seq: 0, Month: 0, X: float64(x0) + 0.5, Y: float64(y0) + 0.5},
		{PatrolID: 1, Seq: 1, Month: 0, X: float64(x0) + 5.5, Y: float64(y0) + 0.5},
	}
	eff := make([]float64, g.NumCells())
	RebuildEffortInto(park, wps, eff)
	var total float64
	for _, e := range eff {
		total += e
	}
	if math.Abs(total-5.0) > 0.1 {
		t.Fatalf("rebuilt total effort %v want ≈5", total)
	}
	// The interior cells of the segment should each carry ≈1 km.
	mid := g.CellID(x0+2, y0)
	if eff[mid] < 0.8 || eff[mid] > 1.2 {
		t.Fatalf("mid-cell effort %v want ≈1", eff[mid])
	}
}

func TestRebuildEffortSeparatePatrols(t *testing.T) {
	park := testPark(t)
	g := park.Grid
	x, y := g.CellXY(0)
	// Two waypoints with different patrol IDs: no segment between them.
	wps := []poach.Waypoint{
		{PatrolID: 1, Seq: 0, X: float64(x) + 0.5, Y: float64(y) + 0.5},
		{PatrolID: 2, Seq: 0, X: float64(x) + 10.5, Y: float64(y) + 0.5},
	}
	eff := make([]float64, g.NumCells())
	RebuildEffortInto(park, wps, eff)
	var total float64
	for _, e := range eff {
		total += e
	}
	if total != 0 {
		t.Fatalf("no intra-patrol segments, effort should be 0, got %v", total)
	}
}

func TestBuildDataset(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 48)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 16 {
		t.Fatalf("48 months → 16 quarters, got %d", len(d.Steps))
	}
	if d.NumFeatures() != park.NumFeatures()+1 {
		t.Fatal("feature count must include prev coverage")
	}
	names := d.FeatureNames()
	if names[len(names)-1] != "prev_coverage" {
		t.Fatal("last feature must be prev_coverage")
	}
	// Rebuilt effort should roughly match the hidden truth per step.
	for ti, st := range d.Steps[:4] {
		var trueTotal, rebuiltTotal float64
		for _, m := range st.Months {
			for _, e := range h.Effort[m] {
				trueTotal += e
			}
		}
		for _, e := range d.Effort[ti] {
			rebuiltTotal += e
		}
		if trueTotal == 0 {
			continue
		}
		ratio := rebuiltTotal / trueTotal
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("step %d: rebuilt/true effort ratio %v", ti, ratio)
		}
	}
}

func TestPointsOnlyPatrolledCells(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 24)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := d.AllPoints()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	sawPositive := false
	for _, p := range pts {
		if p.Effort <= 0 {
			t.Fatal("point with zero effort")
		}
		if len(p.Features) != d.NumFeatures() {
			t.Fatal("wrong feature length")
		}
		if p.Label == 1 {
			sawPositive = true
		}
		if p.Step > 0 {
			want := d.Effort[p.Step-1][p.Cell]
			if p.Features[len(p.Features)-1] != want {
				t.Fatal("prev_coverage feature mismatch")
			}
		}
	}
	if !sawPositive {
		t.Fatal("expected some positive labels")
	}
}

func TestSplitByTestYear(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 48) // 4 years: 2013–2016
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.SplitByTestYear(BaseYear+3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) == 0 || len(sp.Test) == 0 {
		t.Fatal("empty split")
	}
	for _, p := range sp.Test {
		if d.Steps[p.Step].Year != BaseYear+3 {
			t.Fatal("test point outside test year")
		}
	}
	for _, p := range sp.Train {
		if d.Steps[p.Step].Year >= BaseYear+3 {
			t.Fatal("train point leaks into test year")
		}
	}
	if _, err := d.SplitByTestYear(BaseYear+10, 3); err == nil {
		t.Fatal("expected error for missing year")
	}
}

func TestTableIStats(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 24)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := d.TableIStats("TEST")
	if s.NumCells != park.Grid.NumCells() {
		t.Fatal("cell count wrong")
	}
	if s.NumPoints == 0 || s.NumPositive == 0 {
		t.Fatal("empty stats")
	}
	if s.PctPositive <= 0 || s.PctPositive >= 100 {
		t.Fatalf("pct positive %v", s.PctPositive)
	}
	if s.AvgEffortKM <= 0 {
		t.Fatal("avg effort must be positive")
	}
	if s.NumFeatures != park.NumFeatures()+1 {
		t.Fatal("feature count wrong")
	}
}

func TestPositiveRateByEffortPercentileMonotoneTrend(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 48)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := d.AllPoints()
	percentiles := []float64{0, 20, 40, 60, 80}
	rates := PositiveRateByEffortPercentile(pts, percentiles)
	if len(rates) != len(percentiles) {
		t.Fatal("length mismatch")
	}
	// The detection model makes positives concentrate at high effort, so the
	// rate at the 80th percentile should exceed the base rate.
	if rates[4] <= rates[0] {
		t.Fatalf("positive rate should increase with effort percentile: %v", rates)
	}
	if got := PositiveRateByEffortPercentile(nil, percentiles); len(got) != len(percentiles) {
		t.Fatal("empty input should give zero-filled output")
	}
}

func TestEffortPercentileThresholds(t *testing.T) {
	pts := []Point{{Effort: 1}, {Effort: 2}, {Effort: 3}, {Effort: 4}, {Effort: 10}}
	thr := EffortPercentileThresholds(pts, 5, 80)
	if len(thr) != 5 {
		t.Fatal("wrong count")
	}
	if thr[0] != 0 {
		t.Fatal("first threshold must be 0 (full data)")
	}
	for i := 1; i < len(thr); i++ {
		if thr[i] < thr[i-1] {
			t.Fatalf("thresholds must be non-decreasing: %v", thr)
		}
	}
	if EffortPercentileThresholds(pts, 0, 80) != nil {
		t.Fatal("zero count should give nil")
	}
}

func TestLabels(t *testing.T) {
	pts := []Point{{Label: 1}, {Label: 0}, {Label: 1}}
	l := Labels(pts)
	if len(l) != 3 || l[0] != 1 || l[1] != 0 || l[2] != 1 {
		t.Fatalf("Labels = %v", l)
	}
}

func TestWritePointsCSV(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 12)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := d.AllPoints()
	var buf bytes.Buffer
	if err := d.WritePointsCSV(&buf, pts[:min(5, len(pts))]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != min(5, len(pts))+1 {
		t.Fatalf("expected header + %d rows, got %d lines", min(5, len(pts)), len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,cell,label,effort") {
		t.Fatalf("bad header: %s", lines[0])
	}
}

func TestWriteRasterCSV(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 12)
	d, err := Build(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteRasterCSV(&buf, d.Effort[0]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != park.Grid.NumCells()+1 {
		t.Fatalf("raster CSV rows = %d want %d", len(lines), park.Grid.NumCells()+1)
	}
	if err := d.WriteRasterCSV(&buf, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBuildFromEffort(t *testing.T) {
	park := testPark(t)
	h := testHistory(t, park, 12)
	d, err := BuildFromEffort(h, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(d.Steps))
	}
	// Step effort must be the exact sum of the history's true monthly effort
	// (no waypoint-reconstruction error), labels the union of detections.
	n := park.Grid.NumCells()
	for ti, st := range d.Steps {
		for cell := 0; cell < n; cell++ {
			var want float64
			for _, m := range st.Months {
				want += h.Effort[m][cell]
			}
			if math.Abs(d.Effort[ti][cell]-want) > 1e-12 {
				t.Fatalf("step %d cell %d: effort %v, true sum %v", ti, cell, d.Effort[ti][cell], want)
			}
		}
	}
	var labels int
	for ti := range d.Steps {
		for cell := 0; cell < n; cell++ {
			if d.Label[ti][cell] {
				labels++
			}
		}
	}
	if labels == 0 {
		t.Fatal("no positive labels carried over from observations")
	}
	// A waypoint-free history (the closed-loop simulator's shape) must work.
	bare := &poach.History{Park: park, Months: h.Months, Effort: h.Effort, Observations: h.Observations}
	d2, err := BuildFromEffort(bare, StandardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.AllPoints()) != len(d.AllPoints()) {
		t.Fatal("waypoint-free history built a different dataset")
	}
}
