package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WritePointsCSV writes points as CSV with a header row: step, cell, label,
// effort, then one column per feature. It is the export format consumed by
// external analyses and the cmd/pawsgen tool.
func (d *Dataset) WritePointsCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	header := []string{"step", "cell", "label", "effort"}
	header = append(header, d.FeatureNames()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(header))
	for _, p := range pts {
		row[0] = strconv.Itoa(p.Step)
		row[1] = strconv.Itoa(p.Cell)
		row[2] = strconv.Itoa(p.Label)
		row[3] = strconv.FormatFloat(p.Effort, 'g', 8, 64)
		for j, v := range p.Features {
			row[4+j] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRasterCSV writes a per-cell raster as x,y,value rows.
func (d *Dataset) WriteRasterCSV(w io.Writer, values []float64) error {
	if len(values) != d.Park.Grid.NumCells() {
		return fmt.Errorf("dataset: raster length %d want %d", len(values), d.Park.Grid.NumCells())
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "value"}); err != nil {
		return err
	}
	for id, v := range values {
		x, y := d.Park.Grid.CellXY(id)
		if err := cw.Write([]string{strconv.Itoa(x), strconv.Itoa(y), strconv.FormatFloat(v, 'g', 8, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
