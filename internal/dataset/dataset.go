// Package dataset implements the data-processing layer of the PAWS pipeline
// (Section III-B of the paper): it rebuilds per-cell patrol effort from raw
// GPS waypoint streams, discretizes history into 3-month time steps (or
// 2-month dry-season steps for SWS), assembles the feature matrix
// X ∈ R^{T×N×k} — static geospatial features plus the previous-step patrol
// coverage covariate — and binary labels y, and computes the summary
// statistics of Table I and the positive-rate-vs-effort curves of Fig. 4.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/stats"
)

// BaseYear anchors simulated month 0; the paper's studies use test years
// 2014–2016 (Uganda) and 2016–2018 (Cambodia) over six years of history.
const BaseYear = 2013

// Config controls time discretization.
type Config struct {
	// MonthsPerStep is 3 for the standard quarterly discretization and 2 for
	// the SWS dry-season processing.
	MonthsPerStep int
	// DryOnly keeps only November–April months and groups them into steps
	// within each dry season (three 2-month steps per season).
	DryOnly bool
}

// StandardConfig is the quarterly discretization used for MFNP/QENP/SWS.
func StandardConfig() Config { return Config{MonthsPerStep: 3} }

// DrySeasonConfig is the SWS dry-season discretization (Section V-A).
func DrySeasonConfig() Config { return Config{MonthsPerStep: 2, DryOnly: true} }

// Step is one discretized time interval.
type Step struct {
	Year   int   // calendar year label used for train/test splits
	Months []int // simulated month indices composing the step
}

// Dataset is the processed view of a park's history.
type Dataset struct {
	Park  *geo.Park
	Cfg   Config
	Steps []Step
	// Effort[t][cell] is patrol effort (km) rebuilt from waypoints.
	Effort [][]float64
	// Label[t][cell] reports whether rangers recorded poaching in the cell.
	Label [][]bool
}

// Point is one (cell, step) training/test example. Features hold the static
// geospatial features followed by the previous-step patrol coverage; the
// current-step effort is kept separately because iWare-E uses it for
// filtering and qualification, never as a model input (Section III-B).
type Point struct {
	Step     int
	Cell     int
	Features []float64
	Effort   float64
	Label    int
}

// Build processes a simulated history into a dataset, rebuilding per-cell
// patrol effort from the raw GPS waypoint stream (the paper's Section III-B
// pipeline — the rebuilt effort is an approximation of the true path when
// waypoints are sparse).
func Build(h *poach.History, cfg Config) (*Dataset, error) {
	// Group waypoints by month once.
	byMonth := make(map[int][]poach.Waypoint)
	for _, w := range h.Waypoints {
		byMonth[w.Month] = append(byMonth[w.Month], w)
	}
	return build(h, cfg, func(m int, dst []float64) {
		RebuildEffortInto(h.Park, byMonth[m], dst)
	})
}

// BuildFromEffort processes a history using its per-month effort maps
// directly, skipping waypoint reconstruction. The closed-loop simulator
// (internal/sim) executes patrols as effort maps rather than GPS streams, so
// its policies train on datasets built this way.
func BuildFromEffort(h *poach.History, cfg Config) (*Dataset, error) {
	return build(h, cfg, func(m int, dst []float64) {
		for id, e := range h.Effort[m] {
			dst[id] += e
		}
	})
}

// build assembles steps, accumulating each month's effort into the step
// raster via addEffort and labels from the poaching observations.
func build(h *poach.History, cfg Config, addEffort func(month int, dst []float64)) (*Dataset, error) {
	if cfg.MonthsPerStep <= 0 {
		return nil, fmt.Errorf("dataset: MonthsPerStep must be positive, got %d", cfg.MonthsPerStep)
	}
	steps := buildSteps(h.Months, cfg)
	if len(steps) == 0 {
		return nil, fmt.Errorf("dataset: no steps produced for %d months", h.Months)
	}
	d := &Dataset{Park: h.Park, Cfg: cfg, Steps: steps}
	obsByMonth := make(map[int][]poach.Observation)
	for _, o := range h.Observations {
		if o.Poaching {
			obsByMonth[o.Month] = append(obsByMonth[o.Month], o)
		}
	}
	n := h.Park.Grid.NumCells()
	for _, st := range steps {
		eff := make([]float64, n)
		lab := make([]bool, n)
		for _, m := range st.Months {
			addEffort(m, eff)
			for _, o := range obsByMonth[m] {
				lab[o.CellID] = true
			}
		}
		d.Effort = append(d.Effort, eff)
		d.Label = append(d.Label, lab)
	}
	return d, nil
}

// buildSteps maps simulated months into discretized steps.
func buildSteps(months int, cfg Config) []Step {
	var steps []Step
	if !cfg.DryOnly {
		for start := 0; start+cfg.MonthsPerStep <= months; start += cfg.MonthsPerStep {
			st := Step{Year: BaseYear + start/12}
			for m := start; m < start+cfg.MonthsPerStep; m++ {
				st.Months = append(st.Months, m)
			}
			steps = append(steps, st)
		}
		return steps
	}
	// Dry-season steps: for season ending in year y, the blocks are
	// (Nov,Dec) of y−1 and (Jan,Feb), (Mar,Apr) of y.
	years := (months + 11) / 12
	for y := 0; y <= years; y++ {
		blocks := [][]int{
			{(y-1)*12 + 10, (y-1)*12 + 11},
			{y * 12, y*12 + 1},
			{y*12 + 2, y*12 + 3},
		}
		for _, b := range blocks {
			var ms []int
			for _, m := range b {
				if m >= 0 && m < months {
					ms = append(ms, m)
				}
			}
			if len(ms) == len(b) { // only complete blocks
				steps = append(steps, Step{Year: BaseYear + y, Months: ms})
			}
		}
	}
	return steps
}

// RebuildEffortInto rasterizes straight-line trajectories between sequential
// waypoints of each patrol, accumulating km of effort per cell into dst.
// This reproduces the paper's "rebuild historical patrol effort ... by using
// sequential waypoints to calculate patrol trajectories": when waypoints are
// sparse (motorbike patrols), the rebuilt effort is an approximation of the
// true path.
func RebuildEffortInto(p *geo.Park, wps []poach.Waypoint, dst []float64) {
	if len(wps) == 0 {
		return
	}
	// Sort by patrol then sequence.
	sorted := append([]poach.Waypoint(nil), wps...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].PatrolID != sorted[b].PatrolID {
			return sorted[a].PatrolID < sorted[b].PatrolID
		}
		return sorted[a].Seq < sorted[b].Seq
	})
	const sample = 0.1 // km between trajectory samples
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if a.PatrolID != b.PatrolID {
			continue
		}
		dx, dy := b.X-a.X, b.Y-a.Y
		dist := math.Hypot(dx, dy)
		if dist == 0 {
			continue
		}
		nSamples := int(dist/sample) + 1
		per := dist / float64(nSamples)
		for s := 0; s < nSamples; s++ {
			t := (float64(s) + 0.5) / float64(nSamples)
			x, y := a.X+t*dx, a.Y+t*dy
			if id := p.Grid.CellID(int(x), int(y)); id >= 0 {
				dst[id] += per
			}
		}
	}
}

// NumFeatures returns the model feature count: static features plus the
// previous-step coverage covariate. This matches Table I's feature counts.
func (d *Dataset) NumFeatures() int { return d.Park.NumFeatures() + 1 }

// FeatureNames returns the ordered model feature names.
func (d *Dataset) FeatureNames() []string {
	out := append([]string(nil), d.Park.FeatureNames...)
	return append(out, "prev_coverage")
}

// PointsForSteps builds data points for steps in [from, to). Only patrolled
// (effort > 0) cell-steps become points; step 0 is skipped when it has no
// predecessor for the coverage covariate (its previous coverage is 0).
func (d *Dataset) PointsForSteps(from, to int) []Point {
	var pts []Point
	nf := d.Park.NumFeatures()
	for t := from; t < to && t < len(d.Steps); t++ {
		if t < 0 {
			continue
		}
		for cell, e := range d.Effort[t] {
			if e <= 0 {
				continue
			}
			f := make([]float64, nf+1)
			d.Park.FeatureVector(cell, f[:nf])
			if t > 0 {
				f[nf] = d.Effort[t-1][cell]
			}
			label := 0
			if d.Label[t][cell] {
				label = 1
			}
			pts = append(pts, Point{Step: t, Cell: cell, Features: f, Effort: e, Label: label})
		}
	}
	return pts
}

// AllPoints returns points for every step.
func (d *Dataset) AllPoints() []Point { return d.PointsForSteps(0, len(d.Steps)) }

// StepsForYear returns the step index range [from, to) whose Year == year.
func (d *Dataset) StepsForYear(year int) (from, to int) {
	from, to = -1, -1
	for i, st := range d.Steps {
		if st.Year == year {
			if from < 0 {
				from = i
			}
			to = i + 1
		}
	}
	return from, to
}

// Split holds a train/test division by calendar year.
type Split struct {
	TestYear int
	Train    []Point
	Test     []Point
}

// SplitByTestYear trains on the trainYears years preceding testYear and
// tests on testYear, mirroring the paper's protocol ("training on the first
// three years and testing on the fourth").
func (d *Dataset) SplitByTestYear(testYear, trainYears int) (Split, error) {
	testFrom, testTo := d.StepsForYear(testYear)
	if testFrom < 0 {
		return Split{}, fmt.Errorf("dataset: no steps for test year %d", testYear)
	}
	trainFrom, _ := d.StepsForYear(testYear - trainYears)
	if trainFrom < 0 {
		// Fall back to the earliest available step.
		trainFrom = 0
	}
	return Split{
		TestYear: testYear,
		Train:    d.PointsForSteps(trainFrom, testFrom),
		Test:     d.PointsForSteps(testFrom, testTo),
	}, nil
}

// Stats mirrors a column of Table I.
type Stats struct {
	Name        string
	NumFeatures int
	NumCells    int
	NumPoints   int
	NumPositive int
	PctPositive float64
	AvgEffortKM float64
}

// TableIStats computes the Table I row for this dataset.
func (d *Dataset) TableIStats(name string) Stats {
	pts := d.AllPoints()
	s := Stats{
		Name:        name,
		NumFeatures: d.NumFeatures(),
		NumCells:    d.Park.Grid.NumCells(),
		NumPoints:   len(pts),
	}
	var effSum float64
	for _, p := range pts {
		if p.Label == 1 {
			s.NumPositive++
		}
		effSum += p.Effort
	}
	if len(pts) > 0 {
		s.PctPositive = 100 * float64(s.NumPositive) / float64(len(pts))
		s.AvgEffortKM = effSum / float64(len(pts))
	}
	return s
}

// PositiveRateByEffortPercentile computes Fig. 4's series: for each effort
// percentile threshold, the percentage of positive labels among points whose
// effort is at least that percentile of the point-effort distribution.
func PositiveRateByEffortPercentile(pts []Point, percentiles []float64) []float64 {
	if len(pts) == 0 {
		return make([]float64, len(percentiles))
	}
	efforts := make([]float64, len(pts))
	for i, p := range pts {
		efforts[i] = p.Effort
	}
	sort.Float64s(efforts)
	out := make([]float64, len(percentiles))
	for k, pct := range percentiles {
		thr := stats.PercentileSorted(efforts, pct)
		var pos, tot int
		for _, p := range pts {
			if p.Effort >= thr {
				tot++
				if p.Label == 1 {
					pos++
				}
			}
		}
		if tot > 0 {
			out[k] = 100 * float64(pos) / float64(tot)
		}
	}
	return out
}

// EffortPercentileThresholds returns the effort values at I evenly spaced
// percentiles from 0 to pMax over the training points — the paper's
// enhancement of selecting iWare-E thresholds by percentile so every weak
// learner sees a consistent amount of data (Section IV).
func EffortPercentileThresholds(pts []Point, count int, pMax float64) []float64 {
	if count <= 0 {
		return nil
	}
	efforts := make([]float64, len(pts))
	for i, p := range pts {
		efforts[i] = p.Effort
	}
	sort.Float64s(efforts)
	out := make([]float64, count)
	for i := 0; i < count; i++ {
		var pct float64
		if count > 1 {
			pct = pMax * float64(i) / float64(count-1)
		}
		out[i] = stats.PercentileSorted(efforts, pct)
	}
	// Thresholds must be non-decreasing and start at 0 so the first learner
	// sees the full dataset.
	if len(out) > 0 {
		out[0] = 0
	}
	return out
}

// Labels extracts the label vector of a point slice.
func Labels(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Label
	}
	return out
}
