// Package dataset implements the data-processing layer of the PAWS pipeline
// (Section III-B of the paper): it rebuilds per-cell patrol effort from raw
// GPS waypoint streams, discretizes history into 3-month time steps (or
// 2-month dry-season steps for SWS), assembles the feature matrix
// X ∈ R^{T×N×k} — static geospatial features plus the previous-step patrol
// coverage covariate — and binary labels y, and computes the summary
// statistics of Table I and the positive-rate-vs-effort curves of Fig. 4.
//
// The layout is columnar: waypoints stream into the per-step effort and
// label rasters one month at a time, every T×N raster shares a single
// contiguous backing allocation, and feature vectors are views into one flat
// row-major matrix. Builds therefore stay cache-friendly and
// allocation-light up to million-cell parks (see BENCH_scale.json) without
// changing any output byte.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/stats"
)

// BaseYear anchors simulated month 0; the paper's studies use test years
// 2014–2016 (Uganda) and 2016–2018 (Cambodia) over six years of history.
const BaseYear = 2013

// Config controls time discretization.
type Config struct {
	// MonthsPerStep is 3 for the standard quarterly discretization and 2 for
	// the SWS dry-season processing.
	MonthsPerStep int
	// DryOnly keeps only November–April months and groups them into steps
	// within each dry season (three 2-month steps per season).
	DryOnly bool
}

// StandardConfig is the quarterly discretization used for MFNP/QENP/SWS.
func StandardConfig() Config { return Config{MonthsPerStep: 3} }

// DrySeasonConfig is the SWS dry-season discretization (Section V-A).
func DrySeasonConfig() Config { return Config{MonthsPerStep: 2, DryOnly: true} }

// Step is one discretized time interval.
type Step struct {
	Year   int   // calendar year label used for train/test splits
	Months []int // simulated month indices composing the step
}

// Dataset is the processed view of a park's history. Its per-step rasters
// are views into two flat T×N backing arrays (one float64 block for effort,
// one bool block for labels) — the columnar layout that keeps 10^6-cell
// parks to a handful of allocations instead of one per step.
type Dataset struct {
	Park  *geo.Park
	Cfg   Config
	Steps []Step
	// Effort[t][cell] is patrol effort (km) rebuilt from waypoints. Rows are
	// contiguous slices of one backing array, in step order.
	Effort [][]float64
	// Label[t][cell] reports whether rangers recorded poaching in the cell.
	// Rows share one backing array like Effort.
	Label [][]bool
}

// Point is one (cell, step) training/test example. Features hold the static
// geospatial features followed by the previous-step patrol coverage; the
// current-step effort is kept separately because iWare-E uses it for
// filtering and qualification, never as a model input (Section III-B).
type Point struct {
	Step     int
	Cell     int
	Features []float64
	Effort   float64
	Label    int
}

// Build processes a simulated history into a dataset, rebuilding per-cell
// patrol effort from the raw GPS waypoint stream (the paper's Section III-B
// pipeline — the rebuilt effort is an approximation of the true path when
// waypoints are sparse). The waypoint stream is consumed in contiguous
// per-month chunks: histories recorded in month order (every simulator in
// this repo) are sliced in place with no copying or map regrouping, and
// unordered streams are grouped once by a stable counting sort — either way
// each month's chunk streams through RebuildEffortInto in recording order,
// so the rebuilt rasters are identical to the historical per-map grouping.
func Build(h *poach.History, cfg Config) (*Dataset, error) {
	wps, off := groupWaypointsByMonth(h.Waypoints, h.Months)
	return build(h, cfg, func(m int, dst []float64) {
		if m >= 0 && m < len(off)-1 {
			RebuildEffortInto(h.Park, wps[off[m]:off[m+1]], dst)
		}
	})
}

// groupWaypointsByMonth returns the waypoint stream arranged so that the
// waypoints of month m occupy wps[off[m]:off[m+1]], preserving recording
// order within each month. A stream already sorted by month — the layout
// every simulator in this repo produces — is returned as-is (a view, no
// copy); otherwise one stable counting-sort pass builds the arrangement.
// Waypoints with months outside [0, months) are dropped, matching the old
// map grouping (steps never query out-of-range months).
func groupWaypointsByMonth(stream []poach.Waypoint, months int) (wps []poach.Waypoint, off []int) {
	counts := make([]int, months+1)
	sorted := true
	prev := 0
	inRange := 0
	for _, w := range stream {
		if w.Month < prev {
			sorted = false
		}
		prev = w.Month
		if w.Month >= 0 && w.Month < months {
			counts[w.Month]++
			inRange++
		}
	}
	off = make([]int, months+1)
	for m := 0; m < months; m++ {
		off[m+1] = off[m] + counts[m]
	}
	if sorted && inRange == len(stream) {
		return stream, off
	}
	wps = make([]poach.Waypoint, inRange)
	next := append([]int(nil), off[:months]...)
	for _, w := range stream {
		if w.Month >= 0 && w.Month < months {
			wps[next[w.Month]] = w
			next[w.Month]++
		}
	}
	return wps, off
}

// BuildFromEffort processes a history using its per-month effort maps
// directly, skipping waypoint reconstruction. The closed-loop simulator
// (internal/sim) executes patrols as effort maps rather than GPS streams, so
// its policies train on datasets built this way.
func BuildFromEffort(h *poach.History, cfg Config) (*Dataset, error) {
	return build(h, cfg, func(m int, dst []float64) {
		for id, e := range h.Effort[m] {
			dst[id] += e
		}
	})
}

// build assembles steps, accumulating each month's effort into the step
// raster via addEffort and labels from the poaching observations. The
// per-step effort and label rasters are carved out of two single T×N backing
// allocations, and each step streams its months through the shared raster —
// the chunked accumulation that replaces per-step makes and map lookups.
func build(h *poach.History, cfg Config, addEffort func(month int, dst []float64)) (*Dataset, error) {
	if cfg.MonthsPerStep <= 0 {
		return nil, fmt.Errorf("dataset: MonthsPerStep must be positive, got %d", cfg.MonthsPerStep)
	}
	steps := buildSteps(h.Months, cfg)
	if len(steps) == 0 {
		return nil, fmt.Errorf("dataset: no steps produced for %d months", h.Months)
	}
	d := &Dataset{Park: h.Park, Cfg: cfg, Steps: steps}
	// Month-slice the observation stream when it is already month-sorted
	// (simulated histories always are); fall back to a map grouping only for
	// unordered streams.
	obsOff, obsSorted := observationOffsets(h.Observations, h.Months)
	var obsByMonth map[int][]poach.Observation
	if !obsSorted {
		obsByMonth = make(map[int][]poach.Observation)
		for _, o := range h.Observations {
			if o.Poaching {
				obsByMonth[o.Month] = append(obsByMonth[o.Month], o)
			}
		}
	}
	n := h.Park.Grid.NumCells()
	T := len(steps)
	effBack := make([]float64, T*n)
	labBack := make([]bool, T*n)
	d.Effort = make([][]float64, T)
	d.Label = make([][]bool, T)
	for t, st := range steps {
		eff := effBack[t*n : (t+1)*n : (t+1)*n]
		lab := labBack[t*n : (t+1)*n : (t+1)*n]
		for _, m := range st.Months {
			addEffort(m, eff)
			if obsSorted {
				if m >= 0 && m < len(obsOff)-1 {
					for _, o := range h.Observations[obsOff[m]:obsOff[m+1]] {
						if o.Poaching {
							lab[o.CellID] = true
						}
					}
				}
				continue
			}
			for _, o := range obsByMonth[m] {
				lab[o.CellID] = true
			}
		}
		d.Effort[t] = eff
		d.Label[t] = lab
	}
	return d, nil
}

// observationOffsets reports whether the observation stream is sorted by
// month with all months in [0, months), and if so returns offsets such that
// month m's observations (poaching and other, unfiltered) live at
// obs[off[m]:off[m+1]].
func observationOffsets(obs []poach.Observation, months int) (off []int, sorted bool) {
	counts := make([]int, months+1)
	prev := 0
	for _, o := range obs {
		if o.Month < prev || o.Month >= months {
			return nil, false
		}
		prev = o.Month
		counts[o.Month]++
	}
	off = make([]int, months+1)
	for m := 0; m < months; m++ {
		off[m+1] = off[m] + counts[m]
	}
	return off, true
}

// buildSteps maps simulated months into discretized steps.
func buildSteps(months int, cfg Config) []Step {
	var steps []Step
	if !cfg.DryOnly {
		for start := 0; start+cfg.MonthsPerStep <= months; start += cfg.MonthsPerStep {
			st := Step{Year: BaseYear + start/12}
			for m := start; m < start+cfg.MonthsPerStep; m++ {
				st.Months = append(st.Months, m)
			}
			steps = append(steps, st)
		}
		return steps
	}
	// Dry-season steps: for season ending in year y, the blocks are
	// (Nov,Dec) of y−1 and (Jan,Feb), (Mar,Apr) of y.
	years := (months + 11) / 12
	for y := 0; y <= years; y++ {
		blocks := [][]int{
			{(y-1)*12 + 10, (y-1)*12 + 11},
			{y * 12, y*12 + 1},
			{y*12 + 2, y*12 + 3},
		}
		for _, b := range blocks {
			var ms []int
			for _, m := range b {
				if m >= 0 && m < months {
					ms = append(ms, m)
				}
			}
			if len(ms) == len(b) { // only complete blocks
				steps = append(steps, Step{Year: BaseYear + y, Months: ms})
			}
		}
	}
	return steps
}

// RebuildEffortInto rasterizes straight-line trajectories between sequential
// waypoints of each patrol, accumulating km of effort per cell into dst.
// This reproduces the paper's "rebuild historical patrol effort ... by using
// sequential waypoints to calculate patrol trajectories": when waypoints are
// sparse (motorbike patrols), the rebuilt effort is an approximation of the
// true path.
func RebuildEffortInto(p *geo.Park, wps []poach.Waypoint, dst []float64) {
	if len(wps) == 0 {
		return
	}
	// Sort by patrol then sequence.
	sorted := append([]poach.Waypoint(nil), wps...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].PatrolID != sorted[b].PatrolID {
			return sorted[a].PatrolID < sorted[b].PatrolID
		}
		return sorted[a].Seq < sorted[b].Seq
	})
	const sample = 0.1 // km between trajectory samples
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if a.PatrolID != b.PatrolID {
			continue
		}
		dx, dy := b.X-a.X, b.Y-a.Y
		dist := math.Hypot(dx, dy)
		if dist == 0 {
			continue
		}
		nSamples := int(dist/sample) + 1
		per := dist / float64(nSamples)
		for s := 0; s < nSamples; s++ {
			t := (float64(s) + 0.5) / float64(nSamples)
			x, y := a.X+t*dx, a.Y+t*dy
			if id := p.Grid.CellID(int(x), int(y)); id >= 0 {
				dst[id] += per
			}
		}
	}
}

// NumFeatures returns the model feature count: static features plus the
// previous-step coverage covariate. This matches Table I's feature counts.
func (d *Dataset) NumFeatures() int { return d.Park.NumFeatures() + 1 }

// FeatureNames returns the ordered model feature names.
func (d *Dataset) FeatureNames() []string {
	out := append([]string(nil), d.Park.FeatureNames...)
	return append(out, "prev_coverage")
}

// PointsForSteps builds data points for steps in [from, to). Only patrolled
// (effort > 0) cell-steps become points; step 0 is skipped when it has no
// predecessor for the coverage covariate (its previous coverage is 0).
//
// The feature matrix is assembled columnar: one counting pass sizes a single
// flat backing array of stride NumFeatures(), then each Point.Features is
// filled in place as a view into it — no per-point slice allocation. Callers
// therefore must not grow a point's feature slice; reading and element
// writes behave exactly as before.
func (d *Dataset) PointsForSteps(from, to int) []Point {
	nf := d.Park.NumFeatures()
	lo := from
	if lo < 0 {
		lo = 0
	}
	hi := to
	if hi > len(d.Steps) {
		hi = len(d.Steps)
	}
	count := 0
	for t := lo; t < hi; t++ {
		for _, e := range d.Effort[t] {
			if e > 0 {
				count++
			}
		}
	}
	pts := make([]Point, 0, count)
	stride := nf + 1
	back := make([]float64, count*stride)
	k := 0
	for t := lo; t < hi; t++ {
		for cell, e := range d.Effort[t] {
			if e <= 0 {
				continue
			}
			f := back[k*stride : (k+1)*stride : (k+1)*stride]
			k++
			d.Park.FeatureVector(cell, f[:nf])
			if t > 0 {
				f[nf] = d.Effort[t-1][cell]
			}
			label := 0
			if d.Label[t][cell] {
				label = 1
			}
			pts = append(pts, Point{Step: t, Cell: cell, Features: f, Effort: e, Label: label})
		}
	}
	return pts
}

// AllPoints returns points for every step.
func (d *Dataset) AllPoints() []Point { return d.PointsForSteps(0, len(d.Steps)) }

// StepsForYear returns the step index range [from, to) whose Year == year.
func (d *Dataset) StepsForYear(year int) (from, to int) {
	from, to = -1, -1
	for i, st := range d.Steps {
		if st.Year == year {
			if from < 0 {
				from = i
			}
			to = i + 1
		}
	}
	return from, to
}

// Split holds a train/test division by calendar year.
type Split struct {
	TestYear int
	Train    []Point
	Test     []Point
}

// SplitByTestYear trains on the trainYears years preceding testYear and
// tests on testYear, mirroring the paper's protocol ("training on the first
// three years and testing on the fourth").
func (d *Dataset) SplitByTestYear(testYear, trainYears int) (Split, error) {
	testFrom, testTo := d.StepsForYear(testYear)
	if testFrom < 0 {
		return Split{}, fmt.Errorf("dataset: no steps for test year %d", testYear)
	}
	trainFrom, _ := d.StepsForYear(testYear - trainYears)
	if trainFrom < 0 {
		// Fall back to the earliest available step.
		trainFrom = 0
	}
	return Split{
		TestYear: testYear,
		Train:    d.PointsForSteps(trainFrom, testFrom),
		Test:     d.PointsForSteps(testFrom, testTo),
	}, nil
}

// Stats mirrors a column of Table I.
type Stats struct {
	Name        string
	NumFeatures int
	NumCells    int
	NumPoints   int
	NumPositive int
	PctPositive float64
	AvgEffortKM float64
}

// TableIStats computes the Table I row for this dataset.
func (d *Dataset) TableIStats(name string) Stats {
	pts := d.AllPoints()
	s := Stats{
		Name:        name,
		NumFeatures: d.NumFeatures(),
		NumCells:    d.Park.Grid.NumCells(),
		NumPoints:   len(pts),
	}
	var effSum float64
	for _, p := range pts {
		if p.Label == 1 {
			s.NumPositive++
		}
		effSum += p.Effort
	}
	if len(pts) > 0 {
		s.PctPositive = 100 * float64(s.NumPositive) / float64(len(pts))
		s.AvgEffortKM = effSum / float64(len(pts))
	}
	return s
}

// PositiveRateByEffortPercentile computes Fig. 4's series: for each effort
// percentile threshold, the percentage of positive labels among points whose
// effort is at least that percentile of the point-effort distribution.
func PositiveRateByEffortPercentile(pts []Point, percentiles []float64) []float64 {
	if len(pts) == 0 {
		return make([]float64, len(percentiles))
	}
	efforts := make([]float64, len(pts))
	for i, p := range pts {
		efforts[i] = p.Effort
	}
	sort.Float64s(efforts)
	out := make([]float64, len(percentiles))
	for k, pct := range percentiles {
		thr := stats.PercentileSorted(efforts, pct)
		var pos, tot int
		for _, p := range pts {
			if p.Effort >= thr {
				tot++
				if p.Label == 1 {
					pos++
				}
			}
		}
		if tot > 0 {
			out[k] = 100 * float64(pos) / float64(tot)
		}
	}
	return out
}

// EffortPercentileThresholds returns the effort values at I evenly spaced
// percentiles from 0 to pMax over the training points — the paper's
// enhancement of selecting iWare-E thresholds by percentile so every weak
// learner sees a consistent amount of data (Section IV).
func EffortPercentileThresholds(pts []Point, count int, pMax float64) []float64 {
	if count <= 0 {
		return nil
	}
	efforts := make([]float64, len(pts))
	for i, p := range pts {
		efforts[i] = p.Effort
	}
	sort.Float64s(efforts)
	out := make([]float64, count)
	for i := 0; i < count; i++ {
		var pct float64
		if count > 1 {
			pct = pMax * float64(i) / float64(count-1)
		}
		out[i] = stats.PercentileSorted(efforts, pct)
	}
	// Thresholds must be non-decreasing and start at 0 so the first learner
	// sees the full dataset.
	if len(out) > 0 {
		out[0] = 0
	}
	return out
}

// Labels extracts the label vector of a point slice.
func Labels(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Label
	}
	return out
}
