// Package rng provides deterministic, splittable pseudo-random streams so
// that every experiment in the reproduction is bit-for-bit repeatable. Each
// subsystem derives its own independent sub-stream from a root seed and a
// string label, so adding randomness to one component never perturbs another.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG wraps math/rand with convenience samplers used across the pipeline.
// Streams are hierarchical: Split derives an independent child stream keyed
// by a label, without consuming the parent stream.
type RNG struct {
	*rand.Rand
	seed int64
}

// New returns a deterministic root RNG seeded with seed.
func New(seed int64) *RNG {
	//pawsvet:allow globalrand -- this package is the sanctioned derivation root every other stream splits from
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this stream was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent sub-stream keyed by label. Streams with
// distinct labels are decorrelated and the parent stream is not consumed,
// so adding randomness to one component never perturbs another.
func (r *RNG) Split(label string) *RNG {
	return New(deriveSeed(r.seed, label))
}

func deriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a sample from N(mu, sigma²).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// IntRange returns a uniform integer in [lo, hi); it returns lo when the
// interval is empty.
func (r *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo)
}

// SampleWithoutReplacement draws k distinct indices from [0, n). If k ≥ n it
// returns a permutation of all n indices.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Gamma samples a Gamma(shape, 1) variate by the Marsaglia–Tsang squeeze
// method, with the standard U^(1/shape) boost for shape < 1. Non-positive
// shapes return 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) · U^{1/k}; reject U = 0 so the power is
		// finite.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples a Beta(a, b) variate as Gamma(a)/(Gamma(a)+Gamma(b)).
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Poisson samples a Poisson(lambda) variate by Knuth's method for small
// lambda and a rounded normal approximation for large lambda.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
