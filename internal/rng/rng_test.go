package rng

import (
	"fmt"
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(1)
	a := root.Split("alpha")
	b := root.Split("beta")
	// Different labels must give different streams (overwhelmingly likely).
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("split streams with different labels are identical")
	}
	// Same label from a fresh root must reproduce.
	c := New(1).Split("alpha")
	d := New(1).Split("alpha")
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("split streams with same label differ")
		}
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a := New(5)
	first := a.Float64()
	b := New(5)
	_ = b.Split("x")
	if b.Float64() != first {
		t.Fatal("Split must not consume the parent stream")
	}
}

func TestSplitHierarchical(t *testing.T) {
	r := New(9)
	ab := r.Split("a").Split("b")
	ba := r.Split("b").Split("a")
	if ab.Float64() == ba.Float64() {
		t.Fatal("hierarchical splits should depend on order")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(11)
	const n = 20000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("mean = %v want 2", mean)
	}
	if math.Abs(variance-9) > 0.5 {
		t.Fatalf("variance = %v want 9", variance)
	}
}

func TestIntRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if r.IntRange(5, 5) != 5 {
		t.Fatal("empty range should return lo")
	}
	if r.IntRange(5, 2) != 5 {
		t.Fatal("inverted range should return lo")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(19)
	got := r.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	all := r.SampleWithoutReplacement(5, 10)
	if len(all) != 5 {
		t.Fatalf("k>n should return n items, got %d", len(all))
	}
}

func TestPoisson(t *testing.T) {
	r := New(23)
	if r.Poisson(0) != 0 || r.Poisson(-2) != 0 {
		t.Fatal("Poisson with lambda<=0 should be 0")
	}
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(4))
	}
	if mean := sum / n; math.Abs(mean-4) > 0.15 {
		t.Fatalf("Poisson mean = %v want 4", mean)
	}
	// Large-lambda branch.
	var sumL float64
	for i := 0; i < 5000; i++ {
		sumL += float64(r.Poisson(100))
	}
	if mean := sumL / 5000; math.Abs(mean-100) > 2 {
		t.Fatalf("Poisson(100) mean = %v", mean)
	}
}

func TestSeed(t *testing.T) {
	if New(77).Seed() != 77 {
		t.Fatal("Seed not recorded")
	}
}

// TestDeriveSeedLabelCollisions: the split labels actually used across the
// tree — fixed subsystem labels plus instances of the parameterized
// families (per-month draws, per-policy-season streams, campaign bootstrap
// streams) — must derive pairwise-distinct seeds from one root. A collision
// would silently correlate two "independent" streams, e.g. one simulated
// month's draws with another's, the exact failure common-random-number
// pairing cannot tolerate.
func TestDeriveSeedLabelCollisions(t *testing.T) {
	labels := []string{
		// Fixed subsystem labels.
		"randsim", "patrols", "attacks", "observations",
		"select", "effort", "robust", "blind",
		"randpark", "mask", "rivers", "roads", "villages", "posts",
		"folds", "cv-seeds",
	}
	for m := 0; m < 120; m++ {
		labels = append(labels, fmt.Sprintf("sim-month:%d", m))
	}
	for _, policy := range []string{"paws", "uniform", "historical", "random"} {
		for s := 0; s < 12; s++ {
			labels = append(labels, fmt.Sprintf("policy:%s:season:%d", policy, s))
		}
	}
	for _, park := range []string{"MFNP", "QENP", "SWS", "rand:16"} {
		for _, policy := range []string{"paws", "historical", "random"} {
			labels = append(labels, fmt.Sprintf("campaign-bootstrap:%s:%s:uniform", park, policy))
		}
	}
	for _, seed := range []int64{0, 1, 7, -42, 1 << 40} {
		seen := map[int64]string{}
		for _, label := range labels {
			d := deriveSeed(seed, label)
			if prev, ok := seen[d]; ok {
				t.Fatalf("seed %d: labels %q and %q derive the same stream seed %d", seed, prev, label, d)
			}
			seen[d] = label
		}
	}
}
