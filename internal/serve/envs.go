package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"paws"
	"paws/internal/env"
	"paws/internal/obs"
)

// This file is the remote environment surface: stepped /v1/envs sessions
// over the env.Manager, mirroring the async-job conventions — structured
// error envelopes, replica-prefixed IDs the gate routes by, admission
// control with 429 + Retry-After, and drain-aware errors after Close.
//
//	POST   /v1/envs           — create a session (park spec, seed, seasons,
//	                            budget); returns the session + the full
//	                            bootstrap observation
//	POST   /v1/envs/{id}/step — execute one season of a per-cell effort
//	                            allocation; returns stats + the record delta
//	GET    /v1/envs/{id}      — session snapshot
//	DELETE /v1/envs/{id}      — drop the session
//
// The wire schema lives in internal/env (shared with the env.Client
// Stepper), so a remote episode is byte-identical to a local env.Env run.

// CodeUnknownEnv is the structured code for missing env sessions.
const CodeUnknownEnv = "unknown_env"

// envErrorStatus classifies env-session errors; everything else falls
// through to the shared errorStatus.
func envErrorStatus(err error) (int, string, bool) {
	switch {
	case errors.Is(err, env.ErrUnknownSession):
		return http.StatusNotFound, CodeUnknownEnv, true
	case errors.Is(err, env.ErrDone):
		return http.StatusConflict, CodeConflict, true
	case errors.Is(err, env.ErrShuttingDown):
		return http.StatusServiceUnavailable, CodeShuttingDown, true
	}
	return 0, "", false
}

func (s *Server) handleEnvCreate(w http.ResponseWriter, r *http.Request) {
	var req env.CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Seasons > maxSimSeasons {
		writeErr(w, fmt.Errorf("seasons %d exceeds the limit of %d", req.Seasons, maxSimSeasons))
		return
	}
	if req.SeasonMonths > maxSimSeasonMonths {
		writeErr(w, fmt.Errorf("season_months %d exceeds the limit of %d", req.SeasonMonths, maxSimSeasonMonths))
		return
	}
	if req.Park != "" {
		if err := paws.ValidateParkSpec(req.Park); err != nil {
			writeErr(w, err)
			return
		}
	}
	cfg := paws.EnvConfig{
		Park:            req.Park,
		Seasons:         req.Seasons,
		SeasonMonths:    req.SeasonMonths,
		BootstrapMonths: req.BootstrapMonths,
		BudgetKM:        req.BudgetKM,
	}
	cfg.Attacker.Kind = req.Attacker
	// Full library-level validation before the (expensive) bootstrap, so a
	// typo'd request fails as a structured 400 up front.
	if err := cfg.Validate(); err != nil {
		writeErr(w, err)
		return
	}
	// No request context is threaded into the build: the bootstrap
	// simulation is quick CPU work and the session must outlive the create
	// request anyway (TimeoutMS still bounds the HTTP exchange client-side).
	var opts []paws.Option
	if req.Seed != 0 {
		opts = append(opts, paws.WithSeed(req.Seed))
	}
	e, err := s.svc.NewEnv(cfg, opts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, err := s.envs.Create(e)
	if err != nil {
		if errors.Is(err, env.ErrCapacity) {
			// Admission control: shed the session with a Retry-After hint
			// (the soonest idle-TTL expiry) instead of growing without bound.
			s.metrics.envsShed.Inc()
			err = &overloadedError{retryAfter: s.envs.RetryAfter(), msg: fmt.Sprintf(
				"replica %s: %v", replicaLabel(s.cfg.ReplicaID), err)}
		}
		writeEnvErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, env.CreateResponse{Session: snap, Obs: env.FullWire(e.Obs())})
}

func (s *Server) handleEnvStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req env.StepRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	endStep := obs.StartSpan(ctx, "step", id)
	o, stats, done, err := s.envs.Step(ctx, id, req.Effort)
	endStep()
	if err != nil {
		writeEnvErr(w, err)
		return
	}
	s.metrics.envSteps.Observe(time.Since(start).Seconds())
	snap, err := s.envs.Get(id)
	if err != nil {
		writeEnvErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, env.StepResponse{
		Session: snap,
		Stats:   stats,
		Done:    done,
		Delta:   env.DeltaWire(o, stats.StartMonth),
	})
}

func (s *Server) handleEnvGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.envs.Get(r.PathValue("id"))
	if err != nil {
		writeEnvErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleEnvDelete(w http.ResponseWriter, r *http.Request) {
	snap, err := s.envs.Remove(r.PathValue("id"))
	if err != nil {
		writeEnvErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, env.DeleteResponse{Session: snap})
}

// writeEnvErr renders env-session errors (unknown session, done episode,
// draining manager) with their specific codes, delegating everything else
// to the shared writeErr.
func writeEnvErr(w http.ResponseWriter, err error) {
	if status, code, ok := envErrorStatus(err); ok {
		writeJSON(w, status, errorResponse{Error: ErrorDetail{
			Code:    code,
			Message: err.Error(),
			TraceID: w.Header().Get(obs.TraceHeader),
		}})
		return
	}
	writeErr(w, err)
}
