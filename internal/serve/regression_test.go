package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"paws/internal/job"
)

// TestRiskMapFreshAfterRetrain is the cache-staleness regression test for
// model re-registration: train a model via the job API, query its risk map
// (populating the LRU), retrain a *different* model under the same name,
// and query again. The second response must not be served from the cache
// and must differ from the first — the cache key includes the registry
// generation, which every registration bumps, so entries computed from a
// prior generation can never be replayed for the new model.
func TestRiskMapFreshAfterRetrain(t *testing.T) {
	s := testServer(t, Config{})
	train := func(seed int64) {
		t.Helper()
		snap := submitJob(t, s, JobSubmitRequest{Kind: "train", Train: &TrainJobRequest{
			Name:       "regen",
			Park:       "rand:16",
			Kind:       "DTB-iW",
			Seed:       seed,
			Thresholds: 3,
			Members:    3,
		}})
		if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
			t.Fatalf("train(seed=%d) ended %s: %+v", seed, final.State, final)
		}
	}
	riskmap := func() RiskMapResponse {
		t.Helper()
		var resp RiskMapResponse
		status, raw := do(t, s, http.MethodGet, "/v1/riskmap?model=regen&effort=2.0", nil, &resp)
		if status != http.StatusOK {
			t.Fatalf("riskmap: status %d, body %s", status, raw)
		}
		return resp
	}

	train(3)
	first := riskmap()
	if first.Cached {
		t.Fatal("first riskmap claims to be cached")
	}
	// Same model, same effort: the LRU now answers.
	if again := riskmap(); !again.Cached {
		t.Fatal("repeat riskmap before retraining missed the cache")
	}

	train(4) // re-registers "regen" with a different model
	second := riskmap()
	if second.Cached {
		t.Fatal("riskmap after retraining was served from the stale cache entry")
	}
	same := len(first.Risk) == len(second.Risk)
	if same {
		for i := range first.Risk {
			if first.Risk[i] != second.Risk[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("riskmap after retraining is identical to the prior generation's map")
	}
	// And the fresh generation's map is itself cached now.
	if again := riskmap(); !again.Cached {
		t.Fatal("repeat riskmap after retraining missed the cache")
	}
}

// TestSimulateJobSubmitValidation: the async simulate kind rejects invalid
// configurations at submit time with a structured 400 — the same fail-fast
// contract as the campaign kind — instead of accepting a doomed job.
func TestSimulateJobSubmitValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		name string
		req  SimulateRequest
	}{
		{"negative seasons", SimulateRequest{Seasons: -3}},
		{"negative season months", SimulateRequest{SeasonMonths: -1}},
		{"negative budget", SimulateRequest{BudgetKM: -5}},
		{"unknown policy", SimulateRequest{Policies: []string{"uniform", "skynet"}}},
		{"duplicate policy", SimulateRequest{Policies: []string{"uniform", "uniform"}}},
		{"unknown attacker", SimulateRequest{Attacker: "quantum"}},
		{"beta out of range", SimulateRequest{Beta: 1.5}},
	}
	for _, tc := range cases {
		req := tc.req
		status, raw := do(t, s, http.MethodPost, "/v1/jobs", JobSubmitRequest{Kind: "simulate", Simulate: &req}, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, status, raw)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error.Code != CodeBadRequest {
			t.Errorf("%s: envelope %s", tc.name, raw)
		}
	}
	var list jobListResponse
	if status, _ := do(t, s, http.MethodGet, "/v1/jobs", nil, &list); status != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("rejected submissions left jobs: %+v", list.Jobs)
	}
}

// streamEvents fetches /events?from=N against a terminal job and returns
// the decoded lines.
func streamEvents(t *testing.T, s *Server, id string, from int) []job.Event {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/jobs/%s/events?from=%d", id, from), nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("events?from=%d: status %d, body %s", from, rec.Code, rec.Body.Bytes())
	}
	var evs []job.Event
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		var e job.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestJobEventsResumeBoundary is the ?from=N off-by-one audit against a
// drained job: for every split point k of the full stream, a client that
// received events 0..k−1 and resumes at from=k must get exactly events
// k..n−1 — no duplicate of event k−1, no dropped event k. The boundary
// cases from=n (fully caught up) and from=n+1 (beyond the end) must
// terminate with an empty stream rather than hang or error.
func TestJobEventsResumeBoundary(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: fastSim(2)})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("job ended %s", final.State)
	}
	full := streamEvents(t, s, snap.ID, 0)
	n := len(full)
	if n < 4 {
		t.Fatalf("drained job produced only %d events", n)
	}
	for i, e := range full {
		if e.Seq != i {
			t.Fatalf("full stream event %d has seq %d", i, e.Seq)
		}
	}
	for k := 0; k <= n+1; k++ {
		tail := streamEvents(t, s, snap.ID, k)
		wantLen := n - k
		if wantLen < 0 {
			wantLen = 0
		}
		if len(tail) != wantLen {
			t.Fatalf("from=%d returned %d events, want %d", k, len(tail), wantLen)
		}
		for i, e := range tail {
			if e != full[k+i] {
				t.Fatalf("from=%d event %d = %+v, want %+v", k, i, e, full[k+i])
			}
		}
	}
}
