package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"paws"
	"paws/internal/campaign"
	"paws/internal/job"
)

// This file is the HTTP surface of the async job layer: submission of the
// five job kinds (simulate, campaign, train, table2, riskmap), snapshots, the
// replayable NDJSON progress stream, results and cancellation. Each kind
// validates its parameters at submit time — malformed requests, unknown
// park specs and unregistered models fail fast with the structured error
// envelope (400/404) instead of a job that is doomed to fail — and lowers
// to a job.Fn whose result is exactly the response struct the synchronous
// counterpart writes, which is what makes async results byte-identical to
// the blocking endpoints.

// progressPublisher bridges the compute layers' typed ProgressEvents into
// a job's event stream.
func progressPublisher(publish func(job.Event)) paws.ProgressFunc {
	return func(e paws.ProgressEvent) {
		publish(job.Event{Stage: e.Stage, Item: e.Item, Current: e.Current, Total: e.Total})
	}
}

// withTimeout bounds an async job's runtime (the job analogue of a sync
// request's timeout_ms). ms <= 0 leaves the job unbounded.
func withTimeout(fn job.Fn, ms int) job.Fn {
	if ms <= 0 {
		return fn
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
		return fn(ctx, publish)
	}
}

// ------------------------------------------------------------- job kinds

// TrainJobRequest asks for a model to be trained and registered: generate
// the park scenario, fit the configured kind on the pre-test-year window,
// and register the result under Name — after which /v1/predict, riskmap
// and plan answer against it (remote train→serve).
type TrainJobRequest struct {
	// Name registers the trained model in the Service registry (required;
	// re-registering a name replaces the entry).
	Name string `json:"name"`
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed> (default MFNP).
	Park string `json:"park,omitempty"`
	// Scale is "small" or "full" (default small).
	Scale string `json:"scale,omitempty"`
	// Kind is the Table II model kind (default DTB-iW).
	Kind string `json:"kind,omitempty"`
	// Seed overrides the service-wide root seed (0 keeps the default).
	Seed int64 `json:"seed,omitempty"`
	// TrainYears is the training window before the final simulated year
	// (default 3).
	TrainYears int `json:"train_years,omitempty"`
	// Optional training overrides (0 keeps the park preset's values).
	Thresholds int `json:"thresholds,omitempty"`
	Members    int `json:"members,omitempty"`
	CVFolds    int `json:"cv_folds,omitempty"`
	// TimeoutMS bounds the job's runtime (0 = unbounded).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// TrainJobResponse reports the registered model and its held-out quality.
type TrainJobResponse struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Park        string  `json:"park"`
	Scale       string  `json:"scale"`
	TestYear    int     `json:"test_year"`
	TrainPoints int     `json:"train_points"`
	AUC         float64 `json:"auc"`
	FeatureDim  int     `json:"feature_dim"`
	Generation  uint64  `json:"generation"`
	// Hash and StoreGeneration identify the published artifact in the shared
	// fleet store (set only when the server has a store attached).
	Hash            string `json:"hash,omitempty"`
	StoreGeneration uint64 `json:"store_generation,omitempty"`
}

// trainFn validates a train request and lowers it to a job function.
func (s *Server) trainFn(req TrainJobRequest) (job.Fn, error) {
	if req.Name == "" {
		return nil, errors.New("train job needs a model name to register under")
	}
	park := req.Park
	if park == "" {
		park = "MFNP"
	}
	if err := paws.ValidateParkSpec(park); err != nil {
		return nil, err
	}
	scaleStr := req.Scale
	if scaleStr == "" {
		scaleStr = "small"
	}
	scale, err := paws.ParseScale(scaleStr)
	if err != nil {
		return nil, err
	}
	kindStr := req.Kind
	if kindStr == "" {
		kindStr = "DTB-iW"
	}
	kind, err := paws.ParseModelKind(kindStr)
	if err != nil {
		return nil, err
	}
	trainYears := req.TrainYears
	if trainYears <= 0 {
		trainYears = 3
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		opts := []paws.Option{paws.WithKind(kind)}
		if req.Seed != 0 {
			opts = append(opts, paws.WithSeed(req.Seed))
		}
		opts = append(opts, paws.WithPreset(park, scale))
		if req.Thresholds > 0 {
			opts = append(opts, paws.WithThresholds(req.Thresholds))
		}
		if req.Members > 0 {
			opts = append(opts, paws.WithEnsembleSize(req.Members))
		}
		if req.CVFolds > 0 {
			opts = append(opts, paws.WithCVFolds(req.CVFolds))
		}
		opts = append(opts, paws.WithProgress(progressPublisher(publish)))
		sc, err := s.svc.Scenario(ctx, park, opts...)
		if err != nil {
			return nil, err
		}
		testYear := sc.Data.Steps[len(sc.Data.Steps)-1].Year
		split, err := sc.Data.SplitByTestYear(testYear, trainYears)
		if err != nil {
			return nil, err
		}
		m, err := s.svc.Train(ctx, split.Train, opts...)
		if err != nil {
			return nil, err
		}
		testFrom, _ := sc.Data.StepsForYear(testYear)
		sm, err := s.svc.AddModel(ctx, req.Name, m, sc.Data, testFrom-1, opts...)
		if err != nil {
			return nil, err
		}
		resp := TrainJobResponse{
			Name:        req.Name,
			Kind:        kind.String(),
			Park:        park,
			Scale:       scaleStr,
			TestYear:    testYear,
			TrainPoints: len(split.Train),
			AUC:         m.AUC(split.Test),
			FeatureDim:  sm.FeatureDim(),
			Generation:  sm.Generation(),
		}
		// In a fleet, a train job's contract includes publication: the model
		// reaches the shared store (with the seed that regenerates its
		// serving context) so every peer replica picks it up on its next
		// sync poll. A publish failure fails the job — a model only this
		// replica can serve would silently break "any replica answers any
		// model".
		if s.svc.ModelStore() != nil {
			seed := req.Seed
			if seed == 0 {
				seed = s.svc.DefaultSeed()
			}
			entry, err := s.svc.PublishModel(req.Name, paws.StoreMeta{Park: park, Scale: scaleStr, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("model %q trained but not published to the fleet store: %w", req.Name, err)
			}
			publish(job.Event{Stage: "publish", Item: entry.Hash, Current: 1, Total: 1})
			resp.Hash = entry.Hash
			resp.StoreGeneration = entry.Generation
		}
		return resp, nil
	}, nil
}

// Table2JobRequest asks for a Table II AUC sweep on one park.
type Table2JobRequest struct {
	// Park is a park spec (default MFNP); Scale is "small" or "full"
	// (default small).
	Park  string `json:"park,omitempty"`
	Scale string `json:"scale,omitempty"`
	// Kinds restricts the model variants (default: all six).
	Kinds []string `json:"kinds,omitempty"`
	// TestYears restricts the calendar test years (default: last three).
	TestYears []int `json:"test_years,omitempty"`
	// Seed overrides the service-wide root seed (0 keeps the default).
	Seed int64 `json:"seed,omitempty"`
	// Optional training overrides.
	TrainYears int `json:"train_years,omitempty"`
	Thresholds int `json:"thresholds,omitempty"`
	Members    int `json:"members,omitempty"`
	TimeoutMS  int `json:"timeout_ms,omitempty"`
}

// Table2JobRow is one (park, test-year, model) AUC entry.
type Table2JobRow struct {
	Park     string  `json:"park"`
	TestYear int     `json:"test_year"`
	Kind     string  `json:"kind"`
	AUC      float64 `json:"auc"`
}

// Table2JobResponse carries the sweep rows in deterministic order.
type Table2JobResponse struct {
	Park string         `json:"park"`
	Rows []Table2JobRow `json:"rows"`
}

// table2Fn validates a table2 request and lowers it to a job function.
func (s *Server) table2Fn(req Table2JobRequest) (job.Fn, error) {
	park := req.Park
	if park == "" {
		park = "MFNP"
	}
	if err := paws.ValidateParkSpec(park); err != nil {
		return nil, err
	}
	scaleStr := req.Scale
	if scaleStr == "" {
		scaleStr = "small"
	}
	scale, err := paws.ParseScale(scaleStr)
	if err != nil {
		return nil, err
	}
	kinds := make([]paws.ModelKind, 0, len(req.Kinds))
	for _, ks := range req.Kinds {
		k, err := paws.ParseModelKind(ks)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		opts := []paws.Option{paws.WithScale(scale)}
		if req.Seed != 0 {
			opts = append(opts, paws.WithSeed(req.Seed))
		}
		if len(kinds) > 0 {
			opts = append(opts, paws.WithKinds(kinds...))
		}
		if len(req.TestYears) > 0 {
			opts = append(opts, paws.WithTestYears(req.TestYears...))
		}
		if req.TrainYears > 0 {
			opts = append(opts, paws.WithTrainYears(req.TrainYears))
		}
		if req.Thresholds > 0 {
			opts = append(opts, paws.WithThresholds(req.Thresholds))
		}
		if req.Members > 0 {
			opts = append(opts, paws.WithEnsembleSize(req.Members))
		}
		opts = append(opts, paws.WithProgress(progressPublisher(publish)))
		sc, err := s.svc.Scenario(ctx, park, opts...)
		if err != nil {
			return nil, err
		}
		rows, err := s.svc.Table2(ctx, sc, park, opts...)
		if err != nil {
			return nil, err
		}
		paws.SortTable2Rows(rows)
		resp := Table2JobResponse{Park: park, Rows: make([]Table2JobRow, 0, len(rows))}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, Table2JobRow{
				Park: row.Park, TestYear: row.TestYear, Kind: row.Kind.String(), AUC: row.AUC,
			})
		}
		return resp, nil
	}, nil
}

// CampaignJobRequest asks for a multi-scenario campaign: a grid of parks ×
// replicate seeds × season counts, every cell a closed-loop simulation
// comparing the same policies under common random numbers, aggregated into
// paired per-park policy deltas with bootstrap confidence intervals.
type CampaignJobRequest struct {
	// Parks are park specs; procedural ranges "rand:<lo>-<hi>" expand to
	// one park per seed (default MFNP).
	Parks []string `json:"parks,omitempty"`
	// Policies are compared inside every cell (default paws,uniform).
	Policies []string `json:"policies,omitempty"`
	// Seeds are the replicate seeds (default 1,2,3).
	Seeds []int64 `json:"seeds,omitempty"`
	// SeasonCounts are the season-count grid values (default 4).
	SeasonCounts []int `json:"season_counts,omitempty"`
	// SeasonMonths is the months per season (default 3, capped at 12).
	SeasonMonths int `json:"season_months,omitempty"`
	// Attacker is "static" or "adaptive" (default adaptive).
	Attacker string `json:"attacker,omitempty"`
	// Beta is the paws policy's robustness weight (default 0.9).
	Beta float64 `json:"beta,omitempty"`
	// BudgetKM overrides the per-month patrol budget.
	BudgetKM float64 `json:"budget_km,omitempty"`
	// Baseline anchors the paired deltas (default "uniform" when present).
	Baseline string `json:"baseline,omitempty"`
	// Resamples is the bootstrap resample count (default 2000).
	Resamples int `json:"resamples,omitempty"`
	// TimeoutMS bounds the job's runtime (0 = unbounded).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CampaignResponse is the campaign report plus the deterministic
// fixed-width text rendering pawscamp prints.
type CampaignResponse struct {
	*campaign.Report
	Text string `json:"text"`
}

// Campaign grids multiply simulation work, so their size is bounded
// server-side: the cell count cap dominates (a cell is a full closed-loop
// simulation), the rest keep single dimensions sane.
const (
	maxCampaignParks = 8
	maxCampaignSeeds = 16
	maxCampaignCells = 64
	maxResamples     = 100_000
)

// campaignFn validates a campaign request and lowers it to a job function.
// Park ranges are expanded, every grid dimension checked against the
// server-side caps, and the full campaign validation (spec validity,
// duplicate seeds/policies, season counts, baseline membership, attacker
// kind, beta range) run at submit time, so a malformed grid fails fast
// with a structured 400 instead of a doomed job.
func (s *Server) campaignFn(req CampaignJobRequest) (job.Fn, error) {
	parks := req.Parks
	if len(parks) == 0 {
		parks = []string{"MFNP"}
	}
	expanded, err := campaign.ExpandParks(parks)
	if err != nil {
		return nil, err
	}
	if len(expanded) > maxCampaignParks {
		return nil, fmt.Errorf("%d parks exceed the limit of %d", len(expanded), maxCampaignParks)
	}
	if len(req.Policies) > maxSimPolicies {
		return nil, fmt.Errorf("%d policies exceed the limit of %d", len(req.Policies), maxSimPolicies)
	}
	if len(req.Seeds) > maxCampaignSeeds {
		return nil, fmt.Errorf("%d seeds exceed the limit of %d", len(req.Seeds), maxCampaignSeeds)
	}
	for _, n := range req.SeasonCounts {
		if n > maxSimSeasons {
			return nil, fmt.Errorf("season count %d exceeds the limit of %d", n, maxSimSeasons)
		}
	}
	if req.SeasonMonths > maxSimSeasonMonths {
		return nil, fmt.Errorf("season_months %d exceeds the limit of %d", req.SeasonMonths, maxSimSeasonMonths)
	}
	if req.Resamples > maxResamples {
		return nil, fmt.Errorf("resamples %d exceeds the limit of %d", req.Resamples, maxResamples)
	}
	cfg := paws.CampaignConfig{
		Parks:        expanded,
		Policies:     req.Policies,
		Seeds:        req.Seeds,
		SeasonCounts: req.SeasonCounts,
		SeasonMonths: req.SeasonMonths,
		BudgetKM:     req.BudgetKM,
		Beta:         req.Beta,
		Baseline:     req.Baseline,
		Resamples:    req.Resamples,
	}
	cfg.Attacker.Kind = req.Attacker
	// One library call does the full validation (GridSize ⊇ Validate) and
	// yields the cell count of the defaults-filled grid Campaign would
	// actually run, so the cap cannot drift from the library's defaults.
	cells, err := cfg.GridSize()
	if err != nil {
		return nil, err
	}
	if cells > maxCampaignCells {
		return nil, fmt.Errorf("campaign grid of %d cells exceeds the limit of %d", cells, maxCampaignCells)
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		rep, err := s.svc.Campaign(ctx, cfg, paws.WithProgress(progressPublisher(publish)))
		if err != nil {
			return nil, err
		}
		return CampaignResponse{Report: rep, Text: rep.Format()}, nil
	}, nil
}

// riskmapFn validates a riskmap request (including that the model is
// registered — the registry is available at submit time) and lowers it to
// a job function that shares computeRiskMap (and its LRU) with the
// synchronous endpoint.
func (s *Server) riskmapFn(req RiskMapRequest) (job.Fn, error) {
	if _, _, err := s.checkRiskMap(req); err != nil {
		return nil, err
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		resp, err := s.computeRiskMap(ctx, req)
		if err != nil {
			return nil, err
		}
		publish(job.Event{Stage: "map", Item: resp.Model, Current: 1, Total: 1})
		return resp, nil
	}, nil
}

// ---------------------------------------------------------- job endpoints

// JobSubmitRequest submits one job: Kind selects which parameter block
// applies (a nil block uses that kind's defaults).
type JobSubmitRequest struct {
	// Kind is one of "simulate", "campaign", "train", "table2", "riskmap".
	Kind     string              `json:"kind"`
	Simulate *SimulateRequest    `json:"simulate,omitempty"`
	Campaign *CampaignJobRequest `json:"campaign,omitempty"`
	Train    *TrainJobRequest    `json:"train,omitempty"`
	Table2   *Table2JobRequest   `json:"table2,omitempty"`
	RiskMap  *RiskMapRequest     `json:"riskmap,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	// Shed load before spending any work on the request: an overloaded
	// replica answers 429 + Retry-After instead of queueing minutes of
	// backlog it cannot serve in time.
	if err := s.admitJob(); err != nil {
		writeErr(w, err)
		return
	}
	var req JobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var fn job.Fn
	var err error
	var timeoutMS int
	switch req.Kind {
	case "simulate":
		var p SimulateRequest
		if req.Simulate != nil {
			p = *req.Simulate
		}
		fn, err = s.simulateFn(p)
		timeoutMS = p.TimeoutMS
	case "campaign":
		var p CampaignJobRequest
		if req.Campaign != nil {
			p = *req.Campaign
		}
		fn, err = s.campaignFn(p)
		timeoutMS = p.TimeoutMS
	case "train":
		var p TrainJobRequest
		if req.Train != nil {
			p = *req.Train
		}
		fn, err = s.trainFn(p)
		timeoutMS = p.TimeoutMS
	case "table2":
		var p Table2JobRequest
		if req.Table2 != nil {
			p = *req.Table2
		}
		fn, err = s.table2Fn(p)
		timeoutMS = p.TimeoutMS
	case "riskmap":
		var p RiskMapRequest
		if req.RiskMap != nil {
			p = *req.RiskMap
		}
		fn, err = s.riskmapFn(p)
		timeoutMS = p.TimeoutMS
	default:
		err = fmt.Errorf("unknown job kind %q (want simulate, campaign, train, table2 or riskmap)", req.Kind)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	snap, err := s.jobs.SubmitSnapshot(req.Kind, s.traceJobFn(r, req.Kind, withTimeout(fn, timeoutMS)))
	if err != nil {
		writeErr(w, err)
		return
	}
	s.metrics.jobsSubmit.With(req.Kind).Inc()
	writeJSON(w, http.StatusAccepted, snap)
}

type jobListResponse struct {
	Jobs []job.Snapshot `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	result, _, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, result)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleJobEvents streams a job's progress events as NDJSON: one JSON
// event per line, replayed from ?from=N (default 0) and then followed
// live until the job reaches a terminal state. The stream is safe on
// client disconnect — the handler returns, the job keeps running, and a
// reconnecting client resumes from any sequence number.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("invalid from %q", v))
			return
		}
		from = n
	}
	// Fail before committing to a stream if the job does not exist.
	if _, err := s.jobs.Get(id); err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	for {
		evs, state, ch, err := s.jobs.EventsSince(id, from)
		if err != nil {
			// Evicted mid-stream: nothing more will ever arrive.
			return
		}
		if len(evs) > 0 {
			for _, e := range evs {
				if writeNDJSONLine(w, e) != nil {
					return // client gone; the job keeps running
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			from += len(evs)
		}
		if state.Terminal() {
			if len(evs) == 0 {
				return
			}
			continue // drain whatever arrived with the terminal transition
		}
		select {
		case <-r.Context().Done():
			return // client gone; the job keeps running
		case <-ch:
		}
	}
}

// writeNDJSONLine encodes one event as a JSON line.
func writeNDJSONLine(w http.ResponseWriter, e job.Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
