package serve

import (
	"bytes"
	"net/http"
	"testing"
)

// TestStatuszRenderByteStable pins /statusz as byte-identical across
// repeated renders of an unchanged server — the payload is built from
// structs and slices, never from bare map iteration, so a routing proxy
// diffing replica status sees real changes only.
func TestStatuszRenderByteStable(t *testing.T) {
	s := testServer(t, Config{ReplicaID: "r1"})
	first := doRaw(t, s.StatuszHandler(), http.MethodGet, "/statusz")
	if first.Code != http.StatusOK {
		t.Fatalf("statusz: status %d", first.Code)
	}
	for i := 0; i < 5; i++ {
		rec := doRaw(t, s.StatuszHandler(), http.MethodGet, "/statusz")
		if !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, rec.Body, first.Body)
		}
	}
}
