package serve

import (
	"fmt"
	"net/http"
	"time"

	"paws"
	"paws/internal/env"
	"paws/internal/job"
)

// This file is the fleet-facing half of the server: GET /statusz, the
// lightweight load report pawsgate polls for least-loaded job routing, and
// the admission-control gate that sheds job submissions once the estimated
// backlog exceeds the configured budget.

// AdmissionStatus reports the admission-control state inside /statusz.
type AdmissionStatus struct {
	// BudgetSeconds is the configured backlog budget (0 = disabled).
	BudgetSeconds float64 `json:"budget_seconds"`
	// BacklogSeconds is the current estimate: (queued + running) × mean job
	// runtime.
	BacklogSeconds float64 `json:"backlog_seconds"`
	// MaxQueue is the configured queue-depth bound (0 = disabled).
	MaxQueue int `json:"max_queue"`
	// Overloaded reports whether a job submission arriving now would be
	// rejected with 429.
	Overloaded bool `json:"overloaded"`
}

// StatuszResponse is the /statusz payload: enough signal for a routing
// proxy to pick a replica (load, admission state) and for an operator to
// see what the replica is doing (models, cache effectiveness).
type StatuszResponse struct {
	// Replica is Config.ReplicaID ("" in a single-process deployment).
	Replica string `json:"replica"`
	// Models is the number of registered models.
	Models int `json:"models"`
	// Jobs is the job manager's load summary.
	Jobs job.Stats `json:"jobs"`
	// Envs is the env session manager's load summary — the signal
	// pawsgate's least-loaded env-create routing scores replicas by.
	Envs env.Stats `json:"envs"`
	// Admission is the admission-control state.
	Admission AdmissionStatus `json:"admission"`
	// RiskMapCache reports the riskmap LRU's size and lifetime hit/miss
	// counts — the measurement behind affinity-vs-round-robin comparisons.
	RiskMapCache cacheStats `json:"riskmap_cache"`
}

// Statusz builds the current status report.
func (s *Server) Statusz() StatuszResponse {
	st := s.jobs.Stats()
	backlog := backlogEstimate(st)
	return StatuszResponse{
		Replica: s.cfg.ReplicaID,
		Models:  len(s.svc.ModelNames()),
		Jobs:    st,
		Envs:    s.envs.Stats(),
		Admission: AdmissionStatus{
			BudgetSeconds:  s.cfg.AdmissionBudget.Seconds(),
			BacklogSeconds: backlog.Seconds(),
			MaxQueue:       s.cfg.AdmissionMaxQueue,
			Overloaded:     s.admissionCheck(st) != nil,
		},
		RiskMapCache: s.cache.stats(),
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statusz())
}

// StatuszHandler returns a standalone handler for the status report, so
// pawsd can also expose /statusz on its debug (pprof) listener.
func (s *Server) StatuszHandler() http.Handler { return http.HandlerFunc(s.handleStatusz) }

// backlogEstimate is the admission-control signal: how much job work is
// already committed, assuming every queued and running job costs the
// observed mean runtime.
func backlogEstimate(st job.Stats) time.Duration {
	return time.Duration(float64(st.Queued+st.Running) * st.MeanJobSeconds * float64(time.Second))
}

// admissionCheck decides whether a job submission arriving now is
// admitted. nil admits; otherwise the returned *overloadedError renders as
// a structured 429 with Retry-After.
func (s *Server) admissionCheck(st job.Stats) error {
	if s.cfg.AdmissionMaxQueue > 0 && st.Queued >= s.cfg.AdmissionMaxQueue {
		// Retry once roughly one job's worth of queue has drained.
		wait := time.Duration(st.MeanJobSeconds * float64(time.Second))
		return &overloadedError{
			retryAfter: wait,
			msg: fmt.Sprintf("replica %s: %d jobs queued (max %d)",
				replicaLabel(s.cfg.ReplicaID), st.Queued, s.cfg.AdmissionMaxQueue),
		}
	}
	if s.cfg.AdmissionBudget > 0 {
		backlog := backlogEstimate(st)
		if backlog > s.cfg.AdmissionBudget {
			// Retry once the excess over the budget should have drained.
			return &overloadedError{
				retryAfter: backlog - s.cfg.AdmissionBudget,
				msg: fmt.Sprintf("replica %s: estimated job backlog %.1fs exceeds the %.1fs budget",
					replicaLabel(s.cfg.ReplicaID), backlog.Seconds(), s.cfg.AdmissionBudget.Seconds()),
			}
		}
	}
	return nil
}

// admitJob snapshots the job stats and applies the admission gate; a
// rejection counts toward paws_jobs_shed_total (admissionCheck itself
// stays side-effect free — /statusz probes it for the Overloaded flag).
func (s *Server) admitJob() error {
	err := s.admissionCheck(s.jobs.Stats())
	if err != nil {
		s.metrics.jobsShed.Inc()
	}
	return err
}

// replicaLabel renders a replica ID for error messages.
func replicaLabel(id string) string {
	if id == "" {
		return "(default)"
	}
	return id
}

// Service exposes the underlying paws.Service — pawsd uses it to wire a
// store syncer and publish startup-trained models without threading the
// service handle separately.
func (s *Server) Service() *paws.Service { return s.svc }
