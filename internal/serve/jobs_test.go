package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"paws/internal/job"
)

// submitJob posts one job and returns its snapshot.
func submitJob(t *testing.T, s *Server, req JobSubmitRequest) job.Snapshot {
	t.Helper()
	var snap job.Snapshot
	status, raw := do(t, s, http.MethodPost, "/v1/jobs", req, nil)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("submit: bad snapshot %s: %v", raw, err)
	}
	if snap.ID == "" {
		t.Fatalf("submit: empty job id: %s", raw)
	}
	return snap
}

// pollJob polls the snapshot endpoint until the job is terminal.
func pollJob(t *testing.T, s *Server, id string) job.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var snap job.Snapshot
		status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+id, nil, &snap)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, status, raw)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return job.Snapshot{}
}

// fastSim is a small deterministic simulate request: a procedural park and
// two non-training policies, so the job finishes in well under a second.
func fastSim(seasons int) *SimulateRequest {
	return &SimulateRequest{
		Park:     "rand:16",
		Seasons:  seasons,
		Policies: []string{"uniform", "historical"},
		Seed:     99,
	}
}

// TestJobResultMatchesSyncSimulate is the tentpole acceptance check: a
// simulate job run to completion stores a result byte-identical to the
// synchronous /v1/simulate response for the same park spec, seed and
// worker count.
func TestJobResultMatchesSyncSimulate(t *testing.T) {
	s := testServer(t, Config{})
	status, syncRaw := do(t, s, http.MethodPost, "/v1/simulate", fastSim(2), nil)
	if status != http.StatusOK {
		t.Fatalf("sync simulate: status %d, body %s", status, syncRaw)
	}
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: fastSim(2)})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("job ended %s: %+v", final.State, final)
	}
	status, asyncRaw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, asyncRaw)
	}
	if !bytes.Equal(syncRaw, asyncRaw) {
		t.Fatalf("async result diverged from sync response:\nsync:  %s\nasync: %s", syncRaw, asyncRaw)
	}
}

// TestJobEventsPerSeason asserts the progress contract: a multi-season
// simulate job emits at least one "season" event per season (here, one per
// policy per season), streamed as replayable NDJSON.
func TestJobEventsPerSeason(t *testing.T) {
	s := testServer(t, Config{})
	const seasons = 3
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: fastSim(seasons)})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("job ended %s", final.State)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+snap.ID+"/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: status %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	perPolicySeasons := map[string]int{}
	var states []string
	var events []job.Event
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		var e job.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
		switch e.Stage {
		case "season":
			if e.Total != seasons {
				t.Fatalf("season event with total %d, want %d: %+v", e.Total, seasons, e)
			}
			perPolicySeasons[e.Item]++
		case "state":
			states = append(states, e.Item)
		}
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d (stream must be dense)", i, e.Seq)
		}
	}
	for _, policy := range []string{"uniform", "historical"} {
		if perPolicySeasons[policy] < seasons {
			t.Fatalf("policy %s emitted %d season events, want ≥ %d (events: %+v)",
				policy, perPolicySeasons[policy], seasons, events)
		}
	}
	if len(states) < 2 || states[0] != "running" || states[len(states)-1] != "done" {
		t.Fatalf("lifecycle events %v, want running…done", states)
	}
	// Replay from an offset returns exactly the tail.
	req = httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/jobs/%s/events?from=%d", snap.ID, len(events)-1), nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := strings.Count(strings.TrimSpace(rec.Body.String()), "\n") + 1; got != 1 {
		t.Fatalf("replay tail has %d lines: %q", got, rec.Body.String())
	}
}

// TestJobCancelMidRunNoLeaks cancels a heavy simulate job mid-run and
// requires the canceled terminal state, the canceled error code on the
// result, and no leaked goroutines once the work drains.
func TestJobCancelMidRunNoLeaks(t *testing.T) {
	s := testServer(t, Config{})
	before := runtime.NumGoroutine()
	// The paws policy retrains every season: long enough to cancel mid-run.
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: &SimulateRequest{
		Park:     "MFNP",
		Seasons:  8,
		Policies: []string{"paws"},
	}})
	// Wait until it is actually running (first lifecycle event published).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur job.Snapshot
		do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID, nil, &cur)
		if cur.State == job.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, raw := do(t, s, http.MethodDelete, "/v1/jobs/"+snap.ID, nil, nil)
	if status != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", status, raw)
	}
	final := pollJob(t, s, snap.ID)
	if final.State != job.StateCanceled {
		t.Fatalf("state after cancel %s, want canceled", final.State)
	}
	var e errorResponse
	status, raw = do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, nil)
	if err := json.Unmarshal(raw, &e); err != nil || status != 499 || e.Error.Code != CodeCanceled {
		t.Fatalf("canceled result: status %d, body %s", status, raw)
	}
	// All compute goroutines must drain (internal/par never leaks workers).
	for end := time.Now().Add(10 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines leaked after cancel: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobEventsSurviveClientDisconnect streams over a real TCP server,
// drops the client mid-stream, and requires the job to keep running to
// completion with its full event log intact.
func TestJobEventsSurviveClientDisconnect(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, err := json.Marshal(JobSubmitRequest{Kind: "simulate", Simulate: fastSim(3)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var snap job.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Open the stream, read one line, then hang up.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(stream.Body)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatalf("reading first event: %v", err)
	}
	cancel()
	stream.Body.Close()

	final := pollJob(t, s, snap.ID)
	if final.State != job.StateDone {
		t.Fatalf("job ended %s after client disconnect, want done", final.State)
	}
	// A fresh subscriber can replay the whole stream afterwards.
	full, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Body.Close()
	var got int
	sc := bufio.NewScanner(full.Body)
	for sc.Scan() {
		got++
	}
	if got != final.Events {
		t.Fatalf("replay after disconnect has %d events, snapshot says %d", got, final.Events)
	}
}

// TestTrainJobRegistersModel drives remote train→serve: a train job
// completes, its model appears in /v1/models, and /v1/predict answers
// against it.
func TestTrainJobRegistersModel(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "train", Train: &TrainJobRequest{
		Name:       "remote",
		Park:       "rand:16",
		Kind:       "DTB-iW",
		Seed:       3,
		Thresholds: 3,
		Members:    3,
	}})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("train job ended %s: %+v", final.State, final)
	}
	var res TrainJobResponse
	status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, &res)
	if status != http.StatusOK {
		t.Fatalf("train result: status %d, body %s", status, raw)
	}
	if res.Name != "remote" || res.Kind != "DTB-iW" || res.FeatureDim <= 1 || res.TrainPoints == 0 {
		t.Fatalf("train result %+v", res)
	}
	if res.AUC < 0 || res.AUC > 1 {
		t.Fatalf("AUC %v out of range", res.AUC)
	}
	// Discovery lists it with its serving context.
	var models modelsResponse
	if status, raw := do(t, s, http.MethodGet, "/v1/models", nil, &models); status != http.StatusOK {
		t.Fatalf("models: status %d, body %s", status, raw)
	}
	found := false
	for _, mi := range models.Models {
		if mi.Name == "remote" {
			found = true
			if mi.Kind != "DTB-iW" || mi.Park != "rand-16" || mi.Cells <= 0 || mi.FeatureDim != res.FeatureDim || mi.Generation != res.Generation {
				t.Fatalf("model info %+v vs train result %+v", mi, res)
			}
		}
	}
	if !found {
		t.Fatalf("trained model missing from discovery: %+v", models)
	}
	// And it serves.
	var pr PredictResponse
	status, raw = do(t, s, http.MethodPost, "/v1/predict",
		PredictRequest{Model: "remote", Effort: 1.5, Cells: []int{0, 1, 2}}, &pr)
	if status != http.StatusOK || len(pr.Probs) != 3 {
		t.Fatalf("predict against trained model: status %d, body %s", status, raw)
	}
}

// TestRiskMapJobMatchesSync runs the riskmap kind and compares it to the
// synchronous endpoint (same compute path, shared LRU).
func TestRiskMapJobMatchesSync(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "riskmap", RiskMap: &RiskMapRequest{Model: "default", Effort: 3.5}})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("riskmap job ended %s", final.State)
	}
	var async RiskMapResponse
	if status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, &async); status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, raw)
	}
	var sync RiskMapResponse
	if status, _ := do(t, s, http.MethodGet, "/v1/riskmap?model=default&effort=3.5", nil, &sync); status != http.StatusOK {
		t.Fatal("sync riskmap failed")
	}
	if len(sync.Risk) != len(async.Risk) {
		t.Fatalf("shape mismatch: %d vs %d", len(sync.Risk), len(async.Risk))
	}
	for i := range sync.Risk {
		if sync.Risk[i] != async.Risk[i] || sync.Uncertainty[i] != async.Uncertainty[i] {
			t.Fatalf("cell %d diverged: %v/%v vs %v/%v", i, sync.Risk[i], sync.Uncertainty[i], async.Risk[i], async.Uncertainty[i])
		}
	}
	if !sync.Cached {
		t.Fatal("sync riskmap after the job should hit the shared LRU")
	}
}

// TestTable2JobRuns exercises the table2 kind end to end with a single
// cheap cell.
func TestTable2JobRuns(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "table2", Table2: &Table2JobRequest{
		Park:       "rand:16",
		Kinds:      []string{"DTB"},
		Seed:       5,
		Members:    3,
		Thresholds: 3,
	}})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("table2 job ended %s: %+v", final.State, final)
	}
	var res Table2JobResponse
	if status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, &res); status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, raw)
	}
	if res.Park != "rand:16" || len(res.Rows) == 0 {
		t.Fatalf("table2 result %+v", res)
	}
	for _, row := range res.Rows {
		if row.Kind != "DTB" || row.AUC < 0 || row.AUC > 1 {
			t.Fatalf("bad row %+v", row)
		}
	}
	// The sweep reported per-cell progress.
	var cells int
	evReq := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+snap.ID+"/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, evReq)
	scn := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for scn.Scan() {
		var e job.Event
		if err := json.Unmarshal(scn.Bytes(), &e); err == nil && e.Stage == "cell" {
			cells++
		}
	}
	if cells == 0 {
		t.Fatalf("table2 job emitted no cell events: %s", rec.Body.String())
	}
}

// TestJobResultConflictWhileRunning asserts the envelope for early result
// fetches and the job listing endpoint.
func TestJobResultConflictWhileRunning(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: &SimulateRequest{
		Park:     "MFNP",
		Seasons:  6,
		Policies: []string{"paws"},
	}})
	defer func() {
		do(t, s, http.MethodDelete, "/v1/jobs/"+snap.ID, nil, nil)
		pollJob(t, s, snap.ID)
	}()
	status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, nil)
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || status != http.StatusConflict || e.Error.Code != CodeConflict {
		t.Fatalf("early result: status %d, body %s", status, raw)
	}
	var list jobListResponse
	if status, _ := do(t, s, http.MethodGet, "/v1/jobs", nil, &list); status != http.StatusOK {
		t.Fatal("job list failed")
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == snap.ID
	}
	if !found {
		t.Fatalf("submitted job missing from listing: %+v", list.Jobs)
	}
}

// TestServerCloseDrainsJobs is the graceful-shutdown contract: Close stops
// submissions and lets running jobs finish.
func TestServerCloseDrainsJobs(t *testing.T) {
	// A dedicated server so closing it does not affect the shared fixture.
	s := New(testService(t), Config{JobWorkers: 2})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "simulate", Simulate: fastSim(2)})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	var final job.Snapshot
	if status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID, nil, &final); status != http.StatusOK {
		t.Fatalf("snapshot after close: %d %s", status, raw)
	}
	if final.State != job.StateDone {
		t.Fatalf("drained job state %s, want done", final.State)
	}
	status, raw := do(t, s, http.MethodPost, "/v1/jobs", JobSubmitRequest{Kind: "simulate", Simulate: fastSim(1)}, nil)
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || status != http.StatusServiceUnavailable || e.Error.Code != CodeShuttingDown {
		t.Fatalf("submit after close: status %d, body %s", status, raw)
	}
}
